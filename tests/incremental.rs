//! Cold-vs-incremental soundness and the E14 ECO speedup contract.
//!
//! The incremental flow's one promise: for any design — clean or broken
//! — [`run_flow_incremental`] produces a signoff *byte-identical* to a
//! cold [`run_flow`], whether the cache is empty, warm, or reloaded
//! from JSON; and after a one-device ECO on a many-CCC design it spends
//! at least 5× less compute in the everify and timing stages than a
//! cold run does.
//!
//! `scripts/check.sh` re-runs the byte-identity tests under
//! `CBV_THREADS=1,2,8` — the flows here use `parallelism: 0`, which
//! honours that variable, so the identity is also exercised across
//! worker counts.

use cbv_core::cache::VerifyCache;
use cbv_core::flow::{run_flow, run_flow_incremental, FlowConfig, FlowReport};
use cbv_core::gen::datapath::alu_slice;
use cbv_core::gen::{inject, FaultKind};
use cbv_core::netlist::{DeviceId, FlatNetlist};
use cbv_core::tech::{Process, Seconds};

fn signoff_json(r: &FlowReport) -> String {
    serde_json::to_string(&r.signoff).expect("signoff serializes")
}

fn stage_cpu(r: &FlowReport, stage: &str) -> Seconds {
    r.stages
        .iter()
        .find(|s| s.stage == stage)
        .unwrap_or_else(|| panic!("flow has a {stage} stage"))
        .cpu_time
}

fn verify_cpu(r: &FlowReport) -> f64 {
    (stage_cpu(r, "everify") + stage_cpu(r, "timing")).seconds()
}

#[test]
fn incremental_signoff_byte_identical_on_clean_design() {
    let p = Process::strongarm_035();
    let cfg = FlowConfig::default();
    let netlist = alu_slice(8, &p).netlist;

    let cold = run_flow(netlist.clone(), &p, &cfg);
    let cold_json = signoff_json(&cold);

    let mut cache = VerifyCache::new();
    let first = run_flow_incremental(netlist.clone(), &p, &cfg, &mut cache);
    assert_eq!(signoff_json(&first), cold_json, "cold cache run");
    let second = run_flow_incremental(netlist, &p, &cfg, &mut cache);
    assert_eq!(signoff_json(&second), cold_json, "warm cache run");
    for stage in &second.stages {
        if let Some(stats) = stage.cache {
            assert_eq!(
                stats.misses, 0,
                "{}: clean rerun must be all hits",
                stage.stage
            );
        }
    }
}

#[test]
fn incremental_signoff_byte_identical_on_faulty_design() {
    let p = Process::strongarm_035();
    let cfg = FlowConfig::default();
    for kind in [
        FaultKind::BetaSkew,
        FaultKind::SubMinLength,
        FaultKind::WeakDriver,
    ] {
        let mut netlist = alu_slice(4, &p).netlist;
        inject(&mut netlist, kind).expect("fault injects");
        let cold = run_flow(netlist.clone(), &p, &cfg);
        assert!(!cold.signoff.clean(), "{kind:?} must break signoff");

        let mut cache = VerifyCache::new();
        let first = run_flow_incremental(netlist.clone(), &p, &cfg, &mut cache);
        let second = run_flow_incremental(netlist, &p, &cfg, &mut cache);
        assert_eq!(
            signoff_json(&first),
            signoff_json(&cold),
            "{kind:?} cold cache"
        );
        assert_eq!(
            signoff_json(&second),
            signoff_json(&cold),
            "{kind:?} warm cache"
        );
    }
}

#[test]
fn cache_json_reload_preserves_byte_identity() {
    let p = Process::strongarm_035();
    let cfg = FlowConfig::default();
    let netlist = alu_slice(4, &p).netlist;
    let cold_json = signoff_json(&run_flow(netlist.clone(), &p, &cfg));

    let mut cache = VerifyCache::new();
    run_flow_incremental(netlist.clone(), &p, &cfg, &mut cache);

    // Round-trip the cache through its JSON form — findings, stress
    // ratios and arc delays must survive bit-exactly for the replayed
    // signoff to stay byte-identical.
    let mut reloaded = VerifyCache::from_json(&cache.to_json()).expect("cache parses back");
    let replay = run_flow_incremental(netlist, &p, &cfg, &mut reloaded);
    assert_eq!(signoff_json(&replay), cold_json);
    for stage in &replay.stages {
        if let Some(stats) = stage.cache {
            assert_eq!(
                stats.misses, 0,
                "{}: reloaded cache must fully hit",
                stage.stage
            );
        }
    }
}

/// The E14 contract: a one-device ECO on a ≥64-CCC design re-verifies
/// only the dirty neighbourhood, cutting everify+timing compute ≥5×
/// versus cold while keeping the signoff byte-identical.
#[test]
fn eco_rerun_verifies_5x_faster_with_identical_signoff() {
    let p = Process::strongarm_035();
    let cfg = FlowConfig::default();
    let base = alu_slice(16, &p).netlist;

    // Prime the cache with the unedited design.
    let mut cache = VerifyCache::new();
    let primed = run_flow_incremental(base.clone(), &p, &cfg, &mut cache);
    assert!(
        primed.recognition.cccs.len() >= 64,
        "E14 needs a many-CCC design, got {}",
        primed.recognition.cccs.len()
    );

    // The ECO: nudge one device's width by 5 %.
    let mut eco: FlatNetlist = base;
    eco.device_mut(DeviceId(0)).w *= 1.05;

    let cold = run_flow(eco.clone(), &p, &cfg);
    let warm = run_flow_incremental(eco, &p, &cfg, &mut cache);

    // Soundness first: identical signoff bytes.
    assert_eq!(signoff_json(&warm), signoff_json(&cold));

    // Almost everything hits: at most the edited CCC, its one-step
    // fanout closure, and the always-dirty residue unit re-verify.
    let estats = warm
        .stages
        .iter()
        .find(|s| s.stage == "everify")
        .and_then(|s| s.cache)
        .expect("everify stage reports cache stats");
    assert!(
        estats.misses <= 8,
        "one-device ECO should dirty a handful of units, re-verified {} of {}",
        estats.misses,
        estats.total()
    );
    assert!(estats.hits >= estats.total() - 8);

    // The speed contract, on compute time (wall time is noisy and the
    // CI box may be single-core): everify+timing together, ≥5×.
    let cold_cpu = verify_cpu(&cold);
    let warm_cpu = verify_cpu(&warm);
    assert!(
        warm_cpu * 5.0 <= cold_cpu,
        "ECO rerun must be ≥5x cheaper on verify stages: cold {:.3} ms, warm {:.3} ms ({:.1}x)",
        cold_cpu * 1e3,
        warm_cpu * 1e3,
        cold_cpu / warm_cpu
    );
}

//! End-to-end tests for the verification daemon (`cbv-serve`).
//!
//! The headline property is **byte-identity**: the signoff JSON a
//! remote client receives over the wire is the exact string an
//! in-process `run_flow_incremental` on the same netlist serializes —
//! for one client or K racing ones, at any worker count. The rest of
//! the suite is robustness (malformed frames, oversized payloads,
//! half-closed sockets, mid-job disconnects must never take the daemon
//! down) and the two deterministic rejection paths: queue-full
//! backpressure (capacity-0 queue) and expired request deadlines
//! (`deadline_ms: 0`).

use std::io::Write as _;
use std::net::{Shutdown, TcpStream};

use cbv_core::flow::FlowConfig;
use cbv_core::service::FlowService;
use cbv_core::tech::Process;
use cbv_serve::{
    read_frame, serve, write_frame, Client, ClientError, ServerConfig, ServerHandle, Session,
    FRAME_MAGIC, PROTO_VERSION,
};
use serde_json::Value;

fn start(config: ServerConfig) -> ServerHandle {
    serve(config).expect("bind loopback daemon")
}

fn default_server() -> ServerHandle {
    start(ServerConfig::default())
}

/// The reference ECO stream every byte-identity test replays: one
/// `cbv-mutate` operator, one raw resize, one add-net/add-device batch.
const ECO_STREAM: &[&str] = &[
    r#"{"edit":"op","op":{"op":"width-scale","factor":1.25},"site":{"site":"device","device":0}}"#,
    r#"{"edit":"resize","device":1,"w":2.0e-6,"l":3.5e-7}"#,
    r#"[{"edit":"add-net","name":"spur","kind":"signal"},
        {"edit":"add-device","name":"mspur","kind":"nmos",
         "gate":0,"drain":1,"source":2,"bulk":3,"w":1.0e-6,"l":3.5e-7}]"#,
];

/// Runs the same session + edit stream in-process and returns the
/// signoff serialization — the reference the daemon must match byte
/// for byte.
fn in_process_signoff(design: &str, stream: &[&str]) -> String {
    let process = Process::strongarm_035();
    let mut session = Session::open(design, &process).expect("registry design");
    for step in stream {
        let v: Value = serde_json::from_str(step).expect("edit json");
        let edits = cbv_serve::edits_from_json(&v).expect("edit vocabulary");
        session.apply_batch(&edits).expect("edit applies");
    }
    let service = FlowService::new(process, FlowConfig::default());
    service
        .verify(session.netlist().clone(), None, None)
        .signoff_json
}

#[test]
fn one_client_signoff_is_byte_identical_to_in_process() {
    let server = default_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    client.open("dcvsl").expect("open");
    let mut last = None;
    for step in ECO_STREAM {
        last = Some(client.eco(step, None).expect("eco step"));
    }
    let remote = last.expect("at least one step").signoff_raw;
    assert_eq!(remote, in_process_signoff("dcvsl", ECO_STREAM));
    server.shutdown();
}

#[test]
fn racing_clients_all_get_byte_identical_signoffs() {
    // Workers > 1 so jobs genuinely interleave in the shared cache.
    let server = start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let reference = in_process_signoff("ripple2", ECO_STREAM);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client.open("ripple2").expect("open");
                    let mut last = None;
                    for step in ECO_STREAM {
                        last = Some(client.eco(step, None).expect("eco step"));
                    }
                    last.expect("steps ran").signoff_raw
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("client thread"), reference);
        }
    });
    server.shutdown();
}

#[test]
fn faulted_design_fails_signoff_with_byte_identical_findings() {
    // A ×0.05 width shrink is an E16-grade electrical fault: the
    // remote signoff must *fail*, with the same bytes (same findings,
    // same counts) the in-process flow reports.
    let fault = r#"{"edit":"op","op":{"op":"width-scale","factor":0.05},"site":{"site":"device","device":0}}"#;
    let server = default_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    client.open("dcvsl").expect("open");
    let verdict = client.eco(fault, None).expect("eco");
    assert!(!verdict.clean, "the shrunken device must fail signoff");
    assert!(verdict.violations > 0);
    assert_eq!(verdict.signoff_raw, in_process_signoff("dcvsl", &[fault]));
    server.shutdown();
}

#[test]
fn uploaded_spice_deck_signs_off_like_the_in_process_flatten() {
    let deck = "\
* tiny inverter
.SUBCKT INV IN OUT VDD VSS
MP OUT IN VDD VDD PMOS W=2u L=0.35u
MN OUT IN VSS VSS NMOS W=1u L=0.35u
.ENDS
";
    let server = default_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let devices = client.upload("mine", deck, "INV").expect("upload");
    assert_eq!(devices, 2);
    let remote = client.signoff(None).expect("signoff").signoff_raw;

    let session = Session::from_spice("mine", deck, "INV").expect("local flatten");
    let service = FlowService::new(Process::strongarm_035(), FlowConfig::default());
    let local = service
        .verify(session.netlist().clone(), None, None)
        .signoff_json;
    assert_eq!(remote, local);
    server.shutdown();
}

#[test]
fn rollback_then_signoff_reproduces_the_seed_signoff() {
    let server = default_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    client.open("dcvsl").expect("open");
    let seed = client.signoff(None).expect("seed signoff");
    assert_eq!(seed.revision, 0);
    let edited = client.eco(ECO_STREAM[0], None).expect("eco");
    assert_eq!(edited.revision, 1);
    assert_ne!(edited.signoff_raw, seed.signoff_raw, "the edit must matter");
    assert_eq!(client.rollback(0).expect("rollback"), 0);
    let back = client.signoff(None).expect("rolled-back signoff");
    assert_eq!(back.signoff_raw, seed.signoff_raw);
    // The rolled-back netlist is fingerprint-identical to the seed, so
    // the shared cache primed at revision 0 answers everything.
    assert_eq!(back.cache_misses, 0, "rollback must hit the seed's cache");
    server.shutdown();
}

/// Sends raw bytes, then checks the daemon still serves a fresh client.
fn poke_and_verify_daemon_survives(addr: std::net::SocketAddr, poke: impl FnOnce(&mut TcpStream)) {
    let mut stream = TcpStream::connect(addr).expect("connect raw");
    poke(&mut stream);
    drop(stream);
    let mut client = Client::connect(addr).expect("daemon gone after hostile frame");
    client.open("sr-latch").expect("open after hostile frame");
    let v = client.signoff(None).expect("signoff after hostile frame");
    assert!(!v.signoff_raw.is_empty());
}

#[test]
fn hostile_frames_never_take_the_daemon_down() {
    let server = default_server();
    let addr = server.addr();

    // Valid frame, invalid JSON: error reply, connection stays usable.
    poke_and_verify_daemon_survives(addr, |s| {
        write_frame(s, "this is not json").expect("write");
        let reply = read_frame(s).expect("read").expect("reply");
        assert!(reply.contains("\"ok\":false"), "got: {reply}");
        assert!(reply.contains("bad json"), "got: {reply}");
    });

    // Valid JSON, no "req": error reply echoing the id.
    poke_and_verify_daemon_survives(addr, |s| {
        write_frame(s, "{\"id\":7}").expect("write");
        let reply = read_frame(s).expect("read").expect("reply");
        assert!(reply.contains("\"id\":7"), "got: {reply}");
        assert!(reply.contains("missing \\\"req\\\""), "got: {reply}");
    });

    // Non-UTF-8 payload: framing error reply, then teardown.
    poke_and_verify_daemon_survives(addr, |s| {
        s.write_all(&v2_header(2)).expect("write");
        s.write_all(&[0xff, 0xfe]).expect("write");
        let reply = read_frame(s).expect("read").expect("reply");
        assert!(reply.contains("bad frame"), "got: {reply}");
    });

    // Oversized length prefix: rejected before any allocation.
    poke_and_verify_daemon_survives(addr, |s| {
        s.write_all(&v2_header(64 * 1024 * 1024)).expect("write");
        let reply = read_frame(s).expect("read").expect("reply");
        assert!(reply.contains("bad frame"), "got: {reply}");
    });

    // A v1-era peer: raw length prefix, no magic. Must be refused as
    // alien bytes, never interpreted as a length.
    poke_and_verify_daemon_survives(addr, |s| {
        s.write_all(&7u32.to_be_bytes()).expect("write");
        s.write_all(b"{\"a\":1}").expect("write");
        let reply = read_frame(s).expect("read").expect("reply");
        assert!(reply.contains("bad frame magic"), "got: {reply}");
    });

    // Right magic, wrong protocol version: the mismatch is named.
    poke_and_verify_daemon_survives(addr, |s| {
        let mut h = FRAME_MAGIC.to_vec();
        h.push(PROTO_VERSION + 1);
        h.extend_from_slice(&2u32.to_be_bytes());
        h.extend_from_slice(b"{}");
        s.write_all(&h).expect("write");
        let reply = read_frame(s).expect("read").expect("reply");
        assert!(reply.contains("protocol version mismatch"), "got: {reply}");
    });

    // Half-closed mid-frame: header promises 100 bytes, 10 arrive, then
    // the write side closes. The handler must tear down, not hang.
    poke_and_verify_daemon_survives(addr, |s| {
        s.write_all(&v2_header(100)).expect("write");
        s.write_all(&[b'x'; 10]).expect("write");
        s.shutdown(Shutdown::Write).expect("half-close");
        // Best-effort error reply or clean close — either is fine; the
        // daemon surviving is the property under test.
        let _ = read_frame(s);
    });

    server.shutdown();
}

/// A v2 frame header (magic + version + length) with an arbitrary
/// length — for hand-rolling hostile frames.
fn v2_header(len: u32) -> Vec<u8> {
    let mut h = FRAME_MAGIC.to_vec();
    h.push(PROTO_VERSION);
    h.extend_from_slice(&len.to_be_bytes());
    h
}

#[test]
fn mid_job_disconnect_is_survivable() {
    let server = default_server();
    let addr = server.addr();
    {
        // Fire an ECO and vanish without reading the reply: the worker
        // finishes the job against a dead reply channel and the handler
        // fails its write — neither may panic the daemon.
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        write_frame(&mut raw, "{\"req\":\"open\",\"design\":\"dcvsl\",\"id\":1}").expect("write");
        let _ = read_frame(&mut raw).expect("open reply");
        write_frame(
            &mut raw,
            &format!("{{\"req\":\"eco\",\"edits\":{},\"id\":2}}", ECO_STREAM[0]),
        )
        .expect("write");
        drop(raw); // gone before the verdict comes back
    }
    let mut client = Client::connect(addr).expect("connect after disconnect");
    client.open("dcvsl").expect("open after disconnect");
    assert!(client.signoff(None).is_ok());
    server.shutdown();
}

#[test]
fn zero_capacity_queue_rejects_with_retry_after_and_rolls_back() {
    let server = start(ServerConfig {
        queue_capacity: 0,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    client.open("dcvsl").expect("open");
    // Every verification request bounces with the back-off hint ...
    match client.eco(ECO_STREAM[0], None) {
        Err(ClientError::Rejected {
            retry_after_ms: Some(ms),
            ..
        }) => assert_eq!(ms, ServerConfig::default().retry_after_ms),
        other => panic!("expected a retryable rejection, got {other:?}"),
    }
    assert!(client.signoff(None).err().is_some_and(|e| e.is_retryable()));
    // ... the rejected batch was rolled back (a retry replays the same
    // stream against the same revision) ...
    assert_eq!(client.rollback(0).expect("rollback"), 0);
    // ... and the control plane still answers.
    let stats: Value = serde_json::from_str(&client.stats().expect("stats")).expect("stats json");
    assert!(stats.get("rejected_queue_full").and_then(Value::as_u64) >= Some(2));
    assert_eq!(stats.get("queue_capacity").and_then(Value::as_u64), Some(0));
    server.shutdown();
}

#[test]
fn expired_deadline_rejects_before_verification() {
    let server = default_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    client.open("dcvsl").expect("open");
    // `deadline_ms: 0` has expired by the time a worker dequeues it —
    // the deterministic rejection path (the in-flow cooperative check
    // is covered by the core flow tests).
    match client.signoff(Some(0)) {
        Err(ClientError::Rejected { error, .. }) => {
            assert!(error.contains("deadline"), "got: {error}")
        }
        other => panic!("expected a deadline rejection, got {other:?}"),
    }
    let stats: Value = serde_json::from_str(&client.stats().expect("stats")).expect("stats json");
    assert!(stats.get("rejected_deadline").and_then(Value::as_u64) >= Some(1));
    // The session is intact: a deadline-free retry succeeds.
    assert!(client.signoff(None).is_ok());
    server.shutdown();
}

#[test]
fn requests_error_cleanly_without_a_session() {
    let server = default_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    for result in [
        client.eco(ECO_STREAM[0], None).err().map(|e| e.to_string()),
        client.signoff(None).err().map(|e| e.to_string()),
        client.rollback(0).err().map(|e| e.to_string()),
    ] {
        let message = result.expect("must be rejected");
        assert!(message.contains("no session"), "got: {message}");
    }
    assert!(client.open("no-such-design").is_err());
    assert!(
        client.open("ripple2").is_ok(),
        "session still opens after errors"
    );
    server.shutdown();
}

#[test]
fn remote_shutdown_drains_and_joins() {
    let server = default_server();
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    client.open("dcvsl").expect("open");
    client.signoff(None).expect("signoff before drain");
    client.shutdown().expect("shutdown handshake");
    // join() returns only after the accept loop, workers, and every
    // handler exit — a hang here is the test failure.
    server.join();
}

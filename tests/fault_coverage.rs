//! Fault-injection coverage: every §4.2 hazard class planted into a
//! clean design must be caught by the corresponding verifier — the test
//! form of experiment E12's detection matrix.

use cbv_core::everify::{run_all, CheckKind, EverifyConfig};
use cbv_core::extract::extract;
use cbv_core::gen::adders::manchester_domino_adder;
use cbv_core::gen::latches::keeper_domino;
use cbv_core::gen::{inject, FaultKind};
use cbv_core::layout::synthesize;
use cbv_core::netlist::FlatNetlist;
use cbv_core::recognize::recognize;
use cbv_core::tech::Process;

fn everify_violations(mut netlist: FlatNetlist, p: &Process) -> Vec<(CheckKind, String)> {
    let rec = recognize(&mut netlist);
    let layout = synthesize(&mut netlist, p);
    let ex = extract(&layout, &netlist, p);
    let cfg = EverifyConfig::for_process(p);
    let report = run_all(&netlist, &rec, &ex, Some(&layout), p, &cfg);
    report
        .violations()
        .map(|f| (f.check, f.message.clone()))
        .collect()
}

#[test]
fn clean_baselines_are_clean() {
    let p = Process::strongarm_035();
    assert!(everify_violations(keeper_domino(&p, 1e-6).netlist, &p).is_empty());
    assert!(everify_violations(manchester_domino_adder(2, &p).netlist, &p).is_empty());
}

/// Injects each fault into the keeper-domino block and asserts the right
/// check fires.
#[test]
fn detection_matrix() {
    let p = Process::strongarm_035();
    let cases: Vec<(FaultKind, Vec<CheckKind>)> = vec![
        (
            FaultKind::SubMinLength,
            vec![CheckKind::BetaRatio, CheckKind::HotCarrier],
        ),
        (FaultKind::MonsterKeeper, vec![CheckKind::Writability]),
    ];
    for (fault, expected) in cases {
        let mut g = keeper_domino(&p, 1e-6);
        let desc = inject(&mut g.netlist, fault).expect("injects");
        let violations = everify_violations(g.netlist, &p);
        assert!(
            violations.iter().any(|(k, _)| expected.contains(k)),
            "{fault:?} ({desc}) must trip one of {expected:?}; got {violations:?}"
        );
    }
    // Charge sharing needs a stack deep enough for the widened internal
    // nodes to dwarf the output node — the Manchester generate stacks.
    let mut g = manchester_domino_adder(2, &p);
    let desc = inject(&mut g.netlist, FaultKind::ChargeShare).expect("injects");
    let violations = everify_violations(g.netlist, &p);
    assert!(
        violations.iter().any(|(k, _)| *k == CheckKind::ChargeShare),
        "ChargeShare ({desc}) must trip; got {violations:?}"
    );
}

#[test]
fn beta_skew_detected_on_static_logic() {
    let p = Process::strongarm_035();
    let mut g = cbv_core::gen::adders::static_ripple_adder(2, &p);
    let desc = inject(&mut g.netlist, FaultKind::BetaSkew).expect("injects");
    let violations = everify_violations(g.netlist, &p);
    assert!(
        violations.iter().any(|(k, _)| *k == CheckKind::BetaRatio),
        "{desc}: got {violations:?}"
    );
}

#[test]
fn weak_driver_detected_by_edge_rate() {
    let p = Process::strongarm_035();
    let mut g = cbv_core::gen::clocktree::clock_trunk(3, 3.0, 256, &p);
    let desc = inject(&mut g.netlist, FaultKind::WeakDriver).expect("injects");
    let violations = everify_violations(g.netlist, &p);
    assert!(
        violations.iter().any(|(k, _)| *k == CheckKind::EdgeRate),
        "{desc}: got {violations:?}"
    );
}

#[test]
fn wrong_polarity_caught_functionally_by_switch_sim() {
    use cbv_core::sim::{Logic, SwitchSim};
    let p = Process::strongarm_035();
    let clean = cbv_core::gen::adders::static_ripple_adder(2, &p);
    let mut buggy = cbv_core::gen::adders::static_ripple_adder(2, &p);
    inject(&mut buggy.netlist, FaultKind::WrongPolarity).expect("injects");

    // Exhaustive compare: the functional bug must show somewhere.
    let mut diverged = false;
    let mut sim_ok = SwitchSim::new(&clean.netlist);
    let mut sim_bug = SwitchSim::new(&buggy.netlist);
    'outer: for a in 0u64..4 {
        for b in 0u64..4 {
            for cin in 0u64..2 {
                for (sim, g) in [(&mut sim_ok, &clean), (&mut sim_bug, &buggy)] {
                    for i in 0..2 {
                        sim.set(g.inputs[i], Logic::from_bool((a >> i) & 1 == 1));
                        sim.set(g.inputs[2 + i], Logic::from_bool((b >> i) & 1 == 1));
                    }
                    sim.set(g.inputs[4], Logic::from_bool(cin == 1));
                    let _ = sim.settle();
                }
                let ok: Vec<Logic> = clean.outputs.iter().map(|&n| sim_ok.value(n)).collect();
                let bug: Vec<Logic> = buggy.outputs.iter().map(|&n| sim_bug.value(n)).collect();
                if ok != bug {
                    diverged = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(diverged, "polarity swap must change observed behavior");
}

#[test]
fn leaky_dynamic_detected_by_leakage_check() {
    let p = Process::strongarm_035();
    let mut g = keeper_domino(&p, 1e-6);
    // Make the hold requirement realistic for a gated clock, then widen
    // the eval stack into a sieve.
    inject(&mut g.netlist, FaultKind::LeakyDynamic).expect("injects");
    let mut netlist = g.netlist;
    let rec = recognize(&mut netlist);
    let layout = synthesize(&mut netlist, &p);
    let ex = extract(&layout, &netlist, &p);
    let mut cfg = EverifyConfig::for_process(&p);
    cfg.dynamic_hold = cbv_core::tech::Seconds::new(3e-6); // 3 µs gated-clock hold
    let report = run_all(&netlist, &rec, &ex, Some(&layout), &p, &cfg);
    assert!(
        report.violations().any(|f| f.check == CheckKind::Leakage),
        "{:?}",
        report.findings()
    );
}

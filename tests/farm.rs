//! End-to-end tests for the verification farm (`cbv-serve`'s
//! coordinator + worker mode).
//!
//! The headline property extends the daemon's: a **farm** signoff —
//! units sharded across worker processes, merged through the shared
//! content-addressed cache tier — is byte-identical to the in-process
//! flow on the same design and edit stream, at any worker count. The
//! rest of the suite drives the failure lattice with scripted fake
//! workers: crash mid-batch, half-closed sockets, corrupt findings
//! payloads, stragglers (stolen batches, first-result-wins dedup),
//! persistent backpressure, and mixed-fleet protocol versions (the one
//! *hard* error — everything else degrades to surviving workers or the
//! local fallback).

use std::io::Write as _;
use std::net::{Shutdown, TcpListener};
use std::sync::Arc;
use std::time::Duration;

use cbv_core::cache::{write_unit_entry, VerifyCache};
use cbv_core::flow::{run_flow_incremental, FlowConfig};
use cbv_core::scatter::PreparedDesign;
use cbv_core::service::FlowService;
use cbv_core::tech::Process;
use cbv_serve::{
    edits_from_json, read_frame, serve, write_frame, Farm, FarmConfig, ServerConfig, Session,
    FRAME_MAGIC, PROTO_VERSION,
};
use serde_json::Value;

/// The ECO stream the byte-identity tests replay: a `cbv-mutate`
/// operator, a raw resize, a second operator elsewhere in the design.
const ECO_STEPS: &[&str] = &[
    r#"{"edit":"op","op":{"op":"width-scale","factor":1.25},"site":{"site":"device","device":0}}"#,
    r#"{"edit":"resize","device":1,"w":2.0e-6,"l":3.5e-7}"#,
    r#"{"edit":"op","op":{"op":"width-scale","factor":1.1},"site":{"site":"device","device":4}}"#,
];

/// A deliberately sub-minimum width: the faulted design must fail
/// identically through the farm and in process.
const FAULT_STEP: &str =
    r#"{"edit":"op","op":{"op":"width-scale","factor":0.05},"site":{"site":"device","device":0}}"#;

fn fresh_service() -> Arc<FlowService> {
    Arc::new(FlowService::new(
        Process::strongarm_035(),
        FlowConfig::default(),
    ))
}
/// In-process reference: the same session replay against a private
/// service, one signoff per step prefix.
fn replay_signoffs(design: &str, steps: &[&str]) -> Vec<String> {
    let p = Process::strongarm_035();
    let service = FlowService::new(p.clone(), FlowConfig::default());
    let mut session = Session::open(design, &p).expect("registry design");
    let mut out = Vec::new();
    for step in steps {
        let v: Value = serde_json::from_str(step).expect("step json");
        let edits = edits_from_json(&v).expect("step edits");
        session.apply_batch(&edits).expect("apply step");
        out.push(
            service
                .verify(session.netlist().clone(), None, None)
                .signoff_json,
        );
    }
    out
}

/// In-process reference for the unedited seed design.
fn replay_seed(design: &str) -> String {
    let p = Process::strongarm_035();
    let service = FlowService::new(p.clone(), FlowConfig::default());
    let session = Session::open(design, &p).expect("registry design");
    service
        .verify(session.netlist().clone(), None, None)
        .signoff_json
}

/// Streams the step prefixes through one farm, one verify per revision
/// (warming the shared tier exactly as a designer's ECO stream would).
fn farm_stream(farm: &Farm, design: &str, steps: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    for k in 1..=steps.len() {
        let prefix: Vec<String> = steps[..k].iter().map(|s| (*s).to_owned()).collect();
        let (_report, verdict) = farm.verify(design, &prefix).expect("farm verify");
        out.push(verdict.signoff_json);
    }
    out
}

#[test]
fn farm_signoff_is_byte_identical_across_worker_counts() {
    let reference = replay_signoffs("ripple4", ECO_STEPS);

    // Pin the reference itself against the plain incremental flow, so
    // the farm comparison is transitively against `run_flow_incremental`.
    {
        let p = Process::strongarm_035();
        let mut session = Session::open("ripple4", &p).expect("open");
        for step in ECO_STEPS {
            let v: Value = serde_json::from_str(step).expect("json");
            session
                .apply_batch(&edits_from_json(&v).expect("edits"))
                .expect("apply");
        }
        let mut cache = VerifyCache::new();
        let r = run_flow_incremental(
            session.netlist().clone(),
            &p,
            &FlowConfig::default(),
            &mut cache,
        );
        assert_eq!(
            &serde_json::to_string(&r.signoff).expect("signoff json"),
            reference.last().expect("steps ran"),
        );
    }

    for workers in [1usize, 2, 4] {
        let daemons: Vec<_> = (0..workers)
            .map(|_| serve(ServerConfig::default()).expect("bind worker daemon"))
            .collect();
        let addrs: Vec<String> = daemons.iter().map(|d| d.addr().to_string()).collect();
        let farm = Farm::new(
            fresh_service(),
            FarmConfig {
                workers: addrs,
                batch_units: 2,
                ..FarmConfig::default()
            },
        );
        let got = farm_stream(&farm, "ripple4", ECO_STEPS);
        assert_eq!(got, reference, "{workers} workers");
        let stats = farm.stats();
        assert_eq!(stats.dead_workers, 0, "errors: {:?}", farm.take_errors());
        assert!(stats.remote_units > 0, "units were farmed out: {stats:?}");
        assert_eq!(stats.local_units, 0, "no fallback needed: {stats:?}");
        for d in daemons {
            d.shutdown();
        }
    }
}

#[test]
fn faulted_design_fails_byte_identically_through_the_farm() {
    let reference = replay_signoffs("ripple2", &[FAULT_STEP]);
    let daemon = serve(ServerConfig::default()).expect("bind worker daemon");
    let farm = Farm::new(
        fresh_service(),
        FarmConfig {
            workers: vec![daemon.addr().to_string()],
            batch_units: 1,
            ..FarmConfig::default()
        },
    );
    let got = farm_stream(&farm, "ripple2", &[FAULT_STEP]);
    assert_eq!(got, reference);
    let (_report, verdict) = farm
        .verify("ripple2", &[FAULT_STEP.to_owned()])
        .expect("farm verify");
    assert!(!verdict.clean, "the fault must be found, not cached away");
    daemon.shutdown();
}

#[test]
fn zero_workers_degenerates_to_the_local_flow() {
    let farm = Farm::new(fresh_service(), FarmConfig::default());
    let got = farm_stream(&farm, "ripple2", ECO_STEPS);
    assert_eq!(got, replay_signoffs("ripple2", ECO_STEPS));
    let stats = farm.stats();
    assert_eq!(stats.remote_units, 0);
    assert!(stats.local_units > 0);
}

#[test]
fn shared_tier_answers_a_repeat_revision_without_dispatch() {
    let daemon = serve(ServerConfig::default()).expect("bind worker daemon");
    let farm = Farm::new(
        fresh_service(),
        FarmConfig {
            workers: vec![daemon.addr().to_string()],
            batch_units: 2,
            ..FarmConfig::default()
        },
    );
    let (_r1, v1) = farm.verify("ripple2", &[]).expect("cold verify");
    let dispatched = farm.stats().dispatched_batches;
    assert!(dispatched > 0, "cold revision is farmed out");

    let (_r2, v2) = farm.verify("ripple2", &[]).expect("warm verify");
    assert_eq!(v1.signoff_json, v2.signoff_json);
    assert_eq!(v2.cache.remote_misses, 0, "shared tier answers everything");
    assert_eq!(
        farm.stats().dispatched_batches,
        dispatched,
        "no unit crosses the wire twice for one content address"
    );
    daemon.shutdown();
}

// ---------------------------------------------------------------------
// Scripted fake workers: the failure lattice.
// ---------------------------------------------------------------------

/// What a fake worker does once the conversation reaches `batch`.
#[derive(Clone, Copy)]
enum FakeMode {
    /// Reply to `hello` with a wrong-version frame.
    WrongVersion,
    /// Half-close (FIN the write side) instead of answering `load`.
    HalfCloseOnLoad,
    /// Drop the connection on the first `batch` — a crash mid-batch.
    CrashOnBatch,
    /// Answer `batch` with unparseable cache entries.
    CorruptBatch,
    /// Hold the first batch for the given delay, then answer it (and
    /// later ones) correctly — a straggler, not a corpse.
    SlowFirstBatch(Duration),
    /// Answer everything correctly and immediately.
    Valid,
}

/// Precomputed truth a fake worker serves from: the design's
/// environment/unit fingerprints and every unit's serialized cache
/// entry — real results, so a fake's replies merge into a correct
/// signoff.
struct Brain {
    env: u64,
    fps: Vec<(u64, u64)>,
    entries: Vec<String>,
}

fn brain_for(design: &str) -> Arc<Brain> {
    let p = Process::strongarm_035();
    let session = Session::open(design, &p).expect("registry design");
    let prep = PreparedDesign::build(session.netlist().clone(), &p, &FlowConfig::default());
    let entries = (0..prep.n_units())
        .map(|i| {
            let outcome = prep.verify_unit(i, None);
            let mut s = String::new();
            write_unit_entry(&prep.unit_key(i), &outcome.result, &mut s);
            s
        })
        .collect();
    Arc::new(Brain {
        env: prep.env(),
        fps: prep
            .unit_fingerprints()
            .iter()
            .map(|f| (f.content, f.binding))
            .collect(),
        entries,
    })
}

/// Spawns a scripted fake worker serving one connection.
fn spawn_fake(mode: FakeMode, brain: Arc<Brain>) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake worker");
    let addr = listener.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || {
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        let mut first_batch = true;
        loop {
            let Ok(Some(frame)) = read_frame(&mut stream) else {
                return;
            };
            let v: Value = match serde_json::from_str(&frame) {
                Ok(v) => v,
                Err(_) => return,
            };
            let id = v.get("id").and_then(Value::as_u64).unwrap_or(0);
            match v.get("req").and_then(Value::as_str) {
                Some("hello") => {
                    if matches!(mode, FakeMode::WrongVersion) {
                        // A daemon from another build: right magic,
                        // older version byte. The coordinator must
                        // refuse loudly, not guess.
                        let payload = b"{}";
                        let mut raw = FRAME_MAGIC.to_vec();
                        raw.push(PROTO_VERSION - 1);
                        raw.extend_from_slice(&(payload.len() as u32).to_be_bytes());
                        raw.extend_from_slice(payload);
                        let _ = stream.write_all(&raw);
                        return;
                    }
                    let reply = format!("{{\"ok\":true,\"id\":{id},\"proto\":{PROTO_VERSION}}}");
                    if write_frame(&mut stream, &reply).is_err() {
                        return;
                    }
                }
                Some("load") => {
                    if matches!(mode, FakeMode::HalfCloseOnLoad) {
                        let _ = stream.shutdown(Shutdown::Write);
                        continue; // keep reading: a true half-close
                    }
                    let fps: Vec<String> = brain
                        .fps
                        .iter()
                        .map(|(c, b)| format!("[{c},{b}]"))
                        .collect();
                    let reply = format!(
                        "{{\"ok\":true,\"id\":{id},\"env\":{},\"fps\":[{}]}}",
                        brain.env,
                        fps.join(",")
                    );
                    if write_frame(&mut stream, &reply).is_err() {
                        return;
                    }
                }
                Some("batch") => {
                    let units: Vec<usize> = v
                        .get("units")
                        .and_then(Value::as_array)
                        .map(|a| {
                            a.iter()
                                .filter_map(Value::as_u64)
                                .map(|u| u as usize)
                                .collect()
                        })
                        .unwrap_or_default();
                    match mode {
                        FakeMode::CrashOnBatch => return,
                        FakeMode::SlowFirstBatch(delay) if first_batch => {
                            first_batch = false;
                            std::thread::sleep(delay);
                        }
                        _ => {}
                    }
                    let results: Vec<String> = units
                        .iter()
                        .map(|&u| {
                            let entry = if matches!(mode, FakeMode::CorruptBatch) {
                                "{}".to_owned()
                            } else {
                                brain.entries[u].clone()
                            };
                            format!("{{\"unit\":{u},\"poisoned\":false,\"entry\":{entry}}}")
                        })
                        .collect();
                    let reply = format!(
                        "{{\"ok\":true,\"id\":{id},\"results\":[{}]}}",
                        results.join(",")
                    );
                    if write_frame(&mut stream, &reply).is_err() {
                        return;
                    }
                }
                _ => return,
            }
        }
    });
    addr
}

#[test]
fn protocol_version_mismatch_is_a_hard_error() {
    let addr = spawn_fake(FakeMode::WrongVersion, brain_for("ripple2"));
    let farm = Farm::new(
        fresh_service(),
        FarmConfig {
            workers: vec![addr],
            ..FarmConfig::default()
        },
    );
    let err = farm.verify("ripple2", &[]).expect_err("mixed fleet");
    assert!(
        err.contains("protocol version mismatch"),
        "names the mismatch: {err}"
    );
}

#[test]
fn crashed_and_half_closed_workers_fall_back_locally() {
    let brain = brain_for("ripple2");
    let crash = spawn_fake(FakeMode::CrashOnBatch, Arc::clone(&brain));
    let half = spawn_fake(FakeMode::HalfCloseOnLoad, brain);
    let farm = Farm::new(
        fresh_service(),
        FarmConfig {
            workers: vec![crash, half],
            reply_timeout_ms: 2_000,
            ..FarmConfig::default()
        },
    );
    let (_report, verdict) = farm.verify("ripple2", &[]).expect("farm verify");
    assert_eq!(verdict.signoff_json, replay_seed("ripple2"));
    let stats = farm.stats();
    assert!(stats.dead_workers >= 2, "{stats:?}");
    assert_eq!(stats.remote_units, 0, "{stats:?}");
    assert!(stats.local_units > 0, "coordinator picked the units up");
}

#[test]
fn corrupt_findings_payloads_are_refused() {
    let addr = spawn_fake(FakeMode::CorruptBatch, brain_for("ripple2"));
    let farm = Farm::new(
        fresh_service(),
        FarmConfig {
            workers: vec![addr],
            reply_timeout_ms: 2_000,
            ..FarmConfig::default()
        },
    );
    let (_report, verdict) = farm.verify("ripple2", &[]).expect("farm verify");
    assert_eq!(verdict.signoff_json, replay_seed("ripple2"));
    let stats = farm.stats();
    assert!(stats.corrupt_replies >= 1, "{stats:?}");
    assert!(stats.dead_workers >= 1, "{stats:?}");
    assert!(stats.local_units > 0, "{stats:?}");
}

#[test]
fn straggler_batches_are_stolen_and_deduped_first_result_wins() {
    let brain = brain_for("ripple4");
    let slow = spawn_fake(
        FakeMode::SlowFirstBatch(Duration::from_millis(1_200)),
        Arc::clone(&brain),
    );
    let fast = spawn_fake(FakeMode::Valid, brain);
    let farm = Farm::new(
        fresh_service(),
        FarmConfig {
            workers: vec![slow, fast],
            batch_units: 1,
            steal_after_ms: 60,
            reply_timeout_ms: 10_000,
            ..FarmConfig::default()
        },
    );
    let (_report, verdict) = farm.verify("ripple4", &[]).expect("farm verify");
    assert_eq!(verdict.signoff_json, replay_seed("ripple4"));
    let stats = farm.stats();
    assert!(stats.stolen_batches >= 1, "{stats:?}");
    assert!(
        stats.duplicate_units >= 1,
        "late reply loses the race: {stats:?}"
    );
    assert_eq!(
        stats.dead_workers,
        0,
        "a straggler is not a corpse: {:?}",
        farm.take_errors()
    );
    assert_eq!(stats.local_units, 0, "{stats:?}");
}

#[test]
fn racing_streams_coalesce_through_the_shared_tier() {
    // Stream A claims every unit and its worker stalls 300 ms before
    // answering; stream B arrives mid-flight, finds every unit claimed,
    // waits, and resolves all of them from the tier — dispatching
    // nothing. Single-flight: one content address, one computation.
    let brain = brain_for("ripple2");
    let n_units = brain.entries.len() as u64;
    let slow = spawn_fake(
        FakeMode::SlowFirstBatch(Duration::from_millis(300)),
        Arc::clone(&brain),
    );
    let fast = spawn_fake(FakeMode::Valid, brain);
    let service = fresh_service();
    let farm_a = Farm::new(
        Arc::clone(&service),
        FarmConfig {
            workers: vec![slow],
            batch_units: 1024,
            steal: false,
            ..FarmConfig::default()
        },
    );
    let farm_b = Farm::new(
        Arc::clone(&service),
        FarmConfig {
            workers: vec![fast],
            ..FarmConfig::default()
        },
    );
    let (va, vb) = std::thread::scope(|s| {
        let a = s.spawn(|| farm_a.verify("ripple2", &[]).expect("farm a"));
        std::thread::sleep(Duration::from_millis(100));
        let b = s.spawn(|| farm_b.verify("ripple2", &[]).expect("farm b"));
        (a.join().expect("stream a").1, b.join().expect("stream b").1)
    });
    assert_eq!(va.signoff_json, replay_seed("ripple2"));
    assert_eq!(va.signoff_json, vb.signoff_json);
    let sa = farm_a.stats();
    let sb = farm_b.stats();
    assert_eq!(sa.remote_units, n_units, "{sa:?}");
    assert_eq!(sb.coalesced_units, n_units, "{sb:?}");
    assert_eq!(sb.remote_units, 0, "B dispatched nothing: {sb:?}");
    assert_eq!(sb.local_units, 0, "{sb:?}");
}

#[test]
fn persistent_backpressure_is_bounded_and_falls_back() {
    // A capacity-0 daemon rejects every batch with `retry_after_ms`;
    // the coordinator must retry a bounded number of times (with
    // jittered sleeps) and then route the units elsewhere, not spin.
    let daemon = serve(ServerConfig {
        queue_capacity: 0,
        ..ServerConfig::default()
    })
    .expect("bind worker daemon");
    let farm = Farm::new(
        fresh_service(),
        FarmConfig {
            workers: vec![daemon.addr().to_string()],
            retry_base_ms: 1,
            retry_cap_ms: 4,
            busy_retry_limit: 3,
            ..FarmConfig::default()
        },
    );
    let (_report, verdict) = farm.verify("ripple2", &[]).expect("farm verify");
    assert_eq!(verdict.signoff_json, replay_seed("ripple2"));
    let stats = farm.stats();
    assert!(stats.busy_retries >= 3, "{stats:?}");
    assert!(stats.dead_workers >= 1, "{stats:?}");
    assert!(stats.local_units > 0, "{stats:?}");
    daemon.shutdown();
}

//! End-to-end integration: generators → full CBV flow → signoff, plus
//! SPICE round-tripping of generated designs.

use cbv_core::flow::{run_flow, FlowConfig};
use cbv_core::gen::adders::{manchester_domino_adder, static_ripple_adder};
use cbv_core::gen::cam::cam_match_line;
use cbv_core::gen::datapath::alu_slice;
use cbv_core::gen::latches::{jam_latch, keeper_domino};
use cbv_core::netlist::spice;
use cbv_core::recognize::StateKind;
use cbv_core::tech::Process;

#[test]
fn every_generator_survives_the_full_flow() {
    let p = Process::strongarm_035();
    // The ALU slice is a two-phase design; give it the schedule it was
    // built for (a relaxed cycle — the bounded-pessimism delay model is
    // deliberately conservative).
    let alu_cfg = FlowConfig {
        schedule: Some(cbv_core::timing::ClockSchedule::two_phase(
            "phi1",
            "phi2",
            cbv_core::tech::units::nanoseconds(50.0),
            cbv_core::tech::units::nanoseconds(2.0),
        )),
        ..FlowConfig::default()
    };
    let designs = vec![
        (
            "ripple4",
            static_ripple_adder(4, &p).netlist,
            FlowConfig::default(),
        ),
        (
            "manchester4",
            manchester_domino_adder(4, &p).netlist,
            FlowConfig::default(),
        ),
        ("alu4", alu_slice(4, &p).netlist, alu_cfg),
        (
            "cam_ml8",
            cam_match_line(8, &p).netlist,
            FlowConfig::default(),
        ),
        (
            "jam",
            jam_latch(&p, 8e-6, 1e-6).netlist,
            FlowConfig::default(),
        ),
        (
            "keeper",
            keeper_domino(&p, 1e-6).netlist,
            FlowConfig::default(),
        ),
    ];
    for (name, netlist, cfg) in designs {
        let report = run_flow(netlist, &p, &cfg);
        assert!(
            report.signoff.clean(),
            "{name} must sign off clean:\n{}",
            report.signoff
        );
        assert!(report.stages.len() == 6, "{name} ran all stages");
    }
}

#[test]
fn flow_works_on_every_process_generation() {
    for p in [
        Process::alpha_21064(),
        Process::alpha_21164(),
        Process::alpha_21264(),
        Process::strongarm_035(),
    ] {
        let g = static_ripple_adder(2, &p);
        let report = run_flow(g.netlist, &p, &FlowConfig::default());
        assert!(report.signoff.clean(), "{}:\n{}", p.name(), report.signoff);
    }
}

#[test]
fn datapath_recognition_inventory() {
    let p = Process::alpha_21264();
    let g = alu_slice(8, &p);
    let report = run_flow(g.netlist, &p, &FlowConfig::default());
    let rec = &report.recognition;
    // 8 master + 8 slave latches; the accumulator feedback loop can
    // merge a bit's pair into one storage SCC, so count storage nets.
    let latch_elements = rec
        .state_elements
        .iter()
        .filter(|se| se.kind == StateKind::LevelLatch)
        .count();
    let storage_nets: usize = rec
        .state_elements
        .iter()
        .map(|se| se.storage_nets.len())
        .sum();
    assert!(
        latch_elements >= 8,
        "expected >=8 latch elements, found {latch_elements}"
    );
    assert!(
        storage_nets >= 16,
        "expected >=16 storage nets, found {storage_nets}"
    );
    // All four declared clock phases.
    assert!(
        rec.clock_nets.len() >= 4,
        "clock phases: {:?}",
        rec.clock_nets.len()
    );
}

#[test]
fn spice_round_trip_preserves_flow_results() {
    let p = Process::strongarm_035();
    let g = static_ripple_adder(3, &p);
    // Flat netlist -> SPICE text -> parse -> flatten -> flow.
    let mut lib = cbv_core::netlist::Library::new();
    let mut cell = cbv_core::netlist::Cell::new("ripple3");
    // Rebuild a hierarchical cell from the flat netlist.
    let flat = &g.netlist;
    let mut ids = Vec::new();
    for i in 0..flat.net_count() as u32 {
        let id = cbv_core::netlist::NetId(i);
        ids.push(cell.add_net(flat.net_name(id), flat.net_kind(id)));
    }
    for d in flat.devices() {
        let mut d2 = d.clone();
        d2.gate = ids[d.gate.index()];
        d2.source = ids[d.source.index()];
        d2.drain = ids[d.drain.index()];
        d2.bulk = ids[d.bulk.index()];
        cell.add_device(d2);
    }
    let _top = lib.add_cell(cell).expect("cell adds");
    let text = spice::write(&lib);
    let lib2 = spice::parse(&text).expect("round trip parses");
    let flat2 = lib2
        .flatten(lib2.find_cell("ripple3").expect("cell present"))
        .expect("flattens");
    assert_eq!(flat.devices().len(), flat2.devices().len());
    let report = run_flow(flat2, &p, &FlowConfig::default());
    assert!(report.signoff.clean(), "{}", report.signoff);
}

#[test]
fn signoff_serializes_for_report_consumers() {
    let p = Process::strongarm_035();
    let g = static_ripple_adder(2, &p);
    let report = run_flow(g.netlist, &p, &FlowConfig::default());
    let json = serde_json::to_string_pretty(&report.signoff).expect("serializable");
    assert!(json.contains("electrical"));
    assert!(json.contains("timing"));
}

#[test]
fn bigger_designs_cost_more_power() {
    let p = Process::strongarm_035();
    let small = run_flow(
        static_ripple_adder(2, &p).netlist,
        &p,
        &FlowConfig::default(),
    );
    let big = run_flow(
        static_ripple_adder(8, &p).netlist,
        &p,
        &FlowConfig::default(),
    );
    assert!(big.signoff.power.unwrap() > 2.0 * small.signoff.power.unwrap());
}

//! Cross-engine consistency: the same function evaluated by the RTL
//! interpreter, the bit-blasted gate simulator, the compiled 64-lane
//! engine, the switch-level transistor simulator and the BDD
//! equivalence checker must agree — §4.1's "thoroughly providing
//! coverage of logic intent" as a test.

use cbv_core::bdd::Bdd;
use cbv_core::csim::{compile as csim_compile, CSim, LANES};
use cbv_core::equiv::comb::{boolnet_to_bdds, VarTable};
use cbv_core::equiv::{check_circuit_outputs, CombResult, OutputSpec};
use cbv_core::gen::adders::static_ripple_adder;
use cbv_core::gen::rtl_designs::rtl_design_registry;
use cbv_core::recognize::recognize;
use cbv_core::rtl::blast::blast;
use cbv_core::rtl::{compile, interp::Interp};
use cbv_core::sim::{GateSim, Logic, SwitchSim};
use cbv_core::tech::Process;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

const ADDER_RTL: &str = "module add4(in a[4], in b[4], in cin, out s[4], out cout) {\n\
    wire sum[6] = {2'b0, a} + b + cin;\n\
    assign s = sum[3:0];\n\
    assign cout = sum[4];\n\
}";

#[test]
fn five_engines_agree_on_addition() {
    let p = Process::strongarm_035();
    // Engine 1: RTL interpreter.
    let design = compile(ADDER_RTL, "add4").expect("rtl compiles");
    let mut interp = Interp::new(&design);
    // Engine 2: gate-level event sim on the blasted network.
    let net = blast(&design).expect("blasts");
    let mut gates = GateSim::new(&net);
    // Engine 3: the compiled 64-lane engine on the same network; the
    // stimulus walks the lanes so every lane position gets exercised.
    let mut csim = CSim::new(csim_compile(&net).expect("acyclic"));
    // Engine 4: switch-level transistor sim on the generated adder.
    let g = static_ripple_adder(4, &p);
    let mut switch = SwitchSim::new(&g.netlist);

    let mut lane = 0usize;
    for a in 0u64..16 {
        for b in [0u64, 1, 5, 9, 15] {
            for cin in 0u64..2 {
                interp.set_input("a", a);
                interp.set_input("b", b);
                interp.set_input("cin", cin);
                let want_s = interp.output("s");
                let want_c = interp.output("cout");
                assert_eq!(want_s, (a + b + cin) & 0xF, "oracle check");

                lane = (lane + 7) % LANES;
                csim.set_input(lane, "a", a);
                csim.set_input(lane, "b", b);
                csim.set_input(lane, "cin", cin);
                assert_eq!(csim.output(lane, "s"), want_s, "compiled s, lane {lane}");
                assert_eq!(csim.output(lane, "cout"), want_c, "compiled cout");

                for i in 0..4 {
                    gates.set_input_by_name(&format!("a[{i}]"), (a >> i) & 1 == 1);
                    gates.set_input_by_name(&format!("b[{i}]"), (b >> i) & 1 == 1);
                }
                gates.set_input_by_name("cin[0]", cin == 1);
                assert_eq!(gates.output("s"), want_s, "gate sim s");
                assert_eq!(gates.output("cout"), want_c, "gate sim cout");

                for i in 0..4 {
                    switch.set_by_name(&format!("a[{i}]"), Logic::from_bool((a >> i) & 1 == 1));
                    switch.set_by_name(&format!("b[{i}]"), Logic::from_bool((b >> i) & 1 == 1));
                }
                switch.set_by_name("cin", Logic::from_bool(cin == 1));
                switch.settle().expect("stable");
                let got_s = switch.read_bus("s", 4).expect("no X");
                assert_eq!(got_s, want_s, "switch sim s (a={a} b={b} cin={cin})");
                assert_eq!(
                    switch.value_by_name("cout"),
                    Logic::from_bool(want_c == 1),
                    "switch sim cout"
                );
            }
        }
    }
}

#[test]
fn transistor_adder_sum_bit_equals_rtl_by_bdd() {
    // Engine 5: BDD equivalence between the transistor s[0] cone and the
    // RTL function a[0]^b[0]^cin.
    let p = Process::strongarm_035();
    let g = static_ripple_adder(2, &p);
    let mut netlist = g.netlist;
    let rec = recognize(&mut netlist);

    let golden_rtl = compile(
        "module s0(in a0, in b0, in cin, out y) { assign y = a0 ^ b0 ^ cin; }",
        "s0",
    )
    .expect("compiles");
    let gnet = blast(&golden_rtl).expect("blasts");
    let mut mgr = Bdd::new();
    let mut vars = VarTable::default();
    let mut gout = boolnet_to_bdds(&gnet, &mut mgr, &mut vars).expect("combinational");
    let golden = gout.remove(0).1[0];

    // The circuit's s[0] is driven by the xor network whose inputs are
    // p0 (=a0^b0 via another cone) and cin; check the *p0* cone against
    // a0^b0 instead — it is a pure two-level function of primary inputs.
    // Rename circuit nets to the golden variable names first.
    // Circuit input nets are "a[0]"/"b[0]"/"cin"; golden vars a0/b0/cin.
    // Build a small golden with matching names instead:
    let golden2_rtl =
        compile("module p0(in a, in b, out y) { assign y = a ^ b; }", "p0").expect("compiles");
    let g2net = blast(&golden2_rtl).expect("blasts");
    let mut g2out = boolnet_to_bdds(&g2net, &mut mgr, &mut vars).expect("combinational");
    let golden_p0 = g2out.remove(0).1[0];
    let _ = golden;

    // The circuit "p0" net: its recognized function is over nets named
    // "a[0]", "b[0]", and internal complement rails an/bn. Those internal
    // rails are themselves recognized cones; full cone composition is the
    // equivalence engine's job only for rail-level functions, so verify
    // the complement rails then p0 via substitution: xp0_an = !a[0].
    let spec_an = {
        let v = vars.var("a[0]");
        let a_ref = mgr.var(v);
        mgr.not(a_ref)
    };
    let spec_bn = {
        let v = vars.var("b[0]");
        let b_ref = mgr.var(v);
        mgr.not(b_ref)
    };
    let results = check_circuit_outputs(
        &netlist,
        &rec,
        &[
            OutputSpec {
                net: "xp0_an".into(),
                golden: spec_an,
                complemented: false,
            },
            OutputSpec {
                net: "xp0_bn".into(),
                golden: spec_bn,
                complemented: false,
            },
        ],
        &mut mgr,
        &mut vars,
    )
    .expect("check runs");
    for (net, r) in &results {
        assert_eq!(*r, CombResult::Equivalent, "complement rail {net}");
    }
    // p0's own function over (a[0], b[0], xp0_an, xp0_bn): substitute the
    // verified rails and compare to a^b.
    let class = rec
        .driver_class(netlist.find_net("p0").expect("p0 exists"))
        .expect("driven");
    let out_fn = class
        .outputs
        .iter()
        .find(|o| netlist.net_name(o.net) == "p0")
        .expect("p0 output");
    let expr = out_fn
        .function
        .clone()
        .or_else(|| {
            // Pass-style xor: output = pull-up condition when driven high.
            Some(out_fn.pull_down.clone().negate())
        })
        .expect("some function");
    let mut circuit = cbv_core::equiv::expr_to_bdd(&expr, &netlist, &mut mgr, &mut vars);
    for (rail, spec) in [("xp0_an", spec_an), ("xp0_bn", spec_bn)] {
        let v = vars.var(rail);
        circuit = mgr.compose(circuit, v, spec);
    }
    let diff = mgr.xor(circuit, golden_p0);
    assert_eq!(
        mgr.any_sat(diff),
        None,
        "p0 cone equals a^b after substitution"
    );
}

#[test]
fn sequential_rtl_vs_gatesim_long_run() {
    let design = compile(
        "module lfsr(clock ck, in en, out v[8]) {\n\
           reg r[8] = 1;\n\
           at posedge(ck) { if (en) { r <= {r[6:0], r[7] ^ r[5] ^ r[4] ^ r[3]} ; } }\n\
           assign v = r;\n\
         }",
        "lfsr",
    )
    .expect("compiles");
    let net = blast(&design).expect("blasts");
    let mut interp = Interp::new(&design);
    let mut gates = GateSim::new(&net);
    interp.set_input("en", 1);
    gates.set_input_by_name("en[0]", true);
    for cycle in 0..500 {
        assert_eq!(interp.output("v"), gates.output("v"), "cycle {cycle}");
        interp.step("ck");
        gates.step(0);
    }
    // The LFSR actually cycles (not stuck).
    assert_ne!(interp.output("v"), 1);
}

#[test]
fn transistor_adder_shadows_rtl_adder() {
    // Shadow mode at block scale: the generated 4-bit transistor adder
    // shadows the RTL `+` under random stimulus — "a part of the circuit
    // logic shadowing (not replacing) the corresponding RTL description".
    use cbv_core::sim::{BitBinding, ShadowSim};

    let p = Process::strongarm_035();
    let circuit = static_ripple_adder(4, &p);
    let golden = compile(
        "module add4(clock ck, in a[4], in b[4], in cin, out s[4], out cout) {\n\
           reg ra[4]; reg rb[4]; reg rc;\n\
           at posedge(ck) { ra <= a; rb <= b; rc <= cin; }\n\
           wire sum[6] = {2'b0, ra} + rb + rc;\n\
           assign s = sum[3:0];\n\
           assign cout = sum[4];\n\
         }",
        "add4",
    )
    .expect("compiles");

    let mut inputs = Vec::new();
    for i in 0..4 {
        inputs.push(BitBinding::new("ra", i, format!("a[{i}]")));
        inputs.push(BitBinding::new("rb", i, format!("b[{i}]")));
    }
    inputs.push(BitBinding::new("rc", 0, "cin"));
    let mut outputs = Vec::new();
    for i in 0..4 {
        outputs.push(BitBinding::new("s", i, format!("s[{i}]")));
    }
    outputs.push(BitBinding::new("cout", 0, "cout"));

    let mut shadow = ShadowSim::new(&golden, &circuit.netlist, inputs, outputs, vec![]);
    let mut rng = 0xBEEFu64;
    for _ in 0..64 {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
        shadow.set_input("a", (rng >> 20) & 0xF);
        shadow.set_input("b", (rng >> 30) & 0xF);
        shadow.set_input("cin", (rng >> 40) & 1);
        shadow.step("ck");
    }
    assert_eq!(
        shadow.mismatches().len(),
        0,
        "{:?}",
        &shadow.mismatches()[..shadow.mismatches().len().min(3)]
    );
}

#[test]
fn compiled_engine_matches_interp_on_every_registry_design() {
    // The acceptance sweep: every named registry design — combinational,
    // posedge, negedge-only, two-phase, and blasted-CAM state — runs
    // 1000 random stimulus cycles with all 64 lanes checked against 64
    // independent word-level interpreter runs. Bit `l` of every plane is
    // its own simulation; nothing may leak between lanes.
    const CYCLES: usize = 1000;
    for spec in rtl_design_registry() {
        let design = compile(&spec.source, spec.top).expect("registry design compiles");
        let net = blast(&design).expect("registry design blasts");
        let mut csim = CSim::new(csim_compile(&net).expect("acyclic"));
        let mut interps: Vec<Interp> = (0..LANES).map(|_| Interp::new(&design)).collect();
        let out_names: Vec<&str> = design.outputs.iter().map(|(n, _)| n.as_str()).collect();

        let mut rng = 0xD1CE_0001u64 ^ spec.name.len() as u64;
        for cycle in 0..CYCLES {
            for (name, w) in &design.inputs {
                for (lane, interp) in interps.iter_mut().enumerate() {
                    let v = splitmix(&mut rng) & if *w >= 64 { u64::MAX } else { (1 << w) - 1 };
                    interp.set_input(name, v);
                    csim.set_input(lane, name, v);
                }
            }
            for name in &out_names {
                for (lane, interp) in interps.iter_mut().enumerate() {
                    assert_eq!(
                        csim.output(lane, name),
                        interp.output(name),
                        "{}: output `{name}` lane {lane} cycle {cycle}",
                        spec.name
                    );
                }
            }
            if let Some(ck) = spec.clock {
                csim.step(ck);
                for interp in &mut interps {
                    interp.step(ck);
                }
            }
        }
    }
}

#[test]
fn pure_sizing_mutants_leave_logic_bit_identical() {
    // The mutation taxonomy splits into electrical-class operators
    // (geometry only) and functional-class operators. The electrical
    // ones must be invisible to every logic engine: a resized transistor
    // changes delays and margins, never truth tables.
    use cbv_core::mutate::{apply, MutationOp, Site};

    let p = Process::strongarm_035();
    let base = static_ripple_adder(4, &p);
    let design = compile(ADDER_RTL, "add4").expect("rtl compiles");
    let mut interp = Interp::new(&design);
    // The compiled engine is a second logic reference here: geometry
    // never reaches it, so it must agree with the interpreter verbatim.
    let net = blast(&design).expect("blasts");
    let mut csim = CSim::new(csim_compile(&net).expect("acyclic"));

    let sizing_ops = [
        MutationOp::WidthScale { factor: 12.0 },
        MutationOp::WidthScale { factor: 0.1 },
        MutationOp::LengthScale { factor: 0.6 },
        MutationOp::BetaSkew { factor: 12.0 },
    ];
    for (k, op) in sizing_ops.iter().enumerate() {
        let mut mutant = base.netlist.clone();
        // Spread victims across the design: one device per operator.
        let victim = mutant
            .device_ids()
            .nth(k * 7 % mutant.devices().len())
            .unwrap();
        apply(&mut mutant, op, Site::Device(victim)).expect("applies");
        let mut switch = SwitchSim::new(&mutant);
        for (a, b, cin) in [(3u64, 9u64, 0u64), (15, 15, 1), (0, 0, 1), (7, 8, 1)] {
            interp.set_input("a", a);
            interp.set_input("b", b);
            interp.set_input("cin", cin);
            let lane = (k * 13) % cbv_core::csim::LANES;
            csim.set_input(lane, "a", a);
            csim.set_input(lane, "b", b);
            csim.set_input(lane, "cin", cin);
            assert_eq!(csim.output(lane, "s"), interp.output("s"), "compiled s");
            assert_eq!(
                csim.output(lane, "cout"),
                interp.output("cout"),
                "compiled cout"
            );
            for i in 0..4 {
                switch.set_by_name(&format!("a[{i}]"), Logic::from_bool((a >> i) & 1 == 1));
                switch.set_by_name(&format!("b[{i}]"), Logic::from_bool((b >> i) & 1 == 1));
            }
            switch.set_by_name("cin", Logic::from_bool(cin == 1));
            switch.settle().expect("stable");
            assert_eq!(
                switch.read_bus("s", 4).expect("no X"),
                interp.output("s"),
                "{op} on device {victim:?} changed s (a={a} b={b} cin={cin})"
            );
            assert_eq!(
                switch.value_by_name("cout"),
                Logic::from_bool(interp.output("cout") == 1),
                "{op} on device {victim:?} changed cout"
            );
        }
    }
}

#[test]
fn polarity_and_bridge_mutants_fail_equivalence() {
    // The functional-class operators must NOT survive §4.1: a polarity
    // swap or a net bridge in a verified cone has to break equivalence.
    use cbv_core::mutate::{apply, MutationOp, Site};

    let p = Process::strongarm_035();
    let base = static_ripple_adder(2, &p).netlist;

    let mut mgr = Bdd::new();
    let mut vars = VarTable::default();
    let spec_an = {
        let v = vars.var("a[0]");
        let a_ref = mgr.var(v);
        mgr.not(a_ref)
    };
    let spec_bn = {
        let v = vars.var("b[0]");
        let b_ref = mgr.var(v);
        mgr.not(b_ref)
    };
    let specs = |mgr: &mut Bdd| {
        let _ = mgr;
        [
            OutputSpec {
                net: "xp0_an".into(),
                golden: spec_an,
                complemented: false,
            },
            OutputSpec {
                net: "xp0_bn".into(),
                golden: spec_bn,
                complemented: false,
            },
        ]
    };

    // Sanity: the unmutated rails verify.
    let mut clean = base.clone();
    let rec = recognize(&mut clean);
    let s = specs(&mut mgr);
    let results = check_circuit_outputs(&clean, &rec, &s, &mut mgr, &mut vars).expect("runs");
    assert!(results.iter().all(|(_, r)| *r == CombResult::Equivalent));

    // Polarity swap inside the an-complement cone: the inverter driving
    // `xp0_an` no longer computes NOT.
    let an = base.find_net("xp0_an").expect("an rail");
    let mut swapped = base.clone();
    let victim = swapped
        .device_ids()
        .find(|&d| {
            let dev = swapped.device(d);
            dev.source == an || dev.drain == an
        })
        .expect("a device drives the rail");
    apply(
        &mut swapped,
        &MutationOp::PolaritySwap,
        Site::Device(victim),
    )
    .expect("applies");
    let rec = recognize(&mut swapped);
    let s = specs(&mut mgr);
    let caught = match check_circuit_outputs(&swapped, &rec, &s, &mut mgr, &mut vars) {
        // Either the check disproves equivalence...
        Ok(results) => results.iter().any(|(_, r)| *r != CombResult::Equivalent),
        // ...or the mangled cone no longer even recognizes as a
        // checkable gate — also a detection, not a silent pass.
        Err(_) => true,
    };
    assert!(caught, "polarity swap must not verify as equivalent");

    // Bridge between the two complement rails: at least one side of the
    // short must stop being its spec.
    let bn = base.find_net("xp0_bn").expect("bn rail");
    let mut bridged = base.clone();
    apply(&mut bridged, &MutationOp::NetBridge, Site::Bridge(an, bn)).expect("applies");
    let rec = recognize(&mut bridged);
    let s = specs(&mut mgr);
    let caught = match check_circuit_outputs(&bridged, &rec, &s, &mut mgr, &mut vars) {
        Ok(results) => results.iter().any(|(_, r)| *r != CombResult::Equivalent),
        Err(_) => true,
    };
    assert!(caught, "net bridge must not verify as equivalent");
}

#[test]
fn shadow_catches_injected_functional_bug() {
    use cbv_core::gen::{inject, FaultKind};
    use cbv_core::sim::{BitBinding, ShadowSim};

    let p = Process::strongarm_035();
    let mut circuit = static_ripple_adder(4, &p);
    inject(&mut circuit.netlist, FaultKind::WrongPolarity).expect("injects");
    let golden = compile(
        "module add4(clock ck, in a[4], in b[4], in cin, out s[4], out cout) {\n\
           reg ra[4]; reg rb[4]; reg rc;\n\
           at posedge(ck) { ra <= a; rb <= b; rc <= cin; }\n\
           wire sum[6] = {2'b0, ra} + rb + rc;\n\
           assign s = sum[3:0];\n\
           assign cout = sum[4];\n\
         }",
        "add4",
    )
    .expect("compiles");
    let mut inputs = Vec::new();
    for i in 0..4 {
        inputs.push(BitBinding::new("ra", i, format!("a[{i}]")));
        inputs.push(BitBinding::new("rb", i, format!("b[{i}]")));
    }
    inputs.push(BitBinding::new("rc", 0, "cin"));
    let mut outputs = Vec::new();
    for i in 0..4 {
        outputs.push(BitBinding::new("s", i, format!("s[{i}]")));
    }
    outputs.push(BitBinding::new("cout", 0, "cout"));
    let mut shadow = ShadowSim::new(&golden, &circuit.netlist, inputs, outputs, vec![]);
    for v in 0..32u64 {
        shadow.set_input("a", v & 0xF);
        shadow.set_input("b", (v * 5) & 0xF);
        shadow.set_input("cin", v & 1);
        shadow.step("ck");
    }
    assert!(
        !shadow.mismatches().is_empty(),
        "the polarity bug must surface under shadow simulation"
    );
}

#[test]
fn functional_screen_verdicts_identical_across_reference_engines() {
    // E16's simulation column: the same mutant campaign screened against
    // interpreter-computed and compiled-engine-computed reference
    // vectors must yield the identical verdict for every mutant — the
    // compiled backend is a drop-in reference, not an approximation.
    use cbv_core::mutate::{run_func_screen, FuncScreenConfig, FuncVerdict, MutationOp};
    use cbv_core::screen::{RefEngine, SimScreenOracle};

    let p = Process::strongarm_035();
    let circuit = static_ripple_adder(4, &p);
    let golden = compile(ADDER_RTL, "add4").expect("rtl compiles");

    let config = FuncScreenConfig {
        ops: vec![
            MutationOp::PolaritySwap,
            MutationOp::NetBridge,
            MutationOp::WidthScale { factor: 2.0 },
        ],
        max_sites_per_op: 3,
    };
    let mut via_interp =
        SimScreenOracle::new(&golden, RefEngine::Interp, 24, 0xFEED).expect("combinational");
    let mut via_compiled =
        SimScreenOracle::new(&golden, RefEngine::Compiled, 24, 0xFEED).expect("combinational");
    assert_eq!(via_interp.expected(), via_compiled.expected());

    let a = run_func_screen(&circuit.netlist, &mut via_interp, &config);
    let b = run_func_screen(&circuit.netlist, &mut via_compiled, &config);
    assert_eq!(
        a.baseline,
        FuncVerdict::Escaped,
        "clean design screens clean"
    );
    assert_eq!(a.baseline, b.baseline);
    assert_eq!(a.total_mutants(), b.total_mutants());
    assert!(a.total_mutants() > 0, "campaign must run mutants");
    assert_eq!(
        a.verdicts(),
        b.verdicts(),
        "verdict vectors must be identical"
    );
    // And the screen actually works: every polarity swap is caught,
    // every pure sizing change escapes.
    assert_eq!(a.rows[0].escapes.len(), 0, "{:?}", a.rows[0].escapes);
    assert_eq!(a.rows[2].escapes.len(), a.rows[2].mutants_run);
}

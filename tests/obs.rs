//! The observability layer's three contracts:
//!
//! 1. **Zero observer effect** — the signoff is byte-identical with
//!    tracing on or off, serial or parallel. The trace reads the flow;
//!    it never steers it.
//! 2. **Deterministic traces** — counters and the span *tree* (names
//!    and parentage) are identical at any worker count; only
//!    timestamps and thread ids move. A trace you can diff across runs
//!    is a trace you can regress against.
//! 3. **Stable wire format** — the JSONL sink emits the documented
//!    `cbv-trace/1` schema, parseable line-by-line.
//!
//! Plus the NaN regression the tracer exposed: a design with a NaN
//! device geometry must complete the flow and fail signoff, not crash.

use std::io;
use std::sync::{Arc, Mutex};

use cbv_core::flow::{run_flow, run_flow_incremental, FlowConfig, FlowReport};
use cbv_core::gen::adders::manchester_domino_adder;
use cbv_core::gen::{inject, FaultKind};
use cbv_core::netlist::{DeviceId, FlatNetlist};
use cbv_core::obs::{JsonlSink, Trace, Tracer};
use cbv_core::tech::Process;

fn testcase(faulty: bool) -> (FlatNetlist, Process) {
    let process = Process::strongarm_035();
    let mut g = manchester_domino_adder(8, &process);
    if faulty {
        inject(&mut g.netlist, FaultKind::LeakyDynamic).expect("inject leak");
    }
    (g.netlist, process)
}

/// Everything a designer consumes from a flow run, as one string.
fn signoff_bytes(r: &FlowReport) -> String {
    let stages: Vec<_> = r.stages.iter().map(|s| (s.stage, s.artifacts)).collect();
    format!(
        "{}|{:?}|{}",
        serde_json::to_string(&r.signoff).expect("serializable"),
        stages,
        r.signoff
    )
}

#[test]
fn tracing_has_zero_observer_effect_on_signoff() {
    for faulty in [false, true] {
        for threads in [1usize, 2, 8] {
            let run = |tracer: Tracer| {
                let (netlist, process) = testcase(faulty);
                let config = FlowConfig {
                    parallelism: threads,
                    tracer,
                    ..FlowConfig::default()
                };
                signoff_bytes(&run_flow(netlist, &process, &config))
            };
            let untraced = run(Tracer::disabled());
            let traced = run(Tracer::collecting().0);
            assert_eq!(
                untraced, traced,
                "faulty={faulty} threads={threads}: tracing must not alter the signoff"
            );
        }
    }
}

#[test]
fn tracing_has_zero_observer_effect_on_incremental_flow() {
    let run = |tracer: Tracer| {
        let (netlist, process) = testcase(true);
        let config = FlowConfig {
            parallelism: 2,
            tracer,
            ..FlowConfig::default()
        };
        let mut cache = cbv_core::cache::VerifyCache::new();
        // Cold then warm: both signoffs must be tracer-independent.
        let cold = run_flow_incremental(netlist.clone(), &process, &config, &mut cache);
        let warm = run_flow_incremental(netlist, &process, &config, &mut cache);
        format!("{}##{}", signoff_bytes(&cold), signoff_bytes(&warm))
    };
    assert_eq!(run(Tracer::disabled()), run(Tracer::collecting().0));
}

fn traced_flow(threads: usize, incremental: bool) -> Trace {
    let (netlist, process) = testcase(true);
    let (tracer, collector) = Tracer::collecting();
    let config = FlowConfig {
        parallelism: threads,
        tracer,
        ..FlowConfig::default()
    };
    if incremental {
        let mut cache = cbv_core::cache::VerifyCache::new();
        run_flow_incremental(netlist, &process, &config, &mut cache);
    } else {
        run_flow(netlist, &process, &config);
    }
    collector.trace()
}

#[test]
fn counters_and_span_tree_are_deterministic_across_thread_counts() {
    for incremental in [false, true] {
        let base = traced_flow(1, incremental);
        assert!(
            !base.counters.is_empty() && !base.spans.is_empty(),
            "incremental={incremental}: the flow emits counters and spans"
        );
        for threads in [2usize, 8] {
            let t = traced_flow(threads, incremental);
            assert_eq!(
                base.counters, t.counters,
                "incremental={incremental} threads={threads}: counters must not \
                 depend on scheduling (timing-dependent quantities are gauges)"
            );
            assert_eq!(
                base.tree_signature(),
                t.tree_signature(),
                "incremental={incremental} threads={threads}: span tree shape must \
                 not depend on scheduling"
            );
        }
    }
}

/// A `Write` that appends to a shared buffer, so the test can read the
/// JSONL back out after the sink (moved into the tracer) is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().expect("buf lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn jsonl_sink_emits_the_documented_schema() {
    let buf = SharedBuf::default();
    let (netlist, process) = testcase(false);
    let config = FlowConfig {
        parallelism: 2,
        tracer: Tracer::new(JsonlSink::new(buf.clone())),
        ..FlowConfig::default()
    };
    run_flow(netlist, &process, &config);
    let bytes = buf.0.lock().expect("buf lock").clone();
    let text = String::from_utf8(bytes).expect("jsonl is utf-8");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 10, "trace has meta + spans + counters");

    // Line 1: the meta header versioning the format.
    let meta = serde_json::from_str(lines[0]).expect("meta parses");
    assert_eq!(meta.get("type").and_then(|v| v.as_str()), Some("meta"));
    assert_eq!(
        meta.get("format").and_then(|v| v.as_str()),
        Some("cbv-trace/1")
    );

    let mut span_ids = Vec::new();
    let mut parents = Vec::new();
    let mut counter_names = Vec::new();
    let mut saw_flow_span = false;
    for line in &lines[1..] {
        let v = serde_json::from_str(line).unwrap_or_else(|e| panic!("bad line {line}: {e:?}"));
        match v.get("type").and_then(|t| t.as_str()) {
            Some("span") => {
                let id = v.get("id").and_then(|x| x.as_u64()).expect("span id");
                let t0 = v.get("t0_ns").and_then(|x| x.as_u64()).expect("t0_ns");
                let t1 = v.get("t1_ns").and_then(|x| x.as_u64()).expect("t1_ns");
                let name = v.get("name").and_then(|x| x.as_str()).expect("name");
                v.get("thread").and_then(|x| x.as_u64()).expect("thread");
                assert!(t1 >= t0, "span {name} runs forward in time");
                if name == "flow" {
                    saw_flow_span = true;
                }
                // Parent is null (root) or a span id; spans are emitted
                // on close, children before parents, so a non-null
                // parent need not be *already* listed — collect and
                // check membership at the end.
                if let Some(p) = v.get("parent").and_then(|x| x.as_u64()) {
                    parents.push(p);
                }
                span_ids.push(id);
            }
            Some("counter") => {
                let name = v
                    .get("name")
                    .and_then(|x| x.as_str())
                    .expect("counter name");
                v.get("value")
                    .and_then(|x| x.as_u64())
                    .expect("counter value");
                counter_names.push(name.to_string());
            }
            Some("gauge") => {
                v.get("name").and_then(|x| x.as_str()).expect("gauge name");
                // Value is a float or null (non-finite gauges).
            }
            other => panic!("unknown record type {other:?} in line {line}"),
        }
    }
    assert!(saw_flow_span, "the root flow span is recorded");
    for p in parents {
        assert!(span_ids.contains(&p), "parent {p} is a recorded span");
    }
    assert!(
        counter_names.windows(2).all(|w| w[0] < w[1]),
        "counters flush sorted by name: {counter_names:?}"
    );
}

#[test]
fn nan_device_geometry_completes_flow_and_fails_signoff() {
    let (mut netlist, process) = testcase(false);
    // A NaN channel width poisons every derived quantity — conductance,
    // capacitance, stress ratios, delays. The flow must carry it to a
    // finding, not panic in a sort or comparison.
    netlist.device_mut(DeviceId(0)).w = f64::NAN;
    let report = run_flow(netlist, &process, &FlowConfig::default());
    assert!(
        !report.signoff.clean(),
        "a NaN-geometry design must not sign off: {}",
        report.signoff
    );
    assert!(report.signoff.violation_count() > 0);
}

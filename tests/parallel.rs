//! Determinism of the parallel execution layer: the §4.2 battery, the
//! timing-graph build and the whole flow must produce byte-identical
//! results at every worker count. The CBV methodology treats reports as
//! signoff artifacts — a report that depends on thread scheduling is a
//! report nobody can trust or diff.

use cbv_core::everify::{run_all_parallel, EverifyConfig};
use cbv_core::exec::Executor;
use cbv_core::extract::{extract, Extracted};
use cbv_core::flow::{run_flow, FlowConfig};
use cbv_core::gen::adders::manchester_domino_adder;
use cbv_core::gen::{inject, FaultKind};
use cbv_core::layout::{synthesize, Layout};
use cbv_core::netlist::FlatNetlist;
use cbv_core::recognize::{recognize, Recognition};
use cbv_core::tech::{Process, Tolerance};
use cbv_core::timing::graph::build_graph_parallel;
use cbv_core::timing::{analyze, ClockSchedule, DelayCalc, Pessimism};

/// A representative design: dynamic manchester chains, keepers, static
/// logic. `faulty` plants a leaky evaluate device so the battery has
/// real violations to order and merge.
fn testcase(faulty: bool) -> (FlatNetlist, Layout, Extracted, Recognition, Process) {
    let process = Process::strongarm_035();
    let mut g = manchester_domino_adder(8, &process);
    if faulty {
        inject(&mut g.netlist, FaultKind::LeakyDynamic).expect("inject leak");
        inject(&mut g.netlist, FaultKind::BetaSkew).expect("inject skew");
    }
    let mut netlist = g.netlist;
    let layout = synthesize(&mut netlist, &process);
    let extracted = extract(&layout, &netlist, &process);
    let recognition = recognize(&mut netlist);
    (netlist, layout, extracted, recognition, process)
}

#[test]
fn everify_battery_is_deterministic_across_thread_counts() {
    for faulty in [false, true] {
        let (netlist, layout, extracted, recognition, process) = testcase(faulty);
        let cfg = EverifyConfig::for_process(&process);
        let fingerprint = |threads: usize| {
            let (report, _busy) = run_all_parallel(
                &netlist,
                &recognition,
                &extracted,
                Some(&layout),
                &process,
                &cfg,
                &Executor::threads(threads),
            );
            format!(
                "checked={} filtered={} findings={:?}",
                report.checked_count(),
                report.filtered_count(),
                report.findings()
            )
        };
        let serial = fingerprint(1);
        for threads in [2, 8] {
            assert_eq!(
                serial,
                fingerprint(threads),
                "faulty={faulty} threads={threads}: battery must not depend on scheduling"
            );
        }
        if faulty {
            assert!(
                serial.contains("Violation"),
                "faults must surface: {serial}"
            );
        }
    }
}

#[test]
fn timing_graph_and_sta_are_deterministic_across_thread_counts() {
    let (netlist, _layout, extracted, recognition, process) = testcase(true);
    let calc = DelayCalc::new(&process, Tolerance::conservative(), Pessimism::signoff());
    let schedule = ClockSchedule::single("clk", process.f_target().period());
    let constraints = cbv_core::timing::infer_constraints(
        &netlist,
        &recognition,
        &process,
        &Pessimism::signoff(),
    );
    let (serial_graph, _) = build_graph_parallel(
        &netlist,
        &recognition,
        &extracted,
        &calc,
        &Executor::serial(),
    );
    let serial_sta = analyze(
        &netlist,
        &serial_graph,
        &constraints,
        &schedule,
        &Pessimism::signoff(),
        &[],
    );
    for threads in [2, 8] {
        let (graph, _) = build_graph_parallel(
            &netlist,
            &recognition,
            &extracted,
            &calc,
            &Executor::threads(threads),
        );
        assert_eq!(
            serial_graph.arcs, graph.arcs,
            "arc list must be identical at {threads} threads"
        );
        let sta = analyze(
            &netlist,
            &graph,
            &constraints,
            &schedule,
            &Pessimism::signoff(),
            &[],
        );
        assert_eq!(
            format!("{serial_sta:?}"),
            format!("{sta:?}"),
            "STA result must be identical at {threads} threads"
        );
    }
}

#[test]
fn full_flow_report_is_byte_identical_across_thread_counts() {
    for faulty in [false, true] {
        let fingerprint = |threads: usize| {
            let process = Process::strongarm_035();
            let mut g = manchester_domino_adder(8, &process);
            if faulty {
                inject(&mut g.netlist, FaultKind::LeakyDynamic).expect("inject leak");
            }
            let config = FlowConfig {
                parallelism: threads,
                ..FlowConfig::default()
            };
            let r = run_flow(g.netlist, &process, &config);
            let stages: Vec<_> = r.stages.iter().map(|s| (s.stage, s.artifacts)).collect();
            format!(
                "{}|{:?}|{}",
                serde_json::to_string(&r.signoff).expect("serializable"),
                stages,
                r.signoff
            )
        };
        let serial = fingerprint(1);
        let parallel = fingerprint(8);
        assert_eq!(
            serial, parallel,
            "faulty={faulty}: flow signoff must be byte-identical at 1 and 8 threads"
        );
    }
}

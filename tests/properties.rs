//! Property-based tests on the toolkit's core invariants.

use cbv_core::bdd::Bdd;
use cbv_core::netlist::spice;
use cbv_core::netlist::{partition_cccs, Device, FlatNetlist, NetKind};
use cbv_core::rtl::{blast::blast, compile, interp::Interp};
use cbv_core::tech::{MosKind, Process};
use cbv_core::views::partition_overlap;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// The word-level interpreter and the bit-blasted network are two
    /// independent implementations of the HDL semantics; they must agree
    /// on arbitrary arithmetic expressions under random inputs.
    #[test]
    fn interp_matches_blast_on_random_exprs(
        ops in proptest::collection::vec(0u8..6, 1..6),
        inputs in proptest::collection::vec(any::<u64>(), 8),
        widths in proptest::collection::vec(2u32..12, 3),
    ) {
        // Build an expression chain over three inputs.
        let (wa, wb, wc) = (widths[0], widths[1], widths[2]);
        let mut expr = String::from("a");
        for (i, op) in ops.iter().enumerate() {
            let operand = match i % 3 { 0 => "b", 1 => "c", _ => "a" };
            let o = match op { 0 => "+", 1 => "-", 2 => "&", 3 => "|", 4 => "^", _ => "+" };
            expr = format!("({expr} {o} {operand})");
        }
        let src = format!(
            "module m(in a[{wa}], in b[{wb}], in c[{wc}], out y[16]) {{ assign y = {expr}; }}"
        );
        let design = compile(&src, "m").expect("generated module compiles");
        let net = blast(&design).expect("blasts");
        let mut sim = Interp::new(&design);
        let mut states = net.initial_states();
        for chunk in inputs.chunks(3) {
            let a = chunk[0] & ((1 << wa) - 1);
            let b = chunk.get(1).copied().unwrap_or(0) & ((1 << wb) - 1);
            let c = chunk.get(2).copied().unwrap_or(0) & ((1 << wc) - 1);
            sim.set_input("a", a);
            sim.set_input("b", b);
            sim.set_input("c", c);
            let mut bits = Vec::new();
            for (v, w) in [(a, wa), (b, wb), (c, wc)] {
                for i in 0..w {
                    bits.push((v >> i) & 1 == 1);
                }
            }
            let values = net.eval(&bits, &states);
            let blasted: u64 = net
                .output("y")
                .expect("y exists")
                .iter()
                .enumerate()
                .map(|(i, b)| (values[b.index()] as u64) << i)
                .sum();
            prop_assert_eq!(sim.output("y"), blasted);
            states = net.next_states(&values, &states, 0);
        }
    }

    /// BDD operations are canonical: any random expression built two
    /// different ways (directly vs via De Morgan'd form) yields the same
    /// node, and eval agrees with direct computation.
    #[test]
    fn bdd_canonicity_and_eval(terms in proptest::collection::vec((0u32..6, 0u32..6, any::<bool>()), 1..12), assignment in proptest::collection::vec(any::<bool>(), 6)) {
        let mut m = Bdd::new();
        let mut f = m.constant(false);
        for &(x, y, conj) in &terms {
            let vx = m.var(x);
            let vy = m.var(y);
            let t = if conj { m.and(vx, vy) } else { m.or(vx, vy) };
            f = m.xor(f, t);
        }
        // De Morgan rebuild: a&b = !(!a|!b), a|b = !(!a&!b).
        let mut g = m.constant(false);
        for &(x, y, conj) in &terms {
            let vx = m.var(x);
            let vy = m.var(y);
            let nx = m.not(vx);
            let ny = m.not(vy);
            let inner = if conj { m.or(nx, ny) } else { m.and(nx, ny) };
            let t = m.not(inner);
            g = m.xor(g, t);
        }
        prop_assert_eq!(f, g, "canonical forms must coincide");
        // Eval agrees with direct semantics.
        let asn: HashMap<u32, bool> = assignment.iter().copied().enumerate().map(|(i, b)| (i as u32, b)).collect();
        let direct = terms.iter().fold(false, |acc, &(x, y, conj)| {
            let (vx, vy) = (assignment[x as usize], assignment[y as usize]);
            acc ^ if conj { vx && vy } else { vx || vy }
        });
        prop_assert_eq!(m.eval(f, &asn), direct);
    }

    /// CCC partitioning is a partition: every device appears in exactly
    /// one component, regardless of netlist shape.
    #[test]
    fn ccc_partition_covers_devices(edges in proptest::collection::vec((0u32..12, 0u32..12, 0u32..12, any::<bool>()), 1..40)) {
        let mut f = FlatNetlist::new("rand");
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        let nets: Vec<_> = (0..12).map(|i| f.add_net(&format!("n{i}"), NetKind::Signal)).collect();
        for (i, &(g, s, d, is_n)) in edges.iter().enumerate() {
            let kind = if is_n { MosKind::Nmos } else { MosKind::Pmos };
            let bulk = if is_n { gnd } else { vdd };
            f.add_device(Device::mos(
                kind,
                format!("m{i}"),
                nets[g as usize],
                nets[s as usize],
                nets[d as usize],
                bulk,
                1e-6,
                0.35e-6,
            ));
        }
        let n_devices = f.devices().len();
        let (cccs, map) = partition_cccs(&mut f);
        prop_assert_eq!(map.len(), n_devices);
        let total: usize = cccs.iter().map(|c| c.devices.len()).sum();
        prop_assert_eq!(total, n_devices, "every device in exactly one ccc");
        for (i, &cid) in map.iter().enumerate() {
            prop_assert!(cccs[cid.index()].devices.contains(&cbv_core::netlist::DeviceId(i as u32)));
        }
    }

    /// Hierarchy overlap metrics are bounded and exact for identical
    /// partitions.
    #[test]
    fn overlap_metric_bounds(labels_a in proptest::collection::vec(0u32..5, 1..60), shuffle in any::<bool>()) {
        let labels_b: Vec<u32> = if shuffle {
            labels_a.iter().map(|&x| (x + 1) % 5).collect()
        } else {
            labels_a.clone()
        };
        let s = partition_overlap(&labels_a, &labels_b);
        prop_assert!(s.mean_best_jaccard > 0.0 && s.mean_best_jaccard <= 1.0);
        prop_assert!(s.crossing_elements <= s.total_elements);
        if !shuffle {
            prop_assert_eq!(s.mean_best_jaccard, 1.0);
            prop_assert_eq!(s.crossing_elements, 0);
        } else {
            // A pure relabeling is still a perfect correspondence.
            prop_assert_eq!(s.mean_best_jaccard, 1.0);
        }
    }

    /// The switch-level simulator computes correct sums on the generated
    /// ripple adder for arbitrary inputs.
    #[test]
    fn switch_level_adder_random(a in 0u64..16, b in 0u64..16, cin in 0u64..2) {
        use cbv_core::sim::{Logic, SwitchSim};
        let p = Process::strongarm_035();
        let g = cbv_core::gen::adders::static_ripple_adder(4, &p);
        let mut sim = SwitchSim::new(&g.netlist);
        for i in 0..4 {
            sim.set(g.inputs[i], Logic::from_bool((a >> i) & 1 == 1));
            sim.set(g.inputs[4 + i], Logic::from_bool((b >> i) & 1 == 1));
        }
        sim.set(g.inputs[8], Logic::from_bool(cin == 1));
        sim.settle().expect("stable");
        let mut got = 0u64;
        for (i, &n) in g.outputs.iter().enumerate() {
            match sim.value(n) {
                Logic::One => got |= 1 << i,
                Logic::Zero => {}
                Logic::X => prop_assert!(false, "X on output {i}"),
            }
        }
        prop_assert_eq!(got, a + b + cin);
    }
}

proptest! {
    /// SPICE write → parse round-trips arbitrary random netlists with
    /// identical device population and connectivity degree profile.
    #[test]
    fn spice_round_trip_random_netlists(devices in proptest::collection::vec((0u32..10, 0u32..10, 0u32..10, any::<bool>(), 1u64..60, 1u64..4), 1..30)) {
        let mut lib = cbv_core::netlist::Library::new();
        let mut cell = cbv_core::netlist::Cell::new("rand");
        let vdd = cell.add_net("vdd", NetKind::Power);
        let gnd = cell.add_net("gnd", NetKind::Ground);
        let nets: Vec<_> = (0..10)
            .map(|i| cell.add_net(format!("n{i}"), NetKind::Signal))
            .collect();
        for (i, &(g, s, d, is_n, w, l)) in devices.iter().enumerate() {
            let kind = if is_n { MosKind::Nmos } else { MosKind::Pmos };
            let bulk = if is_n { gnd } else { vdd };
            cell.add_device(Device::mos(
                kind,
                format!("m{i}"),
                nets[g as usize],
                nets[s as usize],
                nets[d as usize],
                bulk,
                w as f64 * 1e-7,
                l as f64 * 0.35e-6,
            ));
        }
        let top = lib.add_cell(cell).expect("adds");
        let text = spice::write(&lib);
        let lib2 = spice::parse(&text).expect("parses back");
        let f1 = lib.flatten(top).expect("flattens");
        let f2 = lib2
            .flatten(lib2.find_cell("rand").expect("cell"))
            .expect("flattens");
        prop_assert_eq!(f1.devices().len(), f2.devices().len());
        for (a, b) in f1.devices().iter().zip(f2.devices()) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert!((a.w - b.w).abs() < 1e-12);
            prop_assert!((a.l - b.l).abs() < 1e-12);
        }
    }

    /// Elmore delay on a uniform line is monotone in position and total
    /// RC, and the far-end delay approaches RC/2 with refinement.
    #[test]
    fn elmore_line_properties(segments in 2usize..40, r in 10.0f64..10_000.0, c in 1e-15f64..1e-11) {
        use cbv_core::extract::{RcNet, RcNodeId};
        use cbv_core::netlist::NetId;
        use cbv_core::tech::{Farads, Ohms};
        let rc = RcNet::line(NetId(0), segments, Ohms::new(r), Farads::new(c));
        let mut prev = -1.0f64;
        for i in 1..=segments {
            let t = rc
                .elmore(rc.first_node(), RcNodeId(i as u32), Ohms::new(50.0))
                .expect("connected");
            prop_assert!(t.seconds() > prev, "monotone along the line");
            prev = t.seconds();
        }
        // Far-end delay bounded by the lumped product plus source term.
        let lumped = 50.0 * c + r * c;
        prop_assert!(prev <= lumped * 1.001);
        prop_assert!(prev >= 50.0 * c + 0.4 * r * c);
    }

    /// Two-phase clocking: a shift pipeline whose stages commit on a
    /// random mix of rising and falling edges of one clock must behave
    /// identically in the word-level interpreter and the event-driven
    /// gate-level simulator, and must match an independently written
    /// reference model of the two-phase non-blocking semantics.
    #[test]
    fn two_phase_pipeline_cross_engine(
        edges in proptest::collection::vec(any::<bool>(), 1..6),
        stimulus in proptest::collection::vec(0u64..16, 12),
    ) {
        use cbv_core::sim::GateSim;
        // Build the HDL: one pos block and one neg block, stages chained.
        let k = edges.len();
        let mut decls = String::new();
        let mut pos = String::new();
        let mut neg = String::new();
        for (i, is_pos) in edges.iter().enumerate() {
            decls.push_str(&format!("reg r{i}[4]; "));
            let src = if i == 0 { "d".to_owned() } else { format!("r{}", i - 1) };
            let stmt = format!("r{i} <= {src}; ");
            if *is_pos { pos.push_str(&stmt) } else { neg.push_str(&stmt) }
        }
        let mut blocks = String::new();
        if !pos.is_empty() { blocks.push_str(&format!("at posedge(ck) {{ {pos}}} ")); }
        if !neg.is_empty() { blocks.push_str(&format!("at negedge(ck) {{ {neg}}} ")); }
        let src = format!(
            "module m(clock ck, in d[4], out q[4]) {{ {decls}{blocks}assign q = r{}; }}",
            k - 1
        );
        let design = compile(&src, "m").unwrap();
        let net = blast(&design).unwrap();
        let mut isim = Interp::new(&design);
        let mut gsim = GateSim::new(&net);
        // Independent reference: all pos stages sample pre-edge values
        // simultaneously, then all neg stages sample post-pos values.
        let mut model = vec![0u64; k];
        for (cycle, &d) in stimulus.iter().enumerate() {
            isim.set_input("d", d);
            for b in 0..4 {
                gsim.set_input_by_name(&format!("d[{b}]"), (d >> b) & 1 == 1);
            }
            let pre = model.clone();
            for i in 0..k {
                if edges[i] {
                    model[i] = if i == 0 { d } else { pre[i - 1] };
                }
            }
            let mid = model.clone();
            for i in 0..k {
                if !edges[i] {
                    model[i] = if i == 0 { d } else { mid[i - 1] };
                }
            }
            isim.step("ck");
            gsim.step(0);
            prop_assert_eq!(isim.output("q"), model[k - 1], "interp vs model, cycle {}", cycle);
            prop_assert_eq!(gsim.output("q"), model[k - 1], "gatesim vs model, cycle {}", cycle);
        }
    }
}

proptest! {
    /// Any single-device size or connectivity edit must dirty the owning
    /// CCC's content fingerprint (and the whole-design residue unit) —
    /// the soundness floor of the incremental verification cache: a
    /// changed device can never hit a stale cached result.
    #[test]
    fn device_edit_dirties_owning_ccc_fingerprint(
        bits in 2u32..4,
        dev_sel in any::<u64>(),
        edit_kind in 0u8..4,
    ) {
        use cbv_core::cache::fingerprint_design;
        use cbv_core::extract::Extracted;
        use cbv_core::recognize::recognize;

        let p = Process::strongarm_035();
        let mut base = cbv_core::gen::adders::static_ripple_adder(bits, &p).netlist;
        let mut edited = base.clone();
        let rec = recognize(&mut base);
        let before = fingerprint_design(&base, &rec, &Extracted::default());

        let d = cbv_core::netlist::DeviceId((dev_sel % base.devices().len() as u64) as u32);
        let owner = rec.device_ccc[d.index()].index();
        match edit_kind {
            0 => edited.device_mut(d).w *= 1.5,
            1 => edited.device_mut(d).l *= 2.0,
            2 => edited.device_mut(d).fingers += 1,
            _ => {
                // Connectivity edit: rewire the gate to some other
                // device's (different) gate net. Channel connectivity is
                // untouched, so the CCC partition — and the owner index —
                // is identical in both builds.
                let current = edited.device(d).gate;
                let other = edited
                    .devices()
                    .iter()
                    .map(|dd| dd.gate)
                    .find(|&g| g != current)
                    .expect("adder has more than one distinct gate net");
                edited.device_mut(d).gate = other;
            }
        }
        let rec2 = recognize(&mut edited);
        prop_assert_eq!(rec.cccs.len(), rec2.cccs.len(), "partition is stable");
        let after = fingerprint_design(&edited, &rec2, &Extracted::default());

        prop_assert!(
            before.units[owner].content != after.units[owner].content,
            "edit kind {} on device {:?} must dirty owning CCC {}",
            edit_kind, d, owner
        );
        prop_assert!(
            before.residue().content != after.residue().content,
            "any edit must dirty the whole-design residue unit"
        );
    }

    /// Content fingerprints are id-invariant: building the same design
    /// with nets and devices declared in a different order changes every
    /// id, but the multiset of per-unit content hashes must not move.
    #[test]
    fn fingerprints_invariant_under_declaration_order(
        stages in 2u32..7,
        widths in proptest::collection::vec(1.0f64..8.0, 8),
        keys in proptest::collection::vec(any::<u64>(), 8),
    ) {
        use cbv_core::cache::fingerprint_design;
        use cbv_core::extract::Extracted;
        use cbv_core::recognize::recognize;
        use cbv_core::netlist::NetId;

        let k = stages as usize;
        // An inverter chain a -> n1 -> ... -> y, built twice: once in
        // natural order, once with nets and devices declared in an
        // argsort-of-random-keys permutation.
        let build = |order: &[usize]| -> FlatNetlist {
            let mut f = FlatNetlist::new("chain");
            let mut net_of = vec![NetId(u32::MAX); k + 1];
            let mut rails = (NetId(0), NetId(0));
            // Interleave rail/net creation according to the permutation
            // so net ids genuinely differ between the two builds.
            rails.0 = f.add_net("vdd", NetKind::Power);
            for &i in order {
                let name = if i == 0 {
                    "a".to_string()
                } else if i == k {
                    "y".to_string()
                } else {
                    format!("n{i}")
                };
                let kind = if i == 0 {
                    NetKind::Input
                } else if i == k {
                    NetKind::Output
                } else {
                    NetKind::Signal
                };
                net_of[i] = f.add_net(&name, kind);
            }
            rails.1 = f.add_net("gnd", NetKind::Ground);
            for &i in order.iter().filter(|&&i| i < k) {
                let w = widths[i % widths.len()] * 1e-6;
                f.add_device(Device::mos(
                    MosKind::Pmos,
                    format!("p{i}"),
                    net_of[i],
                    net_of[i + 1],
                    rails.0,
                    rails.0,
                    2.0 * w,
                    0.35e-6,
                ));
                f.add_device(Device::mos(
                    MosKind::Nmos,
                    format!("n{i}d"),
                    net_of[i],
                    net_of[i + 1],
                    rails.1,
                    rails.1,
                    w,
                    0.35e-6,
                ));
            }
            f
        };

        let natural: Vec<usize> = (0..=k).collect();
        let mut permuted = natural.clone();
        permuted.sort_by_key(|&i| keys[i % keys.len()].wrapping_add(i as u64));

        let mut a = build(&natural);
        let mut b = build(&permuted);
        let ra = recognize(&mut a);
        let rb = recognize(&mut b);
        let fa = fingerprint_design(&a, &ra, &Extracted::default());
        let fb = fingerprint_design(&b, &rb, &Extracted::default());

        let sorted = |f: &cbv_core::cache::DesignFingerprints| {
            let mut v: Vec<u64> = f.units.iter().map(|u| u.content).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(sorted(&fa), sorted(&fb), "content is declaration-order-free");
        prop_assert_eq!(fa.residue().content, fb.residue().content);
    }
}

proptest! {
    /// A sizing mutation (the electrical-class operators of E16) dirties
    /// *exactly* the owning CCC's content fingerprint plus the
    /// whole-design residue — no more, no less. This is what makes
    /// campaign mutants cheap: the incremental flow re-verifies only the
    /// dirty closure around one component.
    #[test]
    fn sizing_mutation_dirties_exactly_the_owning_ccc(
        bits in 2u32..4,
        dev_sel in any::<u64>(),
        op_kind in 0u8..5,
        factor in 1.1f64..4.0,
    ) {
        use cbv_core::cache::fingerprint_design;
        use cbv_core::extract::Extracted;
        use cbv_core::mutate::{apply, MutationOp, Site};
        use cbv_core::recognize::recognize;

        let p = Process::strongarm_035();
        let mut base = cbv_core::gen::adders::static_ripple_adder(bits, &p).netlist;
        let rec = recognize(&mut base);
        let before = fingerprint_design(&base, &rec, &Extracted::default());

        let d = cbv_core::netlist::DeviceId((dev_sel % base.devices().len() as u64) as u32);
        let owner = rec.device_ccc[d.index()].index();
        let op = match op_kind {
            0 => MutationOp::WidthScale { factor },
            1 => MutationOp::WidthScale { factor: 1.0 / factor },
            2 => MutationOp::LengthScale { factor: 1.0 / factor },
            3 => MutationOp::BetaSkew { factor },
            _ => MutationOp::KeeperResize { w_factor: factor, l_factor: 0.5 },
        };

        let mut work = base.clone();
        let m = apply(&mut work, &op, Site::Device(d)).expect("device site applies");
        let rec1 = recognize(&mut work);
        prop_assert_eq!(rec.cccs.len(), rec1.cccs.len(), "sizing keeps the partition");
        let after = fingerprint_design(&work, &rec1, &Extracted::default());

        let residue = before.units.len() - 1;
        for i in 0..before.units.len() {
            let changed = before.units[i].content != after.units[i].content;
            if i == owner || i == residue {
                prop_assert!(changed, "{op} on {d:?} must dirty unit {i} (owner {owner})");
            } else if rec.roles == rec1.roles {
                // A pure sizing edit that moves no recognition role must
                // stay contained. (When resizing flips a role — a shrunk
                // device starts reading as a weak keeper, say — the role
                // is part of the neighbours' content by design, so their
                // fingerprints legitimately move too.)
                prop_assert!(!changed, "{op} on {d:?} must NOT dirty unit {i} (owner {owner})");
            }
        }

        // Un-applying restores every fingerprint bit-exactly.
        m.revert(&mut work);
        let rec2 = recognize(&mut work);
        let restored = fingerprint_design(&work, &rec2, &Extracted::default());
        for i in 0..before.units.len() {
            prop_assert_eq!(before.units[i].content, restored.units[i].content);
            prop_assert_eq!(before.units[i].binding, restored.units[i].binding);
        }
    }

    /// Every E16 operator — including the structural ones that add or
    /// rewire devices and nets — round-trips: apply then revert restores
    /// every content *and* binding fingerprint of the design.
    #[test]
    fn every_mutation_operator_round_trips_fingerprints(
        op_sel in 0usize..11,
        site_sel in any::<u64>(),
    ) {
        use cbv_core::cache::fingerprint_design;
        use cbv_core::extract::Extracted;
        use cbv_core::mutate::{apply, default_ops, sites};
        use cbv_core::recognize::recognize;

        let p = Process::strongarm_035();
        // The domino cell has keepers, precharges and clocked devices, so
        // every operator class enumerates at least one site (except
        // clock-phase-swap when the cell has a single clock — skipped).
        let mut base = cbv_core::gen::latches::keeper_domino(&p, 1e-6).netlist;
        let rec = recognize(&mut base);
        let before = fingerprint_design(&base, &rec, &Extracted::default());

        let op = default_ops()[op_sel];
        let ss = sites(&op, &base, &rec);
        if ss.is_empty() {
            // clock-phase-swap on a single-clock cell: nothing to test.
            continue;
        }
        let site = ss[(site_sel % ss.len() as u64) as usize];

        // Mutate a pristine clone; fingerprint the mutant on a *separate*
        // clone so recognize's in-place net promotion never leaks into
        // the netlist we revert.
        let mut work = base.clone();
        let m = apply(&mut work, &op, site).expect("enumerated site applies");
        let mut mutant_view = work.clone();
        let rec1 = recognize(&mut mutant_view);
        let after = fingerprint_design(&mutant_view, &rec1, &Extracted::default());
        prop_assert!(
            before.residue().content != after.residue().content,
            "{op} must dirty the residue"
        );

        m.revert(&mut work);
        let rec2 = recognize(&mut work);
        let restored = fingerprint_design(&work, &rec2, &Extracted::default());
        prop_assert_eq!(before.units.len(), restored.units.len());
        for i in 0..before.units.len() {
            prop_assert_eq!(
                before.units[i].content, restored.units[i].content,
                "{} at {:?}: unit {} content must restore", op, site, i
            );
            prop_assert_eq!(
                before.units[i].binding, restored.units[i].binding,
                "{} at {:?}: unit {} binding must restore", op, site, i
            );
        }
    }
}

proptest! {
    /// One packed 64-lane run of the compiled engine equals 64
    /// independent word-level interpreter runs: bit `l` of every plane
    /// is its own simulation, and no state may leak between lanes even
    /// through two-phase clocking.
    #[test]
    fn packed_lanes_equal_64_independent_interp_runs(
        seed in any::<u64>(),
        cycles in 1usize..20,
    ) {
        use cbv_core::csim::{compile as csim_compile, CSim, LANES};

        let src = "module m(clock ck, in op[2], in d[8], out acc[8], out z) {\n\
                     reg r[8] = 3;\n\
                     at posedge(ck) {\n\
                       if (op == 0) { r <= r + d; }\n\
                       else if (op == 1) { r <= r ^ d; }\n\
                       else if (op == 2) { r <= r & d; }\n\
                       else { r <= d; }\n\
                     }\n\
                     at negedge(ck) { }\n\
                     assign acc = r;\n\
                     assign z = r == 0;\n\
                   }";
        let design = compile(src, "m").expect("compiles");
        let net = blast(&design).expect("blasts");
        let mut csim = CSim::new(csim_compile(&net).expect("acyclic"));
        let mut interps: Vec<Interp> = (0..LANES).map(|_| Interp::new(&design)).collect();

        let mut rng = seed;
        let mut next = move || {
            rng = rng.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for cycle in 0..cycles {
            for (lane, interp) in interps.iter_mut().enumerate() {
                let r = next();
                let (op, d) = (r & 3, (r >> 2) & 0xFF);
                interp.set_input("op", op);
                interp.set_input("d", d);
                csim.set_input(lane, "op", op);
                csim.set_input(lane, "d", d);
            }
            for (lane, interp) in interps.iter_mut().enumerate() {
                prop_assert_eq!(csim.output(lane, "acc"), interp.output("acc"),
                    "acc lane {} cycle {}", lane, cycle);
                prop_assert_eq!(csim.output(lane, "z"), interp.output("z"),
                    "z lane {} cycle {}", lane, cycle);
            }
            csim.step("ck");
            for interp in &mut interps {
                interp.step("ck");
            }
        }
    }
}

/// Compiling the same design twice — from scratch, through separate
/// blasts — yields byte-identical programs: the compiler has no hidden
/// iteration-order or allocation nondeterminism. (This is what makes
/// compiled programs cacheable by content hash.)
#[test]
fn recompilation_is_byte_identical() {
    use cbv_core::csim::compile as csim_compile;
    use cbv_core::gen::rtl_designs::rtl_design_registry;

    for spec in rtl_design_registry() {
        let d1 = compile(&spec.source, spec.top).expect("compiles");
        let d2 = compile(&spec.source, spec.top).expect("compiles");
        let p1 = csim_compile(&blast(&d1).expect("blasts")).expect("acyclic");
        let p2 = csim_compile(&blast(&d2).expect("blasts")).expect("acyclic");
        let bytes = p1.encode();
        assert_eq!(bytes, p2.encode(), "{}: recompile differs", spec.name);
        assert_eq!(&bytes[..8], b"CBVCSIM1", "{}: magic", spec.name);
    }
}

//! E16 regression: the mutation campaign's detection matrix is a
//! deterministic artifact — byte-identical across thread counts and
//! across the cold/incremental oracles — and the campaign actually
//! catches what the §4.2 battery promises to catch.

use cbv_core::flow::FlowConfig;
use cbv_core::gen::adders::manchester_domino_adder;
use cbv_core::gen::datapath::alu_slice;
use cbv_core::mutate::report::render_matrix;
use cbv_core::mutate::{default_ops, run_campaign, CampaignConfig, CampaignReport};
use cbv_core::oracle::{ColdOracle, IncrementalOracle};
use cbv_core::tech::Process;

fn config(cap: usize) -> CampaignConfig {
    CampaignConfig {
        ops: default_ops(),
        max_sites_per_op: cap,
        sensitivity: Vec::new(),
    }
}

fn flow_config(parallelism: usize) -> FlowConfig {
    // Explicit thread count: the env-var path (`CBV_THREADS`) is covered
    // by check.sh in separate processes; inside one test binary the
    // field avoids races between parallel tests.
    FlowConfig {
        parallelism,
        ..FlowConfig::default()
    }
}

fn incremental_matrix(
    netlist: &cbv_core::netlist::FlatNetlist,
    parallelism: usize,
    cap: usize,
) -> (CampaignReport, String) {
    let p = Process::strongarm_035();
    let mut oracle = IncrementalOracle::new(&p, flow_config(parallelism));
    let report = run_campaign(netlist, &mut oracle, &config(cap));
    let text = render_matrix(&report);
    (report, text)
}

#[test]
fn alu16_matrix_is_thread_count_and_oracle_invariant() {
    let p = Process::strongarm_035();
    let design = alu_slice(16, &p).netlist;

    let (report, t1) = incremental_matrix(&design, 1, 2);
    let (_, t2) = incremental_matrix(&design, 2, 2);
    let (_, t8) = incremental_matrix(&design, 8, 2);
    assert_eq!(t1, t2, "1 vs 2 threads");
    assert_eq!(t1, t8, "1 vs 8 threads");

    // Every operator contributes a row. The static ALU slice has no
    // domino keepers or precharges (its latches are jam style), so only
    // the dynamic-logic operators may report zero sites here — the
    // Manchester domino adder test covers those.
    assert_eq!(report.rows.len(), default_ops().len());
    let dynamic_only = ["keeper-resize", "keeper-delete", "precharge-drop"];
    for row in &report.rows {
        if dynamic_only.contains(&row.op.name()) {
            continue;
        }
        assert!(
            row.sites_found > 0,
            "{} found no site on alu_slice(16)",
            row.op
        );
    }
    // The legacy E12 hazard classes (all expressible as default ops)
    // are detected by the battery on this design.
    for (i, name) in [
        (0usize, "width-scale x12 (leaky/beta class)"),
        (2, "length-scale x0.6 (sub-min length)"),
        (3, "beta-skew x12"),
    ] {
        let row = &report.rows[i];
        assert!(row.detected > 0, "{name} never detected: {}", row.op);
    }
}

#[test]
fn alu16_matrix_matches_cold_oracle() {
    let p = Process::strongarm_035();
    let design = alu_slice(16, &p).netlist;
    let (_, inc) = incremental_matrix(&design, 2, 1);
    let mut cold = ColdOracle::new(&p, flow_config(2));
    let cold_report = run_campaign(&design, &mut cold, &config(1));
    assert_eq!(
        inc,
        render_matrix(&cold_report),
        "caching must never change a verdict"
    );
}

#[test]
fn manchester32_matrix_is_thread_count_and_oracle_invariant() {
    let p = Process::strongarm_035();
    let design = manchester_domino_adder(32, &p).netlist;

    let (report, t1) = incremental_matrix(&design, 1, 1);
    let (_, t8) = incremental_matrix(&design, 8, 1);
    assert_eq!(t1, t8, "1 vs 8 threads");

    let mut cold = ColdOracle::new(&p, flow_config(8));
    let cold_report = run_campaign(&design, &mut cold, &config(1));
    assert_eq!(t1, render_matrix(&cold_report), "cold vs incremental");

    // A domino design exercises the dynamic-logic operators: both must
    // have sites and zero escapes.
    for row in &report.rows {
        let op = row.op.name();
        if op == "precharge-drop" || op == "keeper-delete" {
            assert!(row.sites_found > 0, "{op} has sites on a domino adder");
            assert!(
                row.escapes.is_empty(),
                "{op} must be fully detected, escapes: {:?}",
                row.escapes
            );
        }
    }
}

#[test]
fn campaign_runs_mutants_as_ecos_on_the_primed_cache() {
    let p = Process::strongarm_035();
    let design = alu_slice(16, &p).netlist;
    let (report, _) = incremental_matrix(&design, 2, 1);
    assert_eq!(report.baseline.cache_hits, 0, "baseline run is cold");
    // Single-site geometry mutants dirty one CCC (+ fanout + residue);
    // everything else replays from cache.
    let geometry: Vec<_> = report
        .mutants
        .iter()
        .filter(|m| m.op.magnitude().is_some())
        .collect();
    assert!(!geometry.is_empty());
    for m in &geometry {
        assert!(
            m.cache_hits > m.cache_misses,
            "ECO verification must reuse most units: {} ({} hits / {} misses)",
            m.description,
            m.cache_hits,
            m.cache_misses
        );
    }
    // JSON rendering stays parseable at campaign scale.
    let json = serde_json::to_string(&report).unwrap();
    let v = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(
        v.get("total_mutants").and_then(|x| x.as_u64()),
        Some(report.total_mutants() as u64)
    );
}

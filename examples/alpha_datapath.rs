//! An ALPHA-style mixed-family datapath under the full verification
//! battery: a two-phase-clocked accumulator slice (static CMOS + latches)
//! next to a domino Manchester carry chain and a DCVSL comparator — the
//! §2 logic-family mix the methodology exists to verify.
//!
//! ```sh
//! cargo run --example alpha_datapath
//! ```

use cbv_core::flow::{run_flow, FlowConfig};
use cbv_core::gen::adders::manchester_domino_adder;
use cbv_core::gen::datapath::alu_slice;
use cbv_core::gen::dcvsl::dcvsl_and2;
use cbv_core::recognize::LogicFamily;
use cbv_core::tech::Process;

fn main() {
    let process = Process::alpha_21264();
    println!(
        "process: {} ({} MHz target)\n",
        process.name(),
        process.f_target().hertz() / 1e6
    );

    for (title, design) in [
        (
            "two-phase ALU slice (static + latches)",
            alu_slice(8, &process),
        ),
        (
            "domino Manchester carry chain",
            manchester_domino_adder(8, &process),
        ),
        ("DCVSL comparator stage", dcvsl_and2(&process)),
    ] {
        println!("=== {title} ===");
        println!(
            "  {} transistors, {} nets",
            design.netlist.devices().len(),
            design.netlist.net_count()
        );
        let report = run_flow(design.netlist, &process, &FlowConfig::default());

        // Logic-family census — what recognition deduced with no library.
        let mut census = std::collections::HashMap::new();
        for class in &report.recognition.classes {
            let name = match class.family {
                LogicFamily::StaticComplementary => "static",
                LogicFamily::Ratioed => "ratioed",
                LogicFamily::Dynamic { .. } => "dynamic",
                LogicFamily::Dcvsl => "dcvsl",
                LogicFamily::PassTransistor => "pass",
                LogicFamily::Unknown => "unknown",
            };
            *census.entry(name).or_insert(0usize) += 1;
        }
        let mut rows: Vec<_> = census.into_iter().collect();
        rows.sort();
        print!("  families:");
        for (name, n) in rows {
            print!(" {name}={n}");
        }
        println!(
            "\n  clocks inferred: {}, state elements: {}, dynamic nodes: {}",
            report.recognition.clock_nets.len(),
            report.recognition.state_elements.len(),
            report.recognition.dynamic_nets().len()
        );
        println!("{}", report.signoff);
        if !report.signoff.clean() {
            println!(
                "  (the battery is doing its job: a ripple-carry accumulator\n                    cannot close timing at the 21264's 600 MHz target, and its\n                    switched capacitance at that frequency trips the EM budget —\n                    the designer reads these reports and restructures, which is\n                    precisely the §4 feedback loop)\n"
            );
        }
    }
}

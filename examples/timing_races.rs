//! §4.3: critical paths, race paths, and the correlated-vs-uncorrelated
//! min/max analysis on a two-phase datapath, plus node-by-node clock RC.
//!
//! ```sh
//! cargo run --example timing_races
//! ```

use cbv_core::extract::extract;
use cbv_core::gen::clocktree::clock_trunk;
use cbv_core::gen::datapath::alu_slice;
use cbv_core::layout::synthesize;
use cbv_core::recognize::recognize;
use cbv_core::tech::units::nanoseconds;
use cbv_core::tech::{Ohms, Process, Tolerance};
use cbv_core::timing::{
    analyze, clock_skew_bounds, graph::build_graph, infer_constraints, ClockSchedule, DelayCalc,
    Pessimism, ViolationKind,
};

fn main() {
    let process = Process::alpha_21264();
    println!("process: {}\n", process.name());

    // Build a two-phase datapath and run timing at several cycle times.
    let design = alu_slice(8, &process);
    let mut netlist = design.netlist;
    let recognition = recognize(&mut netlist);
    let layout = synthesize(&mut netlist, &process);
    let extracted = extract(&layout, &netlist, &process);

    println!(
        "inferred {} clock nets, {} state elements",
        recognition.clock_nets.len(),
        recognition.state_elements.len()
    );

    for period_ns in [60.0, 40.0, 20.0, 8.0] {
        let pessimism = Pessimism::signoff();
        let calc = DelayCalc::new(&process, Tolerance::conservative(), pessimism);
        let graph = build_graph(&netlist, &recognition, &extracted, &calc);
        let constraints = infer_constraints(&netlist, &recognition, &process, &pessimism);
        let schedule = ClockSchedule::two_phase(
            "phi1",
            "phi2",
            nanoseconds(period_ns),
            nanoseconds(period_ns * 0.05),
        );
        let report = analyze(&netlist, &graph, &constraints, &schedule, &pessimism, &[]);
        let setups = report.of_kind(ViolationKind::Setup).count();
        let races = report.of_kind(ViolationKind::Race).count();
        println!(
            "  period {period_ns:>4.1} ns: {} arcs, {} constraints, {setups} setup violations, {races} races",
            graph.arcs.len(),
            constraints.len()
        );
        if let Some(worst) = report.worst_setup_slack() {
            if worst.seconds() < 0.0 {
                println!("      worst setup slack {:.0} ps", worst.seconds() * 1e12);
            }
        }
        let first_setup = report.of_kind(ViolationKind::Setup).next().cloned();
        if let Some(v) = first_setup {
            let names: Vec<&str> = v.path.iter().map(|s| netlist.net_name(s.net)).collect();
            println!("      critical path: {}", names.join(" -> "));
        }
    }

    // What frequency does the design actually support? Binary-search the
    // minimum clean cycle time ("critical paths will limit the clock
    // frequency of the chip").
    {
        use cbv_core::timing::find_min_period;
        let pessimism = Pessimism::signoff();
        let calc = DelayCalc::new(&process, Tolerance::conservative(), pessimism);
        let graph = build_graph(&netlist, &recognition, &extracted, &calc);
        let constraints = infer_constraints(&netlist, &recognition, &process, &pessimism);
        match find_min_period(
            &netlist,
            &graph,
            &constraints,
            "phi1",
            &pessimism,
            &[],
            cbv_core::tech::Seconds::new(1e-6),
            cbv_core::tech::Seconds::new(10e-12),
        ) {
            Some(t) => println!(
                "\nf_max search (single-phase bound): minimum clean cycle {:.1} ns  ({:.1} MHz with signoff pessimism)",
                t.seconds() * 1e9,
                1e-6 / t.seconds()
            ),
            None => println!("\nf_max search: does not close even at 1 ms"),
        }
    }

    // Correlated vs uncorrelated race analysis under clock skew.
    println!("\ncorrelated vs uncorrelated min/max race analysis:");
    let mut trunk = clock_trunk(4, 3.0, 64, &process);
    let tlayout = synthesize(&mut trunk.netlist, &process);
    let textract = extract(&tlayout, &trunk.netlist, &process);
    let root = trunk.clocks[0];
    let skew = clock_skew_bounds(
        &textract,
        root,
        Ohms::new(150.0),
        &Tolerance::conservative(),
    )
    .expect("clock net has RC");
    println!(
        "  clock trunk insertion window: {:.1}..{:.1} ps (spread {:.1} ps)",
        skew.min.seconds() * 1e12,
        skew.max.seconds() * 1e12,
        skew.spread().seconds() * 1e12
    );
    println!("  (uncorrelated analysis charges the full spread against every");
    println!("   hold check; correlated analysis — the paper's approach —");
    println!("   tracks same-die excursions and removes the false races)");
}

//! Quickstart: build a small full-custom block, run the complete
//! Correct-by-Verification flow, and print the signoff.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cbv_core::flow::{run_flow, FlowConfig};
use cbv_core::gen::adders::static_ripple_adder;
use cbv_core::tech::Process;

fn main() {
    // 1. Pick a process — the StrongARM-class 0.35 µm low-power node.
    let process = Process::strongarm_035();
    println!("process: {}", process.name());

    // 2. Generate a hand-style transistor design: an 8-bit static CMOS
    //    ripple-carry adder (548 devices, individually sized).
    let design = static_ripple_adder(8, &process);
    println!(
        "design: `{}` with {} transistors, {} nets",
        design.netlist.name(),
        design.netlist.devices().len(),
        design.netlist.net_count()
    );

    // 3. Run the Fig 2 flow: recognition -> layout -> extraction ->
    //    electrical checks -> timing -> power.
    let report = run_flow(design.netlist, &process, &FlowConfig::default());

    println!("\nper-stage runtimes:");
    for s in &report.stages {
        println!(
            "  {:<10} {:>8.2} ms   ({} artifacts)",
            s.stage,
            s.runtime.seconds() * 1e3,
            s.artifacts
        );
    }

    println!(
        "\nrecognition: {} channel-connected components",
        report.recognition.cccs.len()
    );
    println!("{}", report.signoff);
}

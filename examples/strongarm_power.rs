//! The §3 low-power story: Table 1's ALPHA → StrongARM power waterfall
//! plus the standby-leakage channel-lengthening analysis.
//!
//! ```sh
//! cargo run --example strongarm_power
//! ```

use cbv_core::gen::adders::static_ripple_adder;
use cbv_core::power::{standby_analysis, strongarm_waterfall, LengtheningPolicy};
use cbv_core::tech::units::milliwatts;
use cbv_core::tech::{Corner, Process, Watts};

fn main() {
    // --- Table 1 ---
    println!("Table 1: ALPHA 21064 -> StrongARM SA-110 power waterfall\n");
    println!("  {:<34}{:>8}  {:>10}", "step", "factor", "power");
    println!(
        "  {:<34}{:>8}  {:>10}",
        "ALPHA 21064 @ 3.45 V", "-", "26.0 W"
    );
    for row in strongarm_waterfall(Watts::new(26.0)) {
        println!(
            "  {:<34}{:>7.2}x  {:>8.2} W",
            row.step,
            row.factor,
            row.power.watts()
        );
    }
    println!("  (paper: 5.3x, 3x, 2x, 1.3x, 1.25x -> ~0.5 W; realized 0.45 W)\n");

    // --- Standby leakage vs channel lengthening (§3) ---
    println!("Standby leakage vs selective channel lengthening (fast corner):\n");
    let process = Process::strongarm_035();
    let fast = Corner::fast(&process);
    let spec = milliwatts(20.0);
    println!(
        "  {:>10}  {:>12}  {:>10}",
        "delta L", "standby", "meets 20 mW?"
    );
    for delta_um in [0.0, 0.045, 0.090] {
        // A chip-scale leaky population (see cache_like_block below).
        let mut chip = cache_like_block(&process);
        let r = standby_analysis(
            &mut chip,
            &process,
            &fast,
            &LengtheningPolicy::selective(&["cache", "pad"], delta_um * 1e-6),
            spec,
        );
        println!(
            "  {:>7.3} um  {:>9.2} mW  {:>10}",
            delta_um,
            r.after.watts() * 1e3,
            if r.meets_spec { "yes" } else { "NO" }
        );
    }
    println!("\n  (the paper lengthened cache and pad devices by 0.045/0.09 um");
    println!("   to bring standby below the 20 mW spec at the fastest corner)");
}

/// A chip-scale leaky-device population (cache columns + pad drivers,
/// ~5 meters of aggregate gate width) — the §3 leakage problem at the
/// size where the 20 mW spec actually bites.
fn cache_like_block(process: &Process) -> cbv_core::netlist::FlatNetlist {
    use cbv_core::netlist::{Device, FlatNetlist, NetKind};
    use cbv_core::tech::MosKind;
    let mut f = FlatNetlist::new("cache");
    let gnd = f.add_net("gnd", NetKind::Ground);
    let vdd = f.add_net("vdd", NetKind::Power);
    let wl = f.add_net("wl", NetKind::Input);
    let bit = f.add_net("bit", NetKind::Signal);
    let l = process.l_min().meters();
    // 40k aggregated cache columns at 100 µm each.
    for i in 0..40_000 {
        f.add_device(Device::mos(
            MosKind::Nmos,
            format!("cache_col{i}"),
            wl,
            bit,
            gnd,
            gnd,
            100e-6,
            l,
        ));
    }
    // 64 pad drivers.
    for i in 0..64 {
        f.add_device(Device::mos(
            MosKind::Nmos,
            format!("pad_n{i}"),
            wl,
            bit,
            gnd,
            gnd,
            1000e-6,
            l,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            format!("pad_p{i}"),
            wl,
            bit,
            vdd,
            vdd,
            2000e-6,
            l,
        ));
    }
    let _ = static_ripple_adder(1, process); // keep the generator linked in examples
    f
}

//! §4.1 in action: the custom HDL's native CAM against its gate-level
//! expansion, a shadow-mode co-simulation of a transistor match line
//! under the golden RTL, and the counter ⇔ shift-register sequential
//! equivalence check.
//!
//! ```sh
//! cargo run --example cam_shadow_sim
//! ```

use std::time::Instant;

use cbv_core::equiv::{check_sequential, SeqResult};
use cbv_core::gen::cam::{cam_match_line, cam_rtl_expanded, cam_rtl_source};
use cbv_core::rtl::{compile, interp::Interp};
use cbv_core::sim::{BitBinding, ShadowSim};
use cbv_core::tech::Process;

fn main() {
    // --- Native CAM vs gate expansion: simulation cost (§4.1) ---
    println!("CAM as HDL primitive vs standard-HDL expansion (256 x 16):\n");
    let native = compile(&cam_rtl_source(256, 16), "camq").expect("native cam compiles");
    let expanded = compile(&cam_rtl_expanded(256, 16), "camq").expect("expanded cam compiles");
    println!(
        "  IR nodes: native {} vs expanded {} ({}x blowup)",
        native.nodes.len(),
        expanded.nodes.len(),
        expanded.nodes.len() / native.nodes.len().max(1)
    );
    for (label, design) in [("native", &native), ("expanded", &expanded)] {
        let mut sim = Interp::new(design);
        let cycles = 20_000;
        let t0 = Instant::now();
        for i in 0..cycles {
            sim.set_input("we", (i & 1) as u64);
            sim.set_input("wi", (i % 256) as u64);
            sim.set_input("wv", (i * 7 % 65536) as u64);
            sim.set_input("k", (i * 13 % 65536) as u64);
            sim.step("ck");
        }
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "  {label:<9} {:>9.0} cycles/sec  (paper's farm target: >200/sec/CPU on a full chip)",
            cycles as f64 / dt
        );
    }

    // --- Shadow mode: transistor CAM match line under golden RTL ---
    println!("\nShadow-mode co-simulation (transistor match line vs RTL):\n");
    let process = Process::strongarm_035();
    let circuit = cam_match_line(4, &process);
    // Golden: hit = (key == stored), registered inputs not needed; model
    // combinationally with a clocked sample register for realism.
    let golden = compile(
        "module ml(clock ck, in key[4], in stored[4], out hit) { assign hit = key == stored; }",
        "ml",
    )
    .expect("golden compiles");
    let mut bindings_in = Vec::new();
    for i in 0..4 {
        bindings_in.push(BitBinding::new("key", i, format!("key[{i}]")));
        bindings_in.push(BitBinding::new("stored", i, format!("stored[{i}]")));
    }
    let mut shadow = ShadowSim::new(
        &golden,
        &circuit.netlist,
        bindings_in,
        vec![BitBinding::new("hit", 0, "match_out")],
        vec!["clk".into()],
    );
    let vectors = [
        (0b1010u64, 0b1010u64),
        (0b1010, 0b1011),
        (0xF, 0xF),
        (0x0, 0x1),
        (0x5, 0x5),
        (0x7, 0xE),
    ];
    for &(k, s) in &vectors {
        shadow.set_input("key", k);
        shadow.set_input("stored", s);
        shadow.step("ck");
    }
    println!(
        "  {} cycles, {} mismatches — circuit realizes the RTL intent",
        shadow.cycles(),
        shadow.mismatches().len()
    );

    // --- Sequential equivalence: the paper's counter example ---
    println!("\nSequential equivalence (counter vs one-hot shifter, both tick every 5):\n");
    let counter = compile(
        "module tick5(clock ck, in rst, out tick) {\n\
           reg cnt[3];\n\
           at posedge(ck) { if (rst) { cnt <= 0; } else if (cnt == 4) { cnt <= 0; } else { cnt <= cnt + 1; } }\n\
           assign tick = cnt == 4;\n\
         }",
        "tick5",
    )
    .expect("counter compiles");
    let shifter = compile(
        "module tick5(clock ck, in rst, out tick) {\n\
           reg s[5] = 1;\n\
           at posedge(ck) { if (rst) { s <= 1; } else { s <= {s[3:0], s[4]}; } }\n\
           assign tick = s[4];\n\
         }",
        "tick5",
    )
    .expect("shifter compiles");
    match check_sequential(&counter, &shifter, &["tick"], 10_000).expect("comparable designs") {
        SeqResult::Equivalent { states_explored } => println!(
            "  EQUIVALENT ({states_explored} joint states explored) — \"both achieve the same\n  behavior, but are significantly different in internal implementations\""
        ),
        other => println!("  unexpected: {other:?}"),
    }
}

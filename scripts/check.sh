#!/usr/bin/env bash
# Local CI gate: everything runs offline (all deps are workspace-internal,
# external names resolve to the in-tree shims under shims/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

# The incremental flow's contract: run_flow_incremental produces a
# signoff byte-identical to a cold run_flow at every worker count.
for threads in 1 2 8; do
  echo "== incremental byte-identity (CBV_THREADS=$threads) =="
  CBV_THREADS=$threads cargo test -q -p cbv-core --test incremental
done

echo "== E14 smoke (ECO walk soundness) =="
cargo test -q -p cbv-bench e14_eco

echo "== E15 smoke (trace waterfall + observer-effect contract) =="
cargo test -q -p cbv-bench --lib e15
cargo test -q -p cbv-core --test obs

# The mutation matrix must be byte-identical across worker counts (the
# in-test assertions cover explicit parallelism; these two runs cover
# the CBV_THREADS auto-default path in separate processes).
for threads in 1 8; do
  echo "== mutation-campaign regression (CBV_THREADS=$threads) =="
  CBV_THREADS=$threads cargo test -q -p cbv-core --test mutation
done

echo "== E16 smoke (campaign detects, amortizes, and round-trips JSON) =="
cargo test -q -p cbv-bench --lib e16

# The compiled 64-lane engine must stay bit-exact against the
# reference engines regardless of worker count (compilation itself is
# single-threaded, but the suite also exercises the flow paths).
for threads in 1 8; do
  echo "== cross-engine compiled suite (CBV_THREADS=$threads) =="
  CBV_THREADS=$threads cargo test -q -p cbv-core --test cross_engine
done

echo "== E18 smoke (compiled-engine speedup + registry sweep) =="
cargo test -q -p cbv-bench --lib e18

# The daemon's byte-identity contract: K racing clients, hostile
# frames, queue-full and deadline rejections — at several flow worker
# counts (the daemon honours CBV_THREADS through FlowConfig).
for threads in 1 2 8; do
  echo "== serve end-to-end (CBV_THREADS=$threads) =="
  CBV_THREADS=$threads cargo test -q -p cbv-serve --test serve
done

echo "== daemon loopback smoke (cbv eco vs cbv replay, cmp) =="
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"; for pid in "${SERVED_PID:-}" "${W1_PID:-}" "${W2_PID:-}"; do [ -n "$pid" ] && kill "$pid" 2>/dev/null || true; done' EXIT
E1='{"edit":"op","op":{"op":"width-scale","factor":1.25},"site":{"site":"device","device":0}}'
E2='{"edit":"resize","device":1,"w":2.0e-6,"l":3.5e-7}'
E3='{"edit":"rewire","device":0,"term":"gate","net":1}'
for threads in 1 2 8; do
  CBV_THREADS=$threads ./target/release/cbv-served --addr 127.0.0.1:0 \
    > "$SMOKE_DIR/served.out" 2> "$SMOKE_DIR/served.err" &
  SERVED_PID=$!
  for _ in $(seq 100); do
    grep -q "^listening on " "$SMOKE_DIR/served.out" && break
    sleep 0.1
  done
  ADDR=$(sed -n 's/^listening on //p' "$SMOKE_DIR/served.out")
  [ -n "$ADDR" ] || { echo "daemon never reported its address"; exit 1; }
  ./target/release/cbv eco "$ADDR" dcvsl "$E1" "$E2" "$E3" \
    > "$SMOKE_DIR/remote.json" 2> /dev/null
  CBV_THREADS=$threads ./target/release/cbv replay dcvsl "$E1" "$E2" "$E3" \
    > "$SMOKE_DIR/local.json" 2> /dev/null
  cmp "$SMOKE_DIR/remote.json" "$SMOKE_DIR/local.json"
  ./target/release/cbv shutdown "$ADDR" 2> /dev/null
  wait "$SERVED_PID"
  SERVED_PID=
  echo "   CBV_THREADS=$threads: remote signoff byte-identical to replay"
done

# The farm's byte-identity contract: a coordinator sharding the same
# ECO stream across two worker daemons must emit signoff bytes equal
# to the in-process replay, then drain both workers gracefully.
echo "== farm loopback smoke (cbv farm vs cbv replay, cmp) =="
for threads in 1 8; do
  CBV_THREADS=$threads ./target/release/cbv-served --addr 127.0.0.1:0 \
    > "$SMOKE_DIR/w1.out" 2> /dev/null &
  W1_PID=$!
  CBV_THREADS=$threads ./target/release/cbv-served --addr 127.0.0.1:0 \
    > "$SMOKE_DIR/w2.out" 2> /dev/null &
  W2_PID=$!
  for f in w1 w2; do
    for _ in $(seq 100); do
      grep -q "^listening on " "$SMOKE_DIR/$f.out" && break
      sleep 0.1
    done
  done
  A1=$(sed -n 's/^listening on //p' "$SMOKE_DIR/w1.out")
  A2=$(sed -n 's/^listening on //p' "$SMOKE_DIR/w2.out")
  { [ -n "$A1" ] && [ -n "$A2" ]; } || { echo "worker never reported its address"; exit 1; }
  CBV_THREADS=$threads ./target/release/cbv farm "$A1,$A2" dcvsl "$E1" "$E2" "$E3" \
    > "$SMOKE_DIR/farm.json" 2> /dev/null
  CBV_THREADS=$threads ./target/release/cbv replay dcvsl "$E1" "$E2" "$E3" \
    > "$SMOKE_DIR/farm_replay.json" 2> /dev/null
  cmp "$SMOKE_DIR/farm.json" "$SMOKE_DIR/farm_replay.json"
  ./target/release/cbv shutdown "$A1" 2> /dev/null
  ./target/release/cbv shutdown "$A2" 2> /dev/null
  wait "$W1_PID" "$W2_PID"
  W1_PID=
  W2_PID=
  echo "   CBV_THREADS=$threads: farm signoff byte-identical to replay"
done

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."

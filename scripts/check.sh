#!/usr/bin/env bash
# Local CI gate: everything runs offline (all deps are workspace-internal,
# external names resolve to the in-tree shims under shims/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

# The incremental flow's contract: run_flow_incremental produces a
# signoff byte-identical to a cold run_flow at every worker count.
for threads in 1 2 8; do
  echo "== incremental byte-identity (CBV_THREADS=$threads) =="
  CBV_THREADS=$threads cargo test -q -p cbv-core --test incremental
done

echo "== E14 smoke (ECO walk soundness) =="
cargo test -q -p cbv-bench e14_eco

echo "== E15 smoke (trace waterfall + observer-effect contract) =="
cargo test -q -p cbv-bench --lib e15
cargo test -q -p cbv-core --test obs

# The mutation matrix must be byte-identical across worker counts (the
# in-test assertions cover explicit parallelism; these two runs cover
# the CBV_THREADS auto-default path in separate processes).
for threads in 1 8; do
  echo "== mutation-campaign regression (CBV_THREADS=$threads) =="
  CBV_THREADS=$threads cargo test -q -p cbv-core --test mutation
done

echo "== E16 smoke (campaign detects, amortizes, and round-trips JSON) =="
cargo test -q -p cbv-bench --lib e16

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."

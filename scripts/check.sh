#!/usr/bin/env bash
# Local CI gate: everything runs offline (all deps are workspace-internal,
# external names resolve to the in-tree shims under shims/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."

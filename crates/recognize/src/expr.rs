//! Boolean expressions extracted from transistor topology.
//!
//! A conduction function over gate-input nets: an NMOS conducts when its
//! gate is 1 (positive literal), a PMOS when its gate is 0 (negative
//! literal). The function of a pull network is the OR over all simple
//! channel paths of the AND of the path's literals.

use std::collections::HashSet;
use std::fmt;

use cbv_netlist::{FlatNetlist, NetId};
use cbv_tech::MosKind;

/// A boolean expression over nets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BoolExpr {
    /// Constant.
    Const(bool),
    /// The value of a net.
    Var(NetId),
    /// Negation.
    Not(Box<BoolExpr>),
    /// Conjunction (empty = true).
    And(Vec<BoolExpr>),
    /// Disjunction (empty = false).
    Or(Vec<BoolExpr>),
}

impl BoolExpr {
    /// A literal for a device gate: positive for NMOS, negative for PMOS.
    pub fn literal(net: NetId, kind: MosKind) -> BoolExpr {
        match kind {
            MosKind::Nmos => BoolExpr::Var(net),
            MosKind::Pmos => BoolExpr::Not(Box::new(BoolExpr::Var(net))),
        }
    }

    /// Negates, flattening double negations.
    pub fn negate(self) -> BoolExpr {
        match self {
            BoolExpr::Const(b) => BoolExpr::Const(!b),
            BoolExpr::Not(inner) => *inner,
            other => BoolExpr::Not(Box::new(other)),
        }
    }

    /// The nets this expression mentions, sorted and deduplicated.
    pub fn support(&self) -> Vec<NetId> {
        let mut set = HashSet::new();
        self.collect_support(&mut set);
        let mut v: Vec<NetId> = set.into_iter().collect();
        v.sort();
        v
    }

    fn collect_support(&self, out: &mut HashSet<NetId>) {
        match self {
            BoolExpr::Const(_) => {}
            BoolExpr::Var(n) => {
                out.insert(*n);
            }
            BoolExpr::Not(e) => e.collect_support(out),
            BoolExpr::And(es) | BoolExpr::Or(es) => {
                for e in es {
                    e.collect_support(out);
                }
            }
        }
    }

    /// Evaluates under an assignment function.
    pub fn eval(&self, assign: &dyn Fn(NetId) -> bool) -> bool {
        match self {
            BoolExpr::Const(b) => *b,
            BoolExpr::Var(n) => assign(*n),
            BoolExpr::Not(e) => !e.eval(assign),
            BoolExpr::And(es) => es.iter().all(|e| e.eval(assign)),
            BoolExpr::Or(es) => es.iter().any(|e| e.eval(assign)),
        }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Const(b) => write!(f, "{}", if *b { "1" } else { "0" }),
            BoolExpr::Var(n) => write!(f, "n{}", n.0),
            BoolExpr::Not(e) => write!(f, "!{e}"),
            BoolExpr::And(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            BoolExpr::Or(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Maximum number of simple paths enumerated per pull network before the
/// extractor gives up (the paper's tools are conservative filters, not
/// exact solvers; pathological pass networks are flagged, not solved).
pub const MAX_PATHS: usize = 4096;

/// Extracts the conduction function from `from` (the output node) to `to`
/// (a rail) through the channel graph of the devices in `devices`,
/// considering only devices of polarity `kind` and treating gates on
/// `skip_gates` (e.g. clocks) as always conducting.
///
/// Returns `None` if the path count explodes past [`MAX_PATHS`].
pub fn conduction_function(
    netlist: &FlatNetlist,
    devices: &[cbv_netlist::DeviceId],
    from: NetId,
    to: NetId,
    kind: MosKind,
    skip_gates: &[NetId],
) -> Option<BoolExpr> {
    let mut paths: Vec<Vec<BoolExpr>> = Vec::new();
    let mut visited: HashSet<NetId> = HashSet::new();
    visited.insert(from);
    let mut stack: Vec<BoolExpr> = Vec::new();
    dfs(
        netlist,
        devices,
        from,
        to,
        kind,
        skip_gates,
        &mut visited,
        &mut stack,
        &mut paths,
    )?;
    if paths.is_empty() {
        return Some(BoolExpr::Const(false));
    }
    let terms: Vec<BoolExpr> = paths
        .into_iter()
        .map(|lits| {
            if lits.is_empty() {
                BoolExpr::Const(true)
            } else if lits.len() == 1 {
                lits.into_iter().next().expect("len checked")
            } else {
                BoolExpr::And(lits)
            }
        })
        .collect();
    Some(if terms.len() == 1 {
        terms.into_iter().next().expect("len checked")
    } else {
        BoolExpr::Or(terms)
    })
}

/// Enumerates the simple channel paths (as device lists) from `from` to
/// `to` through devices of polarity `kind`. Unlike
/// [`conduction_function`], clock gates are never skipped — electrical
/// checks care about the physical devices on each path.
///
/// Returns `None` if the path count explodes past [`MAX_PATHS`].
pub fn conduction_paths(
    netlist: &FlatNetlist,
    devices: &[cbv_netlist::DeviceId],
    from: NetId,
    to: NetId,
    kind: MosKind,
) -> Option<Vec<Vec<cbv_netlist::DeviceId>>> {
    #[allow(clippy::too_many_arguments)]
    fn walk(
        netlist: &FlatNetlist,
        devices: &[cbv_netlist::DeviceId],
        at: NetId,
        target: NetId,
        kind: MosKind,
        visited: &mut HashSet<NetId>,
        stack: &mut Vec<cbv_netlist::DeviceId>,
        paths: &mut Vec<Vec<cbv_netlist::DeviceId>>,
    ) -> Option<()> {
        if at == target {
            if paths.len() >= MAX_PATHS {
                return None;
            }
            paths.push(stack.clone());
            return Some(());
        }
        for &did in devices {
            let d = netlist.device(did);
            if d.kind != kind || !d.channel_touches(at) {
                continue;
            }
            let other = d.other_channel_end(at);
            if other != target && netlist.net_kind(other).is_rail() {
                continue;
            }
            if other != target && visited.contains(&other) {
                continue;
            }
            stack.push(did);
            if other != target {
                visited.insert(other);
            }
            let r = walk(netlist, devices, other, target, kind, visited, stack, paths);
            if other != target {
                visited.remove(&other);
            }
            stack.pop();
            r?;
        }
        Some(())
    }
    let mut paths = Vec::new();
    let mut visited = HashSet::new();
    visited.insert(from);
    let mut stack = Vec::new();
    walk(
        netlist,
        devices,
        from,
        to,
        kind,
        &mut visited,
        &mut stack,
        &mut paths,
    )?;
    Some(paths)
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    netlist: &FlatNetlist,
    devices: &[cbv_netlist::DeviceId],
    at: NetId,
    target: NetId,
    kind: MosKind,
    skip_gates: &[NetId],
    visited: &mut HashSet<NetId>,
    stack: &mut Vec<BoolExpr>,
    paths: &mut Vec<Vec<BoolExpr>>,
) -> Option<()> {
    if at == target {
        if paths.len() >= MAX_PATHS {
            return None;
        }
        paths.push(stack.clone());
        return Some(());
    }
    for &did in devices {
        let d = netlist.device(did);
        if d.kind != kind || !d.channel_touches(at) {
            continue;
        }
        let other = d.other_channel_end(at);
        // Paths may only pass *through* non-rail nets; they terminate at
        // the target rail and never route through the opposite rail.
        if other != target && netlist.net_kind(other).is_rail() {
            continue;
        }
        if other != target && visited.contains(&other) {
            continue;
        }
        // Gates tied to rails fold to constants: an NMOS gated by power
        // (or a PMOS gated by ground) is always on; the opposite tie
        // means the device never conducts.
        let gate_kind = netlist.net_kind(d.gate);
        let never_on = match d.kind {
            MosKind::Nmos => gate_kind == cbv_netlist::NetKind::Ground,
            MosKind::Pmos => gate_kind == cbv_netlist::NetKind::Power,
        };
        if never_on {
            continue;
        }
        let always_on = skip_gates.contains(&d.gate)
            || match d.kind {
                MosKind::Nmos => gate_kind == cbv_netlist::NetKind::Power,
                MosKind::Pmos => gate_kind == cbv_netlist::NetKind::Ground,
            };
        let pushed = if always_on {
            false
        } else {
            stack.push(BoolExpr::literal(d.gate, d.kind));
            true
        };
        if other != target {
            visited.insert(other);
        }
        let r = dfs(
            netlist, devices, other, target, kind, skip_gates, visited, stack, paths,
        );
        if other != target {
            visited.remove(&other);
        }
        if pushed {
            stack.pop();
        }
        r?;
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_netlist::{Device, NetKind};

    fn nand2() -> (FlatNetlist, Vec<cbv_netlist::DeviceId>) {
        let mut f = FlatNetlist::new("nand2");
        let a = f.add_net("a", NetKind::Input);
        let b = f.add_net("b", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let x = f.add_net("x", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        let ids = vec![
            f.add_device(Device::mos(
                MosKind::Pmos,
                "pa",
                a,
                y,
                vdd,
                vdd,
                4e-6,
                0.35e-6,
            )),
            f.add_device(Device::mos(
                MosKind::Pmos,
                "pb",
                b,
                y,
                vdd,
                vdd,
                4e-6,
                0.35e-6,
            )),
            f.add_device(Device::mos(
                MosKind::Nmos,
                "na",
                a,
                y,
                x,
                gnd,
                4e-6,
                0.35e-6,
            )),
            f.add_device(Device::mos(
                MosKind::Nmos,
                "nb",
                b,
                x,
                gnd,
                gnd,
                4e-6,
                0.35e-6,
            )),
        ];
        (f, ids)
    }

    #[test]
    fn nand_pulldown_is_series_and() {
        let (f, ids) = nand2();
        let y = f.find_net("y").unwrap();
        let gnd = f.find_net("gnd").unwrap();
        let a = f.find_net("a").unwrap();
        let b = f.find_net("b").unwrap();
        let pd = conduction_function(&f, &ids, y, gnd, MosKind::Nmos, &[]).unwrap();
        // PD conducts iff a & b.
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let assign = |n: NetId| {
                if n == a {
                    va
                } else if n == b {
                    vb
                } else {
                    false
                }
            };
            assert_eq!(pd.eval(&assign), va && vb, "a={va} b={vb}");
        }
    }

    #[test]
    fn nand_pullup_is_parallel_or_of_negations() {
        let (f, ids) = nand2();
        let y = f.find_net("y").unwrap();
        let vdd = f.find_net("vdd").unwrap();
        let a = f.find_net("a").unwrap();
        let b = f.find_net("b").unwrap();
        let pu = conduction_function(&f, &ids, y, vdd, MosKind::Pmos, &[]).unwrap();
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let assign = |n: NetId| {
                if n == a {
                    va
                } else if n == b {
                    vb
                } else {
                    false
                }
            };
            assert_eq!(pu.eval(&assign), !(va && vb), "a={va} b={vb}");
        }
        // PU and PD must be complementary: checked by the family classifier.
        let pd = conduction_function(&f, &ids, y, f.find_net("gnd").unwrap(), MosKind::Nmos, &[])
            .unwrap();
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let assign = |n: NetId| {
                if n == a {
                    va
                } else if n == b {
                    vb
                } else {
                    false
                }
            };
            assert_ne!(pu.eval(&assign), pd.eval(&assign));
        }
    }

    #[test]
    fn skip_gates_treats_clock_as_closed() {
        // Single clocked foot: skip the clock → constant true.
        let mut f = FlatNetlist::new("foot");
        let clk = f.add_net("clk", NetKind::Clock);
        let y = f.add_net("y", NetKind::Signal);
        let gnd = f.add_net("gnd", NetKind::Ground);
        let id = f.add_device(Device::mos(
            MosKind::Nmos,
            "mf",
            clk,
            y,
            gnd,
            gnd,
            4e-6,
            0.35e-6,
        ));
        let e = conduction_function(&f, &[id], y, gnd, MosKind::Nmos, &[clk]).unwrap();
        assert_eq!(e, BoolExpr::Const(true));
        let e2 = conduction_function(&f, &[id], y, gnd, MosKind::Nmos, &[]).unwrap();
        assert_eq!(e2, BoolExpr::Var(clk));
    }

    #[test]
    fn no_path_is_constant_false() {
        let (f, ids) = nand2();
        let x = f.find_net("x").unwrap();
        let vdd = f.find_net("vdd").unwrap();
        // x has no PMOS path to vdd.
        let e = conduction_function(&f, &ids, x, vdd, MosKind::Pmos, &[]).unwrap();
        assert_eq!(e, BoolExpr::Const(false));
    }

    #[test]
    fn bridge_network_enumerates_all_paths() {
        // Classic bridge: two parallel branches with a cross device.
        //   y - m1 - n1 - m2 - gnd
        //   y - m3 - n2 - m4 - gnd
        //   n1 - m5 - n2 (bridge)
        let mut f = FlatNetlist::new("bridge");
        let g: Vec<NetId> = (0..5)
            .map(|i| f.add_net(&format!("g{i}"), NetKind::Input))
            .collect();
        let y = f.add_net("y", NetKind::Output);
        let n1 = f.add_net("n1", NetKind::Signal);
        let n2 = f.add_net("n2", NetKind::Signal);
        let gnd = f.add_net("gnd", NetKind::Ground);
        let ids = vec![
            f.add_device(Device::mos(
                MosKind::Nmos,
                "m1",
                g[0],
                y,
                n1,
                gnd,
                1e-6,
                0.35e-6,
            )),
            f.add_device(Device::mos(
                MosKind::Nmos,
                "m2",
                g[1],
                n1,
                gnd,
                gnd,
                1e-6,
                0.35e-6,
            )),
            f.add_device(Device::mos(
                MosKind::Nmos,
                "m3",
                g[2],
                y,
                n2,
                gnd,
                1e-6,
                0.35e-6,
            )),
            f.add_device(Device::mos(
                MosKind::Nmos,
                "m4",
                g[3],
                n2,
                gnd,
                gnd,
                1e-6,
                0.35e-6,
            )),
            f.add_device(Device::mos(
                MosKind::Nmos,
                "m5",
                g[4],
                n1,
                n2,
                gnd,
                1e-6,
                0.35e-6,
            )),
        ];
        let e = conduction_function(&f, &ids, y, gnd, MosKind::Nmos, &[]).unwrap();
        // Exhaustive compare against direct graph reachability.
        for m in 0u32..32 {
            let assign = |n: NetId| {
                g.iter()
                    .position(|&x| x == n)
                    .map(|i| (m >> i) & 1 == 1)
                    .unwrap_or(false)
            };
            // Reference: conducting edges, BFS y->gnd.
            let edges = [
                (y, n1, 0),
                (n1, gnd, 1),
                (y, n2, 2),
                (n2, gnd, 3),
                (n1, n2, 4),
            ];
            let mut reach = vec![y];
            let mut frontier = vec![y];
            while let Some(cur) = frontier.pop() {
                for &(p, q, gi) in &edges {
                    if (m >> gi) & 1 == 1 {
                        for (from, to) in [(p, q), (q, p)] {
                            if from == cur && !reach.contains(&to) {
                                reach.push(to);
                                frontier.push(to);
                            }
                        }
                    }
                }
            }
            assert_eq!(e.eval(&assign), reach.contains(&gnd), "mask {m:05b}");
        }
    }

    #[test]
    fn display_is_readable() {
        let e = BoolExpr::Or(vec![
            BoolExpr::And(vec![BoolExpr::Var(NetId(1)), BoolExpr::Var(NetId(2))]),
            BoolExpr::Not(Box::new(BoolExpr::Var(NetId(3)))),
        ]);
        assert_eq!(e.to_string(), "((n1 & n2) | !n3)");
    }

    #[test]
    fn negate_flattens() {
        let v = BoolExpr::Var(NetId(1));
        assert_eq!(v.clone().negate().negate(), v);
        assert_eq!(BoolExpr::Const(true).negate(), BoolExpr::Const(false));
    }

    #[test]
    fn support_sorted_unique() {
        let e = BoolExpr::And(vec![
            BoolExpr::Var(NetId(5)),
            BoolExpr::Or(vec![BoolExpr::Var(NetId(2)), BoolExpr::Var(NetId(5))]),
        ]);
        assert_eq!(e.support(), vec![NetId(2), NetId(5)]);
    }
}

//! Logic-family classification of channel-connected components.
//!
//! §2 lists the families the methodology admits: "dynamic, single or
//! dual-rail circuits, differential cascode voltage swing logic (DCVSL),
//! pass transistor logic, and of course, complementary logic gates." Each
//! CCC is classified into one of these by inspecting which rails its
//! outputs can reach, under which gate conditions, and whether precharge
//! devices are clock-gated.

use cbv_netlist::{Ccc, DeviceId, FlatNetlist, NetId, NetKind};
use cbv_tech::MosKind;

use crate::expr::{conduction_function, conduction_paths, BoolExpr};

/// The logic family of one channel-connected component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicFamily {
    /// Fully complementary static CMOS: dual pull networks.
    StaticComplementary,
    /// Ratioed logic: an always-on load fights the pull-down
    /// (pseudo-NMOS).
    Ratioed,
    /// Precharge/evaluate dynamic logic.
    Dynamic {
        /// Whether a clocked foot device gates the evaluate network.
        footed: bool,
        /// Whether the component produces complementary rail outputs
        /// (dual-rail domino).
        dual_rail: bool,
    },
    /// Differential cascode voltage swing logic: cross-coupled PMOS over
    /// complementary NMOS trees.
    Dcvsl,
    /// Pass-transistor network (conducts between signal nets).
    PassTransistor,
    /// Nothing matched — reported for designer inspection, per the
    /// paper's filter philosophy.
    Unknown,
}

/// The extracted drive functions of one output net.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputFunction {
    /// The output net.
    pub net: NetId,
    /// Conduction condition of the PMOS network to power (clocks treated
    /// as data). `Const(false)` when there is no pull-up.
    pub pull_up: BoolExpr,
    /// Conduction condition of the NMOS network to ground.
    pub pull_down: BoolExpr,
    /// The logic value this output settles to when driven, if the
    /// networks are complementary (or dynamic-evaluate): `!pull_down`.
    pub function: Option<BoolExpr>,
}

/// Classification result for one CCC.
#[derive(Debug, Clone, PartialEq)]
pub struct CccClass {
    /// The family.
    pub family: LogicFamily,
    /// Per-output drive functions.
    pub outputs: Vec<OutputFunction>,
    /// Outputs that are precharged dynamic nodes.
    pub dynamic_outputs: Vec<NetId>,
    /// Clock nets among the inputs.
    pub clock_inputs: Vec<NetId>,
    /// Pull-up paths per output (device lists), for electrical checks.
    pub pullup_paths: Vec<(NetId, Vec<Vec<DeviceId>>)>,
    /// Pull-down paths per output.
    pub pulldown_paths: Vec<(NetId, Vec<Vec<DeviceId>>)>,
}

impl CccClass {
    /// True if the family uses a precharged node.
    pub fn is_dynamic(&self) -> bool {
        matches!(self.family, LogicFamily::Dynamic { .. })
    }
}

/// Exhaustively (≤ `2^EXHAUSTIVE_VARS` assignments) or by sampling checks
/// whether two expressions are complementary over their joint support.
fn complementary(netlist: &FlatNetlist, a: &BoolExpr, b: &BoolExpr) -> bool {
    const EXHAUSTIVE_VARS: usize = 12;
    let mut support = a.support();
    for n in b.support() {
        if !support.contains(&n) {
            support.push(n);
        }
    }
    let _ = netlist;
    if support.len() <= EXHAUSTIVE_VARS {
        for m in 0u64..(1u64 << support.len()) {
            let assign = |n: NetId| {
                support
                    .iter()
                    .position(|&x| x == n)
                    .map(|i| (m >> i) & 1 == 1)
                    .unwrap_or(false)
            };
            if a.eval(&assign) == b.eval(&assign) {
                return false;
            }
        }
        true
    } else {
        // Deterministic LCG sampling for big supports; conservative: a
        // false positive here only relaxes classification, and the
        // equivalence checker re-verifies functions exactly.
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..4096 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let m = state;
            let assign = |n: NetId| {
                support
                    .iter()
                    .position(|&x| x == n)
                    .map(|i| (m >> (i % 64)) & 1 == 1)
                    .unwrap_or(false)
            };
            if a.eval(&assign) == b.eval(&assign) {
                return false;
            }
        }
        true
    }
}

/// Classifies one channel-connected component.
pub fn classify_ccc(netlist: &FlatNetlist, ccc: &Ccc, clock_nets: &[NetId]) -> CccClass {
    let rails: Vec<(NetId, NetKind)> = {
        let mut v = Vec::new();
        for &did in &ccc.devices {
            let d = netlist.device(did);
            for net in [d.source, d.drain] {
                let k = netlist.net_kind(net);
                if k.is_rail() && !v.contains(&(net, k)) {
                    v.push((net, k));
                }
            }
        }
        v
    };
    let powers: Vec<NetId> = rails
        .iter()
        .filter(|(_, k)| *k == NetKind::Power)
        .map(|&(n, _)| n)
        .collect();
    let grounds: Vec<NetId> = rails
        .iter()
        .filter(|(_, k)| *k == NetKind::Ground)
        .map(|&(n, _)| n)
        .collect();

    let clock_inputs: Vec<NetId> = ccc
        .inputs
        .iter()
        .copied()
        .filter(|n| clock_nets.contains(n))
        .collect();

    let or_over_rails = |from: NetId, targets: &[NetId], kind: MosKind| -> BoolExpr {
        let mut terms = Vec::new();
        for &t in targets {
            match conduction_function(netlist, &ccc.devices, from, t, kind, &[]) {
                Some(BoolExpr::Const(false)) => {}
                Some(e) => terms.push(e),
                // Path explosion: conservatively "unknown" — represent as
                // a constant-true pull so downstream checks stay
                // pessimistic.
                None => terms.push(BoolExpr::Const(true)),
            }
        }
        match terms.len() {
            0 => BoolExpr::Const(false),
            1 => terms.into_iter().next().expect("len checked"),
            _ => BoolExpr::Or(terms),
        }
    };

    let mut outputs = Vec::new();
    let mut pullup_paths = Vec::new();
    let mut pulldown_paths = Vec::new();
    for &out in &ccc.outputs {
        let pu = or_over_rails(out, &powers, MosKind::Pmos);
        let pd = or_over_rails(out, &grounds, MosKind::Nmos);
        let function = if complementary(netlist, &pu, &pd) {
            Some(pd.clone().negate())
        } else {
            None
        };
        let mut pup = Vec::new();
        for &p in &powers {
            if let Some(mut paths) = conduction_paths(netlist, &ccc.devices, out, p, MosKind::Pmos)
            {
                pup.append(&mut paths);
            }
        }
        let mut pdp = Vec::new();
        for &g in &grounds {
            if let Some(mut paths) = conduction_paths(netlist, &ccc.devices, out, g, MosKind::Nmos)
            {
                pdp.append(&mut paths);
            }
        }
        pullup_paths.push((out, pup));
        pulldown_paths.push((out, pdp));
        outputs.push(OutputFunction {
            net: out,
            pull_up: pu,
            pull_down: pd,
            function,
        });
    }

    // --- Family deduction ---
    // Precharge: a single PMOS straight from power, gated by a clock.
    // Keepers may add extra pull-up paths in parallel; what makes the
    // node dynamic is that its pull networks are NOT complementary (it
    // floats during part of the cycle) while a clocked precharger exists.
    let has_precharge = |out: NetId| -> bool {
        pullup_paths
            .iter()
            .find(|(n, _)| *n == out)
            .map(|(_, paths)| {
                paths
                    .iter()
                    .any(|p| p.len() == 1 && clock_nets.contains(&netlist.device(p[0]).gate))
            })
            .unwrap_or(false)
    };
    let has_foot = ccc.devices.iter().any(|&did| {
        let d = netlist.device(did);
        d.kind == MosKind::Nmos
            && clock_nets.contains(&d.gate)
            && (grounds.contains(&d.source) || grounds.contains(&d.drain))
    });

    let dynamic_outputs: Vec<NetId> = outputs
        .iter()
        .filter(|o| {
            has_precharge(o.net) && o.function.is_none() && o.pull_down != BoolExpr::Const(false)
        })
        .map(|o| o.net)
        .collect();

    let family = if !dynamic_outputs.is_empty() {
        let dual_rail = dynamic_outputs.len() == 2 && {
            let f0 = conduction_function(
                netlist,
                &ccc.devices,
                dynamic_outputs[0],
                *grounds.first().unwrap_or(&dynamic_outputs[0]),
                MosKind::Nmos,
                clock_nets,
            );
            let f1 = conduction_function(
                netlist,
                &ccc.devices,
                dynamic_outputs[1],
                *grounds.first().unwrap_or(&dynamic_outputs[1]),
                MosKind::Nmos,
                clock_nets,
            );
            match (f0, f1) {
                (Some(a), Some(b)) => complementary(netlist, &a, &b),
                _ => false,
            }
        };
        LogicFamily::Dynamic {
            footed: has_foot,
            dual_rail,
        }
    } else if !outputs.is_empty()
        && outputs.len() == 2
        && is_dcvsl(netlist, ccc, &outputs, clock_nets)
    {
        LogicFamily::Dcvsl
    } else if !outputs.is_empty()
        && outputs
            .iter()
            .all(|o| o.function.is_some() && o.pull_up != BoolExpr::Const(false))
    {
        LogicFamily::StaticComplementary
    } else if outputs
        .iter()
        .any(|o| o.pull_up == BoolExpr::Const(true) && o.pull_down != BoolExpr::Const(false))
    {
        LogicFamily::Ratioed
    } else if is_pass_network(netlist, ccc) {
        LogicFamily::PassTransistor
    } else {
        LogicFamily::Unknown
    };

    CccClass {
        family,
        outputs,
        dynamic_outputs,
        clock_inputs,
        pullup_paths,
        pulldown_paths,
    }
}

/// DCVSL: each output's pull-up is a single PMOS gated by the *other*
/// output (cross-coupled), with NMOS trees underneath.
fn is_dcvsl(
    netlist: &FlatNetlist,
    ccc: &Ccc,
    outputs: &[OutputFunction],
    _clock_nets: &[NetId],
) -> bool {
    let (a, b) = (outputs[0].net, outputs[1].net);
    let cross = |out: NetId, other: NetId| -> bool {
        matches!(&outputs[if out == a { 0 } else { 1 }].pull_up,
            BoolExpr::Not(inner) if **inner == BoolExpr::Var(other))
    };
    let has_nmos_tree = |out: NetId| {
        ccc.devices.iter().any(|&did| {
            let d = netlist.device(did);
            d.kind == MosKind::Nmos && d.channel_touches(out)
        })
    };
    cross(a, b) && cross(b, a) && has_nmos_tree(a) && has_nmos_tree(b)
}

/// A pass network: at least one device conducts between two non-rail
/// boundary nets (signals travel through channels rather than being
/// regenerated from rails).
fn is_pass_network(netlist: &FlatNetlist, ccc: &Ccc) -> bool {
    ccc.devices.iter().any(|&did| {
        let d = netlist.device(did);
        !netlist.net_kind(d.source).is_rail() && !netlist.net_kind(d.drain).is_rail()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_netlist::{partition_cccs, Device, FlatNetlist, NetKind};

    fn classify_single(f: &mut FlatNetlist, clocks: &[&str]) -> Vec<CccClass> {
        let clock_ids: Vec<NetId> = clocks.iter().map(|c| f.find_net(c).unwrap()).collect();
        let (cccs, _) = partition_cccs(f);
        cccs.iter()
            .map(|c| classify_ccc(f, c, &clock_ids))
            .collect()
    }

    #[test]
    fn inverter_is_static_complementary() {
        let mut f = FlatNetlist::new("inv");
        let a = f.add_net("a", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "p",
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "n",
            a,
            y,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        let classes = classify_single(&mut f, &[]);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].family, LogicFamily::StaticComplementary);
        // Function is !a.
        let of = &classes[0].outputs[0];
        assert_eq!(
            of.function.as_ref().unwrap(),
            &BoolExpr::Not(Box::new(BoolExpr::Var(a)))
        );
    }

    #[test]
    fn aoi_gate_is_static_complementary() {
        // y = !(a&b | c): NMOS a-b series parallel c; PMOS (a||b) series c... build it.
        let mut f = FlatNetlist::new("aoi21");
        let a = f.add_net("a", NetKind::Input);
        let b = f.add_net("b", NetKind::Input);
        let c = f.add_net("c", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let x = f.add_net("x", NetKind::Signal);
        let p1 = f.add_net("p1", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        // NMOS: y -a- x -b- gnd ; y -c- gnd
        f.add_device(Device::mos(
            MosKind::Nmos,
            "na",
            a,
            y,
            x,
            gnd,
            2e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "nb",
            b,
            x,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "nc",
            c,
            y,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        // PMOS: vdd -a- p1, vdd -b- p1, p1 -c- y
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pa",
            a,
            p1,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pb",
            b,
            p1,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pc",
            c,
            y,
            p1,
            vdd,
            4e-6,
            0.35e-6,
        ));
        let classes = classify_single(&mut f, &[]);
        assert_eq!(classes[0].family, LogicFamily::StaticComplementary);
    }

    #[test]
    fn pseudo_nmos_is_ratioed() {
        let mut f = FlatNetlist::new("pseudo");
        let a = f.add_net("a", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        // PMOS load with gate tied to ground: always on.
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pl",
            gnd,
            y,
            vdd,
            vdd,
            2e-6,
            0.7e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "n",
            a,
            y,
            gnd,
            gnd,
            4e-6,
            0.35e-6,
        ));
        let classes = classify_single(&mut f, &[]);
        assert_eq!(classes[0].family, LogicFamily::Ratioed);
    }

    #[test]
    fn footed_domino_recognized() {
        let mut f = FlatNetlist::new("dom");
        let clk = f.add_net("clk", NetKind::Clock);
        let a = f.add_net("a", NetKind::Input);
        let d = f.add_net("d", NetKind::Output);
        let x = f.add_net("x", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pre",
            clk,
            d,
            vdd,
            vdd,
            3e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "na",
            a,
            d,
            x,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "foot",
            clk,
            x,
            gnd,
            gnd,
            6e-6,
            0.35e-6,
        ));
        let classes = classify_single(&mut f, &["clk"]);
        assert_eq!(
            classes[0].family,
            LogicFamily::Dynamic {
                footed: true,
                dual_rail: false
            }
        );
        assert_eq!(classes[0].dynamic_outputs, vec![d]);
    }

    #[test]
    fn footless_domino_recognized() {
        let mut f = FlatNetlist::new("dom_nofoot");
        let clk = f.add_net("clk", NetKind::Clock);
        let a = f.add_net("a", NetKind::Input);
        let d = f.add_net("d", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pre",
            clk,
            d,
            vdd,
            vdd,
            3e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "na",
            a,
            d,
            gnd,
            gnd,
            4e-6,
            0.35e-6,
        ));
        let classes = classify_single(&mut f, &["clk"]);
        assert_eq!(
            classes[0].family,
            LogicFamily::Dynamic {
                footed: false,
                dual_rail: false
            }
        );
    }

    #[test]
    fn dual_rail_domino_recognized() {
        // Two precharged outputs with complementary eval trees (a / !a).
        let mut f = FlatNetlist::new("dr");
        let clk = f.add_net("clk", NetKind::Clock);
        let a = f.add_net("a", NetKind::Input);
        let an = f.add_net("an", NetKind::Input); // complement rail in
        let t = f.add_net("t", NetKind::Output);
        let c = f.add_net("c", NetKind::Output);
        let foot = f.add_net("footn", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pre_t",
            clk,
            t,
            vdd,
            vdd,
            3e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pre_c",
            clk,
            c,
            vdd,
            vdd,
            3e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "nt",
            a,
            t,
            foot,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "nc",
            an,
            c,
            foot,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "nf",
            clk,
            foot,
            gnd,
            gnd,
            8e-6,
            0.35e-6,
        ));
        let classes = classify_single(&mut f, &["clk"]);
        match classes[0].family {
            LogicFamily::Dynamic { footed, dual_rail } => {
                assert!(footed);
                // t pulls down on a, c pulls down on an: complementary only
                // if an == !a, which recognition can't know — it sees two
                // independent variables, so dual_rail is judged on function
                // complementarity over (a, an): NOT complementary.
                assert!(!dual_rail);
            }
            other => panic!("unexpected family {other:?}"),
        }
        // Same structure keyed on one variable IS dual-rail:
        let mut f2 = FlatNetlist::new("dr2");
        let clk = f2.add_net("clk", NetKind::Clock);
        let a = f2.add_net("a", NetKind::Input);
        let t = f2.add_net("t", NetKind::Output);
        let c = f2.add_net("c", NetKind::Output);
        let vdd = f2.add_net("vdd", NetKind::Power);
        let gnd = f2.add_net("gnd", NetKind::Ground);
        f2.add_device(Device::mos(
            MosKind::Pmos,
            "pt",
            clk,
            t,
            vdd,
            vdd,
            3e-6,
            0.35e-6,
        ));
        f2.add_device(Device::mos(
            MosKind::Pmos,
            "pc",
            clk,
            c,
            vdd,
            vdd,
            3e-6,
            0.35e-6,
        ));
        // t falls when a, c falls when !a — gate c's eval with a PMOS? A
        // PMOS in an NMOS eval tree isn't idiomatic; instead use series
        // NMOS gated by a for t, and an NMOS gated by... there is no !a
        // without a second rail. Accept: share the foot but swap
        // polarities via PMOS pull-down path (still polarity Nmos filter
        // applies) — so instead test complementarity with XOR trees:
        // t: a&b | !a&!b is too big; keep simple: use two inputs a,b with
        // t = a&b and c = !(a&b) needs OR of two branches: !a series
        // impossible. Skip: single-rail check suffices above.
        let _ = (t, c, gnd, a);
    }

    #[test]
    fn dcvsl_recognized() {
        // Cross-coupled PMOS over complementary NMOS trees that share a
        // tail node (which is what makes both halves one channel-connected
        // component — two fully separate trees are legitimately two CCCs).
        let mut f = FlatNetlist::new("dcvsl");
        let a = f.add_net("a", NetKind::Input);
        let ab = f.add_net("ab", NetKind::Input);
        let q = f.add_net("q", NetKind::Output);
        let qb = f.add_net("qb", NetKind::Output);
        let tail = f.add_net("tail", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "p1",
            qb,
            q,
            vdd,
            vdd,
            3e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "p2",
            q,
            qb,
            vdd,
            vdd,
            3e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "n1",
            a,
            q,
            tail,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "n2",
            ab,
            qb,
            tail,
            gnd,
            4e-6,
            0.35e-6,
        ));
        // Always-on tail device (gate tied to power).
        f.add_device(Device::mos(
            MosKind::Nmos,
            "nt",
            vdd,
            tail,
            gnd,
            gnd,
            8e-6,
            0.35e-6,
        ));
        let classes = classify_single(&mut f, &[]);
        assert_eq!(classes.len(), 1, "shared tail joins both halves");
        assert_eq!(classes[0].family, LogicFamily::Dcvsl);
    }

    #[test]
    fn pass_gate_network_recognized() {
        let mut f = FlatNetlist::new("mux");
        let s = f.add_net("s", NetKind::Input);
        let sn = f.add_net("sn", NetKind::Input);
        let a = f.add_net("a", NetKind::Input);
        let b = f.add_net("b", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Nmos,
            "m1",
            s,
            a,
            y,
            gnd,
            2e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "m2",
            sn,
            b,
            y,
            gnd,
            2e-6,
            0.35e-6,
        ));
        let classes = classify_single(&mut f, &[]);
        assert_eq!(classes[0].family, LogicFamily::PassTransistor);
    }

    #[test]
    fn beta_paths_available() {
        let mut f = FlatNetlist::new("inv");
        let a = f.add_net("a", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "p",
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "n",
            a,
            y,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        let classes = classify_single(&mut f, &[]);
        let c = &classes[0];
        assert_eq!(c.pullup_paths[0].1.len(), 1);
        assert_eq!(c.pulldown_paths[0].1.len(), 1);
        assert_eq!(c.pullup_paths[0].1[0].len(), 1);
    }
}

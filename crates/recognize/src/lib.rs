//! `cbv-recognize` — automatic circuit recognition.
//!
//! The core CAD challenge of the paper (§2.3): "A large challenge caused
//! by our methodology is the automatic recognition of groups of full
//! custom transistors in their logical and electrical meanings. The
//! logical behavior or intent of a collection of transistors has no
//! inherent pre-defined meaning as normally provided by traditional cell
//! library approaches. Subsequently, all logic and timing constraints
//! along with electrical requirements have to be automatically and
//! conservatively deduced from the topology and context of the actual
//! transistors."
//!
//! Given a flat transistor netlist, this crate deduces:
//!
//! * the **logic family** of every channel-connected component —
//!   static complementary, ratioed, dynamic (domino, with or without a
//!   clocked foot), dual-rail dynamic / DCVSL, or pass-transistor
//!   ([`family`]);
//! * the **boolean function** each output computes, extracted by path
//!   enumeration through the channel graph ([`expr`]);
//! * **clock nets**, both declared and inferred from precharge topology,
//!   propagated through buffer chains ([`clocks`]);
//! * **state elements** invented on the fly by designers, found as
//!   feedback loops in the component graph ([`state`]);
//! * per-net electrical **roles** (static, dynamic, clock, latch node),
//!   which every downstream checker in `cbv-everify` and `cbv-timing`
//!   consumes.
//!
//! The entry point is [`recognize`].

pub mod clocks;
pub mod expr;
pub mod family;
pub mod state;

use cbv_netlist::{partition_cccs, Ccc, CccId, FlatNetlist, NetId};

pub use expr::BoolExpr;
pub use family::{classify_ccc, CccClass, LogicFamily, OutputFunction};
pub use state::{StateElement, StateKind};

/// Electrical role deduced for a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetRole {
    /// Power or ground.
    Rail,
    /// A clock (declared or inferred).
    Clock,
    /// Driven by a static (fully restored, always-driven) structure.
    Static,
    /// A precharged dynamic node: undriven during evaluation until the
    /// pull-down conducts — the noise-sensitive class of Fig 3.
    Dynamic,
    /// Internal node of a transistor stack (charge-sharing hazard source).
    StackInternal,
    /// Node inside a pass-transistor network.
    PassInternal,
    /// Storage node of a recognized state element.
    State,
    /// Primary input.
    Input,
    /// Nothing drives it and nothing was deduced.
    Floating,
}

/// The complete recognition result for one netlist.
#[derive(Debug, Clone)]
pub struct Recognition {
    /// The channel-connected components.
    pub cccs: Vec<Ccc>,
    /// Device index → owning CCC.
    pub device_ccc: Vec<CccId>,
    /// Per-CCC classification, parallel to `cccs`.
    pub classes: Vec<CccClass>,
    /// Per-net role, indexed by net id.
    pub roles: Vec<NetRole>,
    /// All clock nets (declared + inferred + derived phases).
    pub clock_nets: Vec<NetId>,
    /// Recognized state elements.
    pub state_elements: Vec<StateElement>,
}

impl Recognition {
    /// Role of a net.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn role(&self, net: NetId) -> NetRole {
        self.roles[net.index()]
    }

    /// The class of the CCC that drives `net`, if any CCC lists it as an
    /// output.
    pub fn driver_class(&self, net: NetId) -> Option<&CccClass> {
        self.cccs
            .iter()
            .position(|c| c.outputs.contains(&net))
            .map(|i| &self.classes[i])
    }

    /// Whether a net was classified as dynamic.
    pub fn is_dynamic(&self, net: NetId) -> bool {
        self.role(net) == NetRole::Dynamic
    }

    /// All dynamic nets.
    pub fn dynamic_nets(&self) -> Vec<NetId> {
        (0..self.roles.len() as u32)
            .map(NetId)
            .filter(|&n| self.roles[n.index()] == NetRole::Dynamic)
            .collect()
    }
}

/// Runs the full recognition pipeline on a netlist.
pub fn recognize(netlist: &mut FlatNetlist) -> Recognition {
    let (cccs, device_ccc) = partition_cccs(netlist);
    // Clocks first: the family classifier needs to know which gate inputs
    // are clocks to tell a domino stage from a NAND with a clock input.
    let clock_nets = clocks::infer_clocks(netlist, &cccs);
    let classes: Vec<CccClass> = cccs
        .iter()
        .map(|c| classify_ccc(netlist, c, &clock_nets))
        .collect();
    let state_elements = state::find_state_elements(netlist, &cccs, &classes, &clock_nets);

    // Net roles, most specific wins.
    let mut roles = vec![NetRole::Floating; netlist.net_count()];
    for n in 0..netlist.net_count() as u32 {
        let id = NetId(n);
        if netlist.net_kind(id).is_rail() {
            roles[id.index()] = NetRole::Rail;
        } else if netlist.net_kind(id).is_driven_externally() {
            roles[id.index()] = NetRole::Input;
        }
    }
    for (ccc, class) in cccs.iter().zip(&classes) {
        for &net in &ccc.channel_nets {
            if roles[net.index()] != NetRole::Floating {
                continue;
            }
            roles[net.index()] = if class.dynamic_outputs.contains(&net) {
                NetRole::Dynamic
            } else if ccc.outputs.contains(&net) {
                match class.family {
                    LogicFamily::PassTransistor => NetRole::PassInternal,
                    _ => NetRole::Static,
                }
            } else {
                match class.family {
                    LogicFamily::PassTransistor => NetRole::PassInternal,
                    _ => NetRole::StackInternal,
                }
            };
        }
    }
    for &ck in &clock_nets {
        roles[ck.index()] = NetRole::Clock;
    }
    for se in &state_elements {
        for &net in &se.storage_nets {
            roles[net.index()] = NetRole::State;
        }
    }

    Recognition {
        cccs,
        device_ccc,
        classes,
        roles,
        clock_nets,
        state_elements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_netlist::{Device, NetKind};
    use cbv_tech::MosKind;

    /// Builds: clk-precharged domino AND2 followed by its static output
    /// inverter, plus a cross-coupled keeper pair elsewhere.
    fn domino_and2() -> FlatNetlist {
        let mut f = FlatNetlist::new("domino");
        let clk = f.add_net("clk", NetKind::Clock);
        let a = f.add_net("a", NetKind::Input);
        let b = f.add_net("b", NetKind::Input);
        let dyn_n = f.add_net("dyn", NetKind::Signal);
        let x = f.add_net("x", NetKind::Signal);
        let out = f.add_net("out", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        // Precharge.
        f.add_device(Device::mos(
            MosKind::Pmos,
            "mpre",
            clk,
            dyn_n,
            vdd,
            vdd,
            3e-6,
            0.35e-6,
        ));
        // Eval stack: a, b in series then clocked foot.
        f.add_device(Device::mos(
            MosKind::Nmos,
            "ma",
            a,
            dyn_n,
            x,
            gnd,
            4e-6,
            0.35e-6,
        ));
        let y = f.add_net("y", NetKind::Signal);
        f.add_device(Device::mos(
            MosKind::Nmos,
            "mb",
            b,
            x,
            y,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "mfoot",
            clk,
            y,
            gnd,
            gnd,
            6e-6,
            0.35e-6,
        ));
        // Output inverter (static).
        f.add_device(Device::mos(
            MosKind::Pmos,
            "mp1",
            dyn_n,
            out,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "mn1",
            dyn_n,
            out,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        f
    }

    #[test]
    fn domino_pipeline_roles() {
        let mut f = domino_and2();
        let r = recognize(&mut f);
        let dyn_n = f.find_net("dyn").unwrap();
        let out = f.find_net("out").unwrap();
        let clk = f.find_net("clk").unwrap();
        let x = f.find_net("x").unwrap();
        assert_eq!(r.role(dyn_n), NetRole::Dynamic, "precharged node");
        assert_eq!(r.role(out), NetRole::Static, "inverter output");
        assert_eq!(r.role(clk), NetRole::Clock);
        assert_eq!(r.role(x), NetRole::StackInternal);
        assert_eq!(r.dynamic_nets(), vec![dyn_n]);
    }

    #[test]
    fn driver_class_lookup() {
        let mut f = domino_and2();
        let r = recognize(&mut f);
        let dyn_n = f.find_net("dyn").unwrap();
        let class = r.driver_class(dyn_n).unwrap();
        assert!(matches!(class.family, LogicFamily::Dynamic { .. }));
        let out = f.find_net("out").unwrap();
        let class = r.driver_class(out).unwrap();
        assert_eq!(class.family, LogicFamily::StaticComplementary);
    }

    #[test]
    fn inputs_and_rails_classified() {
        let mut f = domino_and2();
        let r = recognize(&mut f);
        assert_eq!(r.role(f.find_net("a").unwrap()), NetRole::Input);
        assert_eq!(r.role(f.find_net("vdd").unwrap()), NetRole::Rail);
        assert_eq!(r.role(f.find_net("gnd").unwrap()), NetRole::Rail);
    }
}

//! State-element recognition.
//!
//! In a full-custom methodology "functional units and state-elements can
//! be invented on-the-fly" (§2), so there is no latch library to match
//! against. State is found structurally: a feedback loop in the
//! gate-connection graph of channel-connected components is storage. The
//! loop's composition then classifies it — a keeper hanging on a dynamic
//! node, a clock-cut level latch, or a plain cross-coupled pair.

use cbv_netlist::{Ccc, CccId, FlatNetlist, NetId};
use cbv_tech::MosKind;

use crate::family::{CccClass, LogicFamily};

/// Kinds of recognized state elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateKind {
    /// A weak device (or half-latch) restoring a dynamic node.
    Keeper,
    /// A transparent latch: feedback loop cut by a clocked pass or
    /// tristate element.
    LevelLatch,
    /// Cross-coupled static storage (SRAM cell core, set-reset pair).
    CrossCoupled,
}

/// One recognized state element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateElement {
    /// Classification.
    pub kind: StateKind,
    /// The components forming the feedback loop.
    pub cccs: Vec<CccId>,
    /// The nets that hold state (outputs of the loop components).
    pub storage_nets: Vec<NetId>,
    /// Clocks gating the loop, if any.
    pub clocks: Vec<NetId>,
}

/// Finds feedback loops in the CCC gate graph and classifies them.
pub fn find_state_elements(
    netlist: &FlatNetlist,
    cccs: &[Ccc],
    classes: &[CccClass],
    clock_nets: &[NetId],
) -> Vec<StateElement> {
    let n = cccs.len();
    // net -> driving ccc (as output)
    let mut driver: Vec<Option<usize>> = vec![None; netlist.net_count()];
    for (i, c) in cccs.iter().enumerate() {
        for &o in &c.outputs {
            driver[o.index()] = Some(i);
        }
    }
    // Edges: driver(ccc) -> reader(ccc) through gate inputs; record which
    // pass-channel feedback exists too (an output of i being a *channel*
    // net of j merges them into one CCC already, so only gate edges
    // matter between CCCs).
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (j, c) in cccs.iter().enumerate() {
        for &inp in &c.inputs {
            if let Some(i) = driver[inp.index()] {
                if i != j && !succ[i].contains(&j) {
                    succ[i].push(j);
                }
            }
        }
    }
    // Self-feedback inside one CCC: an output of the CCC is also one of
    // its own gate inputs (e.g. a keeper device in the same channel
    // group, or cross-coupled inverters that share channel nets).
    let mut self_loop = vec![false; n];
    for (i, c) in cccs.iter().enumerate() {
        for &inp in &c.inputs {
            if c.outputs.contains(&inp) {
                self_loop[i] = true;
            }
        }
    }

    // Tarjan SCC.
    let sccs = tarjan(n, &succ);

    let mut out = Vec::new();
    for comp in sccs {
        let is_loop = comp.len() > 1 || (comp.len() == 1 && self_loop[comp[0]]);
        if !is_loop {
            continue;
        }
        let mut storage_nets = Vec::new();
        let mut clocks = Vec::new();
        let mut kind = StateKind::CrossCoupled;
        let mut saw_pass = false;
        let mut saw_dynamic = false;
        for &i in &comp {
            for &o in &cccs[i].outputs {
                // Storage nets: outputs read *within* the loop.
                let read_in_loop = comp.iter().any(|&j| cccs[j].inputs.contains(&o));
                if read_in_loop && !storage_nets.contains(&o) {
                    storage_nets.push(o);
                }
            }
            match classes[i].family {
                LogicFamily::Dynamic { .. } => saw_dynamic = true,
                LogicFamily::PassTransistor => saw_pass = true,
                _ => {}
            }
            // Clocked devices in the loop.
            for &did in &cccs[i].devices {
                let d = netlist.device(did);
                if clock_nets.contains(&d.gate) && !clocks.contains(&d.gate) {
                    clocks.push(d.gate);
                }
            }
            // A tiny keeper device: PMOS feedback onto a dynamic node.
            for &did in &cccs[i].devices {
                let d = netlist.device(did);
                if d.kind == MosKind::Pmos
                    && classes
                        .iter()
                        .any(|cl| cl.dynamic_outputs.iter().any(|&dn| d.channel_touches(dn)))
                {
                    saw_dynamic = true;
                }
            }
        }
        if saw_dynamic {
            kind = StateKind::Keeper;
            // Only the dynamic node itself stores charge; the feedback
            // inverter's output is an ordinary driven net.
            storage_nets.retain(|&n| classes.iter().any(|c| c.dynamic_outputs.contains(&n)));
        } else if saw_pass || !clocks.is_empty() {
            kind = StateKind::LevelLatch;
            // A latch's true storage nodes are the ones a clocked channel
            // device can isolate; downstream combinational nets swept into
            // the same feedback SCC (e.g. logic inside an accumulator
            // loop) are not storage.
            if !clocks.is_empty() {
                storage_nets.retain(|&n| {
                    comp.iter().any(|&i| {
                        cccs[i].devices.iter().any(|&did| {
                            let d = netlist.device(did);
                            clock_nets.contains(&d.gate) && d.channel_touches(n)
                        })
                    })
                });
            }
        }
        storage_nets.sort();
        out.push(StateElement {
            kind,
            cccs: comp.iter().map(|&i| CccId(i as u32)).collect(),
            storage_nets,
            clocks,
        });
    }
    out
}

/// Iterative Tarjan strongly-connected components; returns components in
/// reverse topological order.
fn tarjan(n: usize, succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct Info {
        index: u32,
        lowlink: u32,
        on_stack: bool,
        visited: bool,
    }
    let mut info = vec![
        Info {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut counter = 0u32;
    let mut stack: Vec<usize> = Vec::new();
    let mut comps: Vec<Vec<usize>> = Vec::new();

    for root in 0..n {
        if info[root].visited {
            continue;
        }
        // Explicit DFS stack: (node, next-successor-index).
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut si)) = dfs.last_mut() {
            if *si == 0 {
                info[v].visited = true;
                info[v].index = counter;
                info[v].lowlink = counter;
                counter += 1;
                stack.push(v);
                info[v].on_stack = true;
            }
            if *si < succ[v].len() {
                let w = succ[v][*si];
                *si += 1;
                if !info[w].visited {
                    dfs.push((w, 0));
                } else if info[w].on_stack {
                    info[v].lowlink = info[v].lowlink.min(info[w].index);
                }
            } else {
                dfs.pop();
                if let Some(&mut (parent, _)) = dfs.last_mut() {
                    let low = info[v].lowlink;
                    info[parent].lowlink = info[parent].lowlink.min(low);
                }
                if info[v].lowlink == info[v].index {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        info[w].on_stack = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clocks::infer_clocks;
    use crate::family::classify_ccc;
    use cbv_netlist::{partition_cccs, Device, NetKind};

    fn run(f: &mut FlatNetlist) -> Vec<StateElement> {
        let (cccs, _) = partition_cccs(f);
        let clocks = infer_clocks(f, &cccs);
        let classes: Vec<CccClass> = cccs.iter().map(|c| classify_ccc(f, c, &clocks)).collect();
        find_state_elements(f, &cccs, &classes, &clocks)
    }

    fn add_inverter(f: &mut FlatNetlist, name: &str, a: NetId, y: NetId, vdd: NetId, gnd: NetId) {
        f.add_device(Device::mos(
            MosKind::Pmos,
            format!("{name}_p"),
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            format!("{name}_n"),
            a,
            y,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
    }

    #[test]
    fn cross_coupled_inverters_found() {
        let mut f = FlatNetlist::new("cc");
        let q = f.add_net("q", NetKind::Output);
        let qb = f.add_net("qb", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        add_inverter(&mut f, "i1", q, qb, vdd, gnd);
        add_inverter(&mut f, "i2", qb, q, vdd, gnd);
        let ses = run(&mut f);
        assert_eq!(ses.len(), 1);
        assert_eq!(ses[0].kind, StateKind::CrossCoupled);
        assert_eq!(ses[0].storage_nets, vec![q, qb]);
    }

    #[test]
    fn inverter_chain_is_not_state() {
        let mut f = FlatNetlist::new("chain");
        let a = f.add_net("a", NetKind::Input);
        let b = f.add_net("b", NetKind::Signal);
        let c = f.add_net("c", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        add_inverter(&mut f, "i1", a, b, vdd, gnd);
        add_inverter(&mut f, "i2", b, c, vdd, gnd);
        assert!(run(&mut f).is_empty());
    }

    #[test]
    fn transparent_latch_found() {
        // d -passgate(ck)- x ; x -> inv -> y ; y -> inv -> x (feedback).
        let mut f = FlatNetlist::new("latch");
        let d = f.add_net("d", NetKind::Input);
        let ck = f.add_net("ck", NetKind::Clock);
        let x = f.add_net("x", NetKind::Signal);
        let y = f.add_net("y", NetKind::Output);
        let fb = f.add_net("fb", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Nmos,
            "pass",
            ck,
            d,
            x,
            gnd,
            2e-6,
            0.35e-6,
        ));
        add_inverter(&mut f, "fwd", x, y, vdd, gnd);
        add_inverter(&mut f, "bck", y, fb, vdd, gnd);
        // Weak feedback through a second pass device gated by ckb... use
        // a direct weak connection: feedback inverter drives x through a
        // pass device gated by vdd-as-signal is unusual; instead connect
        // fb to x via always-on nmos gated by vdd? Rails as gates are
        // legal in full custom. Simpler: drive x directly (fb == x) is a
        // short; use a pass gated by ck (jam latch style).
        f.add_device(Device::mos(
            MosKind::Nmos,
            "fbk",
            ck,
            fb,
            x,
            gnd,
            1e-6,
            0.7e-6,
        ));
        let ses = run(&mut f);
        assert_eq!(ses.len(), 1, "one storage loop");
        assert_eq!(ses[0].kind, StateKind::LevelLatch);
        assert!(ses[0].clocks.contains(&ck));
    }

    #[test]
    fn domino_keeper_found() {
        // Dynamic node with half-keeper: dyn -> inverter -> out; weak
        // PMOS from vdd to dyn gated by out.
        let mut f = FlatNetlist::new("keeper");
        let clk = f.add_net("clk", NetKind::Clock);
        let a = f.add_net("a", NetKind::Input);
        let dyn_n = f.add_net("dyn", NetKind::Signal);
        let out = f.add_net("out", NetKind::Output);
        let x = f.add_net("x", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pre",
            clk,
            dyn_n,
            vdd,
            vdd,
            3e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "na",
            a,
            dyn_n,
            x,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "foot",
            clk,
            x,
            gnd,
            gnd,
            6e-6,
            0.35e-6,
        ));
        add_inverter(&mut f, "oinv", dyn_n, out, vdd, gnd);
        // Keeper: weak pmos, gate = out, channel vdd->dyn.
        f.add_device(Device::mos(
            MosKind::Pmos,
            "keep",
            out,
            dyn_n,
            vdd,
            vdd,
            0.8e-6,
            0.7e-6,
        ));
        let ses = run(&mut f);
        assert_eq!(ses.len(), 1);
        assert_eq!(ses[0].kind, StateKind::Keeper);
    }

    #[test]
    fn tarjan_handles_diamond() {
        // Pure function test: diamond (no cycle) + triangle (cycle).
        let succ = vec![
            vec![1, 2], // 0 -> 1,2
            vec![3],    // 1 -> 3
            vec![3],    // 2 -> 3
            vec![],     // 3
            vec![5],    // 4 -> 5
            vec![6],    // 5 -> 6
            vec![4],    // 6 -> 4 (cycle 4-5-6)
        ];
        let comps = tarjan(7, &succ);
        let cyc: Vec<_> = comps.iter().filter(|c| c.len() > 1).collect();
        assert_eq!(cyc.len(), 1);
        assert_eq!(*cyc[0], vec![4, 5, 6]);
        assert_eq!(comps.iter().map(|c| c.len()).sum::<usize>(), 7);
    }
}

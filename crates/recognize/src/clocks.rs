//! Clock-net inference.
//!
//! §4.3: "The automatic recognition of state-elements, clocking nodes,
//! glitch sensitive nodes, and data nodes is essential." Declared clocks
//! are trusted; additional clocks are inferred from precharge topology
//! (a net that gates both a precharging PMOS and a footing NMOS on
//! *different* nodes of one component), and clock phases are derived by
//! propagation through inverters and buffers.

use cbv_netlist::{Ccc, FlatNetlist, NetId, NetKind};
use cbv_tech::MosKind;

/// Infers the set of clock nets: declared ∪ inferred ∪ derived phases.
pub fn infer_clocks(netlist: &FlatNetlist, cccs: &[Ccc]) -> Vec<NetId> {
    let mut clocks: Vec<NetId> = (0..netlist.net_count() as u32)
        .map(NetId)
        .filter(|&n| netlist.net_kind(n) == NetKind::Clock)
        .collect();

    // Inference: precharge + foot pattern.
    for ccc in cccs {
        for &candidate in &ccc.inputs {
            if clocks.contains(&candidate) {
                continue;
            }
            let mut precharges: Vec<(NetId, f64)> = Vec::new();
            let mut foots: Vec<NetId> = Vec::new();
            for &did in &ccc.devices {
                let d = netlist.device(did);
                if d.gate != candidate {
                    continue;
                }
                let (s, dr) = d.channel();
                match d.kind {
                    MosKind::Pmos => {
                        // vdd -> signal: precharge candidate.
                        for (rail, other) in [(s, dr), (dr, s)] {
                            if netlist.net_kind(rail) == NetKind::Power
                                && !netlist.net_kind(other).is_rail()
                            {
                                precharges.push((other, d.aspect()));
                            }
                        }
                    }
                    MosKind::Nmos => {
                        for (rail, other) in [(s, dr), (dr, s)] {
                            if netlist.net_kind(rail) == NetKind::Ground
                                && !netlist.net_kind(other).is_rail()
                            {
                                foots.push(other);
                            }
                        }
                    }
                }
            }
            // Clock-like: precharges one node, foots a *different* node
            // (an inverter input precharges and pulls the same node), and
            // is the node's dominant pull-up — any other PMOS on the
            // precharged node must be a weak keeper, not parallel logic
            // (which is what distinguishes a domino precharge from a
            // NAND input).
            let clock_like = precharges.iter().any(|&(p, pre_aspect)| {
                if !foots.iter().any(|&f| f != p) {
                    return false;
                }
                ccc.devices.iter().all(|&did| {
                    let d = netlist.device(did);
                    d.kind != MosKind::Pmos
                        || d.gate == candidate
                        || !d.channel_touches(p)
                        || d.aspect() < 0.5 * pre_aspect
                })
            });
            if clock_like {
                clocks.push(candidate);
            }
        }
    }

    // Phase derivation: propagate through inverter/buffer CCCs (exactly
    // one input, which is a known clock, and a complementary 2-device
    // structure).
    let mut changed = true;
    while changed {
        changed = false;
        for ccc in cccs {
            if ccc.inputs.len() != 1 || !clocks.contains(&ccc.inputs[0]) {
                continue;
            }
            // Structural inverter check: one PMOS + one NMOS sharing the
            // output.
            if ccc.devices.len() != 2 {
                continue;
            }
            let d0 = netlist.device(ccc.devices[0]);
            let d1 = netlist.device(ccc.devices[1]);
            if d0.kind == d1.kind {
                continue;
            }
            for &out in &ccc.outputs {
                if !clocks.contains(&out) {
                    clocks.push(out);
                    changed = true;
                }
            }
        }
    }
    clocks.sort();
    clocks.dedup();
    clocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_netlist::{partition_cccs, Device};

    #[test]
    fn declared_clock_found() {
        let mut f = FlatNetlist::new("t");
        let ck = f.add_net("ck", NetKind::Clock);
        let (cccs, _) = partition_cccs(&mut f);
        assert_eq!(infer_clocks(&f, &cccs), vec![ck]);
    }

    #[test]
    fn undeclared_precharge_clock_inferred() {
        // Same domino stage but the clock arrives as a plain signal.
        let mut f = FlatNetlist::new("dom");
        let clk = f.add_net("clk", NetKind::Signal);
        let a = f.add_net("a", NetKind::Input);
        let d = f.add_net("d", NetKind::Output);
        let x = f.add_net("x", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pre",
            clk,
            d,
            vdd,
            vdd,
            3e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "na",
            a,
            d,
            x,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "foot",
            clk,
            x,
            gnd,
            gnd,
            6e-6,
            0.35e-6,
        ));
        let (cccs, _) = partition_cccs(&mut f);
        let clocks = infer_clocks(&f, &cccs);
        assert!(
            clocks.contains(&clk),
            "precharge+foot net must be inferred as clock"
        );
    }

    #[test]
    fn inverter_input_not_inferred_as_clock() {
        let mut f = FlatNetlist::new("inv");
        let a = f.add_net("a", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "p",
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "n",
            a,
            y,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        let (cccs, _) = partition_cccs(&mut f);
        assert!(infer_clocks(&f, &cccs).is_empty());
    }

    #[test]
    fn phases_derived_through_inverter_chain() {
        let mut f = FlatNetlist::new("phases");
        let ck = f.add_net("ck", NetKind::Clock);
        let ckb = f.add_net("ckb", NetKind::Signal);
        let ck2 = f.add_net("ck2", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        // Two inverters: ck -> ckb -> ck2. ckb/ck2 must be read somewhere
        // to count as CCC outputs; add dummy loads.
        let dummy1 = f.add_net("d1", NetKind::Signal);
        let dummy2 = f.add_net("d2", NetKind::Output);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "p1",
            ck,
            ckb,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "n1",
            ck,
            ckb,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "p2",
            ckb,
            ck2,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "n2",
            ckb,
            ck2,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "p3",
            ck2,
            dummy1,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "n3",
            ck2,
            dummy1,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        let _ = dummy2;
        let (cccs, _) = partition_cccs(&mut f);
        let clocks = infer_clocks(&f, &cccs);
        assert!(clocks.contains(&ck));
        assert!(clocks.contains(&ckb), "first derived phase");
        assert!(clocks.contains(&ck2), "second derived phase");
        // dummy1 is never read by any gate, so it is not a CCC output and
        // cannot be derived as a phase.
        assert!(!clocks.contains(&dummy1));
    }
}

//! Combinational equivalence via BDDs.

use std::collections::HashMap;

use cbv_bdd::{Bdd, Ref};
use cbv_netlist::FlatNetlist;
use cbv_recognize::{BoolExpr, LogicFamily, Recognition};
use cbv_rtl::boolnet::{BoolNet, Gate};

/// Result of a combinational comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CombResult {
    /// Functions agree for every input assignment.
    Equivalent,
    /// Functions differ; a distinguishing assignment over named inputs.
    Counterexample(Vec<(String, bool)>),
}

/// Variable table: input name → BDD variable id.
#[derive(Debug, Default, Clone)]
pub struct VarTable {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

impl VarTable {
    /// The variable for a name, allocating on first use.
    pub fn var(&mut self, name: &str) -> u32 {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = self.names.len() as u32;
        self.by_name.insert(name.to_owned(), v);
        self.names.push(name.to_owned());
        v
    }

    /// Name of a variable.
    pub fn name(&self, var: u32) -> &str {
        &self.names[var as usize]
    }
}

/// Converts a purely combinational [`BoolNet`] into per-output BDD
/// vectors. Input bit names become BDD variables via `vars`.
///
/// # Errors
///
/// Returns `Err` if the network contains state bits.
pub fn boolnet_to_bdds(
    net: &BoolNet,
    mgr: &mut Bdd,
    vars: &mut VarTable,
) -> Result<Vec<(String, Vec<Ref>)>, String> {
    if !net.states.is_empty() {
        return Err(format!(
            "network has {} state bits; combinational checking requires none",
            net.states.len()
        ));
    }
    let mut map: Vec<Ref> = Vec::with_capacity(net.gate_count());
    for g in net.gates() {
        let r = match *g {
            Gate::Const(b) => mgr.constant(b),
            Gate::Input(k) => {
                let v = vars.var(&net.inputs[k as usize]);
                mgr.var(v)
            }
            Gate::State(_) => unreachable!("states checked above"),
            Gate::Not(a) => mgr.not(map[a.index()]),
            Gate::And(a, b) => mgr.and(map[a.index()], map[b.index()]),
            Gate::Or(a, b) => mgr.or(map[a.index()], map[b.index()]),
            Gate::Xor(a, b) => mgr.xor(map[a.index()], map[b.index()]),
            Gate::Mux(s, a, b) => mgr.ite(map[s.index()], map[a.index()], map[b.index()]),
        };
        map.push(r);
    }
    Ok(net
        .outputs
        .iter()
        .map(|(name, bits)| (name.clone(), bits.iter().map(|b| map[b.index()]).collect()))
        .collect())
}

/// Converts a transistor-extracted [`BoolExpr`] to a BDD. Net ids become
/// variables named after the netlist's net names.
pub fn expr_to_bdd(
    expr: &BoolExpr,
    netlist: &FlatNetlist,
    mgr: &mut Bdd,
    vars: &mut VarTable,
) -> Ref {
    match expr {
        BoolExpr::Const(b) => mgr.constant(*b),
        BoolExpr::Var(net) => {
            let v = vars.var(netlist.net_name(*net));
            mgr.var(v)
        }
        BoolExpr::Not(e) => {
            let inner = expr_to_bdd(e, netlist, mgr, vars);
            mgr.not(inner)
        }
        BoolExpr::And(es) => {
            let parts: Vec<Ref> = es
                .iter()
                .map(|e| expr_to_bdd(e, netlist, mgr, vars))
                .collect();
            mgr.and_all(parts)
        }
        BoolExpr::Or(es) => {
            let parts: Vec<Ref> = es
                .iter()
                .map(|e| expr_to_bdd(e, netlist, mgr, vars))
                .collect();
            mgr.or_all(parts)
        }
    }
}

/// What a circuit output should implement.
#[derive(Debug, Clone)]
pub struct OutputSpec {
    /// The circuit net (by name) under check.
    pub net: String,
    /// The golden function as a BDD reference (built by the caller in the
    /// same manager / variable table).
    pub golden: Ref,
    /// If the circuit net is the *complement* rail of a dual-rail pair,
    /// the checker compares against `!golden`.
    pub complemented: bool,
}

/// Checks recognized circuit output functions against golden BDDs.
///
/// The circuit functions come from recognition: a static complementary
/// gate's output is `!pull_down`; a dynamic (domino) node evaluates to
/// `!eval_function` after precharge, and its follower inverter restores
/// the positive sense — the caller picks the right net and
/// `complemented` flag to express that.
///
/// # Errors
///
/// Returns `Err` when a net is not a recognized output or its function
/// could not be extracted.
pub fn check_circuit_outputs(
    netlist: &FlatNetlist,
    recognition: &Recognition,
    specs: &[OutputSpec],
    mgr: &mut Bdd,
    vars: &mut VarTable,
) -> Result<Vec<(String, CombResult)>, String> {
    let mut results = Vec::new();
    for spec in specs {
        let net = netlist
            .find_net(&spec.net)
            .ok_or_else(|| format!("no net named `{}`", spec.net))?;
        let class = recognition
            .driver_class(net)
            .ok_or_else(|| format!("`{}` is not a recognized circuit output", spec.net))?;
        let out_fn = class
            .outputs
            .iter()
            .find(|o| o.net == net)
            .ok_or_else(|| format!("no output function for `{}`", spec.net))?;
        // The settled logic value of the output.
        let circuit_expr = match class.family {
            LogicFamily::Dynamic { .. } => {
                // After evaluate, the node is the complement of its
                // pull-down condition (with clocks treated as asserted).
                out_fn.pull_down.clone().negate()
            }
            _ => out_fn.function.clone().ok_or_else(|| {
                format!(
                    "`{}` has non-complementary pull networks; no settled function",
                    spec.net
                )
            })?,
        };
        let mut circuit = expr_to_bdd(&circuit_expr, netlist, mgr, vars);
        // Clock variables are asserted during evaluation.
        for &ck in &recognition.clock_nets {
            let v = vars.var(netlist.net_name(ck));
            circuit = mgr.restrict(circuit, v, true);
        }
        let golden = if spec.complemented {
            mgr.not(spec.golden)
        } else {
            spec.golden
        };
        let diff = mgr.xor(circuit, golden);
        let result = match mgr.any_sat(diff) {
            None => CombResult::Equivalent,
            Some(assignment) => CombResult::Counterexample(
                assignment
                    .into_iter()
                    .map(|(v, b)| (vars.name(v).to_owned(), b))
                    .collect(),
            ),
        };
        results.push((spec.net.clone(), result));
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_netlist::{Device, NetKind};
    use cbv_recognize::recognize;
    use cbv_rtl::{blast::blast, compile};
    use cbv_tech::MosKind;

    #[test]
    fn two_rtl_adders_equivalent() {
        // Ripple expression vs library `+`: same function.
        let a = compile(
            "module m(in a[4], in b[4], out s[4]) { assign s = a + b; }",
            "m",
        )
        .unwrap();
        let b = compile(
            "module m(in a[4], in b[4], out s[4]) {\n\
               wire c0 = a[0] & b[0];\n\
               wire s0 = a[0] ^ b[0];\n\
               wire s1 = a[1] ^ b[1] ^ c0;\n\
               wire c1 = (a[1] & b[1]) | (c0 & (a[1] ^ b[1]));\n\
               wire s2 = a[2] ^ b[2] ^ c1;\n\
               wire c2 = (a[2] & b[2]) | (c1 & (a[2] ^ b[2]));\n\
               wire s3 = a[3] ^ b[3] ^ c2;\n\
               assign s = {s3, s2, s1, s0};\n\
             }",
            "m",
        )
        .unwrap();
        let na = blast(&a).unwrap();
        let nb = blast(&b).unwrap();
        let mut mgr = Bdd::new();
        let mut vars = VarTable::default();
        let oa = boolnet_to_bdds(&na, &mut mgr, &mut vars).unwrap();
        let ob = boolnet_to_bdds(&nb, &mut mgr, &mut vars).unwrap();
        let sa = &oa.iter().find(|(n, _)| n == "s").unwrap().1;
        let sb = &ob.iter().find(|(n, _)| n == "s").unwrap().1;
        assert_eq!(sa, sb, "canonical BDDs must coincide bit for bit");
    }

    #[test]
    fn different_functions_give_counterexample() {
        let a = compile("module m(in x[3], out y) { assign y = &x; }", "m").unwrap();
        let b = compile("module m(in x[3], out y) { assign y = |x; }", "m").unwrap();
        let (na, nb) = (blast(&a).unwrap(), blast(&b).unwrap());
        let mut mgr = Bdd::new();
        let mut vars = VarTable::default();
        let oa = boolnet_to_bdds(&na, &mut mgr, &mut vars).unwrap();
        let ob = boolnet_to_bdds(&nb, &mut mgr, &mut vars).unwrap();
        let ya = oa[0].1[0];
        let yb = ob[0].1[0];
        let diff = mgr.xor(ya, yb);
        assert!(mgr.any_sat(diff).is_some());
    }

    #[test]
    fn nand_circuit_matches_rtl() {
        // Transistor NAND vs RTL ~(a&b).
        let mut f = FlatNetlist::new("nand2");
        let a = f.add_net("a[0]", NetKind::Input);
        let b = f.add_net("b[0]", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let x = f.add_net("x", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pa",
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pb",
            b,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "na",
            a,
            y,
            x,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "nb",
            b,
            x,
            gnd,
            gnd,
            4e-6,
            0.35e-6,
        ));
        let rec = recognize(&mut f);

        let golden_rtl =
            compile("module g(in a, in b, out y) { assign y = ~(a & b); }", "g").unwrap();
        let gnet = blast(&golden_rtl).unwrap();
        let mut mgr = Bdd::new();
        let mut vars = VarTable::default();
        let gout = boolnet_to_bdds(&gnet, &mut mgr, &mut vars).unwrap();
        let golden = gout.iter().find(|(n, _)| n == "y").unwrap().1[0];

        let results = check_circuit_outputs(
            &f,
            &rec,
            &[OutputSpec {
                net: "y".into(),
                golden,
                complemented: false,
            }],
            &mut mgr,
            &mut vars,
        )
        .unwrap();
        assert_eq!(results[0].1, CombResult::Equivalent);
    }

    #[test]
    fn wrong_circuit_is_caught_with_counterexample() {
        // NOR circuit checked against a NAND spec.
        let mut f = FlatNetlist::new("nor2");
        let a = f.add_net("a[0]", NetKind::Input);
        let b = f.add_net("b[0]", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let p = f.add_net("p", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pa",
            a,
            p,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pb",
            b,
            y,
            p,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "na",
            a,
            y,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "nb",
            b,
            y,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        let rec = recognize(&mut f);
        let golden_rtl =
            compile("module g(in a, in b, out y) { assign y = ~(a & b); }", "g").unwrap();
        let gnet = blast(&golden_rtl).unwrap();
        let mut mgr = Bdd::new();
        let mut vars = VarTable::default();
        let gout = boolnet_to_bdds(&gnet, &mut mgr, &mut vars).unwrap();
        let golden = gout.iter().find(|(n, _)| n == "y").unwrap().1[0];
        let results = check_circuit_outputs(
            &f,
            &rec,
            &[OutputSpec {
                net: "y".into(),
                golden,
                complemented: false,
            }],
            &mut mgr,
            &mut vars,
        )
        .unwrap();
        match &results[0].1 {
            CombResult::Counterexample(cex) => {
                // NOR != NAND exactly when a != b.
                assert!(!cex.is_empty());
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn domino_stage_checks_against_positive_function() {
        // Footed domino AND2: dynamic node = !(a&b) during eval.
        let mut f = FlatNetlist::new("dom");
        let clk = f.add_net("clk", NetKind::Clock);
        let a = f.add_net("a[0]", NetKind::Input);
        let b = f.add_net("b[0]", NetKind::Input);
        let d = f.add_net("dyn", NetKind::Output);
        let m = f.add_net("m", NetKind::Signal);
        let ft = f.add_net("ft", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pre",
            clk,
            d,
            vdd,
            vdd,
            3e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "na",
            a,
            d,
            m,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "nb",
            b,
            m,
            ft,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "foot",
            clk,
            ft,
            gnd,
            gnd,
            6e-6,
            0.35e-6,
        ));
        let rec = recognize(&mut f);
        let golden_rtl = compile("module g(in a, in b, out y) { assign y = a & b; }", "g").unwrap();
        let gnet = blast(&golden_rtl).unwrap();
        let mut mgr = Bdd::new();
        let mut vars = VarTable::default();
        let gout = boolnet_to_bdds(&gnet, &mut mgr, &mut vars).unwrap();
        let golden = gout.iter().find(|(n, _)| n == "y").unwrap().1[0];
        // The dynamic node is the *complement* of the AND during eval.
        let results = check_circuit_outputs(
            &f,
            &rec,
            &[OutputSpec {
                net: "dyn".into(),
                golden,
                complemented: true,
            }],
            &mut mgr,
            &mut vars,
        )
        .unwrap();
        assert_eq!(results[0].1, CombResult::Equivalent, "{results:?}");
    }
}

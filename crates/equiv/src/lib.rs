//! `cbv-equiv` — RTL ↔ schematic equivalence checking.
//!
//! §4.1: "The second method for functional correctness of circuits is
//! logical equivalence checking. This does not require input stimulus,
//! however a common difficulty is the amount of logical difference that
//! an equivalence-checking tool can accommodate. ... a counter coded in
//! the Behavioral/RTL model with an output every five events may be
//! implemented in the circuit as a shift register with a cyclic value of
//! five. In this example, both achieve the same behavior, but are
//! significantly different in internal implementations."
//!
//! Two engines:
//!
//! * [`comb`] — combinational equivalence through BDDs: gate networks
//!   (bit-blasted RTL) and transistor-extracted boolean functions are
//!   both canonicalized in one [`cbv_bdd::Bdd`] manager and compared
//!   node-for-node; counterexamples come back as input assignments.
//!   Handles the dual-rail mapping (a single RTL output implemented as
//!   complementary rails).
//! * [`seq`] — sequential equivalence by product-machine reachability:
//!   two designs with **arbitrarily different state encodings** are run
//!   from reset through every reachable joint state under exhaustive
//!   inputs; any divergence of declared outputs is reported with its
//!   distinguishing trace length. This is exactly what the paper's
//!   counter ⇔ shift-register example requires.

pub mod comb;
pub mod seq;

pub use comb::{boolnet_to_bdds, check_circuit_outputs, expr_to_bdd, CombResult, OutputSpec};
pub use seq::{check_sequential, SeqResult};

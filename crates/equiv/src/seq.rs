//! Sequential equivalence by product-machine reachability.
//!
//! Two designs with completely different state encodings are equivalent
//! when, started from reset, no input sequence can make their declared
//! outputs differ. The checker walks the *product machine*: the set of
//! joint states `(state_a, state_b)` reachable from `(reset_a, reset_b)`
//! under all inputs, verifying output agreement in every visited state.
//!
//! This handles the paper's counter ⇔ shift-register example and any
//! other "same behavior, significantly different internal
//! implementation" pair — without stimulus.

use std::collections::{HashSet, VecDeque};

use cbv_rtl::{interp::Interp, RtlDesign};

/// Result of a sequential check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqResult {
    /// No reachable joint state distinguishes the designs.
    Equivalent {
        /// How many joint states were explored.
        states_explored: usize,
    },
    /// A distinguishing execution exists.
    NotEquivalent {
        /// Input vectors (per cycle, per input in declaration order)
        /// leading to the divergence.
        trace: Vec<Vec<u64>>,
        /// The output that differed.
        output: String,
        /// Value from design A.
        value_a: u64,
        /// Value from design B.
        value_b: u64,
    },
    /// The exploration limit was exceeded (state space too large).
    Inconclusive {
        /// How many joint states were explored before giving up.
        states_explored: usize,
    },
}

/// Checks sequential equivalence of two designs.
///
/// Requirements (checked): identical input lists (names and widths),
/// `outputs` present in both, identical clock lists, no CAMs, and total
/// input width ≤ 20 bits (exhaustive input enumeration).
///
/// `max_states` bounds the joint-state exploration.
///
/// # Errors
///
/// Returns `Err` with a description when the designs cannot be compared.
pub fn check_sequential(
    a: &RtlDesign,
    b: &RtlDesign,
    outputs: &[&str],
    max_states: usize,
) -> Result<SeqResult, String> {
    if a.inputs != b.inputs {
        return Err(format!(
            "input lists differ: {:?} vs {:?}",
            a.inputs, b.inputs
        ));
    }
    if a.clocks != b.clocks {
        return Err(format!(
            "clock lists differ: {:?} vs {:?}",
            a.clocks, b.clocks
        ));
    }
    for o in outputs {
        if a.output(o).is_none() || b.output(o).is_none() {
            return Err(format!("output `{o}` missing from one design"));
        }
    }
    if !a.cams.is_empty() || !b.cams.is_empty() {
        return Err("designs with CAM arrays are not supported by explicit-state checking".into());
    }
    let total_input_bits: u32 = a.inputs.iter().map(|(_, w)| *w).sum();
    if total_input_bits > 20 {
        return Err(format!(
            "total input width {total_input_bits} exceeds the exhaustive-enumeration limit of 20"
        ));
    }

    let mut sim_a = Interp::new(a);
    let mut sim_b = Interp::new(b);
    let input_combos: u64 = 1u64 << total_input_bits;

    // Joint state = (regs_a, regs_b).
    type Joint = (Vec<u64>, Vec<u64>);
    let initial: Joint = (sim_a.reg_state(), sim_b.reg_state());
    let mut seen: HashSet<Joint> = HashSet::new();
    seen.insert(initial.clone());
    // Each queue entry carries the input trace that reached it.
    let mut queue: VecDeque<(Joint, Vec<Vec<u64>>)> = VecDeque::new();
    queue.push_back((initial, Vec::new()));

    let decode = |combo: u64, inputs: &[(String, u32)]| -> Vec<u64> {
        let mut out = Vec::with_capacity(inputs.len());
        let mut shift = 0;
        for (_, w) in inputs {
            let mask = if *w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
            out.push((combo >> shift) & mask);
            shift += w;
        }
        out
    };

    while let Some((state, trace)) = queue.pop_front() {
        for combo in 0..input_combos {
            let in_vals = decode(combo, &a.inputs);
            sim_a.set_reg_state(&state.0);
            sim_b.set_reg_state(&state.1);
            for (i, (name, _)) in a.inputs.iter().enumerate() {
                sim_a.set_input(name, in_vals[i]);
                sim_b.set_input(name, in_vals[i]);
            }
            // Outputs must agree *in this state under these inputs*.
            for o in outputs {
                let va = sim_a.output(o);
                let vb = sim_b.output(o);
                if va != vb {
                    let mut t = trace.clone();
                    t.push(in_vals.clone());
                    return Ok(SeqResult::NotEquivalent {
                        trace: t,
                        output: (*o).to_owned(),
                        value_a: va,
                        value_b: vb,
                    });
                }
            }
            // Advance both machines one cycle (every clock, in order).
            for ck in &a.clocks {
                sim_a.step(ck);
                sim_b.step(ck);
            }
            let next: Joint = (sim_a.reg_state(), sim_b.reg_state());
            if seen.insert(next.clone()) {
                if seen.len() > max_states {
                    return Ok(SeqResult::Inconclusive {
                        states_explored: seen.len(),
                    });
                }
                let mut t = trace.clone();
                t.push(in_vals);
                queue.push_back((next, t));
            }
        }
    }
    Ok(SeqResult::Equivalent {
        states_explored: seen.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_rtl::compile;

    /// The paper's example: a mod-5 counter...
    fn counter5() -> RtlDesign {
        compile(
            "module tick5(clock ck, in rst, out tick) {\n\
               reg cnt[3];\n\
               at posedge(ck) { if (rst) { cnt <= 0; } else if (cnt == 4) { cnt <= 0; } else { cnt <= cnt + 1; } }\n\
               assign tick = cnt == 4;\n\
             }",
            "tick5",
        )
        .unwrap()
    }

    /// ...implemented as a one-hot rotating shift register of period 5.
    fn shifter5() -> RtlDesign {
        compile(
            "module tick5(clock ck, in rst, out tick) {\n\
               reg s[5] = 1;\n\
               at posedge(ck) { if (rst) { s <= 1; } else { s <= {s[3:0], s[4]}; } }\n\
               assign tick = s[4];\n\
             }",
            "tick5",
        )
        .unwrap()
    }

    #[test]
    fn counter_equals_shift_register() {
        let a = counter5();
        let b = shifter5();
        let r = check_sequential(&a, &b, &["tick"], 10_000).unwrap();
        match r {
            SeqResult::Equivalent { states_explored } => {
                // 5 counter states x 5 shifter phases, lockstep: exactly 5
                // reachable joint states plus reset-perturbed ones.
                assert!(states_explored >= 5, "explored {states_explored}");
            }
            other => panic!("expected equivalence, got {other:?}"),
        }
    }

    /// A two-phase implementation (posedge stage feeding a negedge stage
    /// on the same clock) is cycle-equivalent to its flat posedge spec:
    /// the product machine steps both with full `step` cycles, so the
    /// intra-cycle φ1→φ2 transfer is invisible at cycle boundaries.
    #[test]
    fn two_phase_impl_matches_posedge_spec() {
        let spec = compile(
            "module m(clock ck, in d[3], out q[3]) { reg b[3]; at posedge(ck) { b <= d + 1; } assign q = b; }",
            "m",
        )
        .unwrap();
        let impl2 = compile(
            "module m(clock ck, in d[3], out q[3]) {\n\
               reg a[3]; reg b[3];\n\
               at posedge(ck) { a <= d; }\n\
               at negedge(ck) { b <= a + 1; }\n\
               assign q = b;\n\
             }",
            "m",
        )
        .unwrap();
        let r = check_sequential(&spec, &impl2, &["q"], 10_000).unwrap();
        assert!(matches!(r, SeqResult::Equivalent { .. }), "{r:?}");
    }

    /// The same two-phase implementation with the stages on *separate*
    /// clocks is NOT cycle-equivalent: the transfer takes a full extra
    /// cycle, and the product machine finds the off-by-one trace.
    #[test]
    fn extra_pipeline_stage_distinguished() {
        let spec = compile(
            "module m(clock ck, in d[3], out q[3]) { reg b[3]; at posedge(ck) { b <= d + 1; } assign q = b; }",
            "m",
        )
        .unwrap();
        let late = compile(
            "module m(clock ck, in d[3], out q[3]) {\n\
               reg a[3]; reg b[3];\n\
               at posedge(ck) { a <= d; b <= a + 1; }\n\
               assign q = b;\n\
             }",
            "m",
        )
        .unwrap();
        let r = check_sequential(&spec, &late, &["q"], 10_000).unwrap();
        assert!(
            matches!(r, SeqResult::NotEquivalent { .. }),
            "an extra full-cycle stage must be caught: {r:?}"
        );
    }

    #[test]
    fn mod4_vs_mod5_distinguished() {
        let a = counter5();
        let b = compile(
            "module tick5(clock ck, in rst, out tick) {\n\
               reg cnt[3];\n\
               at posedge(ck) { if (rst) { cnt <= 0; } else if (cnt == 3) { cnt <= 0; } else { cnt <= cnt + 1; } }\n\
               assign tick = cnt == 3;\n\
             }",
            "tick5",
        )
        .unwrap();
        let r = check_sequential(&a, &b, &["tick"], 10_000).unwrap();
        match r {
            SeqResult::NotEquivalent { trace, output, .. } => {
                assert_eq!(output, "tick");
                // Divergence appears within 4 cycles of reset-free count.
                assert!(trace.len() <= 5, "trace {trace:?}");
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn different_inputs_rejected() {
        let a = counter5();
        let b = compile(
            "module tick5(clock ck, in go, out tick) { reg r; at posedge(ck) { r <= go; } assign tick = r; }",
            "tick5",
        )
        .unwrap();
        assert!(check_sequential(&a, &b, &["tick"], 100).is_err());
    }

    #[test]
    fn state_limit_gives_inconclusive() {
        // A 16-bit LFSR-ish counter against itself with a huge state
        // space but tiny exploration budget.
        let big = compile(
            "module big(clock ck, in x, out y) { reg r[16]; at posedge(ck) { r <= r + 1 + x; } assign y = r == 999; }",
            "big",
        )
        .unwrap();
        let big2 = compile(
            "module big(clock ck, in x, out y) { reg r[16]; at posedge(ck) { r <= r + x + 1; } assign y = r == 999; }",
            "big",
        )
        .unwrap();
        let r = check_sequential(&big, &big2, &["y"], 50).unwrap();
        assert!(matches!(r, SeqResult::Inconclusive { .. }));
    }

    #[test]
    fn combinational_difference_found_in_initial_state() {
        let a = compile(
            "module m(clock ck, in x, out y) { reg r; at posedge(ck) { r <= x; } assign y = r; }",
            "m",
        )
        .unwrap();
        let b = compile(
            "module m(clock ck, in x, out y) { reg r; at posedge(ck) { r <= x; } assign y = ~r; }",
            "m",
        )
        .unwrap();
        let r = check_sequential(&a, &b, &["y"], 100).unwrap();
        match r {
            SeqResult::NotEquivalent { trace, .. } => assert_eq!(trace.len(), 1),
            other => panic!("expected divergence, got {other:?}"),
        }
    }
}

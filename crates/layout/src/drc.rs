//! Design-rule checking over macrocell geometry.
//!
//! The paper's methodology is Correct-by-Verification all the way down:
//! layout produced by hand or by the assist tools is *checked*, not
//! trusted. This is the geometric leg — minimum width and minimum
//! spacing per layer, with same-net abutment exempt.

use cbv_netlist::FlatNetlist;
use cbv_tech::Layer;

use crate::rules::Rules;
use crate::{Layout, Shape};

/// One geometric violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrcViolation {
    /// A shape narrower than the layer minimum.
    Width {
        /// The layer.
        layer: Layer,
        /// Measured width (nm).
        actual: i64,
        /// Required minimum (nm).
        required: i64,
        /// Net name (or `<none>`).
        net: String,
    },
    /// Two different-net shapes closer than the layer spacing.
    Spacing {
        /// The layer.
        layer: Layer,
        /// Measured gap (nm).
        actual: i64,
        /// Required minimum (nm).
        required: i64,
        /// The two nets.
        nets: (String, String),
    },
}

/// Layer minimums in nm derived from the process rules.
fn layer_minimums(rules: &Rules, layer: Layer) -> Option<(i64, i64)> {
    // (min width, min spacing)
    match layer {
        Layer::Metal1 => Some((rules.m1_width, rules.m1_space)),
        Layer::Metal2 => Some((rules.m2_width, rules.m2_space)),
        Layer::Poly => Some((rules.gate_length, 2 * rules.lambda)),
        // Diffusion and M3 are not produced by the assist tools' checks.
        _ => None,
    }
}

/// Runs width and spacing checks. `max_violations` caps the report (a
/// broken layout would otherwise flood).
pub fn check_drc(
    layout: &Layout,
    netlist: &FlatNetlist,
    rules: &Rules,
    max_violations: usize,
) -> Vec<DrcViolation> {
    let mut out = Vec::new();
    let name_of = |s: &Shape| -> String {
        s.net
            .map(|n| netlist.net_name(n).to_owned())
            .unwrap_or_else(|| "<none>".to_owned())
    };

    // Width checks.
    for s in &layout.shapes {
        let Some((w_min, _)) = layer_minimums(rules, s.layer) else {
            continue;
        };
        let w = s.rect.width().min(s.rect.height());
        if w < w_min {
            out.push(DrcViolation::Width {
                layer: s.layer,
                actual: w,
                required: w_min,
                net: name_of(s),
            });
            if out.len() >= max_violations {
                return out;
            }
        }
    }

    // Spacing checks: different-net shapes on the same layer.
    for (i, a) in layout.shapes.iter().enumerate() {
        let Some((_, s_min)) = layer_minimums(rules, a.layer) else {
            continue;
        };
        for b in &layout.shapes[i + 1..] {
            if b.layer != a.layer || a.net == b.net {
                continue;
            }
            // Gap: zero when overlapping (that's a short — spacing 0).
            let (gx, gy) = (a.rect.x_gap(b.rect), a.rect.y_gap(b.rect));
            // Diagonal neighbors measure the euclidean-ish corner gap;
            // use the max of the axis gaps (conservative corner rule is
            // out of scope for assist-level checking).
            let gap = match (gx > 0, gy > 0) {
                (true, true) => gx.max(gy),
                (true, false) => gx,
                (false, true) => gy,
                (false, false) => 0,
            };
            if gap < s_min {
                out.push(DrcViolation::Spacing {
                    layer: a.layer,
                    actual: gap,
                    required: s_min,
                    nets: (name_of(a), name_of(b)),
                });
                if out.len() >= max_violations {
                    return out;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;
    use crate::synthesize;
    use cbv_netlist::{Device, NetKind};
    use cbv_tech::{MosKind, Process};

    fn inv_layout() -> (FlatNetlist, Layout, Rules) {
        let mut f = FlatNetlist::new("inv");
        let a = f.add_net("a", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "p",
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "n",
            a,
            y,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        let p = Process::strongarm_035();
        let rules = Rules::for_process(&p);
        let layout = synthesize(&mut f, &p);
        (f, layout, rules)
    }

    #[test]
    fn generated_inverter_is_drc_quiet_or_near() {
        let (f, layout, rules) = inv_layout();
        let v = check_drc(&layout, &f, &rules, 1000);
        // The assist tools' output must be structurally sane: allow zero
        // violations on a single gate.
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn narrow_wire_flagged() {
        let (mut f, mut layout, rules) = inv_layout();
        let n = f.add_net("skinny", NetKind::Signal);
        layout.shapes.push(Shape {
            layer: cbv_tech::Layer::Metal2,
            rect: Rect::new(0, 100_000, 10_000, 100_000 + rules.m2_width / 2),
            net: Some(n),
        });
        let v = check_drc(&layout, &f, &rules, 1000);
        assert!(
            v.iter().any(|x| matches!(x, DrcViolation::Width { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn tight_spacing_flagged() {
        let (mut f, mut layout, rules) = inv_layout();
        let n1 = f.add_net("w1", NetKind::Signal);
        let n2 = f.add_net("w2", NetKind::Signal);
        let y = 200_000;
        layout.shapes.push(Shape {
            layer: cbv_tech::Layer::Metal2,
            rect: Rect::new(0, y, 10_000, y + rules.m2_width),
            net: Some(n1),
        });
        layout.shapes.push(Shape {
            layer: cbv_tech::Layer::Metal2,
            rect: Rect::new(
                0,
                y + rules.m2_width + rules.m2_space / 3,
                10_000,
                y + 2 * rules.m2_width + rules.m2_space / 3,
            ),
            net: Some(n2),
        });
        let v = check_drc(&layout, &f, &rules, 1000);
        assert!(
            v.iter().any(|x| matches!(x, DrcViolation::Spacing { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn same_net_abutment_exempt() {
        let (mut f, mut layout, rules) = inv_layout();
        let n = f.add_net("bus", NetKind::Signal);
        let y = 300_000;
        for dx in [0, 5_000] {
            layout.shapes.push(Shape {
                layer: cbv_tech::Layer::Metal2,
                rect: Rect::new(dx, y, dx + 6_000, y + rules.m2_width),
                net: Some(n),
            });
        }
        let v = check_drc(&layout, &f, &rules, 1000);
        assert!(
            !v.iter().any(|x| matches!(x, DrcViolation::Spacing { .. })),
            "same-net overlap is abutment, not a violation: {v:?}"
        );
    }

    #[test]
    fn violation_cap_respected() {
        let (mut f, mut layout, rules) = inv_layout();
        let n = f.add_net("skinny", NetKind::Signal);
        for i in 0..50 {
            layout.shapes.push(Shape {
                layer: cbv_tech::Layer::Metal2,
                rect: Rect::new(i * 20_000, 400_000, i * 20_000 + 10_000, 400_050),
                net: Some(n),
            });
        }
        let v = check_drc(&layout, &f, &rules, 10);
        assert_eq!(v.len(), 10);
    }
}

//! `cbv-layout` — macrocell layout assistance.
//!
//! §2.2: "CAD layout synthesis and assistance tools have had a greater
//! impact in our layout creation. The emphasis of these layout generation
//! tools is to assist in the creation of macrocells, at the level of
//! transistor place and route."
//!
//! This crate provides exactly that level of automation:
//!
//! * [`geom`] — integer (nanometer) rectangles and points;
//! * [`rules`] — lambda-style design rules derived from a process;
//! * [`place`] — row-based transistor placement (PMOS row over NMOS row,
//!   greedy diffusion sharing), with per-finger gate strips;
//! * [`route`] — a left-edge channel router assigning one horizontal
//!   track per net with vertical connection stubs;
//! * [`drc`] — lambda-rule width/spacing checking over the result
//!   (correct-by-verification applies to the assist tools' own output);
//! * [`Layout`] — the resulting geometry, each shape tagged with its net,
//!   ready for parasitic extraction by `cbv-extract`.
//!
//! # Example
//!
//! ```
//! use cbv_layout::synthesize;
//! use cbv_netlist::{Device, FlatNetlist, NetKind};
//! use cbv_tech::{MosKind, Process};
//!
//! let mut f = FlatNetlist::new("inv");
//! let a = f.add_net("a", NetKind::Input);
//! let y = f.add_net("y", NetKind::Output);
//! let vdd = f.add_net("vdd", NetKind::Power);
//! let gnd = f.add_net("gnd", NetKind::Ground);
//! f.add_device(Device::mos(MosKind::Pmos, "p", a, y, vdd, vdd, 4e-6, 0.35e-6));
//! f.add_device(Device::mos(MosKind::Nmos, "n", a, y, gnd, gnd, 2e-6, 0.35e-6));
//!
//! let layout = synthesize(&mut f, &Process::strongarm_035());
//! assert!(layout.area() > 0.0);
//! ```

pub mod drc;
pub mod geom;
pub mod place;
pub mod route;
pub mod rules;

pub use drc::{check_drc, DrcViolation};
pub use geom::{Point, Rect};
pub use place::{place_rows, DeviceSite, Placement};
pub use route::route_channel;
pub use rules::Rules;

use cbv_netlist::{DeviceId, FlatNetlist, NetId};
use cbv_tech::{Layer, Process};

/// One rectangle of geometry on a layer, tagged with the net it carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shape {
    /// The layer.
    pub layer: Layer,
    /// The rectangle (nanometers).
    pub rect: Rect,
    /// The electrical net, when known (wells and dummy fill carry none).
    pub net: Option<NetId>,
}

/// A synthesized macrocell layout.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    /// Cell name.
    pub name: String,
    /// All geometry.
    pub shapes: Vec<Shape>,
    /// Where each device's gate landed (for back-annotation and the
    /// distributed-driver analyses of Fig 5).
    pub sites: Vec<DeviceSite>,
}

impl Layout {
    /// Bounding box of all shapes; zero rect when empty.
    pub fn bbox(&self) -> Rect {
        let mut it = self.shapes.iter();
        let first = match it.next() {
            Some(s) => s.rect,
            None => return Rect::new(0, 0, 0, 0),
        };
        it.fold(first, |acc, s| acc.union(s.rect))
    }

    /// Cell area in square meters.
    pub fn area(&self) -> f64 {
        let b = self.bbox();
        (b.width() as f64 * 1e-9) * (b.height() as f64 * 1e-9)
    }

    /// All shapes on a given net.
    pub fn shapes_on(&self, net: NetId) -> impl Iterator<Item = &Shape> {
        self.shapes.iter().filter(move |s| s.net == Some(net))
    }

    /// Total wire length (meters) on a net for a layer, counting the long
    /// dimension of each shape.
    pub fn wire_length(&self, net: NetId, layer: Layer) -> f64 {
        self.shapes_on(net)
            .filter(|s| s.layer == layer)
            .map(|s| s.rect.width().max(s.rect.height()) as f64 * 1e-9)
            .sum()
    }

    /// The placement site of a device, if placed.
    pub fn site(&self, device: DeviceId) -> Option<&DeviceSite> {
        self.sites.iter().find(|s| s.device == device)
    }
}

/// Synthesizes a macrocell layout for a flat netlist: row placement then
/// channel routing.
pub fn synthesize(netlist: &mut FlatNetlist, process: &Process) -> Layout {
    let rules = Rules::for_process(process);
    let placement = place_rows(netlist, &rules);
    let mut layout = Layout {
        name: netlist.name().to_owned(),
        shapes: placement.shapes.clone(),
        sites: placement.sites.clone(),
    };
    let routed = route_channel(netlist, &placement, &rules);
    layout.shapes.extend(routed);
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_netlist::{Device, NetKind};
    use cbv_tech::MosKind;

    fn nand2() -> FlatNetlist {
        let mut f = FlatNetlist::new("nand2");
        let a = f.add_net("a", NetKind::Input);
        let b = f.add_net("b", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let x = f.add_net("x", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pa",
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pb",
            b,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "na",
            a,
            y,
            x,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "nb",
            b,
            x,
            gnd,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f
    }

    #[test]
    fn synthesized_layout_has_positive_area() {
        let mut f = nand2();
        let l = synthesize(&mut f, &Process::strongarm_035());
        assert!(l.area() > 0.0);
        assert_eq!(l.sites.len(), 4, "all four devices placed");
    }

    #[test]
    fn every_signal_net_gets_geometry() {
        let mut f = nand2();
        let l = synthesize(&mut f, &Process::strongarm_035());
        for name in ["a", "b", "y"] {
            let n = f.find_net(name).unwrap();
            assert!(l.shapes_on(n).count() > 0, "net `{name}` has no geometry");
        }
    }

    #[test]
    fn wider_devices_make_bigger_cells() {
        let mut small = nand2();
        let l1 = synthesize(&mut small, &Process::strongarm_035());
        let mut big = FlatNetlist::new("nand2w");
        let a = big.add_net("a", NetKind::Input);
        let b = big.add_net("b", NetKind::Input);
        let y = big.add_net("y", NetKind::Output);
        let x = big.add_net("x", NetKind::Signal);
        let vdd = big.add_net("vdd", NetKind::Power);
        let gnd = big.add_net("gnd", NetKind::Ground);
        big.add_device(Device::mos(
            MosKind::Pmos,
            "pa",
            a,
            y,
            vdd,
            vdd,
            20e-6,
            0.35e-6,
        ));
        big.add_device(Device::mos(
            MosKind::Pmos,
            "pb",
            b,
            y,
            vdd,
            vdd,
            20e-6,
            0.35e-6,
        ));
        big.add_device(Device::mos(
            MosKind::Nmos,
            "na",
            a,
            y,
            x,
            gnd,
            20e-6,
            0.35e-6,
        ));
        big.add_device(Device::mos(
            MosKind::Nmos,
            "nb",
            b,
            x,
            gnd,
            gnd,
            20e-6,
            0.35e-6,
        ));
        let l2 = synthesize(&mut big, &Process::strongarm_035());
        assert!(l2.area() > l1.area());
    }

    #[test]
    fn wire_length_accumulates() {
        let mut f = nand2();
        let l = synthesize(&mut f, &Process::strongarm_035());
        let a = f.find_net("a").unwrap();
        let total: f64 = cbv_tech::Layer::ALL
            .iter()
            .map(|&layer| l.wire_length(a, layer))
            .sum();
        assert!(total > 0.0);
    }
}

//! Integer geometry in nanometers.

/// A point in nanometers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Point {
    /// X coordinate (nm).
    pub x: i64,
    /// Y coordinate (nm).
    pub y: i64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: i64, y: i64) -> Point {
        Point { x, y }
    }
}

/// An axis-aligned rectangle in nanometers, normalized so `x0 <= x1` and
/// `y0 <= y1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Left edge.
    pub x0: i64,
    /// Bottom edge.
    pub y0: i64,
    /// Right edge.
    pub x1: i64,
    /// Top edge.
    pub y1: i64,
}

impl Rect {
    /// Creates a rectangle, normalizing corner order.
    pub fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Width in nm.
    pub fn width(&self) -> i64 {
        self.x1 - self.x0
    }

    /// Height in nm.
    pub fn height(&self) -> i64 {
        self.y1 - self.y0
    }

    /// Area in nm².
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// Perimeter in nm.
    pub fn perimeter(&self) -> i64 {
        2 * (self.width() + self.height())
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Whether the rectangles overlap (touching edges do not count).
    pub fn intersects(&self, other: Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// Overlap length of the projections on the X axis (0 if disjoint).
    pub fn x_overlap(&self, other: Rect) -> i64 {
        (self.x1.min(other.x1) - self.x0.max(other.x0)).max(0)
    }

    /// Overlap length of the projections on the Y axis (0 if disjoint).
    pub fn y_overlap(&self, other: Rect) -> i64 {
        (self.y1.min(other.y1) - self.y0.max(other.y0)).max(0)
    }

    /// Gap between the two rectangles along X (0 when overlapping).
    pub fn x_gap(&self, other: Rect) -> i64 {
        (other.x0 - self.x1).max(self.x0 - other.x1).max(0)
    }

    /// Gap between the two rectangles along Y (0 when overlapping).
    pub fn y_gap(&self, other: Rect) -> i64 {
        (other.y0 - self.y1).max(self.y0 - other.y1).max(0)
    }

    /// Rectangle translated by (dx, dy).
    pub fn translate(&self, dx: i64, dy: i64) -> Rect {
        Rect {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }

    /// Whether this rectangle is taller than wide (a vertical wire).
    pub fn is_vertical(&self) -> bool {
        self.height() > self.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        let r = Rect::new(10, 20, 0, 5);
        assert_eq!(r, Rect::new(0, 5, 10, 20));
        assert_eq!(r.width(), 10);
        assert_eq!(r.height(), 15);
    }

    #[test]
    fn union_and_intersect() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 20, 20);
        assert!(a.intersects(b));
        assert_eq!(a.union(b), Rect::new(0, 0, 20, 20));
        let c = Rect::new(10, 0, 20, 10);
        assert!(!a.intersects(c), "touching edges do not intersect");
    }

    #[test]
    fn overlaps_and_gaps() {
        let a = Rect::new(0, 0, 10, 2);
        let b = Rect::new(4, 5, 14, 7);
        assert_eq!(a.x_overlap(b), 6);
        assert_eq!(a.y_overlap(b), 0);
        assert_eq!(a.y_gap(b), 3);
        assert_eq!(a.x_gap(b), 0);
    }

    #[test]
    fn geometry_metrics() {
        let r = Rect::new(0, 0, 4, 6);
        assert_eq!(r.area(), 24);
        assert_eq!(r.perimeter(), 20);
        assert_eq!(r.center(), Point::new(2, 3));
        assert!(r.is_vertical());
        assert_eq!(r.translate(1, -1), Rect::new(1, -1, 5, 5));
    }
}

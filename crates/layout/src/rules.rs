//! Lambda-style design rules derived from a process.

use cbv_tech::{Layer, Process};

/// Geometric design rules in nanometers, derived from the process minimum
/// feature size (the classic Mead–Conway lambda system: λ = L_min / 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rules {
    /// Lambda in nm.
    pub lambda: i64,
    /// Poly gate length (drawn channel length), nm.
    pub gate_length: i64,
    /// Poly extension past diffusion, nm.
    pub poly_extension: i64,
    /// Minimum metal1 width, nm.
    pub m1_width: i64,
    /// Minimum metal1 spacing, nm.
    pub m1_space: i64,
    /// Minimum metal2 width, nm.
    pub m2_width: i64,
    /// Minimum metal2 spacing, nm.
    pub m2_space: i64,
    /// Contact size, nm.
    pub contact: i64,
    /// Diffusion extension past gate (source/drain landing), nm.
    pub diff_extension: i64,
    /// Separation between the NMOS and PMOS rows (the routing channel), nm.
    pub row_gap: i64,
    /// Spacing between adjacent unshared diffusions, nm.
    pub diff_space: i64,
}

impl Rules {
    /// Derives rules from a process.
    pub fn for_process(process: &Process) -> Rules {
        let lambda = (process.l_min().meters() * 1e9 / 2.0).round() as i64;
        let w = |layer: Layer| (process.wires().params(layer).width_min * 1e9).round() as i64;
        let s = |layer: Layer| (process.wires().params(layer).spacing_min * 1e9).round() as i64;
        Rules {
            lambda,
            gate_length: 2 * lambda,
            poly_extension: 2 * lambda,
            m1_width: w(Layer::Metal1),
            m1_space: s(Layer::Metal1),
            m2_width: w(Layer::Metal2),
            m2_space: s(Layer::Metal2),
            // Contacts carry metal1 and must satisfy its width rule.
            contact: (2 * lambda).max(w(Layer::Metal1)),
            // Wide enough that adjacent gate and contact stubs obey
            // metal1 spacing.
            diff_extension: 9 * lambda,
            row_gap: 40 * lambda,
            diff_space: 3 * lambda,
        }
    }

    /// Horizontal routing pitch (track to track) for metal2.
    pub fn m2_pitch(&self) -> i64 {
        self.m2_width + self.m2_space
    }

    /// Horizontal pitch of one transistor finger (gate + contacted
    /// diffusion).
    pub fn finger_pitch(&self) -> i64 {
        self.gate_length + self.diff_extension + self.contact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_tracks_process() {
        let r035 = Rules::for_process(&Process::strongarm_035());
        let r075 = Rules::for_process(&Process::alpha_21064());
        assert_eq!(r035.lambda, 175);
        assert_eq!(r075.lambda, 375);
        assert!(r035.m2_pitch() < r075.m2_pitch());
    }

    #[test]
    fn pitches_positive() {
        let r = Rules::for_process(&Process::alpha_21164());
        assert!(r.m2_pitch() > 0);
        assert!(r.finger_pitch() > 0);
        assert!(r.row_gap > r.m2_pitch(), "channel fits at least one track");
    }
}

//! Left-edge channel routing.
//!
//! Each net with terminals on the channel edges gets one horizontal
//! metal2 track; vertical metal1 stubs drop from each terminal to the
//! track. Track assignment is the classic left-edge algorithm: sort nets
//! by left extent, pack each into the lowest track whose occupied
//! intervals it does not overlap.

use cbv_netlist::{FlatNetlist, NetId};
use cbv_tech::Layer;

use crate::geom::Rect;
use crate::place::Placement;
use crate::rules::Rules;
use crate::Shape;

/// Routes the channel of a placement; returns the wiring shapes.
pub fn route_channel(
    netlist: &mut FlatNetlist,
    placement: &Placement,
    rules: &Rules,
) -> Vec<Shape> {
    // Gather net extents.
    struct Span {
        net: NetId,
        x_min: i64,
        x_max: i64,
        terminals: Vec<(i64, i64)>, // (x, y) pickup points
    }
    let mut spans: Vec<Span> = Vec::new();
    for t in &placement.terminals {
        match spans.iter_mut().find(|s| s.net == t.net) {
            Some(s) => {
                s.x_min = s.x_min.min(t.at.x);
                s.x_max = s.x_max.max(t.at.x);
                s.terminals.push((t.at.x, t.at.y));
            }
            None => spans.push(Span {
                net: t.net,
                x_min: t.at.x,
                x_max: t.at.x,
                terminals: vec![(t.at.x, t.at.y)],
            }),
        }
    }
    // Rails route on dedicated rails outside the channel; skip them here.
    spans.retain(|s| !netlist.net_kind(s.net).is_rail());

    // Two-layer channel discipline: every horizontal segment is metal2
    // (tracks), every vertical segment is metal1 (stubs) — same-layer
    // crossings cannot happen. The left-edge packer naturally puts short
    // local spans into the low tracks, keeping their stubs short.
    let mut shapes = Vec::new();
    // Left-edge: sort by left extent.
    spans.sort_by_key(|s| (s.x_min, s.x_max, s.net));
    // tracks[i] = list of occupied (x_min, x_max) intervals.
    let mut tracks: Vec<Vec<(i64, i64)>> = Vec::new();
    let mut assignment: Vec<(usize, usize)> = Vec::new(); // span -> track
    let margin = rules.m2_space;
    for (si, s) in spans.iter().enumerate() {
        let mut placed = None;
        for (ti, track) in tracks.iter_mut().enumerate() {
            let collides = track
                .iter()
                .any(|&(a, b)| s.x_min - margin < b && a < s.x_max + margin);
            if !collides {
                track.push((s.x_min, s.x_max));
                placed = Some(ti);
                break;
            }
        }
        let ti = match placed {
            Some(t) => t,
            None => {
                tracks.push(vec![(s.x_min, s.x_max)]);
                tracks.len() - 1
            }
        };
        assignment.push((si, ti));
    }

    let (channel_bottom, _channel_top) = placement.channel;
    // Tracks stack upward at double pitch (relaxed spacing keeps long
    // parallel-run coupling inside the noise margins); an overfull
    // channel simply spills above the nominal top — metal2 rides over
    // the device rows, as it does on a real chip. The lowest track sits
    // one jog band above the channel edge.
    let pitch = 2 * rules.m2_pitch();
    let track_base = channel_bottom + rules.m2_width + rules.m2_space;
    // Vertical column grid for the m1 stubs: stubs claim columns (not
    // raw terminal x) so different nets never share a vertical lane;
    // short m2 jogs connect terminals to their columns.
    let col_pitch = rules.m1_width + rules.m1_space;
    let mut columns: std::collections::HashMap<i64, Vec<(NetId, i64, i64)>> =
        std::collections::HashMap::new();
    // Seed the column occupancy with the placement's own metal1 (device
    // contacts): stubs must keep their distance from those too.
    for ps in &placement.shapes {
        if ps.layer != Layer::Metal1 {
            continue;
        }
        let Some(net) = ps.net else { continue };
        // Block exactly the columns whose stub rect would come within
        // m1 spacing of this shape (the availability check below adds
        // the vertical margin; adding it here too would double-count).
        let a = ps.rect.x0 - rules.m1_space - rules.m1_width;
        let b = ps.rect.x1 + rules.m1_space;
        let c_lo = a.div_euclid(col_pitch);
        let c_hi = b.div_euclid(col_pitch) + 1;
        for c in c_lo..=c_hi {
            let col_x = c * col_pitch;
            if col_x > a && col_x < b {
                columns
                    .entry(c)
                    .or_default()
                    .push((net, ps.rect.y0, ps.rect.y1));
            }
        }
    }
    for (si, ti) in assignment {
        let s = &spans[si];
        let y = track_base + ti as i64 * pitch;
        // Horizontal m2 segment (even a single-terminal net gets a stub
        // of minimum length so ports are routable).
        let x_max = s.x_max.max(s.x_min + rules.m2_width);
        shapes.push(Shape {
            layer: Layer::Metal2,
            rect: Rect::new(s.x_min, y, x_max, y + rules.m2_width),
            net: Some(s.net),
        });
        for &(tx, ty) in &s.terminals {
            let (y0, mut y1) = if ty <= y {
                (ty, y + rules.m2_width)
            } else {
                (y, ty)
            };
            y1 = y1.max(y0 + rules.m1_width);
            // Claim the nearest free column for this stub's y extent.
            let home = (tx - rules.m1_width / 2).div_euclid(col_pitch);
            let col = (0..64)
                .map(|k| {
                    if k % 2 == 0 {
                        home + k / 2
                    } else {
                        home - (k + 1) / 2
                    }
                })
                .find(|c| {
                    columns.get(c).is_none_or(|occ| {
                        occ.iter().all(|&(n, oy0, oy1)| {
                            n == s.net || y1 + rules.m1_space <= oy0 || oy1 + rules.m1_space <= y0
                        })
                    })
                })
                .unwrap_or(home);
            columns.entry(col).or_default().push((s.net, y0, y1));
            let col_x = col * col_pitch;
            shapes.push(Shape {
                layer: Layer::Metal1,
                rect: Rect::new(col_x, y0, col_x + rules.m1_width, y1),
                net: Some(s.net),
            });
            // Jog from the terminal to the column, at the terminal end.
            let stub_center = col_x + rules.m1_width / 2;
            if (stub_center - tx).abs() > rules.m1_width / 2 {
                // Jogs ride metal3: one layer up, clear of the m2 track
                // plane and of each other's m2 coupling.
                let jog_y = if ty <= y { ty } else { ty - rules.m2_width };
                shapes.push(Shape {
                    layer: Layer::Metal3,
                    rect: Rect::new(
                        tx.min(stub_center) - rules.m2_width / 2,
                        jog_y,
                        tx.max(stub_center) + rules.m2_width / 2,
                        jog_y + rules.m2_width,
                    ),
                    net: Some(s.net),
                });
            }
        }
    }
    // Power rails: m1 bars spanning the cell at the outer edges.
    let bbox = placement
        .shapes
        .iter()
        .map(|s| s.rect)
        .reduce(|a, b| a.union(b));
    if let Some(bbox) = bbox {
        for net in netlist.rails() {
            let is_power = netlist.net_kind(net) == cbv_netlist::NetKind::Power;
            let y = if is_power {
                bbox.y1 + rules.m1_space
            } else {
                bbox.y0 - rules.m1_space - 4 * rules.lambda
            };
            shapes.push(Shape {
                layer: Layer::Metal1,
                rect: Rect::new(
                    bbox.x0,
                    y,
                    bbox.x1.max(bbox.x0 + rules.m1_width),
                    y + 4 * rules.lambda,
                ),
                net: Some(net),
            });
        }
    }
    shapes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::place_rows;
    use cbv_netlist::{Device, NetKind};
    use cbv_tech::{MosKind, Process};

    fn build_nand() -> (FlatNetlist, Vec<Shape>) {
        let mut f = FlatNetlist::new("nand2");
        let a = f.add_net("a", NetKind::Input);
        let b = f.add_net("b", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let x = f.add_net("x", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pa",
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pb",
            b,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "na",
            a,
            y,
            x,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "nb",
            b,
            x,
            gnd,
            gnd,
            4e-6,
            0.35e-6,
        ));
        let rules = Rules::for_process(&Process::strongarm_035());
        let p = place_rows(&mut f, &rules);
        let shapes = route_channel(&mut f, &p, &rules);
        (f, shapes)
    }

    #[test]
    fn every_signal_net_routed_in_m2() {
        let (f, shapes) = build_nand();
        for name in ["a", "b", "y"] {
            let n = f.find_net(name).unwrap();
            assert!(
                shapes
                    .iter()
                    .any(|s| s.net == Some(n) && s.layer == Layer::Metal2),
                "net {name} missing its track"
            );
        }
    }

    #[test]
    fn rails_get_bars_not_tracks() {
        let (f, shapes) = build_nand();
        let vdd = f.find_net("vdd").unwrap();
        assert!(shapes
            .iter()
            .any(|s| s.net == Some(vdd) && s.layer == Layer::Metal1));
        assert!(!shapes
            .iter()
            .any(|s| s.net == Some(vdd) && s.layer == Layer::Metal2));
    }

    #[test]
    fn tracks_do_not_overlap_in_same_y() {
        let (f, shapes) = build_nand();
        let m2: Vec<&Shape> = shapes.iter().filter(|s| s.layer == Layer::Metal2).collect();
        for (i, s1) in m2.iter().enumerate() {
            for s2 in &m2[i + 1..] {
                if s1.net == s2.net {
                    continue;
                }
                assert!(
                    !s1.rect.intersects(s2.rect),
                    "m2 shorts between {:?} and {:?}",
                    f.net_name(s1.net.unwrap()),
                    f.net_name(s2.net.unwrap())
                );
            }
        }
    }

    #[test]
    fn stubs_touch_their_track() {
        let (f, shapes) = build_nand();
        let y = f.find_net("y").unwrap();
        let track = shapes
            .iter()
            .find(|s| s.net == Some(y) && s.layer == Layer::Metal2)
            .unwrap();
        let stubs: Vec<&Shape> = shapes
            .iter()
            .filter(|s| s.net == Some(y) && s.layer == Layer::Metal1)
            .collect();
        assert!(!stubs.is_empty());
        for stub in stubs {
            assert!(
                stub.rect.y_overlap(track.rect) > 0 || stub.rect.y_gap(track.rect) == 0,
                "stub disconnected from track"
            );
        }
    }
}

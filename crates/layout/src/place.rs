//! Row-based transistor placement.
//!
//! Datapath style: one PMOS row above one NMOS row with a routing channel
//! between them. Devices are ordered greedily to share diffusion between
//! neighbors that have a common channel net — the dominant area lever in
//! hand layout, automated here.

use cbv_netlist::{DeviceId, FlatNetlist, NetId};
use cbv_tech::{Layer, MosKind};

use crate::geom::{Point, Rect};
use crate::rules::Rules;
use crate::Shape;

/// Where one device landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceSite {
    /// The device.
    pub device: DeviceId,
    /// X of the gate strip center (nm).
    pub gate_x: i64,
    /// Y of the diffusion bottom (nm).
    pub row_y: i64,
    /// Polarity (selects the row).
    pub kind: MosKind,
}

/// A routing terminal: a point where a net must be picked up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Terminal {
    /// The net.
    pub net: NetId,
    /// Pickup location at the channel edge.
    pub at: Point,
}

/// Placement result.
#[derive(Debug, Clone, Default)]
pub struct Placement {
    /// Device geometry (diffusion, poly, contacts).
    pub shapes: Vec<Shape>,
    /// Placement sites.
    pub sites: Vec<DeviceSite>,
    /// Routing terminals on the channel edges.
    pub terminals: Vec<Terminal>,
    /// Vertical extent of the routing channel: (bottom, top) in nm.
    pub channel: (i64, i64),
}

/// Orders a row's devices for diffusion sharing: greedy chaining on
/// shared channel nets.
fn order_row(netlist: &FlatNetlist, devices: &[DeviceId]) -> Vec<DeviceId> {
    let mut remaining: Vec<DeviceId> = devices.to_vec();
    let mut out = Vec::with_capacity(remaining.len());
    let mut tail_net: Option<NetId> = None;
    while !remaining.is_empty() {
        let pick = match tail_net {
            Some(t) => remaining
                .iter()
                .position(|&d| netlist.device(d).channel_touches(t)),
            None => None,
        }
        .unwrap_or(0);
        let d = remaining.remove(pick);
        let dev = netlist.device(d);
        tail_net = Some(match tail_net {
            Some(t) if dev.channel_touches(t) => dev.other_channel_end(t),
            _ => dev.drain,
        });
        out.push(d);
    }
    out
}

/// Places all devices of a netlist into two rows.
pub fn place_rows(netlist: &mut FlatNetlist, rules: &Rules) -> Placement {
    let nmos: Vec<DeviceId> = netlist
        .device_ids()
        .filter(|&d| netlist.device(d).kind == MosKind::Nmos)
        .collect();
    let pmos: Vec<DeviceId> = netlist
        .device_ids()
        .filter(|&d| netlist.device(d).kind == MosKind::Pmos)
        .collect();

    let row_height = |devs: &[DeviceId]| -> i64 {
        devs.iter()
            .map(|&d| (netlist.device(d).w * 1e9).round() as i64)
            .max()
            .unwrap_or(rules.lambda * 10)
    };
    let n_height = row_height(&nmos);
    let p_height = row_height(&pmos);

    let n_y = 0i64;
    let channel_bottom = n_y + n_height + rules.poly_extension;
    let channel_top = channel_bottom + rules.row_gap;
    let p_y = channel_top + rules.poly_extension;

    let mut placement = Placement {
        shapes: Vec::new(),
        sites: Vec::new(),
        terminals: Vec::new(),
        channel: (channel_bottom, channel_top),
    };

    let n_order = order_row(netlist, &nmos);
    let p_order = order_row(netlist, &pmos);

    for (row_devices, row_y, row_h, is_pmos) in [
        (n_order, n_y, n_height, false),
        (p_order, p_y, p_height, true),
    ] {
        // Stagger the rows by half a finger pitch so vertical channel
        // stubs from opposite rows never share an x column.
        let mut x = if is_pmos { rules.finger_pitch() / 2 } else { 0 };
        let mut prev_right: Option<NetId> = None;
        for d in row_devices {
            let dev = netlist.device(d).clone();
            let w_nm = (dev.w * 1e9).round() as i64;
            let shared = prev_right == Some(dev.source) || prev_right == Some(dev.drain);
            if !shared && prev_right.is_some() {
                x += rules.diff_space + rules.contact;
            }
            // Orient the device so a shared net sits on the left.
            let (left_net, right_net) = if prev_right == Some(dev.drain) {
                (dev.drain, dev.source)
            } else {
                (dev.source, dev.drain)
            };
            let left_x = x;
            let gate_x = left_x + rules.contact + rules.diff_extension / 2;
            let right_x = gate_x + rules.gate_length + rules.diff_extension / 2;
            // Diffusion strip (left contact .. right contact).
            placement.shapes.push(Shape {
                layer: Layer::Diffusion,
                rect: Rect::new(left_x, row_y, right_x + rules.contact, row_y + w_nm),
                net: None,
            });
            // Source/drain contacts in metal1. A shared diffusion keeps
            // the neighbor's existing contact; re-emitting it would
            // double-count its capacitance.
            let contacts: &[(i64, NetId)] = if shared {
                &[(right_x, right_net)]
            } else {
                &[(left_x, left_net), (right_x, right_net)]
            };
            for &(cx, net) in contacts {
                placement.shapes.push(Shape {
                    layer: Layer::Metal1,
                    rect: Rect::new(cx, row_y, cx + rules.contact, row_y + w_nm),
                    net: Some(net),
                });
                let term_y = if is_pmos { row_y } else { row_y + w_nm };
                placement.terminals.push(Terminal {
                    net,
                    at: Point::new(cx + rules.contact / 2, term_y),
                });
            }
            // Poly gate strip, extended toward the channel.
            let (poly_y0, poly_y1, term_y) = if is_pmos {
                (
                    channel_top,
                    row_y + w_nm + rules.poly_extension,
                    channel_top,
                )
            } else {
                (row_y - rules.poly_extension, channel_bottom, channel_bottom)
            };
            placement.shapes.push(Shape {
                layer: Layer::Poly,
                rect: Rect::new(
                    gate_x,
                    poly_y0.min(poly_y1),
                    gate_x + rules.gate_length,
                    poly_y0.max(poly_y1),
                ),
                net: Some(dev.gate),
            });
            placement.terminals.push(Terminal {
                net: dev.gate,
                at: Point::new(gate_x + rules.gate_length / 2, term_y),
            });
            placement.sites.push(DeviceSite {
                device: d,
                gate_x,
                row_y,
                kind: dev.kind,
            });
            prev_right = Some(right_net);
            x = right_x;
        }
        let _ = row_h;
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_netlist::{Device, NetKind};
    use cbv_tech::Process;

    fn rules() -> Rules {
        Rules::for_process(&Process::strongarm_035())
    }

    #[test]
    fn series_stack_shares_diffusion() {
        // Two series NMOS sharing net x must abut: total extent smaller
        // than two isolated devices.
        let mut f = FlatNetlist::new("stack");
        let a = f.add_net("a", NetKind::Input);
        let b = f.add_net("b", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let x = f.add_net("x", NetKind::Signal);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Nmos,
            "na",
            a,
            y,
            x,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "nb",
            b,
            x,
            gnd,
            gnd,
            4e-6,
            0.35e-6,
        ));
        let p = place_rows(&mut f, &rules());
        assert_eq!(p.sites.len(), 2);
        // Shared: second gate is one finger pitch away, no diff_space gap.
        let dx = (p.sites[1].gate_x - p.sites[0].gate_x).abs();

        let mut f2 = FlatNetlist::new("nostack");
        let a2 = f2.add_net("a", NetKind::Input);
        let b2 = f2.add_net("b", NetKind::Input);
        let y2 = f2.add_net("y", NetKind::Output);
        let z2 = f2.add_net("z", NetKind::Output);
        let gnd2 = f2.add_net("gnd", NetKind::Ground);
        f2.add_device(Device::mos(
            MosKind::Nmos,
            "na",
            a2,
            y2,
            gnd2,
            gnd2,
            4e-6,
            0.35e-6,
        ));
        f2.add_device(Device::mos(
            MosKind::Nmos,
            "nb",
            b2,
            z2,
            gnd2,
            gnd2,
            4e-6,
            0.35e-6,
        ));
        let p2 = place_rows(&mut f2, &rules());
        let dx2 = (p2.sites[1].gate_x - p2.sites[0].gate_x).abs();
        // Both share gnd so ordering may still chain them; ensure layout
        // never gets *smaller* for the unshared-signal case.
        assert!(dx2 >= dx);
    }

    #[test]
    fn rows_are_separated_by_channel() {
        let mut f = FlatNetlist::new("inv");
        let a = f.add_net("a", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "p",
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "n",
            a,
            y,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        let p = place_rows(&mut f, &rules());
        let (cb, ct) = p.channel;
        assert!(ct > cb);
        let psite = p.sites.iter().find(|s| s.kind == MosKind::Pmos).unwrap();
        let nsite = p.sites.iter().find(|s| s.kind == MosKind::Nmos).unwrap();
        assert!(psite.row_y >= ct);
        assert!(nsite.row_y < cb);
    }

    #[test]
    fn terminals_cover_all_connected_nets() {
        let mut f = FlatNetlist::new("inv");
        let a = f.add_net("a", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "p",
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "n",
            a,
            y,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        let p = place_rows(&mut f, &rules());
        for net in [a, y, vdd, gnd] {
            assert!(
                p.terminals.iter().any(|t| t.net == net),
                "net {net:?} has no terminal"
            );
        }
        // y must have two terminals (one per row) so routing can join them.
        assert!(p.terminals.iter().filter(|t| t.net == y).count() >= 2);
    }
}

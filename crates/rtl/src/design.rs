//! Elaborated word-level IR.
//!
//! [`RtlDesign`] is a flat dataflow graph over ≤64-bit words: combinational
//! nodes in topological (creation) order, registers with next-state node
//! references, and CAM arrays with native match/read/write operations.
//! Nodes are hash-consed so common subexpressions are shared; this is what
//! "compiles into very efficient code" (§4.1) means here — a 2000-entry
//! CAM lookup is **one node**, not two thousand comparators.

use std::collections::HashMap;

use crate::ast::Edge;
use crate::error::RtlError;

/// Index of a combinational node in an [`RtlDesign`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Word-level operations. All values are unsigned words of the node's
/// width; arithmetic wraps modulo 2^width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WordOp {
    /// Primary input (index into [`RtlDesign::inputs`]).
    Input(u32),
    /// Current value of a register (index into [`RtlDesign::regs`]).
    Reg(u32),
    /// Constant.
    Lit(u64),
    /// Bitwise complement.
    Not(NodeId),
    /// Bitwise AND.
    And(NodeId, NodeId),
    /// Bitwise OR.
    Or(NodeId, NodeId),
    /// Bitwise XOR.
    Xor(NodeId, NodeId),
    /// Reduction AND (1-bit result).
    RedAnd(NodeId),
    /// Reduction OR (1-bit result).
    RedOr(NodeId),
    /// Reduction XOR / parity (1-bit result).
    RedXor(NodeId),
    /// Two's-complement negation within the operand width.
    Neg(NodeId),
    /// Addition modulo 2^width.
    Add(NodeId, NodeId),
    /// Subtraction modulo 2^width.
    Sub(NodeId, NodeId),
    /// Left shift by a dynamic amount (zero fill; result width = lhs).
    Shl(NodeId, NodeId),
    /// Logical right shift by a dynamic amount.
    Shr(NodeId, NodeId),
    /// Equality (1-bit result).
    Eq(NodeId, NodeId),
    /// Unsigned less-than (1-bit result).
    Lt(NodeId, NodeId),
    /// Unsigned less-or-equal (1-bit result).
    Le(NodeId, NodeId),
    /// 2:1 multiplexer: `sel ? a : b` (sel is 1 bit).
    Mux(NodeId, NodeId, NodeId),
    /// Contiguous bit field starting at `lo`; the node's width gives the
    /// field size.
    Slice {
        /// Source word.
        a: NodeId,
        /// Low bit.
        lo: u32,
    },
    /// Concatenation: `hi` becomes the most significant bits.
    Concat {
        /// High part.
        hi: NodeId,
        /// Low part.
        lo: NodeId,
    },
    /// Zero extension to the node's width.
    ZExt(NodeId),
    /// CAM associative lookup: 1 if any entry equals the key.
    CamHit {
        /// Index into [`RtlDesign::cams`].
        cam: u32,
        /// Key node (cam word width).
        key: NodeId,
    },
    /// Index of the first matching CAM entry (0 when no hit).
    CamIndex {
        /// Index into [`RtlDesign::cams`].
        cam: u32,
        /// Key node.
        key: NodeId,
    },
    /// CAM read port: the stored word at an index.
    CamRead {
        /// Index into [`RtlDesign::cams`].
        cam: u32,
        /// Index node.
        index: NodeId,
    },
}

/// A combinational node: operation plus result width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node {
    /// The operation.
    pub op: WordOp,
    /// Result width in bits (1..=64).
    pub width: u32,
}

/// A register.
#[derive(Debug, Clone, PartialEq)]
pub struct RegSpec {
    /// Hierarchical name.
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Initial / reset value.
    pub init: u64,
    /// Index into [`RtlDesign::clocks`] of the driving clock.
    pub clock: u32,
    /// Node computing the next value (evaluated pre-edge).
    pub next: NodeId,
    /// Active edge of the driving clock. `at negedge(ck)` registers
    /// commit on the falling edge — the second half of an
    /// [`crate::interp::Interp::step`] full cycle.
    pub edge: Edge,
}

/// A conditional CAM entry write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CamWrite {
    /// 1-bit enable node.
    pub enable: NodeId,
    /// Entry index node.
    pub index: NodeId,
    /// Value node (cam word width).
    pub value: NodeId,
}

/// A content-addressable memory.
#[derive(Debug, Clone, PartialEq)]
pub struct CamSpec {
    /// Hierarchical name.
    pub name: String,
    /// Number of entries.
    pub entries: u32,
    /// Word width.
    pub width: u32,
    /// Index into [`RtlDesign::clocks`] of the write clock (writes found
    /// in `at` blocks on that clock). `u32::MAX` when the CAM is never
    /// written.
    pub clock: u32,
    /// Writes in program order (later writes win on index collision).
    pub writes: Vec<CamWrite>,
    /// Active edge of the write clock.
    pub edge: Edge,
}

/// The elaborated design.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RtlDesign {
    /// Top module name.
    pub name: String,
    /// Clock names in declaration order.
    pub clocks: Vec<String>,
    /// Primary inputs: (name, width).
    pub inputs: Vec<(String, u32)>,
    /// Primary outputs: (name, node).
    pub outputs: Vec<(String, NodeId)>,
    /// Combinational nodes in topological order.
    pub nodes: Vec<Node>,
    /// Registers.
    pub regs: Vec<RegSpec>,
    /// CAM arrays.
    pub cams: Vec<CamSpec>,
    #[doc(hidden)]
    pub cons: HashMap<Node, NodeId>,
}

impl RtlDesign {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> RtlDesign {
        RtlDesign {
            name: name.into(),
            ..RtlDesign::default()
        }
    }

    /// Borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn node(&self, id: NodeId) -> Node {
        self.nodes[id.index()]
    }

    /// Width of a node.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn width(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].width
    }

    /// Interns a node (hash-consing). Operands must already exist, which
    /// keeps `nodes` topologically ordered.
    pub fn intern(&mut self, op: WordOp, width: u32) -> NodeId {
        debug_assert!((1..=64).contains(&width), "width {width} out of range");
        let node = Node { op, width };
        if let Some(&id) = self.cons.get(&node) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.cons.insert(node, id);
        id
    }

    /// Constant node of the given width.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit the width.
    pub fn lit(&mut self, value: u64, width: u32) -> NodeId {
        assert!(
            width == 64 || value < (1u64 << width),
            "literal {value} does not fit in {width} bits"
        );
        self.intern(WordOp::Lit(value), width)
    }

    /// Zero-extends (or returns unchanged) a node to `width`.
    ///
    /// # Errors
    ///
    /// Errors if this would *truncate*.
    pub fn zext(&mut self, a: NodeId, width: u32) -> Result<NodeId, RtlError> {
        let aw = self.width(a);
        if aw == width {
            return Ok(a);
        }
        if aw > width {
            return Err(RtlError::elab(format!(
                "cannot zero-extend {aw} bits down to {width}"
            )));
        }
        Ok(self.intern(WordOp::ZExt(a), width))
    }

    /// Truncates or zero-extends `a` to exactly `width` (assignment
    /// semantics).
    pub fn resize(&mut self, a: NodeId, width: u32) -> NodeId {
        let aw = self.width(a);
        if aw == width {
            a
        } else if aw < width {
            self.intern(WordOp::ZExt(a), width)
        } else {
            self.intern(WordOp::Slice { a, lo: 0 }, width)
        }
    }

    /// Reduces a node to 1 bit via reduction-OR (`!= 0`), the HDL's
    /// truthiness rule.
    pub fn to_bool(&mut self, a: NodeId) -> NodeId {
        if self.width(a) == 1 {
            a
        } else {
            self.intern(WordOp::RedOr(a), 1)
        }
    }

    /// Total combinational node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Looks up a primary input index by name.
    pub fn input_index(&self, name: &str) -> Option<usize> {
        self.inputs.iter().position(|(n, _)| n == name)
    }

    /// Looks up an output node by name.
    pub fn output(&self, name: &str) -> Option<NodeId> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
    }

    /// Looks up a clock index by name.
    pub fn clock_index(&self, name: &str) -> Option<usize> {
        self.clocks.iter().position(|c| c == name)
    }

    /// True when any register or CAM write commits on the falling edge
    /// of clock `clock` — i.e. a full [`crate::interp::Interp::step`]
    /// cycle of that clock needs a second (negedge) commit phase.
    pub fn has_negedge(&self, clock: u32) -> bool {
        self.regs
            .iter()
            .any(|r| r.clock == clock && r.edge == Edge::Neg)
            || self
                .cams
                .iter()
                .any(|c| c.clock == clock && c.edge == Edge::Neg)
    }

    /// Bits needed for a CAM index bus.
    pub fn cam_index_width(entries: u32) -> u32 {
        (32 - (entries.max(2) - 1).leading_zeros()).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_shares_structure() {
        let mut d = RtlDesign::new("t");
        let a = d.intern(WordOp::Input(0), 8);
        let b = d.intern(WordOp::Input(1), 8);
        let x = d.intern(WordOp::Add(a, b), 8);
        let y = d.intern(WordOp::Add(a, b), 8);
        assert_eq!(x, y);
        assert_eq!(d.node_count(), 3);
    }

    #[test]
    fn resize_up_and_down() {
        let mut d = RtlDesign::new("t");
        let a = d.intern(WordOp::Input(0), 8);
        let up = d.resize(a, 16);
        assert_eq!(d.width(up), 16);
        let down = d.resize(a, 4);
        assert_eq!(d.width(down), 4);
        assert_eq!(d.resize(a, 8), a);
    }

    #[test]
    fn zext_rejects_truncation() {
        let mut d = RtlDesign::new("t");
        let a = d.intern(WordOp::Input(0), 8);
        assert!(d.zext(a, 4).is_err());
        assert_eq!(d.zext(a, 8).unwrap(), a);
    }

    #[test]
    fn to_bool_passthrough_for_one_bit() {
        let mut d = RtlDesign::new("t");
        let a = d.intern(WordOp::Input(0), 1);
        assert_eq!(d.to_bool(a), a);
        let b = d.intern(WordOp::Input(1), 8);
        let rb = d.to_bool(b);
        assert_eq!(d.width(rb), 1);
    }

    #[test]
    fn cam_index_width_math() {
        assert_eq!(RtlDesign::cam_index_width(1), 1);
        assert_eq!(RtlDesign::cam_index_width(2), 1);
        assert_eq!(RtlDesign::cam_index_width(3), 2);
        assert_eq!(RtlDesign::cam_index_width(64), 6);
        assert_eq!(RtlDesign::cam_index_width(65), 7);
        assert_eq!(RtlDesign::cam_index_width(2000), 11);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_literal_panics() {
        let mut d = RtlDesign::new("t");
        let _ = d.lit(16, 4);
    }
}

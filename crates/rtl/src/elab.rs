//! Elaboration: AST → flat word-level [`RtlDesign`].
//!
//! Instances are inlined recursively; wires resolve on demand with
//! combinational-cycle detection; sequential blocks compile each register's
//! next-state function into a mux tree over the block's conditions.

use std::collections::{HashMap, HashSet};

use crate::ast::*;
use crate::design::{CamSpec, CamWrite, NodeId, RegSpec, RtlDesign, WordOp};
use crate::error::RtlError;

/// Maximum module instantiation depth (cycle guard).
const MAX_DEPTH: usize = 32;

/// Elaborates module `top` of `file` into a flat design.
///
/// # Errors
///
/// Returns [`RtlError::Elab`] on unknown names, width violations,
/// combinational cycles, multiple drivers, clock misuse or missing
/// connections.
pub fn elaborate(file: &SourceFile, top: &str) -> Result<RtlDesign, RtlError> {
    let module = file
        .module(top)
        .ok_or_else(|| RtlError::elab(format!("unknown top module `{top}`")))?;
    let mut e = Elab {
        file,
        d: RtlDesign::new(top),
    };
    // Top-level ports become primary inputs/clocks.
    let mut bindings = HashMap::new();
    for p in &module.ports {
        match p.dir {
            Dir::In => {
                let idx = e.d.inputs.len() as u32;
                e.d.inputs.push((p.name.clone(), p.width));
                let node = e.d.intern(WordOp::Input(idx), p.width);
                bindings.insert(p.name.clone(), PortBinding::Value(node));
            }
            Dir::Clock => {
                let idx = e.d.clocks.len() as u32;
                e.d.clocks.push(p.name.clone());
                bindings.insert(p.name.clone(), PortBinding::Clock(idx));
            }
            Dir::Out => {}
        }
    }
    let outputs = e.instantiate(module, "", &bindings, 0)?;
    // Record top outputs in port declaration order.
    for p in &module.ports {
        if p.dir == Dir::Out {
            let node = *outputs
                .get(&p.name)
                .ok_or_else(|| RtlError::elab(format!("output `{}` is never driven", p.name)))?;
            let node = e.d.resize(node, p.width);
            e.d.outputs.push((p.name.clone(), node));
        }
    }
    Ok(e.d)
}

/// How a master's port is bound at an instantiation site.
#[derive(Debug, Clone, Copy)]
enum PortBinding {
    /// Data connection.
    Value(NodeId),
    /// Clock connection (design clock index).
    Clock(u32),
}

/// A name in scope.
#[derive(Debug, Clone)]
enum Binding {
    /// A resolved value.
    Node(NodeId),
    /// A clock.
    Clock(u32),
    /// A CAM (index into design cams).
    Cam(u32),
    /// An elaborated instance: output port name → node.
    Inst(HashMap<String, NodeId>),
}

struct Scope<'m> {
    prefix: String,
    names: HashMap<String, Binding>,
    /// Unresolved wire drivers.
    wires: HashMap<String, &'m Expr>,
    /// Unelaborated instances.
    insts: HashMap<String, &'m Item>,
    /// Local register name → design register index.
    regs: HashMap<String, u32>,
    /// Cycle detection for wire resolution.
    resolving: HashSet<String>,
}

struct Elab<'f> {
    file: &'f SourceFile,
    d: RtlDesign,
}

impl<'f> Elab<'f> {
    /// Instantiates `module` with the given port bindings; returns its
    /// output port values.
    fn instantiate(
        &mut self,
        module: &'f ModuleAst,
        prefix: &str,
        bindings: &HashMap<String, PortBinding>,
        depth: usize,
    ) -> Result<HashMap<String, NodeId>, RtlError> {
        if depth > MAX_DEPTH {
            return Err(RtlError::elab(format!(
                "instantiation depth limit exceeded in `{}` (recursive modules?)",
                module.name
            )));
        }
        let mut scope = Scope {
            prefix: prefix.to_owned(),
            names: HashMap::new(),
            wires: HashMap::new(),
            insts: HashMap::new(),
            regs: HashMap::new(),
            resolving: HashSet::new(),
        };
        // Bind ports.
        for p in &module.ports {
            match p.dir {
                Dir::In => {
                    let Some(PortBinding::Value(n)) = bindings.get(&p.name) else {
                        return Err(RtlError::elab(format!(
                            "input port `{}` of `{}` is not connected",
                            p.name, module.name
                        )));
                    };
                    let n = self.d.resize(*n, p.width);
                    scope.names.insert(p.name.clone(), Binding::Node(n));
                }
                Dir::Clock => {
                    let Some(PortBinding::Clock(c)) = bindings.get(&p.name) else {
                        return Err(RtlError::elab(format!(
                            "clock port `{}` of `{}` must be connected to a clock",
                            p.name, module.name
                        )));
                    };
                    scope.names.insert(p.name.clone(), Binding::Clock(*c));
                }
                Dir::Out => {}
            }
        }
        let qualified = |scope: &Scope, name: &str| {
            if scope.prefix.is_empty() {
                name.to_owned()
            } else {
                format!("{}/{}", scope.prefix, name)
            }
        };
        // Declaration pass.
        for item in &module.items {
            match item {
                Item::Reg { name, width, init } => {
                    if *width < 64 && *init >= 1u64 << width {
                        return Err(RtlError::elab(format!(
                            "init value {init} does not fit register `{name}` of width {width}"
                        )));
                    }
                    self.declare_unique(&scope, name)?;
                    let idx = self.d.regs.len() as u32;
                    let node = self.d.intern(WordOp::Reg(idx), *width);
                    self.d.regs.push(RegSpec {
                        name: qualified(&scope, name),
                        width: *width,
                        init: *init,
                        clock: u32::MAX,
                        next: node, // hold by default
                        edge: Edge::Pos,
                    });
                    scope.regs.insert(name.clone(), idx);
                    scope.names.insert(name.clone(), Binding::Node(node));
                }
                Item::Cam {
                    name,
                    entries,
                    width,
                } => {
                    self.declare_unique(&scope, name)?;
                    let idx = self.d.cams.len() as u32;
                    self.d.cams.push(CamSpec {
                        name: qualified(&scope, name),
                        entries: *entries,
                        width: *width,
                        clock: u32::MAX,
                        writes: Vec::new(),
                        edge: Edge::Pos,
                    });
                    scope.names.insert(name.clone(), Binding::Cam(idx));
                }
                Item::Wire { name, expr, .. } => {
                    if scope.names.contains_key(name) || scope.wires.contains_key(name) {
                        return Err(RtlError::elab(format!(
                            "`{name}` is driven more than once in `{}`",
                            module.name
                        )));
                    }
                    scope.wires.insert(name.clone(), expr);
                }
                Item::Inst { name, .. } => {
                    self.declare_unique(&scope, name)?;
                    scope.insts.insert(name.clone(), item);
                }
                Item::Seq { .. } => {}
            }
        }
        // Force-elaborate every instance (even ones whose outputs are
        // unused: their registers still exist and tick) — in declaration
        // order, so node numbering is identical on every run and
        // compiled programs stay byte-reproducible.
        for item in &module.items {
            if let Item::Inst { name, .. } = item {
                self.resolve_inst(&mut scope, name, depth)?;
            }
        }
        // Resolve every wire (unused wires still get width checks),
        // declaration order for the same reason.
        for item in &module.items {
            if let Item::Wire { name, .. } = item {
                self.resolve_name(&mut scope, name, depth)?;
            }
        }
        // Sequential blocks.
        for item in &module.items {
            if let Item::Seq { clock, body, edge } = item {
                let clock_idx = match scope.names.get(clock.as_str()) {
                    Some(Binding::Clock(c)) => *c,
                    _ => {
                        return Err(RtlError::elab(format!(
                            "`{clock}` is not a clock in `{}`",
                            module.name
                        )))
                    }
                };
                self.seq_block(&mut scope, clock_idx, *edge, body, None, depth)?;
            }
        }
        // Collect outputs: wires or regs matching output port names.
        let mut outputs = HashMap::new();
        for p in &module.ports {
            if p.dir == Dir::Out {
                let node = self.resolve_name(&mut scope, &p.name, depth)?;
                outputs.insert(p.name.clone(), node);
            }
        }
        // Also expose every named wire/reg so parents can use `u0.x` even
        // for non-port signals? No — only declared outputs, to keep module
        // interfaces meaningful.
        Ok(outputs)
    }

    fn declare_unique(&self, scope: &Scope, name: &str) -> Result<(), RtlError> {
        if scope.names.contains_key(name) || scope.wires.contains_key(name) {
            return Err(RtlError::elab(format!(
                "`{name}` is declared more than once"
            )));
        }
        Ok(())
    }

    fn resolve_name(
        &mut self,
        scope: &mut Scope<'f>,
        name: &str,
        depth: usize,
    ) -> Result<NodeId, RtlError> {
        if let Some(b) = scope.names.get(name) {
            return match b {
                Binding::Node(n) => Ok(*n),
                Binding::Clock(_) => Err(RtlError::elab(format!(
                    "clock `{name}` cannot be used as a data value"
                ))),
                Binding::Cam(_) => Err(RtlError::elab(format!(
                    "cam `{name}` cannot be used directly; use .hit/.index/.read"
                ))),
                Binding::Inst(_) => Err(RtlError::elab(format!(
                    "instance `{name}` cannot be used directly; select an output port"
                ))),
            };
        }
        if let Some(expr) = scope.wires.remove(name) {
            if !scope.resolving.insert(name.to_owned()) {
                return Err(RtlError::elab(format!(
                    "combinational cycle through `{name}`"
                )));
            }
            let node = self.resolve_expr(scope, expr, depth)?;
            scope.resolving.remove(name);
            scope.names.insert(name.to_owned(), Binding::Node(node));
            return Ok(node);
        }
        if scope.resolving.contains(name) {
            return Err(RtlError::elab(format!(
                "combinational cycle through `{name}`"
            )));
        }
        Err(RtlError::elab(format!("unknown signal `{name}`")))
    }

    fn resolve_inst(
        &mut self,
        scope: &mut Scope<'f>,
        name: &str,
        depth: usize,
    ) -> Result<(), RtlError> {
        let Some(item) = scope.insts.remove(name) else {
            return Ok(()); // already elaborated
        };
        let Item::Inst {
            module: master_name,
            conns,
            ..
        } = item
        else {
            unreachable!("insts map only holds Item::Inst");
        };
        let master = self
            .file
            .module(master_name)
            .ok_or_else(|| RtlError::elab(format!("unknown module `{master_name}`")))?;
        let mut bindings = HashMap::new();
        for (port, expr) in conns {
            let decl = master
                .ports
                .iter()
                .find(|p| &p.name == port)
                .ok_or_else(|| RtlError::elab(format!("`{master_name}` has no port `{port}`")))?;
            match decl.dir {
                Dir::In => {
                    let n = self.resolve_expr(scope, expr, depth)?;
                    bindings.insert(port.clone(), PortBinding::Value(n));
                }
                Dir::Clock => {
                    let Expr::Ident(cname) = expr else {
                        return Err(RtlError::elab(format!(
                            "clock port `{port}` must be connected to a clock name"
                        )));
                    };
                    match scope.names.get(cname.as_str()) {
                        Some(Binding::Clock(c)) => {
                            bindings.insert(port.clone(), PortBinding::Clock(*c));
                        }
                        _ => {
                            return Err(RtlError::elab(format!(
                                "`{cname}` is not a clock (connecting `{port}` of `{master_name}`)"
                            )))
                        }
                    }
                }
                Dir::Out => {
                    return Err(RtlError::elab(format!(
                        "cannot drive output port `{port}` of `{master_name}` from outside"
                    )))
                }
            }
        }
        let child_prefix = if scope.prefix.is_empty() {
            name.to_owned()
        } else {
            format!("{}/{name}", scope.prefix)
        };
        let outputs = self.instantiate(master, &child_prefix, &bindings, depth + 1)?;
        scope.names.insert(name.to_owned(), Binding::Inst(outputs));
        Ok(())
    }

    fn seq_block(
        &mut self,
        scope: &mut Scope<'f>,
        clock: u32,
        edge: Edge,
        body: &'f [Stmt],
        cond: Option<NodeId>,
        depth: usize,
    ) -> Result<(), RtlError> {
        for stmt in body {
            match stmt {
                Stmt::NonBlocking { target, expr } => {
                    let rhs = self.resolve_expr(scope, expr, depth)?;
                    match target {
                        Target::Reg(name) => {
                            let Some(&reg_idx) = scope.regs.get(name.as_str()) else {
                                return Err(RtlError::elab(format!(
                                    "`{name}` is not a register (non-blocking assignment target)"
                                )));
                            };
                            let spec = &self.d.regs[reg_idx as usize];
                            if spec.clock != u32::MAX && (spec.clock != clock || spec.edge != edge)
                            {
                                return Err(RtlError::elab(format!(
                                    "register `{name}` is written from two different clocks or edges"
                                )));
                            }
                            let width = spec.width;
                            let prev = spec.next;
                            let rhs = self.d.resize(rhs, width);
                            let next = match cond {
                                Some(c) => self.d.intern(WordOp::Mux(c, rhs, prev), width),
                                None => rhs,
                            };
                            let spec = &mut self.d.regs[reg_idx as usize];
                            spec.next = next;
                            spec.clock = clock;
                            spec.edge = edge;
                        }
                        Target::CamEntry { cam, index } => {
                            let cam_idx = match scope.names.get(cam.as_str()) {
                                Some(Binding::Cam(c)) => *c,
                                _ => {
                                    return Err(RtlError::elab(format!(
                                        "`{cam}` is not a cam (indexed assignment target)"
                                    )))
                                }
                            };
                            let spec = &self.d.cams[cam_idx as usize];
                            if spec.clock != u32::MAX && (spec.clock != clock || spec.edge != edge)
                            {
                                return Err(RtlError::elab(format!(
                                    "cam `{cam}` is written from two different clocks or edges"
                                )));
                            }
                            let (entries, width) = (spec.entries, spec.width);
                            let idx_node = self.resolve_expr(scope, index, depth)?;
                            let iw = RtlDesign::cam_index_width(entries);
                            let idx_node = self.d.resize(idx_node, iw);
                            let value = self.d.resize(rhs, width);
                            let enable = match cond {
                                Some(c) => c,
                                None => self.d.lit(1, 1),
                            };
                            let spec = &mut self.d.cams[cam_idx as usize];
                            spec.clock = clock;
                            spec.edge = edge;
                            spec.writes.push(CamWrite {
                                enable,
                                index: idx_node,
                                value,
                            });
                        }
                    }
                }
                Stmt::If { cond: c, then, els } => {
                    let c_node = self.resolve_expr(scope, c, depth)?;
                    let c_node = self.d.to_bool(c_node);
                    let then_cond = match cond {
                        Some(outer) => self.d.intern(WordOp::And(outer, c_node), 1),
                        None => c_node,
                    };
                    self.seq_block(scope, clock, edge, then, Some(then_cond), depth)?;
                    if !els.is_empty() {
                        let not_c = self.d.intern(WordOp::Not(c_node), 1);
                        let els_cond = match cond {
                            Some(outer) => self.d.intern(WordOp::And(outer, not_c), 1),
                            None => not_c,
                        };
                        self.seq_block(scope, clock, edge, els, Some(els_cond), depth)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn resolve_expr(
        &mut self,
        scope: &mut Scope<'f>,
        expr: &'f Expr,
        depth: usize,
    ) -> Result<NodeId, RtlError> {
        match expr {
            Expr::Lit { value, width } => {
                let w = width.unwrap_or_else(|| (64 - value.leading_zeros()).max(1));
                Ok(self.d.lit(*value, w))
            }
            Expr::Ident(name) => self.resolve_name(scope, name, depth),
            Expr::Index { base, index } => {
                let b = self.resolve_expr(scope, base, depth)?;
                if let Expr::Lit { value, .. } = index.as_ref() {
                    let bit = *value as u32;
                    if bit >= self.d.width(b) {
                        return Err(RtlError::elab(format!(
                            "bit index {bit} out of range for {}-bit value",
                            self.d.width(b)
                        )));
                    }
                    return Ok(self.d.intern(WordOp::Slice { a: b, lo: bit }, 1));
                }
                let i = self.resolve_expr(scope, index, depth)?;
                let bw = self.d.width(b);
                let shifted = self.d.intern(WordOp::Shr(b, i), bw);
                Ok(self.d.intern(WordOp::Slice { a: shifted, lo: 0 }, 1))
            }
            Expr::Slice { base, hi, lo } => {
                let b = self.resolve_expr(scope, base, depth)?;
                if *hi >= self.d.width(b) {
                    return Err(RtlError::elab(format!(
                        "slice [{hi}:{lo}] out of range for {}-bit value",
                        self.d.width(b)
                    )));
                }
                Ok(self.d.intern(WordOp::Slice { a: b, lo: *lo }, hi - lo + 1))
            }
            Expr::Concat(parts) => {
                let mut nodes = Vec::with_capacity(parts.len());
                let mut total = 0u32;
                for p in parts {
                    let n = self.resolve_expr(scope, p, depth)?;
                    total += self.d.width(n);
                    nodes.push(n);
                }
                if total > 64 {
                    return Err(RtlError::elab(format!(
                        "concatenation width {total} exceeds 64 bits"
                    )));
                }
                let mut acc = nodes[0];
                for &n in &nodes[1..] {
                    let w = self.d.width(acc) + self.d.width(n);
                    acc = self.d.intern(WordOp::Concat { hi: acc, lo: n }, w);
                }
                Ok(acc)
            }
            Expr::Unary { op, expr } => {
                let a = self.resolve_expr(scope, expr, depth)?;
                let w = self.d.width(a);
                Ok(match op {
                    UnaryOp::Not => self.d.intern(WordOp::Not(a), w),
                    UnaryOp::LogicNot => {
                        let b = self.d.to_bool(a);
                        self.d.intern(WordOp::Not(b), 1)
                    }
                    UnaryOp::RedAnd => self.d.intern(WordOp::RedAnd(a), 1),
                    UnaryOp::RedOr => self.d.intern(WordOp::RedOr(a), 1),
                    UnaryOp::RedXor => self.d.intern(WordOp::RedXor(a), 1),
                    UnaryOp::Neg => self.d.intern(WordOp::Neg(a), w),
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.resolve_expr(scope, lhs, depth)?;
                let b = self.resolve_expr(scope, rhs, depth)?;
                self.binary(*op, a, b)
            }
            Expr::Ternary { cond, then, els } => {
                let c = self.resolve_expr(scope, cond, depth)?;
                let c = self.d.to_bool(c);
                let t = self.resolve_expr(scope, then, depth)?;
                let e = self.resolve_expr(scope, els, depth)?;
                let w = self.d.width(t).max(self.d.width(e));
                let t = self.d.zext(t, w)?;
                let e = self.d.zext(e, w)?;
                Ok(self.d.intern(WordOp::Mux(c, t, e), w))
            }
            Expr::CamOp { cam, method, arg } => {
                let cam_idx = match scope.names.get(cam.as_str()) {
                    Some(Binding::Cam(c)) => *c,
                    _ => {
                        return Err(RtlError::elab(format!("`{cam}` is not a cam")));
                    }
                };
                let spec = &self.d.cams[cam_idx as usize];
                let (entries, width) = (spec.entries, spec.width);
                let a = self.resolve_expr(scope, arg, depth)?;
                Ok(match method {
                    CamMethod::Hit => {
                        let key = self.d.resize(a, width);
                        self.d.intern(WordOp::CamHit { cam: cam_idx, key }, 1)
                    }
                    CamMethod::Index => {
                        let key = self.d.resize(a, width);
                        let iw = RtlDesign::cam_index_width(entries);
                        self.d.intern(WordOp::CamIndex { cam: cam_idx, key }, iw)
                    }
                    CamMethod::Read => {
                        let iw = RtlDesign::cam_index_width(entries);
                        let index = self.d.resize(a, iw);
                        self.d.intern(
                            WordOp::CamRead {
                                cam: cam_idx,
                                index,
                            },
                            width,
                        )
                    }
                })
            }
            Expr::Field { inst, port } => {
                self.resolve_inst(scope, inst, depth)?;
                match scope.names.get(inst.as_str()) {
                    Some(Binding::Inst(outputs)) => outputs.get(port).copied().ok_or_else(|| {
                        RtlError::elab(format!("instance `{inst}` has no output `{port}`"))
                    }),
                    _ => Err(RtlError::elab(format!("`{inst}` is not an instance"))),
                }
            }
        }
    }

    fn binary(&mut self, op: BinaryOp, a: NodeId, b: NodeId) -> Result<NodeId, RtlError> {
        let equalize = |d: &mut RtlDesign, a: NodeId, b: NodeId| -> (NodeId, NodeId, u32) {
            let w = d.width(a).max(d.width(b));
            let a = d.resize(a, w);
            let b = d.resize(b, w);
            (a, b, w)
        };
        Ok(match op {
            BinaryOp::And => {
                let (a, b, w) = equalize(&mut self.d, a, b);
                self.d.intern(WordOp::And(a, b), w)
            }
            BinaryOp::Or => {
                let (a, b, w) = equalize(&mut self.d, a, b);
                self.d.intern(WordOp::Or(a, b), w)
            }
            BinaryOp::Xor => {
                let (a, b, w) = equalize(&mut self.d, a, b);
                self.d.intern(WordOp::Xor(a, b), w)
            }
            BinaryOp::Add => {
                let (a, b, w) = equalize(&mut self.d, a, b);
                self.d.intern(WordOp::Add(a, b), w)
            }
            BinaryOp::Sub => {
                let (a, b, w) = equalize(&mut self.d, a, b);
                self.d.intern(WordOp::Sub(a, b), w)
            }
            BinaryOp::Shl => {
                let w = self.d.width(a);
                self.d.intern(WordOp::Shl(a, b), w)
            }
            BinaryOp::Shr => {
                let w = self.d.width(a);
                self.d.intern(WordOp::Shr(a, b), w)
            }
            BinaryOp::Eq => {
                let (a, b, _) = equalize(&mut self.d, a, b);
                self.d.intern(WordOp::Eq(a, b), 1)
            }
            BinaryOp::Ne => {
                let (a, b, _) = equalize(&mut self.d, a, b);
                let eq = self.d.intern(WordOp::Eq(a, b), 1);
                self.d.intern(WordOp::Not(eq), 1)
            }
            BinaryOp::Lt => {
                let (a, b, _) = equalize(&mut self.d, a, b);
                self.d.intern(WordOp::Lt(a, b), 1)
            }
            BinaryOp::Le => {
                let (a, b, _) = equalize(&mut self.d, a, b);
                self.d.intern(WordOp::Le(a, b), 1)
            }
            BinaryOp::Gt => {
                let (a, b, _) = equalize(&mut self.d, a, b);
                self.d.intern(WordOp::Lt(b, a), 1)
            }
            BinaryOp::Ge => {
                let (a, b, _) = equalize(&mut self.d, a, b);
                self.d.intern(WordOp::Le(b, a), 1)
            }
            BinaryOp::LogicAnd => {
                let a = self.d.to_bool(a);
                let b = self.d.to_bool(b);
                self.d.intern(WordOp::And(a, b), 1)
            }
            BinaryOp::LogicOr => {
                let a = self.d.to_bool(a);
                let b = self.d.to_bool(b);
                self.d.intern(WordOp::Or(a, b), 1)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn compile(src: &str, top: &str) -> Result<RtlDesign, RtlError> {
        elaborate(&parse(src).unwrap(), top)
    }

    #[test]
    fn simple_combinational() {
        let d = compile(
            "module m(in a[4], in b[4], out s[5]) { assign s = {1'b0, a} + b; }",
            "m",
        )
        .unwrap();
        assert_eq!(d.inputs.len(), 2);
        assert_eq!(d.outputs.len(), 1);
        assert_eq!(d.width(d.outputs[0].1), 5);
    }

    #[test]
    fn register_with_hold() {
        let d = compile(
            "module m(clock ck, in en, in v[8], out q[8]) { reg r[8]; at posedge(ck) { if (en) { r <= v; } } assign q = r; }",
            "m",
        )
        .unwrap();
        assert_eq!(d.regs.len(), 1);
        // Next must be a mux (hold path present).
        assert!(matches!(d.node(d.regs[0].next).op, WordOp::Mux(..)));
    }

    #[test]
    fn unconditional_write_has_no_mux() {
        let d = compile(
            "module m(clock ck, in v[8], out q[8]) { reg r[8]; at posedge(ck) { r <= v; } assign q = r; }",
            "m",
        )
        .unwrap();
        assert!(matches!(
            d.node(d.regs[0].next).op,
            WordOp::ZExt(_) | WordOp::Input(_)
        ));
    }

    #[test]
    fn combinational_cycle_detected() {
        let e = compile(
            "module m(in a, out y) { wire p = q | a; wire q = p; assign y = q; }",
            "m",
        )
        .unwrap_err();
        assert!(e.to_string().contains("combinational cycle"), "{e}");
    }

    #[test]
    fn unknown_signal_detected() {
        let e = compile("module m(out y) { assign y = ghost; }", "m").unwrap_err();
        assert!(e.to_string().contains("unknown signal"));
    }

    #[test]
    fn double_driver_detected() {
        let e = compile(
            "module m(in a, out y) { assign y = a; assign y = ~a; }",
            "m",
        )
        .unwrap_err();
        assert!(e.to_string().contains("more than once"));
    }

    #[test]
    fn hierarchical_instance() {
        let d = compile(
            "module ha(in a, in b, out s, out c) { assign s = a ^ b; assign c = a & b; }\n\
             module top(in x, in y, out sum, out carry) {\n\
               inst u = ha(a: x, b: y);\n\
               assign sum = u.s; assign carry = u.c;\n\
             }",
            "top",
        )
        .unwrap();
        assert_eq!(d.outputs.len(), 2);
    }

    #[test]
    fn instance_registers_get_prefixed_names() {
        let d = compile(
            "module dff(clock ck, in d, out q) { reg r; at posedge(ck) { r <= d; } assign q = r; }\n\
             module top(clock ck, in d, out q) { inst f0 = dff(ck: ck, d: d); inst f1 = dff(ck: ck, d: f0.q); assign q = f1.q; }",
            "top",
        )
        .unwrap();
        let names: Vec<&str> = d.regs.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"f0/r"));
        assert!(names.contains(&"f1/r"));
    }

    #[test]
    fn clock_cannot_be_data() {
        let e = compile("module m(clock ck, out y) { assign y = ck; }", "m").unwrap_err();
        assert!(e.to_string().contains("clock"));
    }

    #[test]
    fn two_clock_write_rejected() {
        let e = compile(
            "module m(clock c1, clock c2, in v, out q) { reg r; at posedge(c1) { r <= v; } at posedge(c2) { r <= ~v; } assign q = r; }",
            "m",
        )
        .unwrap_err();
        assert!(e.to_string().contains("two different clocks"));
    }

    #[test]
    fn two_edge_write_rejected() {
        // A register written on both edges of the same clock is a DDR
        // flop — out of scope, rejected like a two-clock write.
        let e = compile(
            "module m(clock ck, in v, out q) { reg r; at posedge(ck) { r <= v; } at negedge(ck) { r <= ~v; } assign q = r; }",
            "m",
        )
        .unwrap_err();
        assert!(e.to_string().contains("two different clocks or edges"));
    }

    #[test]
    fn negedge_block_elaborates_with_edge() {
        let d = compile(
            "module m(clock ck, in v, out q) { reg r; at negedge(ck) { r <= v; } assign q = r; }",
            "m",
        )
        .unwrap();
        assert_eq!(d.regs.len(), 1);
        assert_eq!(d.regs[0].edge, Edge::Neg);
        assert!(d.has_negedge(0));
    }

    #[test]
    fn cam_ops_elaborate() {
        let d = compile(
            "module m(clock ck, in k[16], in i[4], in v[16], in we, out hit, out idx[4]) {\n\
               cam t[16][16];\n\
               at posedge(ck) { if (we) { t[i] <= v; } }\n\
               assign hit = t.hit(k); assign idx = t.index(k);\n\
             }",
            "m",
        )
        .unwrap();
        assert_eq!(d.cams.len(), 1);
        assert_eq!(d.cams[0].writes.len(), 1);
        assert_eq!(d.width(d.output("idx").unwrap()), 4);
    }

    #[test]
    fn recursive_module_rejected() {
        let e = compile(
            "module m(in a, out y) { inst u = m(a: a); assign y = u.y; }",
            "m",
        )
        .unwrap_err();
        assert!(e.to_string().contains("depth"));
    }

    #[test]
    fn output_must_be_driven() {
        let e = compile("module m(in a, out y) { wire z = a; }", "m").unwrap_err();
        assert!(
            e.to_string().contains("unknown signal `y`") || e.to_string().contains("never driven")
        );
    }

    #[test]
    fn oversized_concat_rejected() {
        let e = compile(
            "module m(in a[40], in b[40], out y) { assign y = {a, b} == 0; }",
            "m",
        )
        .unwrap_err();
        assert!(e.to_string().contains("exceeds 64"));
    }
}

//! Tokenizer for the HDL.

use crate::error::{Pos, RtlError};

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal with optional explicit width (`8'hff` style or bare).
    Lit {
        /// The value.
        value: u64,
        /// Explicit width if the `w'bxx` form was used.
        width: Option<u32>,
    },
    /// Punctuation / operator, canonical spelling.
    Punct(&'static str),
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What it is.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

const PUNCTS: &[&str] = &[
    // Longest first so maximal munch works.
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->", "(", ")", "{", "}", "[", "]", ",", ";",
    ":", "?", ".", "~", "!", "&", "|", "^", "+", "-", "*", "<", ">", "=",
];

/// Tokenizes source text.
///
/// # Errors
///
/// Returns [`RtlError::Lex`] on unrecognized characters or malformed
/// literals.
pub fn lex(source: &str) -> Result<Vec<Token>, RtlError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    let advance = |i: &mut usize, line: &mut usize, col: &mut usize, n: usize, bytes: &[u8]| {
        for _ in 0..n {
            if *i < bytes.len() && bytes[*i] == b'\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        }
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = Pos { line, col };
        if c.is_ascii_whitespace() {
            advance(&mut i, &mut line, &mut col, 1, bytes);
            continue;
        }
        // Line comments.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                advance(&mut i, &mut line, &mut col, 1, bytes);
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                advance(&mut i, &mut line, &mut col, 1, bytes);
            }
            out.push(Token {
                tok: Tok::Ident(source[start..i].to_owned()),
                pos,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || bytes[i] == b'\'')
            {
                advance(&mut i, &mut line, &mut col, 1, bytes);
            }
            let text: String = source[start..i].chars().filter(|&ch| ch != '_').collect();
            let (value, width) =
                parse_literal(&text).map_err(|message| RtlError::Lex { pos, message })?;
            out.push(Token {
                tok: Tok::Lit { value, width },
                pos,
            });
            continue;
        }
        // Punctuation, maximal munch.
        let rest = &source[i..];
        let mut matched = None;
        for p in PUNCTS {
            if rest.starts_with(p) {
                matched = Some(*p);
                break;
            }
        }
        match matched {
            Some(p) => {
                out.push(Token {
                    tok: Tok::Punct(p),
                    pos,
                });
                advance(&mut i, &mut line, &mut col, p.len(), bytes);
            }
            None => {
                return Err(RtlError::Lex {
                    pos,
                    message: format!("unexpected character `{c}`"),
                })
            }
        }
    }
    Ok(out)
}

/// Parses `255`, `0xff`, `0b1010`, `8'hff`, `4'b1010`, `10'd512`.
fn parse_literal(text: &str) -> Result<(u64, Option<u32>), String> {
    if let Some((w, rest)) = text.split_once('\'') {
        let width: u32 = w
            .parse()
            .map_err(|_| format!("malformed width in literal `{text}`"))?;
        if width == 0 || width > 64 {
            return Err(format!("literal width {width} out of range 1..=64"));
        }
        let (radix, digits) = match rest.chars().next() {
            Some('h') => (16, &rest[1..]),
            Some('b') => (2, &rest[1..]),
            Some('d') => (10, &rest[1..]),
            Some('o') => (8, &rest[1..]),
            _ => return Err(format!("literal `{text}` needs a base (h/b/d/o)")),
        };
        let value = u64::from_str_radix(digits, radix)
            .map_err(|_| format!("malformed digits in literal `{text}`"))?;
        if width < 64 && value >= 1u64 << width {
            return Err(format!("literal `{text}` does not fit in {width} bits"));
        }
        Ok((value, Some(width)))
    } else if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
            .map(|v| (v, None))
            .map_err(|_| format!("malformed hex literal `{text}`"))
    } else if let Some(bin) = text.strip_prefix("0b") {
        u64::from_str_radix(bin, 2)
            .map(|v| (v, None))
            .map_err(|_| format!("malformed binary literal `{text}`"))
    } else {
        text.parse()
            .map(|v| (v, None))
            .map_err(|_| format!("malformed literal `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = toks("module foo(a, b) { a <= b; }");
        assert_eq!(t[0], Tok::Ident("module".into()));
        assert!(t.contains(&Tok::Punct("<=")));
        assert!(t.contains(&Tok::Punct("{")));
    }

    #[test]
    fn literals() {
        assert_eq!(
            toks("255")[0],
            Tok::Lit {
                value: 255,
                width: None
            }
        );
        assert_eq!(
            toks("0xff")[0],
            Tok::Lit {
                value: 255,
                width: None
            }
        );
        assert_eq!(
            toks("0b1010")[0],
            Tok::Lit {
                value: 10,
                width: None
            }
        );
        assert_eq!(
            toks("8'hff")[0],
            Tok::Lit {
                value: 255,
                width: Some(8)
            }
        );
        assert_eq!(
            toks("4'b1010")[0],
            Tok::Lit {
                value: 10,
                width: Some(4)
            }
        );
        assert_eq!(
            toks("10'd512")[0],
            Tok::Lit {
                value: 512,
                width: Some(10)
            }
        );
        assert_eq!(
            toks("1_000")[0],
            Tok::Lit {
                value: 1000,
                width: None
            }
        );
    }

    #[test]
    fn literal_overflow_rejected() {
        assert!(lex("4'hff").is_err());
        assert!(lex("99'h0").is_err());
    }

    #[test]
    fn comments_skipped() {
        let t = toks("a // comment with <= stuff\nb");
        assert_eq!(t, vec![Tok::Ident("a".into()), Tok::Ident("b".into())]);
    }

    #[test]
    fn maximal_munch() {
        let t = toks("a<<2 b<=c d<e");
        assert!(t.contains(&Tok::Punct("<<")));
        assert!(t.contains(&Tok::Punct("<=")));
        assert!(t.contains(&Tok::Punct("<")));
    }

    #[test]
    fn positions_track_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_char_reports_position() {
        let e = lex("a $").unwrap_err();
        match e {
            RtlError::Lex { pos, .. } => assert_eq!(pos, Pos { line: 1, col: 3 }),
            other => panic!("unexpected {other:?}"),
        }
    }
}

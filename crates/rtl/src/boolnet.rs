//! Gate-level boolean network.
//!
//! The bit-blasted form of a design: a DAG of 2-input gates over input
//! bits and state bits, with per-state next functions. This is the shared
//! representation consumed by the equivalence checker (`cbv-equiv`, which
//! builds BDDs from it) and the gate-level event simulator in `cbv-sim`.

use std::collections::HashMap;

use crate::ast::Edge;

/// Index of a gate within one [`BoolNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoolId(pub u32);

impl BoolId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Gate types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Constant.
    Const(bool),
    /// Primary input bit (index into [`BoolNet::inputs`]).
    Input(u32),
    /// Current value of a state bit (index into [`BoolNet::states`]).
    State(u32),
    /// Inverter.
    Not(BoolId),
    /// 2-input AND.
    And(BoolId, BoolId),
    /// 2-input OR.
    Or(BoolId, BoolId),
    /// 2-input XOR.
    Xor(BoolId, BoolId),
    /// 2:1 mux `s ? a : b`.
    Mux(BoolId, BoolId, BoolId),
}

/// One state (register) bit.
#[derive(Debug, Clone, PartialEq)]
pub struct StateBit {
    /// Hierarchical name, e.g. `f0/r[3]`.
    pub name: String,
    /// Initial value.
    pub init: bool,
    /// Next-state function (set after construction; starts as self-hold).
    pub next: BoolId,
    /// Clock index (matches [`crate::RtlDesign::clocks`]).
    pub clock: u32,
    /// Active edge of the clock.
    pub edge: Edge,
}

/// A bit-blasted network.
#[derive(Debug, Clone, Default)]
pub struct BoolNet {
    /// Gates in topological (creation) order.
    gates: Vec<Gate>,
    cons: HashMap<Gate, BoolId>,
    /// Primary input bit names.
    pub inputs: Vec<String>,
    /// State bits.
    pub states: Vec<StateBit>,
    /// Named word outputs, LSB first.
    pub outputs: Vec<(String, Vec<BoolId>)>,
    /// Clock names carried over from the source design.
    pub clocks: Vec<String>,
}

impl BoolNet {
    /// Creates an empty network.
    pub fn new() -> BoolNet {
        BoolNet::default()
    }

    /// The gates in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Gate count (network size).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Interns a gate with structural hashing and local simplification.
    pub fn mk(&mut self, gate: Gate) -> BoolId {
        // Constant folding / algebraic simplification.
        let gate = self.simplify(gate);
        if let Some(&id) = self.cons.get(&gate) {
            return id;
        }
        let id = BoolId(self.gates.len() as u32);
        self.gates.push(gate);
        self.cons.insert(gate, id);
        id
    }

    fn as_const(&self, id: BoolId) -> Option<bool> {
        match self.gates.get(id.index()) {
            Some(Gate::Const(b)) => Some(*b),
            _ => None,
        }
    }

    fn simplify(&mut self, gate: Gate) -> Gate {
        match gate {
            Gate::Not(a) => match self.as_const(a) {
                Some(b) => Gate::Const(!b),
                None => match self.gates[a.index()] {
                    Gate::Not(inner) => self.gates[inner.index()],
                    _ => gate,
                },
            },
            Gate::And(a, b) => match (self.as_const(a), self.as_const(b)) {
                (Some(false), _) | (_, Some(false)) => Gate::Const(false),
                (Some(true), _) => self.gates[b.index()],
                (_, Some(true)) => self.gates[a.index()],
                _ if a == b => self.gates[a.index()],
                // Canonical operand order for better sharing.
                _ if a > b => Gate::And(b, a),
                _ => gate,
            },
            Gate::Or(a, b) => match (self.as_const(a), self.as_const(b)) {
                (Some(true), _) | (_, Some(true)) => Gate::Const(true),
                (Some(false), _) => self.gates[b.index()],
                (_, Some(false)) => self.gates[a.index()],
                _ if a == b => self.gates[a.index()],
                _ if a > b => Gate::Or(b, a),
                _ => gate,
            },
            Gate::Xor(a, b) => match (self.as_const(a), self.as_const(b)) {
                (Some(false), _) => self.gates[b.index()],
                (_, Some(false)) => self.gates[a.index()],
                (Some(true), Some(true)) => Gate::Const(false),
                _ if a == b => Gate::Const(false),
                _ if a > b => Gate::Xor(b, a),
                _ => gate,
            },
            Gate::Mux(s, a, b) => match self.as_const(s) {
                Some(true) => self.gates[a.index()],
                Some(false) => self.gates[b.index()],
                None if a == b => self.gates[a.index()],
                None => gate,
            },
            other => other,
        }
    }

    /// Convenience: constant gate.
    pub fn constant(&mut self, b: bool) -> BoolId {
        self.mk(Gate::Const(b))
    }

    /// Convenience: fresh input bit.
    pub fn input(&mut self, name: impl Into<String>) -> BoolId {
        let idx = self.inputs.len() as u32;
        self.inputs.push(name.into());
        self.mk(Gate::Input(idx))
    }

    /// Convenience: fresh posedge state bit (next defaults to hold).
    pub fn state(&mut self, name: impl Into<String>, init: bool, clock: u32) -> BoolId {
        self.state_on_edge(name, init, clock, Edge::Pos)
    }

    /// Fresh state bit committing on the given edge of `clock` (next
    /// defaults to hold).
    pub fn state_on_edge(
        &mut self,
        name: impl Into<String>,
        init: bool,
        clock: u32,
        edge: Edge,
    ) -> BoolId {
        let idx = self.states.len() as u32;
        let id = self.mk(Gate::State(idx));
        self.states.push(StateBit {
            name: name.into(),
            init,
            next: id,
            clock,
            edge,
        });
        id
    }

    /// True when any state bit commits on the falling edge of `clock`
    /// — a full cycle of that clock needs a second commit phase (with
    /// re-evaluated gate values) after the rising edge.
    pub fn has_negedge(&self, clock: u32) -> bool {
        self.states
            .iter()
            .any(|s| s.clock == clock && s.edge == Edge::Neg)
    }

    /// Replaces the gate stored at `id` in place — a low-level mutator
    /// for fault studies and levelization tests. Bypasses structural
    /// hashing and simplification entirely: the old gate's intern entry
    /// is dropped and the new gate is **not** interned, so later
    /// [`BoolNet::mk`] calls may create a structural duplicate. The
    /// caller is responsible for keeping the network acyclic (use
    /// [`crate::level::levelize`] to check).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn replace_gate(&mut self, id: BoolId, gate: Gate) {
        let old = self.gates[id.index()];
        if self.cons.get(&old) == Some(&id) {
            self.cons.remove(&old);
        }
        self.gates[id.index()] = gate;
    }

    /// Evaluates all gates given input and state bit values; returns the
    /// full value vector indexed by [`BoolId`].
    ///
    /// # Panics
    ///
    /// Panics if the slices are shorter than the declared inputs/states.
    pub fn eval(&self, inputs: &[bool], states: &[bool]) -> Vec<bool> {
        let mut v = Vec::new();
        self.eval_into(inputs, states, &mut v);
        v
    }

    /// [`BoolNet::eval`] into a caller-owned buffer, so per-cycle loops
    /// (simulator settle loops, cross-engine sweeps) do not allocate.
    /// The buffer is resized to the gate count and fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if the slices are shorter than the declared inputs/states.
    pub fn eval_into(&self, inputs: &[bool], states: &[bool], v: &mut Vec<bool>) {
        assert!(inputs.len() >= self.inputs.len(), "missing input values");
        assert!(states.len() >= self.states.len(), "missing state values");
        v.clear();
        v.resize(self.gates.len(), false);
        for (i, g) in self.gates.iter().enumerate() {
            v[i] = match *g {
                Gate::Const(b) => b,
                Gate::Input(k) => inputs[k as usize],
                Gate::State(k) => states[k as usize],
                Gate::Not(a) => !v[a.index()],
                Gate::And(a, b) => v[a.index()] && v[b.index()],
                Gate::Or(a, b) => v[a.index()] || v[b.index()],
                Gate::Xor(a, b) => v[a.index()] ^ v[b.index()],
                Gate::Mux(s, a, b) => {
                    if v[s.index()] {
                        v[a.index()]
                    } else {
                        v[b.index()]
                    }
                }
            };
        }
    }

    /// Next-state vector for the *rising* edge of one clock from a value
    /// vector produced by [`BoolNet::eval`]. State bits on other clocks
    /// or on the falling edge hold — use [`BoolNet::next_states_edge`]
    /// with re-evaluated values for the second phase of a full cycle.
    pub fn next_states(&self, values: &[bool], states: &[bool], clock: u32) -> Vec<bool> {
        self.next_states_edge(values, states, clock, Edge::Pos)
    }

    /// [`BoolNet::next_states`] into a caller-owned buffer.
    pub fn next_states_into(
        &self,
        values: &[bool],
        states: &[bool],
        clock: u32,
        out: &mut Vec<bool>,
    ) {
        self.next_states_edge_into(values, states, clock, Edge::Pos, out);
    }

    /// Next-state vector for one `(clock, edge)` domain from a value
    /// vector produced by [`BoolNet::eval`]. All other state bits hold.
    pub fn next_states_edge(
        &self,
        values: &[bool],
        states: &[bool],
        clock: u32,
        edge: Edge,
    ) -> Vec<bool> {
        let mut out = Vec::new();
        self.next_states_edge_into(values, states, clock, edge, &mut out);
        out
    }

    /// [`BoolNet::next_states_edge`] into a caller-owned buffer (which
    /// may not alias `states`); resized and fully overwritten.
    pub fn next_states_edge_into(
        &self,
        values: &[bool],
        states: &[bool],
        clock: u32,
        edge: Edge,
        out: &mut Vec<bool>,
    ) {
        out.clear();
        out.extend(self.states.iter().enumerate().map(|(i, s)| {
            if s.clock == clock && s.edge == edge {
                values[s.next.index()]
            } else {
                states[i]
            }
        }));
    }

    /// Initial state vector.
    pub fn initial_states(&self) -> Vec<bool> {
        self.states.iter().map(|s| s.init).collect()
    }

    /// Finds a named output.
    pub fn output(&self, name: &str) -> Option<&[BoolId]> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, bits)| bits.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_hashing_shares() {
        let mut n = BoolNet::new();
        let a = n.input("a");
        let b = n.input("b");
        let x = n.mk(Gate::And(a, b));
        let y = n.mk(Gate::And(b, a)); // canonicalized
        assert_eq!(x, y);
    }

    #[test]
    fn constant_folding() {
        let mut n = BoolNet::new();
        let a = n.input("a");
        let t = n.constant(true);
        let f = n.constant(false);
        assert_eq!(n.mk(Gate::And(a, t)), a);
        assert_eq!(n.mk(Gate::And(a, f)), f);
        assert_eq!(n.mk(Gate::Or(a, f)), a);
        assert_eq!(n.mk(Gate::Or(a, t)), t);
        assert_eq!(n.mk(Gate::Xor(a, f)), a);
        let na = n.mk(Gate::Not(a));
        assert_eq!(n.mk(Gate::Not(na)), a, "double negation");
        assert_eq!(n.mk(Gate::Mux(t, a, na)), a);
        assert_eq!(n.mk(Gate::Mux(f, a, na)), na);
    }

    #[test]
    fn idempotence() {
        let mut n = BoolNet::new();
        let a = n.input("a");
        assert_eq!(n.mk(Gate::And(a, a)), a);
        assert_eq!(n.mk(Gate::Or(a, a)), a);
        let x = n.mk(Gate::Xor(a, a));
        assert_eq!(n.as_const(x), Some(false));
    }

    #[test]
    fn eval_small_circuit() {
        let mut n = BoolNet::new();
        let a = n.input("a");
        let b = n.input("b");
        let x = n.mk(Gate::Xor(a, b));
        let y = n.mk(Gate::And(a, b));
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let v = n.eval(&[va, vb], &[]);
            assert_eq!(v[x.index()], va ^ vb);
            assert_eq!(v[y.index()], va && vb);
        }
    }

    #[test]
    fn buffer_variants_match_allocating_forms() {
        let mut n = BoolNet::new();
        n.clocks.push("ck".into());
        let d = n.input("d");
        let q = n.state("r", true, 0);
        let x = n.mk(Gate::Xor(d, q));
        let idx = match n.gates()[q.index()] {
            Gate::State(k) => k as usize,
            _ => unreachable!(),
        };
        n.states[idx].next = x;
        let states = n.initial_states();
        let mut vbuf = vec![true; 64]; // deliberately stale and oversized
        for din in [false, true] {
            let fresh = n.eval(&[din], &states);
            n.eval_into(&[din], &states, &mut vbuf);
            assert_eq!(fresh, vbuf);
            let mut sbuf = Vec::new();
            n.next_states_edge_into(&fresh, &states, 0, Edge::Pos, &mut sbuf);
            assert_eq!(n.next_states(&fresh, &states, 0), sbuf);
            n.next_states_into(&fresh, &states, 1, &mut sbuf);
            assert_eq!(sbuf, states, "wrong clock holds");
        }
    }

    #[test]
    fn replace_gate_swaps_function_and_uninterns() {
        let mut n = BoolNet::new();
        let a = n.input("a");
        let b = n.input("b");
        let x = n.mk(Gate::And(a, b));
        n.replace_gate(x, Gate::Or(a, b));
        let v = n.eval(&[true, false], &[]);
        assert!(v[x.index()], "now an OR");
        // The AND mapping is gone: a fresh AND interns as a new gate.
        let y = n.mk(Gate::And(a, b));
        assert_ne!(x, y);
    }

    #[test]
    fn state_stepping() {
        let mut n = BoolNet::new();
        n.clocks.push("ck".into());
        let d = n.input("d");
        let q = n.state("r", false, 0);
        // r <= d
        let idx = match n.gates()[q.index()] {
            Gate::State(k) => k as usize,
            _ => unreachable!(),
        };
        n.states[idx].next = d;
        let st = n.initial_states();
        assert_eq!(st, vec![false]);
        let v = n.eval(&[true], &st);
        let st2 = n.next_states(&v, &st, 0);
        assert_eq!(st2, vec![true]);
        // Wrong clock: holds.
        let st3 = n.next_states(&v, &st, 1);
        assert_eq!(st3, vec![false]);
    }
}

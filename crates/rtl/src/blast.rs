//! Bit-blasting: word-level [`RtlDesign`] → gate-level [`BoolNet`].
//!
//! Every word node expands to one boolean function per bit. CAMs expand to
//! `entries × width` state bits plus match/priority-encode/read logic —
//! the gate explosion the paper's custom HDL avoids at simulation time,
//! made explicit here for equivalence checking (and measured against the
//! native interpreter in experiment E7).

use crate::boolnet::{BoolId, BoolNet, Gate};
use crate::design::{NodeId, RtlDesign, WordOp};
use crate::error::RtlError;

/// Refuse to blast CAMs larger than this many entries: the gate network
/// grows as `entries × width` and equivalence checking beyond this size is
/// the wrong tool (the paper's point exactly).
pub const MAX_BLAST_CAM_ENTRIES: u32 = 512;

struct Blaster<'d> {
    d: &'d RtlDesign,
    net: BoolNet,
    /// design node -> bit vector (LSB first)
    map: Vec<Vec<BoolId>>,
    /// design reg index -> state bits
    reg_bits: Vec<Vec<BoolId>>,
    /// design cam index -> per-entry state bits
    cam_bits: Vec<Vec<Vec<BoolId>>>,
}

/// Bit-blasts a design.
///
/// # Errors
///
/// Returns an error if the design contains a CAM with more than
/// [`MAX_BLAST_CAM_ENTRIES`] entries.
pub fn blast(design: &RtlDesign) -> Result<BoolNet, RtlError> {
    let mut b = Blaster {
        d: design,
        net: BoolNet::new(),
        map: Vec::with_capacity(design.nodes.len()),
        reg_bits: Vec::new(),
        cam_bits: Vec::new(),
    };
    b.net.clocks = design.clocks.clone();

    // Declare inputs bit-by-bit.
    let mut input_bits: Vec<Vec<BoolId>> = Vec::new();
    for (name, width) in &design.inputs {
        let bits: Vec<BoolId> = (0..*width)
            .map(|i| b.net.input(format!("{name}[{i}]")))
            .collect();
        input_bits.push(bits);
    }
    // Declare register state bits.
    for r in &design.regs {
        let bits: Vec<BoolId> = (0..r.width)
            .map(|i| {
                b.net.state_on_edge(
                    format!("{}[{i}]", r.name),
                    (r.init >> i) & 1 == 1,
                    r.clock,
                    r.edge,
                )
            })
            .collect();
        b.reg_bits.push(bits);
    }
    // Declare CAM state bits.
    for c in &design.cams {
        if c.entries > MAX_BLAST_CAM_ENTRIES {
            return Err(RtlError::elab(format!(
                "cam `{}` has {} entries; bit-blasting is capped at {} (use the word-level interpreter)",
                c.name, c.entries, MAX_BLAST_CAM_ENTRIES
            )));
        }
        let clock = if c.clock == u32::MAX { 0 } else { c.clock };
        let entries: Vec<Vec<BoolId>> = (0..c.entries)
            .map(|e| {
                (0..c.width)
                    .map(|i| {
                        b.net
                            .state_on_edge(format!("{}[{e}][{i}]", c.name), false, clock, c.edge)
                    })
                    .collect()
            })
            .collect();
        b.cam_bits.push(entries);
    }

    // Blast all combinational nodes in order.
    for idx in 0..design.nodes.len() {
        let bits = b.blast_node(NodeId(idx as u32), &input_bits);
        b.map.push(bits);
    }

    // Register next-state functions.
    for (ri, r) in design.regs.iter().enumerate() {
        let next = b.map[r.next.index()].clone();
        for (bi, bit) in b.reg_bits[ri].iter().enumerate() {
            let sidx = match b.net.gates()[bit.index()] {
                Gate::State(k) => k as usize,
                _ => unreachable!("reg bits are state gates"),
            };
            b.net.states[sidx].next = next[bi];
        }
    }
    // CAM next-state: fold writes in program order (later wins).
    for (ci, c) in design.cams.iter().enumerate() {
        let iw = RtlDesign::cam_index_width(c.entries);
        for e in 0..c.entries {
            let mut cur: Vec<BoolId> = b.cam_bits[ci][e as usize].clone();
            for w in &c.writes {
                let en = b.map[w.enable.index()][0];
                let idx_bits = b.map[w.index.index()].clone();
                let val_bits = b.map[w.value.index()].clone();
                // idx == e
                let mut hit = b.net.constant(true);
                for k in 0..iw {
                    let want = (e >> k) & 1 == 1;
                    let bit = idx_bits[k as usize];
                    let term = if want { bit } else { b.net.mk(Gate::Not(bit)) };
                    hit = b.net.mk(Gate::And(hit, term));
                }
                let we = b.net.mk(Gate::And(en, hit));
                cur = (0..c.width as usize)
                    .map(|k| b.net.mk(Gate::Mux(we, val_bits[k], cur[k])))
                    .collect();
            }
            for (k, bit) in b.cam_bits[ci][e as usize].iter().enumerate() {
                let sidx = match b.net.gates()[bit.index()] {
                    Gate::State(s) => s as usize,
                    _ => unreachable!("cam bits are state gates"),
                };
                b.net.states[sidx].next = cur[k];
            }
        }
    }

    // Outputs.
    for (name, node) in &design.outputs {
        b.net
            .outputs
            .push((name.clone(), b.map[node.index()].clone()));
    }
    Ok(b.net)
}

impl<'d> Blaster<'d> {
    fn bits(&self, id: NodeId) -> &[BoolId] {
        &self.map[id.index()]
    }

    fn blast_node(&mut self, id: NodeId, input_bits: &[Vec<BoolId>]) -> Vec<BoolId> {
        let node = self.d.node(id);
        let w = node.width as usize;
        match node.op {
            WordOp::Input(k) => input_bits[k as usize].clone(),
            WordOp::Reg(k) => self.reg_bits[k as usize].clone(),
            WordOp::Lit(v) => (0..w)
                .map(|i| self.net.constant((v >> i) & 1 == 1))
                .collect(),
            WordOp::Not(a) => {
                let a = self.bits(a).to_vec();
                a.iter().map(|&b| self.net.mk(Gate::Not(b))).collect()
            }
            WordOp::And(a, b) => self.bitwise(a, b, |n, x, y| n.mk(Gate::And(x, y))),
            WordOp::Or(a, b) => self.bitwise(a, b, |n, x, y| n.mk(Gate::Or(x, y))),
            WordOp::Xor(a, b) => self.bitwise(a, b, |n, x, y| n.mk(Gate::Xor(x, y))),
            WordOp::RedAnd(a) => {
                let bits = self.bits(a).to_vec();
                vec![self.fold(&bits, |n, x, y| n.mk(Gate::And(x, y)), true)]
            }
            WordOp::RedOr(a) => {
                let bits = self.bits(a).to_vec();
                vec![self.fold(&bits, |n, x, y| n.mk(Gate::Or(x, y)), false)]
            }
            WordOp::RedXor(a) => {
                let bits = self.bits(a).to_vec();
                vec![self.fold(&bits, |n, x, y| n.mk(Gate::Xor(x, y)), false)]
            }
            WordOp::Neg(a) => {
                // ~a + 1
                let a = self.bits(a).to_vec();
                let inv: Vec<BoolId> = a.iter().map(|&b| self.net.mk(Gate::Not(b))).collect();
                let one_bits: Vec<BoolId> = (0..w).map(|i| self.net.constant(i == 0)).collect();
                self.ripple_add(&inv, &one_bits).0
            }
            WordOp::Add(a, b) => {
                let (a, b) = (self.bits(a).to_vec(), self.bits(b).to_vec());
                self.ripple_add(&a, &b).0
            }
            WordOp::Sub(a, b) => {
                let (a, b) = (self.bits(a).to_vec(), self.bits(b).to_vec());
                self.ripple_sub(&a, &b).0
            }
            WordOp::Shl(a, b) => self.barrel(a, b, true),
            WordOp::Shr(a, b) => self.barrel(a, b, false),
            WordOp::Eq(a, b) => {
                let (a, b) = (self.bits(a).to_vec(), self.bits(b).to_vec());
                let diffs: Vec<BoolId> = a
                    .iter()
                    .zip(&b)
                    .map(|(&x, &y)| self.net.mk(Gate::Xor(x, y)))
                    .collect();
                let any = self.fold(&diffs, |n, x, y| n.mk(Gate::Or(x, y)), false);
                vec![self.net.mk(Gate::Not(any))]
            }
            WordOp::Lt(a, b) => {
                let (a, b) = (self.bits(a).to_vec(), self.bits(b).to_vec());
                // a < b  ⟺  borrow out of a - b.
                vec![self.ripple_sub(&a, &b).1]
            }
            WordOp::Le(a, b) => {
                let (a, b) = (self.bits(a).to_vec(), self.bits(b).to_vec());
                // a <= b ⟺ !(b < a)
                let blta = self.ripple_sub(&b, &a).1;
                vec![self.net.mk(Gate::Not(blta))]
            }
            WordOp::Mux(s, a, b) => {
                let s = self.bits(s)[0];
                let (a, b) = (self.bits(a).to_vec(), self.bits(b).to_vec());
                a.iter()
                    .zip(&b)
                    .map(|(&x, &y)| self.net.mk(Gate::Mux(s, x, y)))
                    .collect()
            }
            WordOp::Slice { a, lo } => {
                let a = self.bits(a);
                (0..w).map(|i| a[lo as usize + i]).collect()
            }
            WordOp::Concat { hi, lo } => {
                let mut bits = self.bits(lo).to_vec();
                bits.extend_from_slice(self.bits(hi));
                bits
            }
            WordOp::ZExt(a) => {
                let mut bits = self.bits(a).to_vec();
                let zero = self.net.constant(false);
                bits.resize(w, zero);
                bits
            }
            WordOp::CamHit { cam, key } => {
                let key = self.bits(key).to_vec();
                let matches = self.cam_matches(cam, &key);
                vec![self.fold(&matches, |n, x, y| n.mk(Gate::Or(x, y)), false)]
            }
            WordOp::CamIndex { cam, key } => {
                let key = self.bits(key).to_vec();
                let matches = self.cam_matches(cam, &key);
                // Priority encode: first match wins.
                let mut none_before = self.net.constant(true);
                let mut idx_bits = vec![self.net.constant(false); w];
                for (e, &m) in matches.iter().enumerate() {
                    let sel = self.net.mk(Gate::And(m, none_before));
                    for (k, ib) in idx_bits.iter_mut().enumerate() {
                        if (e >> k) & 1 == 1 {
                            *ib = self.net.mk(Gate::Or(*ib, sel));
                        }
                    }
                    let nm = self.net.mk(Gate::Not(m));
                    none_before = self.net.mk(Gate::And(none_before, nm));
                }
                idx_bits
            }
            WordOp::CamRead { cam, index } => {
                let idx_bits = self.bits(index).to_vec();
                let entries = self.cam_bits[cam as usize].clone();
                let iw = idx_bits.len();
                let mut out = vec![self.net.constant(false); w];
                for (e, entry) in entries.iter().enumerate() {
                    // decode idx == e
                    let mut hit = self.net.constant(true);
                    for (k, &ib) in idx_bits.iter().enumerate().take(iw) {
                        let want = (e >> k) & 1 == 1;
                        let term = if want { ib } else { self.net.mk(Gate::Not(ib)) };
                        hit = self.net.mk(Gate::And(hit, term));
                    }
                    for (k, ob) in out.iter_mut().enumerate() {
                        let sel = self.net.mk(Gate::And(hit, entry[k]));
                        *ob = self.net.mk(Gate::Or(*ob, sel));
                    }
                }
                out
            }
        }
    }

    fn cam_matches(&mut self, cam: u32, key: &[BoolId]) -> Vec<BoolId> {
        let entries = self.cam_bits[cam as usize].clone();
        entries
            .iter()
            .map(|entry| {
                let diffs: Vec<BoolId> = entry
                    .iter()
                    .zip(key)
                    .map(|(&e, &k)| self.net.mk(Gate::Xor(e, k)))
                    .collect();
                let any = self.fold(&diffs, |n, x, y| n.mk(Gate::Or(x, y)), false);
                self.net.mk(Gate::Not(any))
            })
            .collect()
    }

    fn bitwise(
        &mut self,
        a: NodeId,
        b: NodeId,
        f: fn(&mut BoolNet, BoolId, BoolId) -> BoolId,
    ) -> Vec<BoolId> {
        let (a, b) = (self.bits(a).to_vec(), self.bits(b).to_vec());
        a.iter()
            .zip(&b)
            .map(|(&x, &y)| f(&mut self.net, x, y))
            .collect()
    }

    fn fold(
        &mut self,
        bits: &[BoolId],
        f: fn(&mut BoolNet, BoolId, BoolId) -> BoolId,
        empty: bool,
    ) -> BoolId {
        match bits.split_first() {
            None => self.net.constant(empty),
            Some((&first, rest)) => {
                let mut acc = first;
                for &b in rest {
                    acc = f(&mut self.net, acc, b);
                }
                acc
            }
        }
    }

    /// Ripple-carry addition; returns (sum bits, carry out).
    fn ripple_add(&mut self, a: &[BoolId], b: &[BoolId]) -> (Vec<BoolId>, BoolId) {
        let mut carry = self.net.constant(false);
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let xy = self.net.mk(Gate::Xor(x, y));
            let s = self.net.mk(Gate::Xor(xy, carry));
            let c1 = self.net.mk(Gate::And(x, y));
            let c2 = self.net.mk(Gate::And(xy, carry));
            carry = self.net.mk(Gate::Or(c1, c2));
            out.push(s);
        }
        (out, carry)
    }

    /// Ripple-borrow subtraction; returns (difference bits, borrow out).
    fn ripple_sub(&mut self, a: &[BoolId], b: &[BoolId]) -> (Vec<BoolId>, BoolId) {
        let mut borrow = self.net.constant(false);
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let xy = self.net.mk(Gate::Xor(x, y));
            let d = self.net.mk(Gate::Xor(xy, borrow));
            let nx = self.net.mk(Gate::Not(x));
            let b1 = self.net.mk(Gate::And(nx, y));
            let nxy = self.net.mk(Gate::Not(xy));
            let b2 = self.net.mk(Gate::And(nxy, borrow));
            borrow = self.net.mk(Gate::Or(b1, b2));
            out.push(d);
        }
        (out, borrow)
    }

    /// Barrel shifter for dynamic shifts.
    fn barrel(&mut self, a: NodeId, amount: NodeId, left: bool) -> Vec<BoolId> {
        let mut cur = self.bits(a).to_vec();
        let amt = self.bits(amount).to_vec();
        let w = cur.len();
        let zero = self.net.constant(false);
        // Stages for each shift-amount bit that can matter.
        let significant = (usize::BITS - (w.max(2) - 1).leading_zeros()) as usize;
        for (k, &sbit) in amt.iter().enumerate() {
            if k < significant {
                let dist = 1usize << k;
                let shifted: Vec<BoolId> = (0..w)
                    .map(|i| {
                        if left {
                            if i >= dist {
                                cur[i - dist]
                            } else {
                                zero
                            }
                        } else if i + dist < w {
                            cur[i + dist]
                        } else {
                            zero
                        }
                    })
                    .collect();
                cur = (0..w)
                    .map(|i| self.net.mk(Gate::Mux(sbit, shifted[i], cur[i])))
                    .collect();
            } else {
                // Any set high bit shifts everything out.
                cur = (0..w)
                    .map(|i| self.net.mk(Gate::Mux(sbit, zero, cur[i])))
                    .collect();
            }
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::interp::Interp;

    /// Cross-validation harness: interpreter vs blasted network on a
    /// deterministic input sweep.
    fn cross_check(src: &str, top: &str, cycles: usize, seed: u64) {
        let d = compile(src, top).unwrap();
        let net = blast(&d).unwrap();
        let mut sim = Interp::new(&d);
        let mut states = net.initial_states();
        let mut rng = seed;
        let mut next_rand = || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 16
        };
        for cycle in 0..cycles {
            // Random inputs.
            let mut in_words = Vec::new();
            for (name, width) in d.inputs.clone() {
                let v = next_rand()
                    & if width >= 64 {
                        u64::MAX
                    } else {
                        (1 << width) - 1
                    };
                sim.set_input(&name, v);
                in_words.push(v);
            }
            // Expand to bits in declaration order.
            let mut in_bits = Vec::new();
            for (w, v) in d.inputs.iter().map(|(_, w)| *w).zip(&in_words) {
                for i in 0..w {
                    in_bits.push((v >> i) & 1 == 1);
                }
            }
            let values = net.eval(&in_bits, &states);
            // Compare every output.
            for (name, _) in &d.outputs {
                let word = sim.output(name);
                let bits = net.output(name).unwrap();
                let blasted: u64 = bits
                    .iter()
                    .enumerate()
                    .map(|(i, b)| (values[b.index()] as u64) << i)
                    .sum();
                assert_eq!(word, blasted, "output `{name}` mismatch at cycle {cycle}");
            }
            // Step every clock in order (full cycle: rising then falling).
            for (ci, ck) in d.clocks.iter().enumerate() {
                sim.step(ck);
                let values = net.eval(&in_bits, &states);
                states = net.next_states(&values, &states, ci as u32);
                if net.has_negedge(ci as u32) {
                    let values = net.eval(&in_bits, &states);
                    states =
                        net.next_states_edge(&values, &states, ci as u32, crate::ast::Edge::Neg);
                }
            }
        }
    }

    #[test]
    fn adder_cross_check() {
        cross_check(
            "module m(in a[12], in b[12], out s[13], out lt, out le) { assign s = {1'b0, a} + b; assign lt = a < b; assign le = a <= b; }",
            "m",
            64,
            7,
        );
    }

    #[test]
    fn subtract_neg_cross_check() {
        cross_check(
            "module m(in a[9], in b[9], out d[9], out n[9]) { assign d = a - b; assign n = -a; }",
            "m",
            64,
            11,
        );
    }

    #[test]
    fn shifts_cross_check() {
        cross_check(
            "module m(in a[16], in s[5], out l[16], out r[16]) { assign l = a << s; assign r = a >> s; }",
            "m",
            128,
            13,
        );
    }

    #[test]
    fn reductions_cross_check() {
        cross_check(
            "module m(in a[7], out ra, out ro, out rx) { assign ra = &a; assign ro = |a; assign rx = ^a; }",
            "m",
            64,
            17,
        );
    }

    #[test]
    fn sequential_cross_check() {
        cross_check(
            "module m(clock ck, in d[4], in en, out q[4]) { reg r[4] = 5; at posedge(ck) { if (en) { r <= d + r; } } assign q = r; }",
            "m",
            64,
            23,
        );
    }

    #[test]
    fn two_phase_negedge_cross_check() {
        // Posedge stage feeds a negedge stage on the same clock: the
        // blasted network's two-phase commit must track the interpreter
        // cycle-for-cycle, including the intra-cycle a -> b transfer.
        cross_check(
            "module m(clock ck, in d[4], out qa[4], out qb[4], out diff[4]) {\n\
               reg a[4]; reg b[4];\n\
               at posedge(ck) { a <= d; }\n\
               at negedge(ck) { b <= a + 1; }\n\
               assign qa = a; assign qb = b; assign diff = b - a;\n\
             }",
            "m",
            64,
            41,
        );
    }

    #[test]
    fn cam_cross_check() {
        cross_check(
            "module m(clock ck, in we, in wi[3], in wv[8], in k[8], out h, out x[3], out rd[8]) {\n\
               cam t[8][8];\n\
               at posedge(ck) { if (we) { t[wi] <= wv; } }\n\
               assign h = t.hit(k); assign x = t.index(k); assign rd = t.read(wi);\n\
             }",
            "m",
            64,
            29,
        );
    }

    #[test]
    fn mux_concat_slice_cross_check() {
        cross_check(
            "module m(in a[8], in b[8], in s, out y[8], out c[16], out hi[4]) {\n\
               assign y = s ? a : b; assign c = {a, b}; assign hi = a[7:4];\n\
             }",
            "m",
            64,
            31,
        );
    }

    #[test]
    fn oversized_cam_refused() {
        let d = compile(
            "module m(in k[8], out h) { cam t[2048][8]; assign h = t.hit(k); }",
            "m",
        )
        .unwrap();
        assert!(blast(&d).is_err());
    }

    #[test]
    fn blast_gate_counts_grow_with_cam_size() {
        let small = compile(
            "module m(in k[8], out h) { cam t[8][8]; assign h = t.hit(k); }",
            "m",
        )
        .unwrap();
        let big = compile(
            "module m(in k[8], out h) { cam t[64][8]; assign h = t.hit(k); }",
            "m",
        )
        .unwrap();
        let g_small = blast(&small).unwrap().gate_count();
        let g_big = blast(&big).unwrap().gate_count();
        assert!(
            g_big > 4 * g_small,
            "64-entry cam must cost far more gates ({g_big} vs {g_small})"
        );
    }
}

//! Recursive-descent parser for the HDL.

use crate::ast::*;
use crate::error::{Pos, RtlError};
use crate::lexer::{Tok, Token};

struct Parser<'a> {
    toks: &'a [Token],
    i: usize,
}

type PResult<T> = Result<T, RtlError>;

impl<'a> Parser<'a> {
    fn pos(&self) -> Pos {
        self.toks
            .get(self.i)
            .or_else(|| self.toks.last())
            .map(|t| t.pos)
            .unwrap_or_default()
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(RtlError::Syntax {
            pos: self.pos(),
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.i + 1).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|t| t.tok.clone());
        self.i += 1;
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        match self.peek() {
            Some(Tok::Punct(q)) if *q == p => {
                self.i += 1;
                true
            }
            _ => false,
        }
    }

    fn expect_punct(&mut self, p: &str) -> PResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`"))
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.i += 1;
                Ok(s)
            }
            _ => self.err("expected identifier"),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        match self.peek() {
            Some(Tok::Ident(s)) if s == kw => {
                self.i += 1;
                true
            }
            _ => false,
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> PResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword `{kw}`"))
        }
    }

    fn expect_lit(&mut self) -> PResult<u64> {
        match self.peek() {
            Some(&Tok::Lit { value, .. }) => {
                self.i += 1;
                Ok(value)
            }
            _ => self.err("expected integer literal"),
        }
    }

    /// Optional `[N]` width suffix.
    fn opt_width(&mut self) -> PResult<Option<u32>> {
        if self.eat_punct("[") {
            let w = self.expect_lit()?;
            self.expect_punct("]")?;
            if w == 0 || w > 64 {
                return self.err(format!("width {w} out of range 1..=64"));
            }
            Ok(Some(w as u32))
        } else {
            Ok(None)
        }
    }

    fn file(&mut self) -> PResult<SourceFile> {
        let mut modules = Vec::new();
        while self.peek().is_some() {
            modules.push(self.module()?);
        }
        Ok(SourceFile { modules })
    }

    fn module(&mut self) -> PResult<ModuleAst> {
        self.expect_keyword("module")?;
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut ports = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let dir = if self.eat_keyword("in") {
                    Dir::In
                } else if self.eat_keyword("out") {
                    Dir::Out
                } else if self.eat_keyword("clock") {
                    Dir::Clock
                } else {
                    return self.err("expected port direction `in`, `out` or `clock`");
                };
                let pname = self.expect_ident()?;
                let width = self.opt_width()?.unwrap_or(1);
                if dir == Dir::Clock && width != 1 {
                    return self.err("clock ports must be 1 bit");
                }
                ports.push(PortDecl {
                    dir,
                    name: pname,
                    width,
                });
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        self.expect_punct("{")?;
        let mut items = Vec::new();
        while !self.eat_punct("}") {
            items.push(self.item()?);
        }
        Ok(ModuleAst { name, ports, items })
    }

    fn item(&mut self) -> PResult<Item> {
        if self.eat_keyword("reg") {
            let name = self.expect_ident()?;
            let width = self.opt_width()?.unwrap_or(1);
            let init = if self.eat_punct("=") {
                self.expect_lit()?
            } else {
                0
            };
            self.expect_punct(";")?;
            return Ok(Item::Reg { name, width, init });
        }
        if self.eat_keyword("wire") {
            let name = self.expect_ident()?;
            let width = self.opt_width()?;
            self.expect_punct("=")?;
            let expr = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Item::Wire { name, width, expr });
        }
        if self.eat_keyword("assign") {
            let name = self.expect_ident()?;
            self.expect_punct("=")?;
            let expr = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Item::Wire {
                name,
                width: None,
                expr,
            });
        }
        if self.eat_keyword("cam") {
            let name = self.expect_ident()?;
            self.expect_punct("[")?;
            let entries = self.expect_lit()?;
            self.expect_punct("]")?;
            self.expect_punct("[")?;
            let width = self.expect_lit()?;
            self.expect_punct("]")?;
            self.expect_punct(";")?;
            if entries == 0 || entries > 65536 {
                return self.err(format!("cam entry count {entries} out of range 1..=65536"));
            }
            if width == 0 || width > 64 {
                return self.err(format!("cam width {width} out of range 1..=64"));
            }
            return Ok(Item::Cam {
                name,
                entries: entries as u32,
                width: width as u32,
            });
        }
        if self.eat_keyword("at") {
            let edge = if self.eat_keyword("posedge") {
                Edge::Pos
            } else if self.eat_keyword("negedge") {
                Edge::Neg
            } else {
                return self.err("expected `posedge` or `negedge`");
            };
            self.expect_punct("(")?;
            let clock = self.expect_ident()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Item::Seq { clock, edge, body });
        }
        if self.eat_keyword("inst") {
            let name = self.expect_ident()?;
            self.expect_punct("=")?;
            let module = self.expect_ident()?;
            self.expect_punct("(")?;
            let mut conns = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    let port = self.expect_ident()?;
                    self.expect_punct(":")?;
                    let expr = self.expr()?;
                    conns.push((port, expr));
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            self.expect_punct(";")?;
            return Ok(Item::Inst {
                name,
                module,
                conns,
            });
        }
        self.err("expected `reg`, `wire`, `assign`, `cam`, `at` or `inst`")
    }

    fn block(&mut self) -> PResult<Vec<Stmt>> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        if self.eat_keyword("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = self.block()?;
            let els = if self.eat_keyword("else") {
                if matches!(self.peek(), Some(Tok::Ident(k)) if k == "if") {
                    vec![self.stmt()?]
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If { cond, then, els });
        }
        // target <= expr ;
        let name = self.expect_ident()?;
        let target = if self.eat_punct("[") {
            let index = self.expr()?;
            self.expect_punct("]")?;
            Target::CamEntry { cam: name, index }
        } else {
            Target::Reg(name)
        };
        self.expect_punct("<=")?;
        let expr = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::NonBlocking { target, expr })
    }

    // --- Expressions (precedence climbing) ---

    fn expr(&mut self) -> PResult<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.logic_or()?;
        if self.eat_punct("?") {
            let then = self.expr()?;
            self.expect_punct(":")?;
            let els = self.expr()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            })
        } else {
            Ok(cond)
        }
    }

    fn binary_level(
        &mut self,
        ops: &[(&str, BinaryOp)],
        next: fn(&mut Self) -> PResult<Expr>,
    ) -> PResult<Expr> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (p, op) in ops {
                if matches!(self.peek(), Some(Tok::Punct(q)) if q == p) {
                    self.i += 1;
                    let rhs = next(self)?;
                    lhs = Expr::Binary {
                        op: *op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                    continue 'outer;
                }
            }
            break;
        }
        Ok(lhs)
    }

    fn logic_or(&mut self) -> PResult<Expr> {
        self.binary_level(&[("||", BinaryOp::LogicOr)], Self::logic_and)
    }

    fn logic_and(&mut self) -> PResult<Expr> {
        self.binary_level(&[("&&", BinaryOp::LogicAnd)], Self::bit_or)
    }

    fn bit_or(&mut self) -> PResult<Expr> {
        self.binary_level(&[("|", BinaryOp::Or)], Self::bit_xor)
    }

    fn bit_xor(&mut self) -> PResult<Expr> {
        self.binary_level(&[("^", BinaryOp::Xor)], Self::bit_and)
    }

    fn bit_and(&mut self) -> PResult<Expr> {
        self.binary_level(&[("&", BinaryOp::And)], Self::equality)
    }

    fn equality(&mut self) -> PResult<Expr> {
        self.binary_level(
            &[("==", BinaryOp::Eq), ("!=", BinaryOp::Ne)],
            Self::relational,
        )
    }

    fn relational(&mut self) -> PResult<Expr> {
        self.binary_level(
            &[
                ("<=", BinaryOp::Le),
                (">=", BinaryOp::Ge),
                ("<", BinaryOp::Lt),
                (">", BinaryOp::Gt),
            ],
            Self::shift,
        )
    }

    fn shift(&mut self) -> PResult<Expr> {
        self.binary_level(
            &[("<<", BinaryOp::Shl), (">>", BinaryOp::Shr)],
            Self::additive,
        )
    }

    fn additive(&mut self) -> PResult<Expr> {
        self.binary_level(&[("+", BinaryOp::Add), ("-", BinaryOp::Sub)], Self::unary)
    }

    fn unary(&mut self) -> PResult<Expr> {
        for (p, op) in [
            ("~", UnaryOp::Not),
            ("!", UnaryOp::LogicNot),
            ("&", UnaryOp::RedAnd),
            ("|", UnaryOp::RedOr),
            ("^", UnaryOp::RedXor),
            ("-", UnaryOp::Neg),
        ] {
            if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
                self.i += 1;
                let expr = self.unary()?;
                return Ok(Expr::Unary {
                    op,
                    expr: Box::new(expr),
                });
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct("[") {
                let first = self.expr()?;
                if self.eat_punct(":") {
                    let lo = self.expect_lit()?;
                    self.expect_punct("]")?;
                    let hi = match first {
                        Expr::Lit { value, .. } => value,
                        _ => return self.err("slice bounds must be literals"),
                    };
                    if hi < lo || hi > 63 {
                        return self.err(format!("bad slice [{hi}:{lo}]"));
                    }
                    e = Expr::Slice {
                        base: Box::new(e),
                        hi: hi as u32,
                        lo: lo as u32,
                    };
                } else {
                    self.expect_punct("]")?;
                    e = Expr::Index {
                        base: Box::new(e),
                        index: Box::new(first),
                    };
                }
                continue;
            }
            if self.eat_punct(".") {
                let field = self.expect_ident()?;
                let base_name = match &e {
                    Expr::Ident(n) => n.clone(),
                    _ => return self.err("`.` only applies to names (cam or instance)"),
                };
                let method = match field.as_str() {
                    "hit" => Some(CamMethod::Hit),
                    "index" => Some(CamMethod::Index),
                    "read" => Some(CamMethod::Read),
                    _ => None,
                };
                if let Some(method) = method {
                    if self.eat_punct("(") {
                        let arg = self.expr()?;
                        self.expect_punct(")")?;
                        e = Expr::CamOp {
                            cam: base_name,
                            method,
                            arg: Box::new(arg),
                        };
                        continue;
                    }
                }
                e = Expr::Field {
                    inst: base_name,
                    port: field,
                };
                continue;
            }
            break;
        }
        Ok(e)
    }

    fn primary(&mut self) -> PResult<Expr> {
        match self.peek() {
            Some(&Tok::Lit { value, width }) => {
                self.i += 1;
                Ok(Expr::Lit { value, width })
            }
            Some(Tok::Ident(_)) => {
                let name = self.expect_ident()?;
                Ok(Expr::Ident(name))
            }
            Some(Tok::Punct("(")) => {
                self.i += 1;
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Tok::Punct("{")) => {
                self.i += 1;
                let mut parts = vec![self.expr()?];
                while self.eat_punct(",") {
                    parts.push(self.expr()?);
                }
                self.expect_punct("}")?;
                Ok(Expr::Concat(parts))
            }
            _ => self.err("expected expression"),
        }
    }

    /// Unused helper retained for symmetry with `peek`.
    #[allow(dead_code)]
    fn lookahead_is(&self, p: &str) -> bool {
        matches!(self.peek2(), Some(Tok::Punct(q)) if *q == p)
    }

    /// Unused helper retained for future diagnostics.
    #[allow(dead_code)]
    fn consume(&mut self) {
        let _ = self.bump();
    }
}

/// Parses a token stream into a source file.
///
/// # Errors
///
/// Returns [`RtlError::Syntax`] with the failing position.
pub fn parse_tokens(tokens: &[Token]) -> Result<SourceFile, RtlError> {
    let mut p = Parser { toks: tokens, i: 0 };
    p.file()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> SourceFile {
        parse_tokens(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn minimal_module() {
        let f = parse("module m() { }");
        assert_eq!(f.modules.len(), 1);
        assert_eq!(f.modules[0].name, "m");
        assert!(f.modules[0].ports.is_empty());
    }

    #[test]
    fn ports_with_widths() {
        let f = parse("module m(clock ck, in a[8], out y) { }");
        let m = &f.modules[0];
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.ports[0].dir, Dir::Clock);
        assert_eq!(m.ports[1].width, 8);
        assert_eq!(m.ports[2].width, 1);
    }

    #[test]
    fn reg_wire_assign() {
        let f = parse("module m(in a[4]) { reg r[4] = 3; wire w[4] = a + r; assign z = w == 0; }");
        let m = &f.modules[0];
        assert!(matches!(
            m.items[0],
            Item::Reg {
                width: 4,
                init: 3,
                ..
            }
        ));
        assert!(matches!(m.items[1], Item::Wire { .. }));
        assert!(matches!(m.items[2], Item::Wire { width: None, .. }));
    }

    #[test]
    fn seq_block_with_if_else() {
        let f = parse(
            "module m(clock ck, in r) { reg c[3]; at posedge(ck) { if (r) { c <= 0; } else if (c == 4) { c <= 0; } else { c <= c + 1; } } }",
        );
        let m = &f.modules[0];
        match &m.items[1] {
            Item::Seq { clock, edge, body } => {
                assert_eq!(clock, "ck");
                assert_eq!(*edge, Edge::Pos);
                assert_eq!(body.len(), 1);
                match &body[0] {
                    Stmt::If { els, .. } => assert_eq!(els.len(), 1),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negedge_block_parses() {
        let f = parse("module m(clock ck) { reg r; at negedge(ck) { r <= ~r; } }");
        match &f.modules[0].items[1] {
            Item::Seq { edge, .. } => assert_eq!(*edge, Edge::Neg),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cam_declaration_and_ops() {
        let f = parse(
            "module m(in k[32]) { cam tags[64][32]; wire h = tags.hit(k); wire i[6] = tags.index(k); wire d[32] = tags.read(i); }",
        );
        let m = &f.modules[0];
        assert!(matches!(
            m.items[0],
            Item::Cam {
                entries: 64,
                width: 32,
                ..
            }
        ));
        match &m.items[1] {
            Item::Wire {
                expr: Expr::CamOp { method, .. },
                ..
            } => {
                assert_eq!(*method, CamMethod::Hit)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cam_write_target() {
        let f = parse(
            "module m(clock ck, in i[6], in v[32]) { cam t[64][32]; at posedge(ck) { t[i] <= v; } }",
        );
        match &f.modules[0].items[1] {
            Item::Seq { body, .. } => match &body[0] {
                Stmt::NonBlocking {
                    target: Target::CamEntry { cam, .. },
                    ..
                } => assert_eq!(cam, "t"),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn instance_and_field() {
        let f = parse(
            "module add(in a, in b, out s) { assign s = a ^ b; } module top(in x, in y, out z) { inst u0 = add(a: x, b: y); assign z = u0.s; }",
        );
        let top = f.module("top").unwrap();
        assert!(matches!(&top.items[0], Item::Inst { conns, .. } if conns.len() == 2));
        assert!(
            matches!(&top.items[1], Item::Wire { expr: Expr::Field { inst, port }, .. } if inst == "u0" && port == "s")
        );
    }

    #[test]
    fn precedence_shapes() {
        // a + b << 2 == c & d  parses as (((a+b) << 2) == c) & d
        let f = parse("module m(in a, in b, in c, in d) { assign z = a + b << 2 == c & d; }");
        match &f.modules[0].items[0] {
            Item::Wire { expr, .. } => match expr {
                Expr::Binary {
                    op: BinaryOp::And,
                    lhs,
                    ..
                } => match lhs.as_ref() {
                    Expr::Binary {
                        op: BinaryOp::Eq, ..
                    } => {}
                    other => panic!("unexpected {other:?}"),
                },
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn le_in_expression_context() {
        // `<=` must parse as less-equal inside a wire expression.
        let f = parse("module m(in a[4], in b[4]) { assign z = a <= b; }");
        match &f.modules[0].items[0] {
            Item::Wire {
                expr: Expr::Binary { op, .. },
                ..
            } => assert_eq!(*op, BinaryOp::Le),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn slices_and_indexing() {
        let f = parse("module m(in a[8], in i[3]) { assign hi = a[7:4]; assign b = a[i]; }");
        assert!(matches!(
            &f.modules[0].items[0],
            Item::Wire {
                expr: Expr::Slice { hi: 7, lo: 4, .. },
                ..
            }
        ));
        assert!(matches!(
            &f.modules[0].items[1],
            Item::Wire {
                expr: Expr::Index { .. },
                ..
            }
        ));
    }

    #[test]
    fn concat() {
        let f = parse("module m(in a[4], in b[4]) { assign y = {a, b, 2'b01}; }");
        assert!(matches!(
            &f.modules[0].items[0],
            Item::Wire { expr: Expr::Concat(parts), .. } if parts.len() == 3
        ));
    }

    #[test]
    fn syntax_errors_positioned() {
        let e = parse_tokens(&lex("module m( { }").unwrap()).unwrap_err();
        assert!(matches!(e, RtlError::Syntax { .. }));
        let e = parse_tokens(&lex("module m() { bogus x; }").unwrap()).unwrap_err();
        assert!(e.to_string().contains("expected"));
    }

    #[test]
    fn bad_slice_rejected() {
        let e = parse_tokens(&lex("module m(in a[8]) { assign y = a[2:5]; }").unwrap());
        assert!(e.is_err());
    }
}

//! Typed name-lookup errors with near-miss suggestions.
//!
//! The simulators expose name-keyed query APIs (`set_input("enbale", 1)`)
//! that designers drive interactively from testbenches; a raw panic with
//! no hint is hostile there. [`LookupError`] carries the kind of thing
//! that was looked up, the name that missed, and — when a candidate is
//! close in edit distance — a "did you mean" suggestion. The `try_*`
//! simulator entry points return it; the panicking convenience wrappers
//! format it into their message, so even the panic path names the
//! nearest candidate.

use std::error::Error;
use std::fmt;

/// A failed lookup of a named entity (input, output, register, CAM,
/// clock, net...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupError {
    /// What kind of thing was being looked up ("input", "net", ...).
    pub kind: &'static str,
    /// The name that was not found.
    pub name: String,
    /// The closest existing name, when one is plausibly a typo away.
    pub suggestion: Option<String>,
}

impl LookupError {
    /// Builds an error, scanning `candidates` for a near miss.
    pub fn new<'a>(
        kind: &'static str,
        name: &str,
        candidates: impl IntoIterator<Item = &'a str>,
    ) -> LookupError {
        LookupError {
            kind,
            name: name.to_string(),
            suggestion: nearest(name, candidates),
        }
    }
}

impl fmt::Display for LookupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no {} named `{}`", self.kind, self.name)?;
        if let Some(s) = &self.suggestion {
            write!(f, "; did you mean `{s}`?")?;
        }
        Ok(())
    }
}

impl Error for LookupError {}

/// Levenshtein edit distance (insertions, deletions, substitutions).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The candidate closest to `name`, if close enough to plausibly be a
/// typo: within an edit budget of one third of the query length
/// (minimum 1, so single-character names still get suggestions). Ties
/// break toward the earliest candidate, keeping the suggestion stable.
pub fn nearest<'a>(name: &str, candidates: impl IntoIterator<Item = &'a str>) -> Option<String> {
    let budget = (name.chars().count() / 3).max(1);
    let mut best: Option<(usize, &str)> = None;
    for c in candidates {
        let d = edit_distance(name, c);
        if d <= budget && best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, c));
        }
    }
    best.map(|(_, c)| c.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("clk", "ck"), 1);
    }

    #[test]
    fn nearest_suggests_within_budget() {
        let names = ["reset", "enable", "carry_in"];
        assert_eq!(nearest("enbale", names), Some("enable".into()));
        assert_eq!(nearest("carry_on", names), Some("carry_in".into()));
        // Too far from everything: no suggestion.
        assert_eq!(nearest("zzz", names), None);
    }

    #[test]
    fn nearest_tie_breaks_to_first() {
        assert_eq!(nearest("ab", ["ax", "ay"]), Some("ax".into()));
    }

    #[test]
    fn display_with_and_without_suggestion() {
        let e = LookupError::new("input", "enbale", ["enable"]);
        assert_eq!(
            e.to_string(),
            "no input named `enbale`; did you mean `enable`?"
        );
        let e = LookupError::new("input", "q", []);
        assert_eq!(e.to_string(), "no input named `q`");
    }
}

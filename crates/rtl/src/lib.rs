//! `cbv-rtl` — the in-house hardware description language.
//!
//! §4.1 of the paper: "Standard hardware description languages have proven
//! to be inadequate for us when describing highly variable ... parts of
//! the design. ... Some of our functional units are just difficult to code
//! in standard languages and result in highly inefficient run-times, e.g.
//! a 2000 port CAM structure. We have developed a hardware language driven
//! by our style of designing microprocessors, with programming constructs
//! that make sense for the design itself, and which compiles into very
//! efficient code."
//!
//! This crate is that language for the cbv toolkit: a small behavioral/RTL
//! HDL with
//!
//! * modules, typed ports, registers, wires and hierarchical instances;
//! * non-blocking sequential blocks (`at posedge(ck) { ... }` and
//!   `at negedge(ck) { ... }` — a full [`interp::Interp::step`] cycle
//!   commits the rising edge first, then the falling edge, the natural
//!   model for the paper's two-phase latching on one clock);
//! * a **first-class CAM primitive** (`cam tags[64][32];` plus
//!   `tags.match(key)`) that the interpreter executes in words rather than
//!   gates — the exact capability the paper says standard HDLs lacked;
//! * elaboration to a flat word-level IR ([`RtlDesign`]);
//! * a cycle-accurate interpreter ([`interp::Interp`]);
//! * bit-blasting ([`blast`]) to a shared gate-level boolean network
//!   ([`boolnet::BoolNet`]) consumed by the equivalence checker and the
//!   gate-level simulator.
//!
//! # Example
//!
//! ```
//! use cbv_rtl::{compile, interp::Interp};
//!
//! let src = r#"
//! module counter5(clock ck, in reset[1], out tick[1]) {
//!     reg cnt[3] = 0;
//!     at posedge(ck) {
//!         if (reset) { cnt <= 0; }
//!         else { if (cnt == 4) { cnt <= 0; } else { cnt <= cnt + 1; } }
//!     }
//!     assign tick = cnt == 4;
//! }
//! "#;
//! let design = compile(src, "counter5")?;
//! let mut sim = Interp::new(&design);
//! sim.set_input("reset", 0);
//! let mut ticks = 0;
//! for _ in 0..10 {
//!     sim.step("ck");
//!     if sim.output("tick") == 1 { ticks += 1; }
//! }
//! assert_eq!(ticks, 2);
//! # Ok::<(), cbv_rtl::RtlError>(())
//! ```

pub mod ast;
pub mod blast;
pub mod boolnet;
pub mod design;
pub mod elab;
pub mod error;
pub mod interp;
pub mod level;
pub mod lexer;
pub mod lookup;
pub mod parser;

pub use design::{NodeId, RtlDesign, WordOp};
pub use error::RtlError;
pub use lookup::LookupError;

use ast::SourceFile;

/// Parses HDL source text into its AST.
///
/// # Errors
///
/// Returns a positioned [`RtlError`] on lexical or syntax errors.
pub fn parse(source: &str) -> Result<SourceFile, RtlError> {
    let tokens = lexer::lex(source)?;
    parser::parse_tokens(&tokens)
}

/// Parses and elaborates `top` from HDL source into a flat word-level
/// design ready for simulation or bit-blasting.
///
/// # Errors
///
/// Returns an error on syntax problems, unknown modules/signals, width
/// violations or combinational cycles.
pub fn compile(source: &str, top: &str) -> Result<RtlDesign, RtlError> {
    let file = parse(source)?;
    elab::elaborate(&file, top)
}

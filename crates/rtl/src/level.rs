//! Shared levelization of a [`BoolNet`].
//!
//! Both the gate-level event simulator (`cbv-sim`) and the compiled
//! simulation backend (`cbv-csim`) need the same structural facts about
//! a bit-blasted network: a topological evaluation schedule, the level
//! (longest combinational depth) of every gate, and — for the compiler —
//! the *live* cone of the gates that actually feed an output or a
//! next-state function, so dead branches never cost a per-cycle op.
//!
//! [`BoolNet::mk`] builds networks whose gates only reference earlier
//! ids, but [`crate::boolnet::BoolId`] is a public newtype: nothing stops
//! a caller from interning a gate that points forward (a combinational
//! cycle once ids wrap around through state). Levelization therefore
//! detects ill-formed networks and returns a typed [`LevelError`] instead
//! of panicking deep inside a simulator.

use std::fmt;

use crate::boolnet::{BoolId, BoolNet, Gate};

/// A levelized view of one [`BoolNet`].
#[derive(Debug, Clone)]
pub struct Levelization {
    /// Live gates in a valid evaluation order (every gate appears after
    /// all of its inputs), restricted to the requested cone.
    pub order: Vec<BoolId>,
    /// Level per gate id: leaves (constants, inputs, state reads) are
    /// level 0, every other live gate is `1 + max(level of inputs)`.
    /// Dead gates keep [`DEAD`].
    pub level: Vec<u32>,
    /// Whether each gate id is inside the requested cone.
    pub live: Vec<bool>,
    /// Number of distinct levels among live gates (0 for an empty net).
    pub levels: u32,
}

/// Level marker for gates outside the live cone.
pub const DEAD: u32 = u32::MAX;

impl Levelization {
    /// Count of live gates.
    pub fn live_gates(&self) -> usize {
        self.order.len()
    }
}

/// Why a network could not be levelized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LevelError {
    /// A gate references an id that does not exist in the network.
    DanglingInput {
        /// The referencing gate.
        gate: BoolId,
        /// The missing operand id.
        input: BoolId,
    },
    /// The combinational graph contains a cycle (or a forward reference
    /// that cannot be scheduled); `gate` is the smallest unschedulable id.
    Cycle {
        /// The smallest live gate that never became ready.
        gate: BoolId,
    },
}

impl fmt::Display for LevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LevelError::DanglingInput { gate, input } => write!(
                f,
                "gate {} references missing gate {}",
                gate.index(),
                input.index()
            ),
            LevelError::Cycle { gate } => write!(
                f,
                "combinational cycle: gate {} can never be scheduled",
                gate.index()
            ),
        }
    }
}

impl std::error::Error for LevelError {}

fn gate_inputs(g: &Gate) -> [Option<BoolId>; 3] {
    match *g {
        Gate::Const(_) | Gate::Input(_) | Gate::State(_) => [None, None, None],
        Gate::Not(a) => [Some(a), None, None],
        Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => [Some(a), Some(b), None],
        Gate::Mux(s, a, b) => [Some(s), Some(a), Some(b)],
    }
}

/// Levelizes the whole network (every gate is considered live).
///
/// # Errors
///
/// Returns [`LevelError`] on dangling operand ids or combinational
/// cycles.
pub fn levelize(net: &BoolNet) -> Result<Levelization, LevelError> {
    let roots: Vec<BoolId> = (0..net.gate_count() as u32).map(BoolId).collect();
    levelize_cone(net, &roots)
}

/// Levelizes only the cone of `roots`: the gates transitively feeding
/// them. Gates outside the cone are reported dead ([`DEAD`] level,
/// absent from the schedule) — the compiler's dead-branch elimination.
///
/// # Errors
///
/// Returns [`LevelError`] on dangling operand ids or combinational
/// cycles inside the cone.
pub fn levelize_cone(net: &BoolNet, roots: &[BoolId]) -> Result<Levelization, LevelError> {
    let n = net.gate_count();
    let gates = net.gates();

    // Mark the live cone by reverse DFS from the roots.
    let mut live = vec![false; n];
    let mut stack: Vec<BoolId> = Vec::new();
    for &r in roots {
        if r.index() >= n {
            return Err(LevelError::DanglingInput { gate: r, input: r });
        }
        if !live[r.index()] {
            live[r.index()] = true;
            stack.push(r);
        }
    }
    while let Some(id) = stack.pop() {
        for inp in gate_inputs(&gates[id.index()]).into_iter().flatten() {
            if inp.index() >= n {
                return Err(LevelError::DanglingInput {
                    gate: id,
                    input: inp,
                });
            }
            if !live[inp.index()] {
                live[inp.index()] = true;
                stack.push(inp);
            }
        }
    }

    // Kahn's algorithm over the live subgraph, processing ready gates in
    // ascending id order so the schedule is deterministic.
    let mut pending = vec![0u8; n];
    let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..n {
        if !live[i] {
            continue;
        }
        for inp in gate_inputs(&gates[i]).into_iter().flatten() {
            pending[i] += 1;
            fanout[inp.index()].push(i as u32);
        }
    }
    let mut level = vec![DEAD; n];
    let mut order = Vec::with_capacity(live.iter().filter(|&&l| l).count());
    // Ready list kept sorted by draining lowest ids first: seed with all
    // live zero-dependency gates (their ids ascend naturally).
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = (0..n)
        .filter(|&i| live[i] && pending[i] == 0)
        .map(|i| std::cmp::Reverse(i as u32))
        .collect();
    let mut max_level = 0u32;
    while let Some(std::cmp::Reverse(i)) = ready.pop() {
        let i = i as usize;
        let lv = gate_inputs(&gates[i])
            .into_iter()
            .flatten()
            .map(|inp| level[inp.index()] + 1)
            .max()
            .unwrap_or(0);
        level[i] = lv;
        max_level = max_level.max(lv);
        order.push(BoolId(i as u32));
        for &f in &fanout[i] {
            let f = f as usize;
            pending[f] -= 1;
            if pending[f] == 0 {
                ready.push(std::cmp::Reverse(f as u32));
            }
        }
    }
    if order.len() != live.iter().filter(|&&l| l).count() {
        let gate = (0..n)
            .find(|&i| live[i] && level[i] == DEAD)
            .map(|i| BoolId(i as u32))
            .expect("some live gate is unscheduled");
        return Err(LevelError::Cycle { gate });
    }
    let levels = if order.is_empty() { 0 } else { max_level + 1 };
    Ok(Levelization {
        order,
        level,
        live,
        levels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolnet::{BoolNet, Gate};

    #[test]
    fn levels_follow_depth() {
        let mut n = BoolNet::new();
        let a = n.input("a");
        let b = n.input("b");
        let x = n.mk(Gate::Xor(a, b));
        let y = n.mk(Gate::And(x, a));
        let lv = levelize(&n).unwrap();
        assert_eq!(lv.level[a.index()], 0);
        assert_eq!(lv.level[x.index()], 1);
        assert_eq!(lv.level[y.index()], 2);
        assert_eq!(lv.levels, 3);
        assert_eq!(lv.live_gates(), n.gate_count());
        // The schedule is a valid topological order.
        let pos: Vec<usize> = {
            let mut p = vec![0; n.gate_count()];
            for (k, id) in lv.order.iter().enumerate() {
                p[id.index()] = k;
            }
            p
        };
        assert!(pos[a.index()] < pos[x.index()]);
        assert!(pos[x.index()] < pos[y.index()]);
    }

    #[test]
    fn cone_restriction_drops_dead_branches() {
        let mut n = BoolNet::new();
        let a = n.input("a");
        let b = n.input("b");
        let used = n.mk(Gate::And(a, b));
        let dead = n.mk(Gate::Or(a, b));
        let lv = levelize_cone(&n, &[used]).unwrap();
        assert!(lv.live[used.index()]);
        assert!(!lv.live[dead.index()]);
        assert_eq!(lv.level[dead.index()], DEAD);
        assert!(!lv.order.contains(&dead));
    }

    #[test]
    fn forward_reference_is_a_cycle_error_not_a_panic() {
        // Hand-build a net whose gate 0 references gate 1 and vice
        // versa — impossible via `mk` discipline, but expressible.
        let mut n = BoolNet::new();
        let a = n.input("a"); // id 0
        let x = n.mk(Gate::Not(a)); // id 1
        let y = n.mk(Gate::And(a, x)); // id 2

        // Rewire the next-state-free combinational graph into a loop:
        // pretend gate 1 reads gate 2.
        let mut looped = n.clone();
        looped.replace_gate(x, Gate::And(y, a));
        let err = levelize(&looped).unwrap_err();
        assert!(matches!(err, LevelError::Cycle { .. }), "{err}");
        assert!(err.to_string().contains("combinational cycle"));
    }

    #[test]
    fn dangling_operand_is_reported() {
        let mut n = BoolNet::new();
        let a = n.input("a");
        let x = n.mk(Gate::Not(a));
        let mut broken = n.clone();
        broken.replace_gate(x, Gate::Not(BoolId(999)));
        let err = levelize(&broken).unwrap_err();
        assert!(matches!(err, LevelError::DanglingInput { .. }), "{err}");
    }

    #[test]
    fn empty_net_levelizes() {
        let n = BoolNet::new();
        let lv = levelize(&n).unwrap();
        assert_eq!(lv.levels, 0);
        assert!(lv.order.is_empty());
    }
}

//! Error type for the HDL front end and elaborator.

use std::error::Error;
use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from parsing, elaborating or simulating HDL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlError {
    /// Lexical error (bad character, malformed literal).
    Lex {
        /// Where.
        pos: Pos,
        /// What.
        message: String,
    },
    /// Syntax error.
    Syntax {
        /// Where.
        pos: Pos,
        /// What.
        message: String,
    },
    /// Semantic error during elaboration (unknown names, width problems,
    /// combinational cycles, multiple drivers...).
    Elab {
        /// What.
        message: String,
    },
}

impl RtlError {
    /// Convenience constructor for elaboration errors.
    pub fn elab(message: impl Into<String>) -> RtlError {
        RtlError::Elab {
            message: message.into(),
        }
    }
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            RtlError::Syntax { pos, message } => write!(f, "syntax error at {pos}: {message}"),
            RtlError::Elab { message } => write!(f, "elaboration error: {message}"),
        }
    }
}

impl Error for RtlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = RtlError::Syntax {
            pos: Pos { line: 4, col: 7 },
            message: "expected `;`".into(),
        };
        assert_eq!(e.to_string(), "syntax error at 4:7: expected `;`");
    }
}

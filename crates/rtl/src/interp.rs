//! Cycle-accurate interpreter over the word-level IR.
//!
//! This is the "compiles into very efficient code" simulator of §4.1:
//! straight-line evaluation of the topologically ordered node vector, one
//! `u64` per node, with CAM lookups executed as native word scans instead
//! of gate networks. Throughput is measured in experiment E7 against the
//! paper's >200 cycles/sec/CPU figure.

use crate::ast::Edge;
use crate::design::{NodeId, RtlDesign, WordOp};
use crate::lookup::LookupError;

#[inline]
fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Interpreter state for one design.
#[derive(Debug, Clone)]
pub struct Interp<'d> {
    design: &'d RtlDesign,
    inputs: Vec<u64>,
    regs: Vec<u64>,
    /// Commit-phase double buffer: reused every edge so stepping never
    /// allocates (the settle loop is the E18 baseline; see `cbv-bench`).
    regs_next: Vec<u64>,
    cams: Vec<Vec<u64>>,
    values: Vec<u64>,
    dirty: bool,
}

impl<'d> Interp<'d> {
    /// Creates an interpreter with registers at their init values, CAM
    /// entries zeroed and inputs zeroed.
    pub fn new(design: &'d RtlDesign) -> Interp<'d> {
        Interp {
            design,
            inputs: vec![0; design.inputs.len()],
            regs: design.regs.iter().map(|r| r.init).collect(),
            regs_next: vec![0; design.regs.len()],
            cams: design
                .cams
                .iter()
                .map(|c| vec![0u64; c.entries as usize])
                .collect(),
            values: vec![0; design.nodes.len()],
            dirty: true,
        }
    }

    /// Resets registers and CAMs to initial state.
    pub fn reset(&mut self) {
        for (v, r) in self.regs.iter_mut().zip(&self.design.regs) {
            *v = r.init;
        }
        for c in &mut self.cams {
            c.iter_mut().for_each(|e| *e = 0);
        }
        self.dirty = true;
    }

    /// Sets a primary input by name.
    ///
    /// # Panics
    ///
    /// Panics if the input does not exist or the value does not fit.
    pub fn set_input(&mut self, name: &str, value: u64) {
        self.try_set_input(name, value)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Sets a primary input by name, reporting an unknown name as a
    /// [`LookupError`] with a near-miss suggestion.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError`] when the input does not exist.
    ///
    /// # Panics
    ///
    /// Still panics if the value does not fit the input's width — that
    /// is a value contract, not a lookup failure.
    pub fn try_set_input(&mut self, name: &str, value: u64) -> Result<(), LookupError> {
        let idx = self.design.input_index(name).ok_or_else(|| {
            LookupError::new("input", name, self.design.inputs.iter().map(|(n, _)| &**n))
        })?;
        let width = self.design.inputs[idx].1;
        assert!(
            value <= mask(width),
            "value {value:#x} does not fit input `{name}` of width {width}"
        );
        self.inputs[idx] = value;
        self.dirty = true;
        Ok(())
    }

    /// Evaluates the combinational network if inputs or state changed.
    pub fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        for i in 0..self.design.nodes.len() {
            let node = self.design.nodes[i];
            let m = mask(node.width);
            let v = |id: NodeId| self.values[id.index()];
            let val = match node.op {
                WordOp::Input(k) => self.inputs[k as usize],
                WordOp::Reg(k) => self.regs[k as usize],
                WordOp::Lit(x) => x,
                WordOp::Not(a) => !v(a),
                WordOp::And(a, b) => v(a) & v(b),
                WordOp::Or(a, b) => v(a) | v(b),
                WordOp::Xor(a, b) => v(a) ^ v(b),
                WordOp::RedAnd(a) => {
                    let aw = self.design.width(a);
                    (v(a) == mask(aw)) as u64
                }
                WordOp::RedOr(a) => (v(a) != 0) as u64,
                WordOp::RedXor(a) => (v(a).count_ones() & 1) as u64,
                WordOp::Neg(a) => v(a).wrapping_neg(),
                WordOp::Add(a, b) => v(a).wrapping_add(v(b)),
                WordOp::Sub(a, b) => v(a).wrapping_sub(v(b)),
                WordOp::Shl(a, b) => {
                    let s = v(b);
                    if s >= 64 {
                        0
                    } else {
                        v(a) << s
                    }
                }
                WordOp::Shr(a, b) => {
                    let s = v(b);
                    if s >= 64 {
                        0
                    } else {
                        v(a) >> s
                    }
                }
                WordOp::Eq(a, b) => (v(a) == v(b)) as u64,
                WordOp::Lt(a, b) => (v(a) < v(b)) as u64,
                WordOp::Le(a, b) => (v(a) <= v(b)) as u64,
                WordOp::Mux(s, a, b) => {
                    if v(s) & 1 == 1 {
                        v(a)
                    } else {
                        v(b)
                    }
                }
                WordOp::Slice { a, lo } => v(a) >> lo,
                WordOp::Concat { hi, lo } => {
                    let low_w = self.design.width(lo);
                    (v(hi) << low_w) | v(lo)
                }
                WordOp::ZExt(a) => v(a),
                WordOp::CamHit { cam, key } => {
                    let k = v(key);
                    self.cams[cam as usize].contains(&k) as u64
                }
                WordOp::CamIndex { cam, key } => {
                    let k = v(key);
                    self.cams[cam as usize]
                        .iter()
                        .position(|&e| e == k)
                        .unwrap_or(0) as u64
                }
                WordOp::CamRead { cam, index } => {
                    let arr = &self.cams[cam as usize];
                    arr.get(v(index) as usize).copied().unwrap_or(0)
                }
            };
            self.values[i] = val & m;
        }
        self.dirty = false;
    }

    /// One full cycle of the named clock: the rising edge commits every
    /// `at posedge` register and CAM write, then — if the design has any
    /// `at negedge` sinks on this clock — the falling edge commits those
    /// with the post-posedge combinational values. This is the natural
    /// model for the paper's two-phase designs expressed on one clock
    /// (φ1 work on the rising edge, φ2 work on the falling edge).
    ///
    /// Use [`Interp::step_edge`] to drive half-cycles individually.
    ///
    /// # Panics
    ///
    /// Panics if the clock does not exist.
    pub fn step(&mut self, clock: &str) {
        self.try_step(clock).unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`Interp::step`] that reports an unknown clock as a
    /// [`LookupError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError`] when the clock does not exist.
    pub fn try_step(&mut self, clock: &str) -> Result<(), LookupError> {
        let ck = self.try_clock_of(clock)?;
        self.commit_edge(ck, Edge::Pos);
        if self.design.has_negedge(ck) {
            self.commit_edge(ck, Edge::Neg);
        }
        Ok(())
    }

    /// One half-cycle: commits only the registers and CAM writes on the
    /// given edge of the named clock. Lets a testbench observe the state
    /// between the rising and falling edges of a two-phase cycle.
    ///
    /// # Panics
    ///
    /// Panics if the clock does not exist.
    pub fn step_edge(&mut self, clock: &str, edge: Edge) {
        self.try_step_edge(clock, edge)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`Interp::step_edge`] that reports an unknown clock as a
    /// [`LookupError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError`] when the clock does not exist.
    pub fn try_step_edge(&mut self, clock: &str, edge: Edge) -> Result<(), LookupError> {
        let ck = self.try_clock_of(clock)?;
        self.commit_edge(ck, edge);
        Ok(())
    }

    fn try_clock_of(&self, clock: &str) -> Result<u32, LookupError> {
        self.design
            .clock_index(clock)
            .map(|i| i as u32)
            .ok_or_else(|| {
                LookupError::new("clock", clock, self.design.clocks.iter().map(|c| &**c))
            })
    }

    /// Evaluates the combinational network with pre-edge state, then
    /// commits register and CAM updates on one `(clock, edge)` domain.
    fn commit_edge(&mut self, ck: u32, edge: Edge) {
        self.settle();
        // Registers, into the reused double buffer (no per-edge Vec).
        for (i, r) in self.design.regs.iter().enumerate() {
            self.regs_next[i] = if r.clock == ck && r.edge == edge {
                self.values[r.next.index()]
            } else {
                self.regs[i]
            };
        }
        // CAM writes (later writes win on collision — program order).
        for (ci, c) in self.design.cams.iter().enumerate() {
            if c.clock != ck || c.edge != edge {
                continue;
            }
            for w in &c.writes {
                if self.values[w.enable.index()] & 1 == 1 {
                    let idx = self.values[w.index.index()] as usize;
                    if idx < c.entries as usize {
                        self.cams[ci][idx] = self.values[w.value.index()];
                    }
                }
            }
        }
        std::mem::swap(&mut self.regs, &mut self.regs_next);
        self.dirty = true;
    }

    /// Reads a primary output.
    ///
    /// # Panics
    ///
    /// Panics if the output does not exist.
    pub fn output(&mut self, name: &str) -> u64 {
        self.try_output(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Reads a primary output, reporting an unknown name as a
    /// [`LookupError`] with a near-miss suggestion.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError`] when the output does not exist.
    pub fn try_output(&mut self, name: &str) -> Result<u64, LookupError> {
        let id = self.design.output(name).ok_or_else(|| {
            LookupError::new(
                "output",
                name,
                self.design.outputs.iter().map(|(n, _)| &**n),
            )
        })?;
        self.settle();
        Ok(self.values[id.index()])
    }

    /// Reads a register by its hierarchical name.
    ///
    /// # Panics
    ///
    /// Panics if the register does not exist.
    pub fn reg(&self, name: &str) -> u64 {
        self.try_reg(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Reads a register by its hierarchical name, reporting an unknown
    /// name as a [`LookupError`] with a near-miss suggestion.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError`] when the register does not exist.
    pub fn try_reg(&self, name: &str) -> Result<u64, LookupError> {
        let idx = self
            .design
            .regs
            .iter()
            .position(|r| r.name == name)
            .ok_or_else(|| {
                LookupError::new("register", name, self.design.regs.iter().map(|r| &*r.name))
            })?;
        Ok(self.regs[idx])
    }

    /// Reads a CAM entry directly (debug/verification access).
    ///
    /// # Panics
    ///
    /// Panics if the CAM or entry does not exist.
    pub fn cam_entry(&self, name: &str, entry: usize) -> u64 {
        self.try_cam_entry(name, entry)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Reads a CAM entry, reporting an unknown CAM name as a
    /// [`LookupError`] with a near-miss suggestion.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError`] when the CAM does not exist.
    ///
    /// # Panics
    ///
    /// Still panics if `entry` is out of range for an existing CAM.
    pub fn try_cam_entry(&self, name: &str, entry: usize) -> Result<u64, LookupError> {
        let idx = self
            .design
            .cams
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| {
                LookupError::new("cam", name, self.design.cams.iter().map(|c| &*c.name))
            })?;
        Ok(self.cams[idx][entry])
    }

    /// The value of an arbitrary node after settling (for shadow-mode
    /// probes and tests).
    pub fn node_value(&mut self, id: NodeId) -> u64 {
        self.settle();
        self.values[id.index()]
    }

    /// Snapshot of all register values in declaration order (used by the
    /// sequential equivalence checker's product-machine exploration).
    pub fn reg_state(&self) -> Vec<u64> {
        self.regs.clone()
    }

    /// Restores a register snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the design.
    pub fn set_reg_state(&mut self, state: &[u64]) {
        assert_eq!(state.len(), self.regs.len(), "state length mismatch");
        self.regs.copy_from_slice(state);
        self.dirty = true;
    }

    /// Whether the design contains CAM arrays (which the explicit-state
    /// equivalence checker does not enumerate).
    pub fn has_cams(&self) -> bool {
        !self.design.cams.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn adder_is_correct() {
        let d = compile(
            "module add(in a[8], in b[8], out s[9]) { assign s = {1'b0, a} + b; }",
            "add",
        )
        .unwrap();
        let mut sim = Interp::new(&d);
        for (a, b) in [(0u64, 0u64), (255, 255), (17, 42), (128, 200)] {
            sim.set_input("a", a);
            sim.set_input("b", b);
            assert_eq!(sim.output("s"), a + b, "a={a} b={b}");
        }
    }

    #[test]
    fn counter_wraps_at_five() {
        let d = compile(
            "module c5(clock ck, in rst, out v[3], out tick) {\n\
               reg cnt[3];\n\
               at posedge(ck) { if (rst) { cnt <= 0; } else if (cnt == 4) { cnt <= 0; } else { cnt <= cnt + 1; } }\n\
               assign v = cnt; assign tick = cnt == 4;\n\
             }",
            "c5",
        )
        .unwrap();
        let mut sim = Interp::new(&d);
        sim.set_input("rst", 0);
        let mut seen = Vec::new();
        for _ in 0..12 {
            seen.push(sim.output("v"));
            sim.step("ck");
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1]);
    }

    #[test]
    fn reset_restores_init() {
        let d = compile(
            "module m(clock ck, out q[4]) { reg r[4] = 9; at posedge(ck) { r <= r + 1; } assign q = r; }",
            "m",
        )
        .unwrap();
        let mut sim = Interp::new(&d);
        assert_eq!(sim.output("q"), 9);
        sim.step("ck");
        assert_eq!(sim.output("q"), 10);
        sim.reset();
        assert_eq!(sim.output("q"), 9);
    }

    #[test]
    fn cam_write_then_match() {
        let d = compile(
            "module tcam(clock ck, in we, in wi[4], in wv[16], in k[16], out hit, out idx[4], out rd[16]) {\n\
               cam t[16][16];\n\
               at posedge(ck) { if (we) { t[wi] <= wv; } }\n\
               assign hit = t.hit(k); assign idx = t.index(k); assign rd = t.read(k[3:0]);\n\
             }",
            "tcam",
        )
        .unwrap();
        let mut sim = Interp::new(&d);
        // Write 0xBEEF at entry 7.
        sim.set_input("we", 1);
        sim.set_input("wi", 7);
        sim.set_input("wv", 0xBEEF);
        sim.step("ck");
        sim.set_input("we", 0);
        sim.set_input("k", 0xBEEF);
        assert_eq!(sim.output("hit"), 1);
        assert_eq!(sim.output("idx"), 7);
        sim.set_input("k", 0xDEAD & 0xFFFF);
        assert_eq!(sim.output("hit"), 0);
        // read(k[3:0]) with k low nibble = 7 returns the stored word.
        sim.set_input("k", 7);
        assert_eq!(sim.output("rd"), 0xBEEF);
        assert_eq!(sim.cam_entry("t", 7), 0xBEEF);
    }

    #[test]
    fn cam_zero_matches_initial_entries() {
        let d = compile(
            "module m(in k[8], out hit) { cam t[4][8]; assign hit = t.hit(k); }",
            "m",
        )
        .unwrap();
        let mut sim = Interp::new(&d);
        sim.set_input("k", 0);
        assert_eq!(sim.output("hit"), 1, "entries initialize to zero");
        sim.set_input("k", 1);
        assert_eq!(sim.output("hit"), 0);
    }

    #[test]
    fn two_phase_clocks_are_independent() {
        let d = compile(
            "module m(clock phi1, clock phi2, in d, out q1, out q2) {\n\
               reg a; reg b;\n\
               at posedge(phi1) { a <= d; }\n\
               at posedge(phi2) { b <= a; }\n\
               assign q1 = a; assign q2 = b;\n\
             }",
            "m",
        )
        .unwrap();
        let mut sim = Interp::new(&d);
        sim.set_input("d", 1);
        sim.step("phi1");
        assert_eq!(sim.output("q1"), 1);
        assert_eq!(sim.output("q2"), 0, "phi2 has not fired");
        sim.step("phi2");
        assert_eq!(sim.output("q2"), 1);
    }

    #[test]
    fn nonblocking_swap() {
        let d = compile(
            "module m(clock ck, out x, out y) {\n\
               reg a = 1; reg b = 0;\n\
               at posedge(ck) { a <= b; b <= a; }\n\
               assign x = a; assign y = b;\n\
             }",
            "m",
        )
        .unwrap();
        let mut sim = Interp::new(&d);
        sim.step("ck");
        assert_eq!((sim.output("x"), sim.output("y")), (0, 1));
        sim.step("ck");
        assert_eq!((sim.output("x"), sim.output("y")), (1, 0));
    }

    #[test]
    fn shifts_and_dynamic_index() {
        let d = compile(
            "module m(in a[8], in i[3], out bit, out sh[8]) { assign bit = a[i]; assign sh = a << i; }",
            "m",
        )
        .unwrap();
        let mut sim = Interp::new(&d);
        sim.set_input("a", 0b1010_0001);
        sim.set_input("i", 5);
        assert_eq!(sim.output("bit"), 1);
        assert_eq!(sim.output("sh"), (0b1010_0001u64 << 5) & 0xFF);
    }

    #[test]
    fn later_write_wins() {
        let d = compile(
            "module m(clock ck, in v[4], out q[4]) { reg r[4]; at posedge(ck) { r <= 1; r <= v; } assign q = r; }",
            "m",
        )
        .unwrap();
        let mut sim = Interp::new(&d);
        sim.set_input("v", 9);
        sim.step("ck");
        assert_eq!(sim.output("q"), 9);
    }

    #[test]
    fn unknown_names_yield_typed_errors_with_suggestions() {
        let d = compile(
            "module c5(clock ck, in reset, out tick) {\n\
               reg cnt[3];\n\
               at posedge(ck) { if (reset) { cnt <= 0; } else { cnt <= cnt + 1; } }\n\
               assign tick = cnt == 4;\n\
             }",
            "c5",
        )
        .unwrap();
        let mut sim = Interp::new(&d);
        let e = sim.try_set_input("rest", 1).unwrap_err();
        assert_eq!(
            e.to_string(),
            "no input named `rest`; did you mean `reset`?"
        );
        let e = sim.try_step("clk").unwrap_err();
        assert_eq!(e.to_string(), "no clock named `clk`; did you mean `ck`?");
        let e = sim.try_step_edge("kc", Edge::Pos).unwrap_err();
        assert_eq!(e.kind, "clock");
        let e = sim.try_output("tck").unwrap_err();
        assert_eq!(e.suggestion.as_deref(), Some("tick"));
        let e = sim.try_reg("cnt2").unwrap_err();
        assert_eq!(e.suggestion.as_deref(), Some("cnt"));
        let e = sim.try_cam_entry("tags", 0).unwrap_err();
        assert_eq!(e.suggestion, None, "no cams to suggest");
        // The panicking wrappers carry the same message.
        let msg =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.set_input("rest", 1)))
                .unwrap_err();
        let msg = msg.downcast_ref::<String>().unwrap();
        assert!(msg.contains("did you mean `reset`?"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_input_panics() {
        let d = compile("module m(in a[4], out y) { assign y = a == 0; }", "m").unwrap();
        let mut sim = Interp::new(&d);
        sim.set_input("a", 16);
    }

    /// Two-phase pipeline on one clock: the negedge stage samples the
    /// value the posedge stage committed *earlier in the same cycle*.
    #[test]
    fn negedge_stage_sees_posedge_result() {
        let d = compile(
            "module m(clock ck, in d[4], out qa[4], out qb[4]) {\n\
               reg a[4]; reg b[4];\n\
               at posedge(ck) { a <= d; }\n\
               at negedge(ck) { b <= a; }\n\
               assign qa = a; assign qb = b;\n\
             }",
            "m",
        )
        .unwrap();
        let mut sim = Interp::new(&d);
        sim.set_input("d", 7);
        sim.step("ck");
        // One full cycle: a captured d on the rising edge, then b
        // captured the *new* a on the falling edge.
        assert_eq!(sim.output("qa"), 7);
        assert_eq!(sim.output("qb"), 7);
        sim.set_input("d", 3);
        sim.step("ck");
        assert_eq!(sim.output("qa"), 3);
        assert_eq!(sim.output("qb"), 3);
    }

    /// `step_edge` exposes the mid-cycle state between the two edges.
    #[test]
    fn step_edge_observes_half_cycles() {
        let d = compile(
            "module m(clock ck, in d[4], out qa[4], out qb[4]) {\n\
               reg a[4]; reg b[4];\n\
               at posedge(ck) { a <= d; }\n\
               at negedge(ck) { b <= a; }\n\
               assign qa = a; assign qb = b;\n\
             }",
            "m",
        )
        .unwrap();
        let mut sim = Interp::new(&d);
        sim.set_input("d", 9);
        sim.step_edge("ck", Edge::Pos);
        // Mid-cycle: the posedge stage has fired, the negedge stage has not.
        assert_eq!(sim.output("qa"), 9);
        assert_eq!(sim.output("qb"), 0);
        sim.step_edge("ck", Edge::Neg);
        assert_eq!(sim.output("qb"), 9);
    }

    /// A posedge-only design is unaffected by the full-cycle semantics:
    /// `step` fires the rising edge exactly once.
    #[test]
    fn posedge_only_design_steps_once_per_cycle() {
        let d = compile(
            "module m(clock ck, out q[4]) { reg r[4]; at posedge(ck) { r <= r + 1; } assign q = r; }",
            "m",
        )
        .unwrap();
        let mut sim = Interp::new(&d);
        for expect in 1..=5u64 {
            sim.step("ck");
            assert_eq!(sim.output("q"), expect);
        }
    }

    /// A counter clocked on the falling edge only advances on the Neg
    /// half-cycle (and once per full `step`).
    #[test]
    fn negedge_only_counter() {
        let d = compile(
            "module m(clock ck, out q[4]) { reg r[4]; at negedge(ck) { r <= r + 1; } assign q = r; }",
            "m",
        )
        .unwrap();
        let mut sim = Interp::new(&d);
        sim.step_edge("ck", Edge::Pos);
        assert_eq!(
            sim.output("q"),
            0,
            "rising edge must not fire a negedge reg"
        );
        sim.step_edge("ck", Edge::Neg);
        assert_eq!(sim.output("q"), 1);
        sim.step("ck"); // full cycle = exactly one more increment
        assert_eq!(sim.output("q"), 2);
    }

    /// CAM writes respect the edge of their `at` block.
    #[test]
    fn negedge_cam_write() {
        let d = compile(
            "module m(clock ck, in we, in wi[2], in wv[8], in k[8], out h) {\n\
               cam t[4][8];\n\
               at negedge(ck) { if (we) { t[wi] <= wv; } }\n\
               assign h = t.hit(k);\n\
             }",
            "m",
        )
        .unwrap();
        let mut sim = Interp::new(&d);
        sim.set_input("we", 1);
        sim.set_input("wi", 2);
        sim.set_input("wv", 0xAB);
        sim.set_input("k", 0xAB);
        sim.step_edge("ck", Edge::Pos);
        assert_eq!(
            sim.output("h"),
            0,
            "posedge must not commit a negedge cam write"
        );
        sim.step_edge("ck", Edge::Neg);
        assert_eq!(sim.output("h"), 1);
    }
}

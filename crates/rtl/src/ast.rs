//! Abstract syntax tree for the HDL.

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Input port.
    In,
    /// Output port.
    Out,
    /// Clock input (drives `at posedge(...)` blocks).
    Clock,
}

/// Clock edge for sequential blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Rising edge.
    Pos,
    /// Falling edge.
    Neg,
}

/// A declared port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDecl {
    /// Direction.
    pub dir: Dir,
    /// Name.
    pub name: String,
    /// Bit width (1 for clocks).
    pub width: u32,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Bitwise complement `~a`.
    Not,
    /// Logical not `!a` (1-bit result: a == 0).
    LogicNot,
    /// Reduction AND `&a`.
    RedAnd,
    /// Reduction OR `|a`.
    RedOr,
    /// Reduction XOR (parity) `^a`.
    RedXor,
    /// Two's-complement negate `-a`.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Addition (modulo 2^width).
    Add,
    /// Subtraction (modulo 2^width).
    Sub,
    /// Left shift.
    Shl,
    /// Logical right shift.
    Shr,
    /// Equality (1-bit result).
    Eq,
    /// Inequality (1-bit result).
    Ne,
    /// Unsigned less-than (1-bit result).
    Lt,
    /// Unsigned less-or-equal (1-bit result).
    Le,
    /// Unsigned greater-than (1-bit result).
    Gt,
    /// Unsigned greater-or-equal (1-bit result).
    Ge,
    /// Logical AND (operands reduced to 1 bit first).
    LogicAnd,
    /// Logical OR (operands reduced to 1 bit first).
    LogicOr,
}

/// CAM access methods available in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CamMethod {
    /// 1-bit: does any entry equal the key?
    Hit,
    /// Index of the first (lowest) matching entry; zero when no hit.
    Index,
    /// Stored word at a given index.
    Read,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal, optionally with an explicit width.
    Lit {
        /// Value.
        value: u64,
        /// Width if written as `8'hff`; inferred otherwise.
        width: Option<u32>,
    },
    /// Signal reference.
    Ident(String),
    /// Single-bit select `a[i]` (index may be dynamic).
    Index {
        /// Base expression.
        base: Box<Expr>,
        /// Bit index expression.
        index: Box<Expr>,
    },
    /// Constant slice `a[hi:lo]`.
    Slice {
        /// Base expression.
        base: Box<Expr>,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
    /// Concatenation `{a, b, c}` — first element is most significant.
    Concat(Vec<Expr>),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Conditional `c ? a : b`.
    Ternary {
        /// Condition (reduced to 1 bit).
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        els: Box<Expr>,
    },
    /// CAM access: `tags.hit(key)`, `tags.index(key)`, `tags.read(i)`.
    CamOp {
        /// CAM name.
        cam: String,
        /// Which method.
        method: CamMethod,
        /// The key or index argument.
        arg: Box<Expr>,
    },
    /// Instance output: `u0.sum`.
    Field {
        /// Instance name.
        inst: String,
        /// Output port name.
        port: String,
    },
}

/// Assignment targets in sequential blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// A register.
    Reg(String),
    /// A CAM entry: `tags[idx] <= value`.
    CamEntry {
        /// CAM name.
        cam: String,
        /// Entry index expression.
        index: Expr,
    },
}

/// Statements inside sequential blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Non-blocking assignment `target <= expr;`.
    NonBlocking {
        /// Destination.
        target: Target,
        /// Source expression (evaluated pre-edge).
        expr: Expr,
    },
    /// Conditional.
    If {
        /// Condition (reduced to 1 bit).
        cond: Expr,
        /// Taken branch.
        then: Vec<Stmt>,
        /// Else branch (possibly empty).
        els: Vec<Stmt>,
    },
}

/// Module-level items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// `reg name[w] = init;`
    Reg {
        /// Name.
        name: String,
        /// Width.
        width: u32,
        /// Reset/initial value.
        init: u64,
    },
    /// `wire name[w] = expr;` or `assign name = expr;` (width inferred).
    Wire {
        /// Name.
        name: String,
        /// Declared width, if any.
        width: Option<u32>,
        /// Driver.
        expr: Expr,
    },
    /// `cam name[entries][width];`
    Cam {
        /// Name.
        name: String,
        /// Number of entries.
        entries: u32,
        /// Word width.
        width: u32,
    },
    /// `at posedge(ck) { ... }`
    Seq {
        /// Clock signal.
        clock: String,
        /// Edge.
        edge: Edge,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `inst u0 = adder(a: x, b: y);`
    Inst {
        /// Instance name.
        name: String,
        /// Master module name.
        module: String,
        /// Input connections: (port, driver expression).
        conns: Vec<(String, Expr)>,
    },
}

/// One module definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleAst {
    /// Module name.
    pub name: String,
    /// Declared ports.
    pub ports: Vec<PortDecl>,
    /// Body items.
    pub items: Vec<Item>,
}

/// A parsed source file: a set of modules.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SourceFile {
    /// Modules in declaration order.
    pub modules: Vec<ModuleAst>,
}

impl SourceFile {
    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&ModuleAst> {
        self.modules.iter().find(|m| m.name == name)
    }
}

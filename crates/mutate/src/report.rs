//! Rendering a [`CampaignReport`] for humans (fixed-width text) and
//! machines (JSON via the serde shim).
//!
//! Two text renderings exist on purpose: [`render_matrix`] contains *no
//! timings or cache counters*, so it is byte-stable across thread counts
//! and cold/incremental oracles and can be golden-snapshotted, while
//! [`render_full`] appends the performance epilogue (verify CPU, ECO
//! speedup, cache reuse) for experiment logs.

use std::fmt::Write;

use serde::{JsonWriter, Serialize};

use crate::campaign::{all_detectors, CampaignReport, Detector, SensitivityCurve};

/// Short column header for one detector (first 5 chars of its name —
/// enough to keep every column distinct for the current check set).
fn column_header(d: Detector) -> String {
    let name = d.to_string();
    name.chars().take(5).collect()
}

/// Renders the operator × detector detection matrix, the per-operator
/// detection ratios, the escape list, and the sensitivity curves.
/// Deliberately timing-free: byte-identical across thread counts and
/// oracle kinds, so tests can snapshot it.
pub fn render_matrix(report: &CampaignReport) -> String {
    let detectors = all_detectors();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mutation campaign: {} ({} devices)",
        report.design, report.devices
    );
    let _ = writeln!(
        out,
        "mutants: {}  detected: {}  escapes: {}",
        report.total_mutants(),
        report.mutants.iter().filter(|m| m.detected()).count(),
        report.total_escapes()
    );
    out.push('\n');

    // Matrix header.
    let op_w = report
        .rows
        .iter()
        .map(|r| r.op.to_string().len())
        .chain(std::iter::once("operator".len()))
        .max()
        .unwrap_or(8);
    let _ = write!(out, "{:<op_w$}  {:>5} {:>5}", "operator", "sites", "run");
    for &d in &detectors {
        let _ = write!(out, " {:>5}", column_header(d));
    }
    let _ = writeln!(out, " {:>6}", "caught");

    for row in &report.rows {
        let _ = write!(
            out,
            "{:<op_w$}  {:>5} {:>5}",
            row.op.to_string(),
            row.sites_found,
            row.mutants_run
        );
        for (_, n) in &row.by_detector {
            if *n == 0 {
                let _ = write!(out, " {:>5}", ".");
            } else {
                let _ = write!(out, " {n:>5}");
            }
        }
        let _ = writeln!(out, " {:>3}/{:<3}", row.detected, row.mutants_run);
    }

    // Escape list.
    let escapes: Vec<(String, &str)> = report
        .rows
        .iter()
        .flat_map(|r| r.escapes.iter().map(|e| (r.op.to_string(), e.as_str())))
        .collect();
    out.push('\n');
    if escapes.is_empty() {
        out.push_str("escapes: none\n");
    } else {
        let _ = writeln!(out, "escapes ({}):", escapes.len());
        for (op, desc) in &escapes {
            let _ = writeln!(out, "  {op}: {desc}");
        }
    }

    // Sensitivity curves.
    if !report.sensitivity.is_empty() {
        out.push('\n');
        out.push_str("sensitivity (smallest magnitude each detector fires at):\n");
        for curve in &report.sensitivity {
            render_curve(&mut out, curve);
        }
    }
    out
}

fn render_curve(out: &mut String, curve: &SensitivityCurve) {
    let ladder: Vec<String> = curve.ladder.iter().map(|e| format!("{e:.3}")).collect();
    let _ = writeln!(
        out,
        "  {} @ {} over [{}]:",
        curve.op.name(),
        curve.site,
        ladder.join(", ")
    );
    if curve.thresholds.is_empty() {
        out.push_str("    (no detector fired at any magnitude)\n");
    }
    for (d, eps) in &curve.thresholds {
        let _ = writeln!(out, "    {d}: {eps:.3}");
    }
}

/// [`render_matrix`] plus the performance epilogue. Not snapshot-stable.
pub fn render_full(report: &CampaignReport) -> String {
    let mut out = render_matrix(report);
    out.push('\n');
    let _ = writeln!(
        out,
        "baseline verify cpu: {:.3}s (cold)",
        report.baseline.verify_cpu
    );
    let _ = writeln!(
        out,
        "mean mutant verify cpu: {:.4}s  speedup vs cold: {:.1}x",
        report.mean_mutant_verify_cpu(),
        report.verify_speedup()
    );
    let parametric = report.mean_parametric_verify_cpu();
    if parametric > 0.0 {
        let _ = writeln!(
            out,
            "  parametric class (sizing ECOs): {:.4}s mean  {:.1} units re-verified  \
             speedup vs cold: {:.1}x mean / {:.1}x geomean",
            parametric,
            report.mean_dirty_units(true),
            report.parametric_speedup(),
            report.geomean_parametric_speedup()
        );
    }
    let structural = report.mean_structural_verify_cpu();
    if structural > 0.0 {
        let _ = writeln!(
            out,
            "  structural class (role-moving): {:.4}s mean  {:.1} units re-verified  \
             speedup vs cold: {:.1}x mean",
            structural,
            report.mean_dirty_units(false),
            report.baseline.verify_cpu / structural
        );
    }
    let _ = writeln!(
        out,
        "cache reuse across mutants: {:.1}% unit hits",
        report.cache_hit_fraction() * 100.0
    );
    out
}

impl Serialize for Detector {
    fn serialize_json(&self, out: &mut String) {
        self.to_string().serialize_json(out);
    }
}

impl Serialize for crate::campaign::FlowObservation {
    fn serialize_json(&self, out: &mut String) {
        let mut w = JsonWriter::object(out);
        w.field("check_violations", &self.check_violations);
        w.field("check_max_stress", &self.check_max_stress);
        w.field("timing_violations", &self.timing_violations);
        w.field("verify_cpu", &self.verify_cpu);
        w.field("cache_hits", &self.cache_hits);
        w.field("cache_misses", &self.cache_misses);
        w.end();
    }
}

impl Serialize for crate::campaign::MutantRecord {
    fn serialize_json(&self, out: &mut String) {
        let mut w = JsonWriter::object(out);
        w.field("op", &self.op.to_string());
        w.field("description", &self.description);
        w.field("fired", &self.fired);
        w.field("verify_cpu", &self.verify_cpu);
        w.field("cache_hits", &self.cache_hits);
        w.field("cache_misses", &self.cache_misses);
        w.end();
    }
}

/// Helper: one `(detector, count)` matrix cell as a two-element object.
struct Cell<'a>(&'a (Detector, usize));

impl Serialize for Cell<'_> {
    fn serialize_json(&self, out: &mut String) {
        let mut w = JsonWriter::object(out);
        w.field("detector", &self.0 .0);
        w.field("count", &self.0 .1);
        w.end();
    }
}

impl Serialize for crate::campaign::OpSummary {
    fn serialize_json(&self, out: &mut String) {
        let mut w = JsonWriter::object(out);
        w.field("op", &self.op.to_string());
        w.field("sites_found", &self.sites_found);
        w.field("mutants_run", &self.mutants_run);
        w.field("detected", &self.detected);
        let cells: Vec<Cell<'_>> = self.by_detector.iter().map(Cell).collect();
        w.field("by_detector", &cells);
        w.field("escapes", &self.escapes);
        w.end();
    }
}

impl Serialize for SensitivityCurve {
    fn serialize_json(&self, out: &mut String) {
        struct Th<'a>(&'a (Detector, f64));
        impl Serialize for Th<'_> {
            fn serialize_json(&self, out: &mut String) {
                let mut w = JsonWriter::object(out);
                w.field("detector", &self.0 .0);
                w.field("magnitude", &self.0 .1);
                w.end();
            }
        }
        let mut w = JsonWriter::object(out);
        w.field("op", &self.op.name().to_owned());
        w.field("site", &self.site);
        w.field("ladder", &self.ladder);
        let ths: Vec<Th<'_>> = self.thresholds.iter().map(Th).collect();
        w.field("thresholds", &ths);
        w.end();
    }
}

impl Serialize for CampaignReport {
    fn serialize_json(&self, out: &mut String) {
        let mut w = JsonWriter::object(out);
        w.field("design", &self.design);
        w.field("devices", &self.devices);
        w.field("baseline", &self.baseline);
        w.field("rows", &self.rows);
        w.field("mutants", &self.mutants);
        w.field("sensitivity", &self.sensitivity);
        w.field("total_mutants", &self.total_mutants());
        w.field("total_escapes", &self.total_escapes());
        w.field("mean_mutant_verify_cpu", &self.mean_mutant_verify_cpu());
        w.field(
            "mean_parametric_verify_cpu",
            &self.mean_parametric_verify_cpu(),
        );
        w.field("verify_speedup", &self.verify_speedup());
        w.field("parametric_speedup", &self.parametric_speedup());
        w.field(
            "geomean_parametric_speedup",
            &self.geomean_parametric_speedup(),
        );
        w.field("cache_hit_fraction", &self.cache_hit_fraction());
        w.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{FlowObservation, MutantRecord, OpSummary};
    use crate::op::MutationOp;
    use cbv_everify::CheckKind;

    fn toy_report() -> CampaignReport {
        let obs = FlowObservation {
            check_violations: vec![0; CheckKind::ALL.len()],
            check_max_stress: vec![0.0; CheckKind::ALL.len()],
            timing_violations: 3,
            verify_cpu: 1.5,
            cache_hits: 0,
            cache_misses: 9,
        };
        let op = MutationOp::WidthScale { factor: 12.0 };
        let fired = vec![Detector::Check(CheckKind::BetaRatio)];
        let mut by_detector: Vec<(Detector, usize)> =
            all_detectors().into_iter().map(|d| (d, 0)).collect();
        by_detector[0].1 = 1;
        CampaignReport {
            design: "toy".into(),
            devices: 8,
            baseline: obs.clone(),
            rows: vec![OpSummary {
                op,
                sites_found: 4,
                mutants_run: 2,
                detected: 1,
                by_detector,
                escapes: vec!["width of `m1` x12.000".into()],
            }],
            mutants: vec![MutantRecord {
                op_index: 0,
                op,
                description: "width of `m0` x12.000".into(),
                fired,
                verify_cpu: 0.25,
                cache_hits: 8,
                cache_misses: 1,
            }],
            sensitivity: vec![SensitivityCurve {
                op: MutationOp::WidthScale { factor: 1.0 },
                site: "device `m0`".into(),
                ladder: vec![1.5, 3.0],
                thresholds: vec![(Detector::Check(CheckKind::BetaRatio), 3.0)],
            }],
        }
    }

    #[test]
    fn matrix_text_is_timing_free_and_full_text_is_not() {
        let report = toy_report();
        let matrix = render_matrix(&report);
        assert!(matrix.contains("mutation campaign: toy (8 devices)"));
        assert!(matrix.contains("width-scale(x12.000)"));
        assert!(matrix.contains("escapes (1):"));
        assert!(matrix.contains("beta-ratio: 3.000"));
        assert!(
            !matrix.contains("cpu"),
            "snapshot text must carry no timings"
        );
        let full = render_full(&report);
        assert!(full.starts_with(&matrix));
        assert!(full.contains("speedup vs cold"));
        assert!(full.contains("cache reuse"));
    }

    #[test]
    fn json_round_trips_through_the_shim_parser() {
        let report = toy_report();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"design\":\"toy\""));
        assert!(json.contains("\"total_mutants\":1"));
        assert!(json.contains("\"fired\":[\"beta-ratio\"]"));
        // The sibling shim's parser must accept what we emit.
        let value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(value.get("devices").and_then(|v| v.as_u64()), Some(8));
    }
}

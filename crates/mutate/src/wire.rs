//! Wire (de)serialization for the operator taxonomy.
//!
//! The verification daemon (`cbv-serve`) streams ECO requests whose edit
//! vocabulary *is* [`MutationOp`] × [`Site`]: a remote designer names the
//! same single-site edits the campaign enumerates locally. This module
//! gives both halves one stable JSON encoding:
//!
//! ```text
//! {"op":"width-scale","factor":1.5}
//! {"op":"keeper-resize","w_factor":2.0,"l_factor":1.0}
//! {"op":"keeper-delete"}
//!
//! {"site":"device","device":3}
//! {"site":"rewire","device":3,"term":"gate","net":7}
//! {"site":"bridge","a":1,"b":2}
//! {"site":"open","device":3,"term":"gate"}
//! ```
//!
//! Magnitudes are plain JSON decimals; Rust's shortest-round-trip float
//! formatting guarantees `parse(format(x)) == x` bit-exactly, so an edit
//! applied remotely and the same edit applied in-process produce
//! fingerprint-identical netlists — the daemon's byte-identity contract
//! rests on this. Parsing rejects non-finite and missing magnitudes.

use std::error::Error;
use std::fmt;

use cbv_netlist::{DeviceId, NetId, Term};
use serde::{JsonWriter, Serialize};
use serde_json::Value;

use crate::op::{MutationOp, Site};

/// A structurally invalid wire encoding of an op or site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    message: String,
}

impl WireError {
    fn new(message: impl Into<String>) -> WireError {
        WireError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire format error: {}", self.message)
    }
}

impl Error for WireError {}

impl Serialize for MutationOp {
    fn serialize_json(&self, out: &mut String) {
        let mut w = JsonWriter::object(out);
        w.field("op", &self.name());
        match *self {
            MutationOp::WidthScale { factor }
            | MutationOp::LengthScale { factor }
            | MutationOp::BetaSkew { factor } => {
                w.field("factor", &factor);
            }
            MutationOp::KeeperResize { w_factor, l_factor } => {
                w.field("w_factor", &w_factor);
                w.field("l_factor", &l_factor);
            }
            MutationOp::KeeperDelete
            | MutationOp::PolaritySwap
            | MutationOp::NetBridge
            | MutationOp::NetOpen
            | MutationOp::PrechargeDrop
            | MutationOp::ClockPhaseSwap => {}
        }
        w.end();
    }
}

impl Serialize for Site {
    fn serialize_json(&self, out: &mut String) {
        let mut w = JsonWriter::object(out);
        match *self {
            Site::Device(d) => {
                w.field("site", &"device");
                w.field("device", &d.index());
            }
            Site::Rewire(d, term, net) => {
                w.field("site", &"rewire");
                w.field("device", &d.index());
                w.field("term", &term_name(term));
                w.field("net", &net.index());
            }
            Site::Bridge(a, b) => {
                w.field("site", &"bridge");
                w.field("a", &a.index());
                w.field("b", &b.index());
            }
            Site::Open(d, term) => {
                w.field("site", &"open");
                w.field("device", &d.index());
                w.field("term", &term_name(term));
            }
        }
        w.end();
    }
}

/// Stable wire name of a terminal.
pub fn term_name(term: Term) -> &'static str {
    match term {
        Term::Gate => "gate",
        Term::Source => "source",
        Term::Drain => "drain",
        Term::Bulk => "bulk",
    }
}

/// Parses a terminal name emitted by [`term_name`].
pub fn parse_term(name: &str) -> Result<Term, WireError> {
    match name {
        "gate" => Ok(Term::Gate),
        "source" => Ok(Term::Source),
        "drain" => Ok(Term::Drain),
        "bulk" => Ok(Term::Bulk),
        other => Err(WireError::new(format!("unknown terminal {other:?}"))),
    }
}

fn field_str<'a>(v: &'a Value, name: &str) -> Result<&'a str, WireError> {
    v.get(name)
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::new(format!("missing or non-string field {name:?}")))
}

fn field_f64(v: &Value, name: &str) -> Result<f64, WireError> {
    let x = v
        .get(name)
        .and_then(Value::as_f64)
        .ok_or_else(|| WireError::new(format!("missing or non-numeric field {name:?}")))?;
    if !x.is_finite() {
        return Err(WireError::new(format!("non-finite magnitude in {name:?}")));
    }
    Ok(x)
}

fn field_u32(v: &Value, name: &str) -> Result<u32, WireError> {
    let raw = v
        .get(name)
        .and_then(Value::as_u64)
        .ok_or_else(|| WireError::new(format!("missing or non-integer field {name:?}")))?;
    u32::try_from(raw).map_err(|_| WireError::new(format!("field {name:?} out of range")))
}

/// Parses a [`MutationOp`] from its wire object.
pub fn op_from_json(v: &Value) -> Result<MutationOp, WireError> {
    match field_str(v, "op")? {
        "width-scale" => Ok(MutationOp::WidthScale {
            factor: field_f64(v, "factor")?,
        }),
        "length-scale" => Ok(MutationOp::LengthScale {
            factor: field_f64(v, "factor")?,
        }),
        "beta-skew" => Ok(MutationOp::BetaSkew {
            factor: field_f64(v, "factor")?,
        }),
        "keeper-resize" => Ok(MutationOp::KeeperResize {
            w_factor: field_f64(v, "w_factor")?,
            l_factor: field_f64(v, "l_factor")?,
        }),
        "keeper-delete" => Ok(MutationOp::KeeperDelete),
        "polarity-swap" => Ok(MutationOp::PolaritySwap),
        "net-bridge" => Ok(MutationOp::NetBridge),
        "net-open" => Ok(MutationOp::NetOpen),
        "precharge-drop" => Ok(MutationOp::PrechargeDrop),
        "clock-phase-swap" => Ok(MutationOp::ClockPhaseSwap),
        other => Err(WireError::new(format!("unknown operator {other:?}"))),
    }
}

/// Parses a [`Site`] from its wire object. Ids are *not* validated
/// against any netlist here — the applier rejects out-of-range ids.
pub fn site_from_json(v: &Value) -> Result<Site, WireError> {
    match field_str(v, "site")? {
        "device" => Ok(Site::Device(DeviceId(field_u32(v, "device")?))),
        "rewire" => Ok(Site::Rewire(
            DeviceId(field_u32(v, "device")?),
            parse_term(field_str(v, "term")?)?,
            NetId(field_u32(v, "net")?),
        )),
        "bridge" => Ok(Site::Bridge(
            NetId(field_u32(v, "a")?),
            NetId(field_u32(v, "b")?),
        )),
        "open" => Ok(Site::Open(
            DeviceId(field_u32(v, "device")?),
            parse_term(field_str(v, "term")?)?,
        )),
        other => Err(WireError::new(format!("unknown site kind {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_op(op: MutationOp) {
        let json = serde_json::to_string(&op).unwrap();
        let back = op_from_json(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back, op, "{json}");
        // Bit-exact magnitude survival.
        match (op.magnitude(), back.magnitude()) {
            (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits()),
            (a, b) => assert_eq!(a, b),
        }
    }

    #[test]
    fn every_op_round_trips() {
        for op in [
            MutationOp::WidthScale { factor: 1.05 },
            MutationOp::LengthScale {
                factor: 0.123_456_789_012_345_67,
            },
            MutationOp::BetaSkew { factor: 25.0 },
            MutationOp::KeeperResize {
                w_factor: 3.5,
                l_factor: 0.9,
            },
            MutationOp::KeeperDelete,
            MutationOp::PolaritySwap,
            MutationOp::NetBridge,
            MutationOp::NetOpen,
            MutationOp::PrechargeDrop,
            MutationOp::ClockPhaseSwap,
        ] {
            round_trip_op(op);
        }
    }

    #[test]
    fn every_site_round_trips() {
        for site in [
            Site::Device(DeviceId(7)),
            Site::Rewire(DeviceId(3), Term::Gate, NetId(9)),
            Site::Bridge(NetId(1), NetId(2)),
            Site::Open(DeviceId(0), Term::Drain),
        ] {
            let json = serde_json::to_string(&site).unwrap();
            let back = site_from_json(&serde_json::from_str(&json).unwrap()).unwrap();
            assert_eq!(back, site, "{json}");
        }
    }

    #[test]
    fn stable_wire_shapes() {
        assert_eq!(
            serde_json::to_string(&MutationOp::WidthScale { factor: 1.5 }).unwrap(),
            "{\"op\":\"width-scale\",\"factor\":1.5}"
        );
        assert_eq!(
            serde_json::to_string(&Site::Rewire(DeviceId(3), Term::Gate, NetId(7))).unwrap(),
            "{\"site\":\"rewire\",\"device\":3,\"term\":\"gate\",\"net\":7}"
        );
    }

    #[test]
    fn rejects_malformed_objects() {
        let bad = [
            "{\"op\":\"width-scale\"}",                  // missing factor
            "{\"op\":\"width-scale\",\"factor\":\"x\"}", // non-numeric
            "{\"op\":\"no-such-op\"}",                   // unknown op
            "{\"site\":\"rewire\",\"device\":1}",        // missing term/net
            "{\"site\":\"rewire\",\"device\":1,\"term\":\"fin\",\"net\":0}", // bad term
            "{\"site\":\"elsewhere\"}",                  // unknown site
            "{}",                                        // no discriminant
        ];
        for text in bad {
            let v = serde_json::from_str(text).unwrap();
            assert!(
                op_from_json(&v).is_err() && site_from_json(&v).is_err(),
                "{text} should not parse"
            );
        }
    }
}

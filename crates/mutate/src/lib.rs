//! `cbv-mutate` — mutation testing for the §4.2 probability filter.
//!
//! The paper's central claim about the CAD system is that its checks act
//! as *probability filters*: they discharge the circuits that are
//! provably fine and flag the ones that might be broken (§2.3, §4.2).
//! The seven hand-written injectors of `cbv-gen` assert that claim with
//! anecdotes; this crate measures it. It generalizes the injector
//! taxonomy into **parametric, site-enumerable mutation operators**
//! ([`MutationOp`]) — each with a magnitude knob and a deterministic
//! enumerator over every applicable device/net site — and a campaign
//! runner ([`run_campaign`]) that applies every mutant as a one-site ECO
//! and asks a [`FlowOracle`] (in practice `run_flow_incremental` on a
//! primed verification cache) which checks moved.
//!
//! Detection is **differential**: real full-custom designs rarely have a
//! spotless baseline, so a detector counts only when its violation count
//! *strictly increases* over the unmutated design's. The campaign's
//! outputs are the operator × check detection matrix, the escape list
//! (mutants nothing flagged — each a checker gap to fix or a documented
//! accepted escape), and per-operator sensitivity curves (the smallest
//! magnitude each check detects — the probability-filter ROC the paper
//! only gestures at).
//!
//! Alongside the flow campaign, [`run_func_screen`] runs the same
//! mutants through a **functional screen** ([`screen`]): simulate each
//! mutant against the golden design's stimulus/response vectors and
//! report diverged / unresolved / escaped — §4.1's logic-intent
//! coverage as the campaign's simulation column. The reference-vector
//! oracles (interpreter- or compiled-engine-backed) live in `cbv-core`
//! (`core::screen`).
//!
//! The crate deliberately depends only on the netlist/recognition layer:
//! the flow-backed oracle adapters live in `cbv-core` (`core::oracle`),
//! and `cbv_gen::inject` delegates its legacy fault classes to
//! [`apply`], so there is exactly one mutation taxonomy in the tree.

pub mod campaign;
pub mod op;
pub mod report;
pub mod screen;
pub mod wire;

pub use campaign::{
    default_ops, default_sensitivity, run_campaign, CampaignConfig, CampaignReport, Detector,
    FlowObservation, FlowOracle, MutantRecord, OpSummary, SensitivityCurve,
};
pub use op::{apply, sites, stack_internal_nmos, Mutation, MutationOp, Site};
pub use screen::{
    run_func_screen, FuncMutantRecord, FuncOpSummary, FuncOracle, FuncScreenConfig,
    FuncScreenReport, FuncVerdict,
};
pub use wire::{op_from_json, parse_term, site_from_json, term_name, WireError};

//! The functional screen: mutation campaigns judged by *logic intent*
//! instead of electrical/timing detectors.
//!
//! [`run_campaign`](crate::run_campaign) measures the §4.2/§4.3
//! probability filters. This module is the §4.1 column of the same
//! matrix: drive each mutant with the golden design's stimulus vectors
//! and ask whether any output bit ever diverges. The paper's flow used
//! exactly this split — electrical checks discharge sizing hazards,
//! *simulation against the RTL* catches wrong logic.
//!
//! The runner mirrors [`run_campaign`](crate::run_campaign)'s site
//! enumeration (same operators, same deterministic site order, same
//! uniform-stride cap) so the two reports line up row for row. The
//! reference vectors come from a [`FuncOracle`] implementation —
//! `cbv-core`'s `SimScreenOracle` computes them from the golden RTL
//! with either the word-level interpreter or the compiled bit-parallel
//! engine (`cbv-csim`), and the two must produce identical verdicts.

use cbv_netlist::FlatNetlist;

use crate::campaign::take_spread;
use crate::op::{apply, sites, MutationOp, Site};

/// Verdict of the functional screen on one netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuncVerdict {
    /// An output bit diverged from the golden reference.
    Detected {
        /// First diverging stimulus vector.
        cycle: usize,
        /// Name of the first diverging output bit (circuit net name).
        output: String,
    },
    /// Bit-identical to the reference over every vector.
    Escaped,
    /// The mutant could not be driven to a defined value (X output,
    /// unresolved fight, failure to settle). Functionally this is a
    /// detection — a dead or floating output is visible on first use —
    /// but it is reported separately so coverage tables can distinguish
    /// "wrong value" from "no value".
    Unresolved {
        /// First failing stimulus vector.
        cycle: usize,
        /// What went wrong.
        detail: String,
    },
}

impl FuncVerdict {
    /// Whether the screen noticed the mutant (wrong value *or* no
    /// value).
    pub fn caught(&self) -> bool {
        !matches!(self, FuncVerdict::Escaped)
    }
}

/// The screen's window onto a simulator: run the shared stimulus
/// vectors over `netlist` and compare against the golden reference.
/// Implementations own the vectors and the reference outputs (computed
/// once from the golden RTL).
pub trait FuncOracle {
    /// Screens one netlist.
    fn screen(&mut self, netlist: &FlatNetlist) -> FuncVerdict;
}

/// Screen knobs — deliberately the same shape as the flow campaign's
/// so a suite can run both from one description.
#[derive(Debug, Clone, Default)]
pub struct FuncScreenConfig {
    /// Operators to run, in order.
    pub ops: Vec<MutationOp>,
    /// Cap on sites per operator (`0` = every site), sampled at a
    /// uniform stride like [`run_campaign`](crate::run_campaign).
    pub max_sites_per_op: usize,
}

/// One mutant's functional outcome.
#[derive(Debug, Clone)]
pub struct FuncMutantRecord {
    /// Index into the screen's operator list.
    pub op_index: usize,
    /// The operator.
    pub op: MutationOp,
    /// What was edited, in design names.
    pub description: String,
    /// The verdict.
    pub verdict: FuncVerdict,
}

/// One operator row of the functional detection table.
#[derive(Debug, Clone)]
pub struct FuncOpSummary {
    /// The operator.
    pub op: MutationOp,
    /// Sites the enumerator found.
    pub sites_found: usize,
    /// Mutants actually run (after the per-op cap).
    pub mutants_run: usize,
    /// Mutants caught with a diverging value.
    pub detected: usize,
    /// Mutants caught by failing to resolve.
    pub unresolved: usize,
    /// Descriptions of the mutants the screen missed.
    pub escapes: Vec<String>,
}

/// The complete functional-screen result.
#[derive(Debug, Clone)]
pub struct FuncScreenReport {
    /// Design name.
    pub design: String,
    /// Devices in the baseline design.
    pub devices: usize,
    /// The unmutated design's verdict — must be
    /// [`FuncVerdict::Escaped`] for the screen to mean anything; kept
    /// in the report so a broken harness is visible instead of silently
    /// flagging every mutant.
    pub baseline: FuncVerdict,
    /// One row per operator.
    pub rows: Vec<FuncOpSummary>,
    /// Every mutant, in run order.
    pub mutants: Vec<FuncMutantRecord>,
}

impl FuncScreenReport {
    /// Total mutants run.
    pub fn total_mutants(&self) -> usize {
        self.mutants.len()
    }

    /// Total mutants the screen missed.
    pub fn total_escapes(&self) -> usize {
        self.rows.iter().map(|r| r.escapes.len()).sum()
    }

    /// The per-mutant verdicts in run order — the vector two screens
    /// (e.g. interpreter-referenced vs compiled-referenced) must agree
    /// on exactly.
    pub fn verdicts(&self) -> Vec<&FuncVerdict> {
        self.mutants.iter().map(|m| &m.verdict).collect()
    }
}

/// Runs the functional screen: enumerate each operator's sites on the
/// recognized baseline (identical order and sampling to
/// [`run_campaign`](crate::run_campaign)), apply each mutant to a
/// pristine clone, and ask the oracle whether the mutant's outputs
/// still track the golden reference vectors.
pub fn run_func_screen(
    baseline: &FlatNetlist,
    oracle: &mut dyn FuncOracle,
    config: &FuncScreenConfig,
) -> FuncScreenReport {
    let mut recognized = baseline.clone();
    let recognition = cbv_recognize::recognize(&mut recognized);

    let base_verdict = oracle.screen(baseline);

    let mut rows = Vec::with_capacity(config.ops.len());
    let mut mutants = Vec::new();
    for (op_index, op) in config.ops.iter().enumerate() {
        let found = sites(op, &recognized, &recognition);
        let run: Vec<Site> = take_spread(&found, config.max_sites_per_op);
        let mut detected = 0usize;
        let mut unresolved = 0usize;
        let mut escapes = Vec::new();
        let mut mutants_run = 0usize;
        for &site in &run {
            let mut nl = baseline.clone();
            let Some(m) = apply(&mut nl, op, site) else {
                continue;
            };
            mutants_run += 1;
            let verdict = oracle.screen(&nl);
            match &verdict {
                FuncVerdict::Detected { .. } => detected += 1,
                FuncVerdict::Unresolved { .. } => unresolved += 1,
                FuncVerdict::Escaped => escapes.push(m.description.clone()),
            }
            mutants.push(FuncMutantRecord {
                op_index,
                op: *op,
                description: m.description,
                verdict,
            });
        }
        rows.push(FuncOpSummary {
            op: *op,
            sites_found: found.len(),
            mutants_run,
            detected,
            unresolved,
            escapes,
        });
    }

    FuncScreenReport {
        design: baseline.name().to_owned(),
        devices: baseline.devices().len(),
        baseline: base_verdict,
        rows,
        mutants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake oracle keyed on total gate width, like the campaign's.
    struct WidthOracle {
        base_width: f64,
    }

    impl FuncOracle for WidthOracle {
        fn screen(&mut self, netlist: &FlatNetlist) -> FuncVerdict {
            let width: f64 = netlist.devices().iter().map(|d| d.w).sum();
            if (width - self.base_width).abs() > 1e-12 {
                FuncVerdict::Detected {
                    cycle: 0,
                    output: "w".into(),
                }
            } else {
                FuncVerdict::Escaped
            }
        }
    }

    #[test]
    fn screen_report_shapes_match_config() {
        let p = cbv_tech::Process::strongarm_035();
        let base = cbv_gen::latches::keeper_domino(&p, 1e-6).netlist;
        let width: f64 = base.devices().iter().map(|d| d.w).sum();
        let mut oracle = WidthOracle { base_width: width };
        let config = FuncScreenConfig {
            ops: vec![
                MutationOp::WidthScale { factor: 2.0 },
                MutationOp::PolaritySwap, // width unchanged: escapes here
            ],
            max_sites_per_op: 2,
        };
        let report = run_func_screen(&base, &mut oracle, &config);
        assert_eq!(report.baseline, FuncVerdict::Escaped);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].detected, report.rows[0].mutants_run);
        assert!(report.rows[0].mutants_run > 0);
        assert_eq!(report.rows[1].escapes.len(), report.rows[1].mutants_run);
        assert_eq!(
            report.total_mutants(),
            report.rows.iter().map(|r| r.mutants_run).sum::<usize>()
        );
        assert_eq!(report.verdicts().len(), report.total_mutants());
        assert!(FuncVerdict::Detected {
            cycle: 0,
            output: "x".into()
        }
        .caught());
        assert!(FuncVerdict::Unresolved {
            cycle: 0,
            detail: "x".into()
        }
        .caught());
        assert!(!FuncVerdict::Escaped.caught());
    }
}

//! The mutation campaign runner: every operator, every site, one
//! differential verdict per mutant.

use cbv_everify::CheckKind;
use cbv_netlist::FlatNetlist;

use crate::op::{apply, sites, MutationOp, Site};

/// What one verification run of the full flow observed, reduced to the
/// detector counts a mutation campaign compares. Built by a
/// [`FlowOracle`]; `cbv-core`'s adapters fill it from a `FlowReport`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowObservation {
    /// Violation count per electrical check, in [`CheckKind::ALL`] order
    /// (`ToolError` findings count as violations: an unverified unit is
    /// never clean).
    pub check_violations: Vec<usize>,
    /// Worst violation stress per electrical check, same order (0.0 when
    /// the check has no violations). Deterministic for a given design,
    /// so it is safe to compare across oracles and thread counts.
    pub check_max_stress: Vec<f64>,
    /// Timing violations (setup + race + tool failures).
    pub timing_violations: usize,
    /// everify+timing compute seconds for this run.
    pub verify_cpu: f64,
    /// Verification-cache unit hits (0 for a cold flow).
    pub cache_hits: usize,
    /// Verification-cache unit misses (= all units for a cold flow).
    pub cache_misses: usize,
}

/// How much a check's worst stress must grow over the baseline's before
/// the campaign counts it as a detection in its own right. Catches
/// mutants that worsen an *already-violating* subject — e.g. a ×25
/// keeper on a dynamic node whose keeper fight was marginal to begin
/// with: the violation count stays flat while the stress explodes.
pub const STRESS_ESCALATION: f64 = 1.5;

impl FlowObservation {
    fn check_index(k: CheckKind) -> usize {
        CheckKind::ALL
            .iter()
            .position(|&c| c == k)
            .expect("known check")
    }

    /// Count observed by one detector.
    pub fn count(&self, d: Detector) -> usize {
        match d {
            Detector::Check(k) => self.check_violations[Self::check_index(k)],
            Detector::Timing => self.timing_violations,
        }
    }

    /// Detectors that noticed this run differentially over `baseline`:
    /// a check fires when its violation count strictly increased, or
    /// when its worst stress escalated past [`STRESS_ESCALATION`] ×
    /// the baseline's (real designs rarely have a spotless baseline, so
    /// neither presence nor a flat count proves anything on its own);
    /// timing fires on count alone.
    pub fn fired_against(&self, baseline: &FlowObservation) -> Vec<Detector> {
        all_detectors()
            .into_iter()
            .filter(|&d| match d {
                Detector::Check(k) => {
                    let i = Self::check_index(k);
                    self.check_violations[i] > baseline.check_violations[i]
                        || self.check_max_stress[i]
                            > baseline.check_max_stress[i] * STRESS_ESCALATION
                }
                Detector::Timing => self.timing_violations > baseline.timing_violations,
            })
            .collect()
    }
}

/// Something that can notice a mutant: one §4.2 check, or the §4.3
/// timing battery as a single channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Detector {
    /// An electrical check.
    Check(CheckKind),
    /// Static timing (setup/race violations).
    Timing,
}

impl std::fmt::Display for Detector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Detector::Check(k) => write!(f, "{k}"),
            Detector::Timing => f.write_str("timing"),
        }
    }
}

/// Every detector, in canonical ([`CheckKind::ALL`] then timing) order.
pub fn all_detectors() -> Vec<Detector> {
    CheckKind::ALL
        .iter()
        .map(|&k| Detector::Check(k))
        .chain(std::iter::once(Detector::Timing))
        .collect()
}

/// The campaign's window onto the verification flow. The oracle owns
/// whatever state makes repeated verification cheap (in practice a
/// `VerifyCache` primed on the baseline, so each mutant re-verifies only
/// its dirty closure); the campaign only ever hands it a netlist and
/// reads back counts.
pub trait FlowOracle {
    /// Runs the full verification flow over `netlist` and reports what
    /// the detectors saw.
    fn verify(&mut self, netlist: &FlatNetlist) -> FlowObservation;
}

/// Campaign knobs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Operators to run, in order.
    pub ops: Vec<MutationOp>,
    /// Cap on sites per operator (`0` = every site). Capping samples the
    /// enumeration at a uniform stride so coverage stays spread across
    /// the design, and the dropped count is recorded per row — a bounded
    /// campaign must say what it skipped.
    pub max_sites_per_op: usize,
    /// Sensitivity sweeps: a prototype operator and the magnitude ladder
    /// to walk (mild → severe). Each runs at the operator's first site.
    pub sensitivity: Vec<(MutationOp, Vec<f64>)>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            ops: default_ops(),
            max_sites_per_op: 0,
            sensitivity: Vec::new(),
        }
    }
}

/// Every operator at its legacy-injector-equivalent magnitude — the
/// canonical E16 operator set.
pub fn default_ops() -> Vec<MutationOp> {
    vec![
        MutationOp::WidthScale { factor: 12.0 },
        MutationOp::WidthScale { factor: 1.0 / 10.0 },
        MutationOp::LengthScale { factor: 0.6 },
        MutationOp::BetaSkew { factor: 12.0 },
        MutationOp::KeeperResize {
            w_factor: 25.0,
            l_factor: 0.5,
        },
        MutationOp::KeeperDelete,
        MutationOp::PolaritySwap,
        MutationOp::NetBridge,
        MutationOp::NetOpen,
        MutationOp::PrechargeDrop,
        MutationOp::ClockPhaseSwap,
    ]
}

/// The default sensitivity ladders (mild → severe) for the parametric
/// operators.
pub fn default_sensitivity() -> Vec<(MutationOp, Vec<f64>)> {
    vec![
        (
            MutationOp::WidthScale { factor: 1.0 },
            vec![1.25, 1.5, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0],
        ),
        (
            MutationOp::WidthScale { factor: 1.0 },
            vec![0.8, 0.67, 0.5, 0.33, 0.2, 0.1, 0.05],
        ),
        (
            MutationOp::LengthScale { factor: 1.0 },
            vec![0.95, 0.9, 0.85, 0.8, 0.7, 0.6, 0.5],
        ),
        (
            MutationOp::BetaSkew { factor: 1.0 },
            vec![1.25, 1.5, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0],
        ),
        (
            MutationOp::KeeperResize {
                w_factor: 1.0,
                l_factor: 1.0,
            },
            vec![2.0, 4.0, 8.0, 16.0, 25.0],
        ),
    ]
}

/// One mutant's outcome.
#[derive(Debug, Clone)]
pub struct MutantRecord {
    /// Index into the campaign's operator list.
    pub op_index: usize,
    /// The operator.
    pub op: MutationOp,
    /// What was edited, in design names.
    pub description: String,
    /// Detectors that fired (differentially), canonical order.
    pub fired: Vec<Detector>,
    /// everify+timing compute for this mutant's verification.
    pub verify_cpu: f64,
    /// Cache hits while verifying this mutant.
    pub cache_hits: usize,
    /// Cache misses while verifying this mutant.
    pub cache_misses: usize,
}

impl MutantRecord {
    /// Whether anything fired.
    pub fn detected(&self) -> bool {
        !self.fired.is_empty()
    }
}

/// One operator row of the detection matrix.
#[derive(Debug, Clone)]
pub struct OpSummary {
    /// The operator.
    pub op: MutationOp,
    /// Sites the enumerator found.
    pub sites_found: usize,
    /// Mutants actually run (after the per-op cap).
    pub mutants_run: usize,
    /// Mutants at least one detector caught.
    pub detected: usize,
    /// Per-detector catch counts (canonical order, zero rows kept so the
    /// matrix shape is identical across designs).
    pub by_detector: Vec<(Detector, usize)>,
    /// Descriptions of the mutants nothing caught.
    pub escapes: Vec<String>,
}

/// One sensitivity curve: the smallest magnitude at which each detector
/// first fires, walking the ladder mild → severe at a fixed site.
#[derive(Debug, Clone)]
pub struct SensitivityCurve {
    /// The prototype operator.
    pub op: MutationOp,
    /// The site swept (description).
    pub site: String,
    /// The ladder walked.
    pub ladder: Vec<f64>,
    /// First-detection magnitude per detector that ever fired.
    pub thresholds: Vec<(Detector, f64)>,
}

/// The complete campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Design name.
    pub design: String,
    /// Devices in the baseline design.
    pub devices: usize,
    /// The baseline observation all verdicts are differential against.
    pub baseline: FlowObservation,
    /// One row per operator.
    pub rows: Vec<OpSummary>,
    /// Every mutant, in run order.
    pub mutants: Vec<MutantRecord>,
    /// Sensitivity curves, one per configured sweep.
    pub sensitivity: Vec<SensitivityCurve>,
}

impl CampaignReport {
    /// Total mutants run.
    pub fn total_mutants(&self) -> usize {
        self.mutants.len()
    }

    /// Total escapes.
    pub fn total_escapes(&self) -> usize {
        self.rows.iter().map(|r| r.escapes.len()).sum()
    }

    /// Mean everify+timing compute per mutant, seconds.
    pub fn mean_mutant_verify_cpu(&self) -> f64 {
        Self::mean_cpu(self.mutants.iter())
    }

    /// Mean everify+timing compute over the *parametric* mutants only
    /// (width/length/beta/keeper sizing). These are the true one-CCC
    /// ECOs; the structural operators (polarity, bridge, open, clock)
    /// move recognition roles across the design and legitimately dirty
    /// wide cache closures, so their cost is closer to a cold run.
    pub fn mean_parametric_verify_cpu(&self) -> f64 {
        Self::mean_cpu(self.mutants.iter().filter(|m| m.op.magnitude().is_some()))
    }

    /// Mean everify+timing compute over the structural mutants.
    pub fn mean_structural_verify_cpu(&self) -> f64 {
        Self::mean_cpu(self.mutants.iter().filter(|m| m.op.magnitude().is_none()))
    }

    fn mean_cpu<'a>(mutants: impl Iterator<Item = &'a MutantRecord>) -> f64 {
        let (sum, n) = mutants.fold((0.0, 0usize), |(s, n), m| (s + m.verify_cpu, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Cold-baseline verify compute ÷ mean per-mutant verify compute —
    /// what the ECO treatment of mutants buys (the baseline run fills
    /// the cache from empty, so its cost is the cold reference).
    pub fn verify_speedup(&self) -> f64 {
        Self::ratio(self.baseline.verify_cpu, self.mean_mutant_verify_cpu())
    }

    /// [`verify_speedup`](Self::verify_speedup) restricted to the
    /// parametric (sizing) mutants — the per-mutant ECO economics.
    pub fn parametric_speedup(&self) -> f64 {
        Self::ratio(self.baseline.verify_cpu, self.mean_parametric_verify_cpu())
    }

    /// 0.0 instead of inf/NaN when a class is empty, so the JSON stays
    /// parseable.
    fn ratio(num: f64, den: f64) -> f64 {
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// Geometric mean over the parametric mutants of each mutant's own
    /// `baseline / verify_cpu` ratio — the same metric E14 reports for
    /// its ECO walk, and the right average for per-mutant speedups (the
    /// arithmetic mean of costs is dominated by the few extreme
    /// magnitudes that flip recognition roles and widen the dirty
    /// closure). Mutants with an unmeasurably small cost are skipped.
    pub fn geomean_parametric_speedup(&self) -> f64 {
        let (log_sum, n) = self
            .mutants
            .iter()
            .filter(|m| m.op.magnitude().is_some() && m.verify_cpu > 0.0)
            .fold((0.0, 0usize), |(s, n), m| {
                (s + (self.baseline.verify_cpu / m.verify_cpu).ln(), n + 1)
            });
        if n == 0 {
            0.0
        } else {
            (log_sum / n as f64).exp()
        }
    }

    /// Mean number of re-verified (cache-missed) units per mutant in a
    /// class: `parametric` selects the sizing ops, `!parametric` the
    /// structural ones. The owning CCC, its one-step fanout closure,
    /// and the always-dirty residue unit miss; everything else replays.
    pub fn mean_dirty_units(&self, parametric: bool) -> f64 {
        let (sum, n) = self
            .mutants
            .iter()
            .filter(|m| m.op.magnitude().is_some() == parametric)
            .fold((0usize, 0usize), |(s, n), m| (s + m.cache_misses, n + 1));
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Aggregate cache hit fraction across all mutant verifications.
    pub fn cache_hit_fraction(&self) -> f64 {
        let hits: usize = self.mutants.iter().map(|m| m.cache_hits).sum();
        let misses: usize = self.mutants.iter().map(|m| m.cache_misses).sum();
        if hits + misses == 0 {
            return 0.0;
        }
        hits as f64 / (hits + misses) as f64
    }
}

/// Uniform-stride sample of `v` down to `cap` elements (0 = keep all),
/// preserving order — coverage stays spread across the enumeration.
/// Shared with the functional screen so both samplers pick identical
/// site subsets for a given cap.
pub(crate) fn take_spread<T: Copy>(v: &[T], cap: usize) -> Vec<T> {
    if cap == 0 || v.len() <= cap {
        return v.to_vec();
    }
    (0..cap).map(|i| v[i * v.len() / cap]).collect()
}

/// Runs the campaign: enumerate each operator's sites on the recognized
/// baseline, apply each mutant to a pristine clone, and ask the oracle
/// which detectors moved. The first oracle call verifies the baseline
/// itself — for a caching oracle that primes the cache, making every
/// mutant an ECO on top of it.
pub fn run_campaign(
    baseline: &FlatNetlist,
    oracle: &mut dyn FlowOracle,
    config: &CampaignConfig,
) -> CampaignReport {
    // Recognition runs on a clone (it promotes net kinds in place); ids
    // are stable, so sites enumerated here apply to pristine clones.
    let mut recognized = baseline.clone();
    let recognition = cbv_recognize::recognize(&mut recognized);

    let base_obs = oracle.verify(baseline);

    let mut rows = Vec::with_capacity(config.ops.len());
    let mut mutants = Vec::new();
    for (op_index, op) in config.ops.iter().enumerate() {
        let found = sites(op, &recognized, &recognition);
        let run: Vec<Site> = take_spread(&found, config.max_sites_per_op);
        let mut detected = 0usize;
        let mut by_detector: Vec<(Detector, usize)> =
            all_detectors().into_iter().map(|d| (d, 0)).collect();
        let mut escapes = Vec::new();
        let mut mutants_run = 0usize;
        for &site in &run {
            let mut nl = baseline.clone();
            let Some(m) = apply(&mut nl, op, site) else {
                continue;
            };
            mutants_run += 1;
            let obs = oracle.verify(&nl);
            let fired = obs.fired_against(&base_obs);
            if fired.is_empty() {
                escapes.push(m.description.clone());
            } else {
                detected += 1;
                for f in &fired {
                    let slot = by_detector
                        .iter_mut()
                        .find(|(d, _)| d == f)
                        .expect("canonical detector");
                    slot.1 += 1;
                }
            }
            mutants.push(MutantRecord {
                op_index,
                op: *op,
                description: m.description,
                fired,
                verify_cpu: obs.verify_cpu,
                cache_hits: obs.cache_hits,
                cache_misses: obs.cache_misses,
            });
        }
        rows.push(OpSummary {
            op: *op,
            sites_found: found.len(),
            mutants_run,
            detected,
            by_detector,
            escapes,
        });
    }

    // Sensitivity sweeps: walk each ladder at the operator's first site.
    let mut sensitivity = Vec::new();
    for (proto, ladder) in &config.sensitivity {
        let found = sites(proto, &recognized, &recognition);
        let Some(&site) = found.first() else {
            continue;
        };
        let mut thresholds: Vec<(Detector, f64)> = Vec::new();
        for &eps in ladder {
            let op = proto.with_magnitude(eps);
            let mut nl = baseline.clone();
            let Some(_m) = apply(&mut nl, &op, site) else {
                continue;
            };
            let obs = oracle.verify(&nl);
            for d in obs.fired_against(&base_obs) {
                if !thresholds.iter().any(|(t, _)| *t == d) {
                    thresholds.push((d, eps));
                }
            }
        }
        thresholds.sort_by_key(|&(d, _)| d);
        sensitivity.push(SensitivityCurve {
            op: *proto,
            site: site.describe(baseline),
            ladder: ladder.clone(),
            thresholds,
        });
    }

    CampaignReport {
        design: baseline.name().to_owned(),
        devices: baseline.devices().len(),
        baseline: base_obs,
        rows,
        mutants,
        sensitivity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake oracle: "detects" any netlist whose total width differs
    /// from the baseline's by flagging beta-ratio, and any device-count
    /// change by flagging timing.
    struct FakeOracle {
        base_width: f64,
        base_devices: usize,
    }

    impl FlowOracle for FakeOracle {
        fn verify(&mut self, netlist: &FlatNetlist) -> FlowObservation {
            let width: f64 = netlist.devices().iter().map(|d| d.w).sum();
            let mut check_violations = vec![0usize; CheckKind::ALL.len()];
            let mut check_max_stress = vec![0.0; CheckKind::ALL.len()];
            if (width - self.base_width).abs() > 1e-12 {
                check_violations[0] = 1; // beta-ratio
                check_max_stress[0] = 2.0;
            }
            FlowObservation {
                check_violations,
                check_max_stress,
                timing_violations: usize::from(netlist.devices().len() != self.base_devices),
                verify_cpu: 0.25,
                cache_hits: 3,
                cache_misses: 1,
            }
        }
    }

    #[test]
    fn differential_detection_and_matrix_shape() {
        let p = cbv_tech::Process::strongarm_035();
        let base = cbv_gen::latches::keeper_domino(&p, 1e-6).netlist;
        let width: f64 = base.devices().iter().map(|d| d.w).sum();
        let mut oracle = FakeOracle {
            base_width: width,
            base_devices: base.devices().len(),
        };
        let config = CampaignConfig {
            ops: vec![
                MutationOp::WidthScale { factor: 2.0 },
                MutationOp::PolaritySwap, // width unchanged: escapes
                MutationOp::NetBridge,    // device added: timing fires
            ],
            max_sites_per_op: 2,
            sensitivity: vec![(MutationOp::WidthScale { factor: 1.0 }, vec![1.5, 3.0])],
        };
        let report = run_campaign(&base, &mut oracle, &config);
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows[0].detected, report.rows[0].mutants_run);
        assert_eq!(
            report.rows[1].detected, 0,
            "polarity swap leaves width unchanged: the fake oracle misses it"
        );
        assert_eq!(report.rows[1].escapes.len(), report.rows[1].mutants_run);
        assert!(report.rows[2].detected > 0, "bridge adds a device");
        let timing_hits = report.rows[2]
            .by_detector
            .iter()
            .find(|(d, _)| *d == Detector::Timing)
            .unwrap()
            .1;
        assert_eq!(timing_hits, report.rows[2].detected);
        // Every row carries the full canonical detector axis.
        for row in &report.rows {
            assert_eq!(row.by_detector.len(), CheckKind::ALL.len() + 1);
        }
        // Sensitivity: width change fires at the mildest rung.
        assert_eq!(report.sensitivity.len(), 1);
        let th = &report.sensitivity[0].thresholds;
        assert_eq!(th.len(), 1);
        assert_eq!(th[0], (Detector::Check(CheckKind::BetaRatio), 1.5));
        assert!(report.total_mutants() >= 5);
        assert!(report.verify_speedup() > 0.0);
        assert!((report.cache_hit_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn take_spread_samples_uniformly_and_keeps_small_inputs() {
        let v: Vec<usize> = (0..10).collect();
        assert_eq!(take_spread(&v, 0), v);
        assert_eq!(take_spread(&v, 20), v);
        let s = take_spread(&v, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s, vec![0, 3, 6]);
    }

    #[test]
    fn observation_counts_map_detectors() {
        let mut obs = FlowObservation {
            check_violations: vec![0; CheckKind::ALL.len()],
            check_max_stress: vec![0.0; CheckKind::ALL.len()],
            timing_violations: 2,
            verify_cpu: 0.0,
            cache_hits: 0,
            cache_misses: 0,
        };
        obs.check_violations[3] = 7; // charge-share
        obs.check_max_stress[3] = 1.2;
        assert_eq!(obs.count(Detector::Check(CheckKind::ChargeShare)), 7);
        assert_eq!(obs.count(Detector::Timing), 2);
        let base = FlowObservation {
            check_violations: vec![0; CheckKind::ALL.len()],
            check_max_stress: vec![0.0; CheckKind::ALL.len()],
            timing_violations: 2,
            verify_cpu: 0.0,
            cache_hits: 0,
            cache_misses: 0,
        };
        assert_eq!(
            obs.fired_against(&base),
            vec![Detector::Check(CheckKind::ChargeShare)],
            "equal timing counts must not fire"
        );
    }

    #[test]
    fn stress_escalation_fires_when_counts_are_flat() {
        // Both runs have one writability violation — a count-only
        // detector is blind. The mutant's stress exploded 47×, which
        // must register as detection.
        let idx = FlowObservation::check_index(CheckKind::Writability);
        let mut base = FlowObservation {
            check_violations: vec![0; CheckKind::ALL.len()],
            check_max_stress: vec![0.0; CheckKind::ALL.len()],
            timing_violations: 0,
            verify_cpu: 0.0,
            cache_hits: 0,
            cache_misses: 0,
        };
        base.check_violations[idx] = 1;
        base.check_max_stress[idx] = 1.9;
        let mut hot = base.clone();
        hot.check_max_stress[idx] = 90.0;
        assert_eq!(
            hot.fired_against(&base),
            vec![Detector::Check(CheckKind::Writability)]
        );
        // A sub-threshold wiggle (< STRESS_ESCALATION×) stays silent.
        let mut warm = base.clone();
        warm.check_max_stress[idx] = 1.9 * (STRESS_ESCALATION - 0.1);
        assert!(warm.fired_against(&base).is_empty());
    }
}

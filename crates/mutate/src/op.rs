//! The mutation-operator taxonomy: parametric, site-enumerable edits.
//!
//! Every operator is a *single-site* edit with an explicit magnitude
//! knob where one applies, a deterministic site enumerator ([`sites`]),
//! an applier that records an undo ([`apply`]), and an exact inverse
//! ([`Mutation::revert`]). The legacy `cbv_gen::inject::FaultKind`
//! classes are all expressible as one of these operators at a specific
//! magnitude and site — the generalization E16 measures exhaustively.

use std::fmt;

use cbv_netlist::{Device, DeviceId, FlatNetlist, NetId, NetKind, Term};
use cbv_recognize::{Recognition, StateKind};
use cbv_tech::MosKind;

/// One parametric mutation operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MutationOp {
    /// Scale a device's drawn width by `factor` (over- or under-size).
    WidthScale {
        /// Multiplier on `w`; > 1 widens, < 1 weakens.
        factor: f64,
    },
    /// Scale a device's drawn length by `factor` (sub-min length, or a
    /// slow over-length device).
    LengthScale {
        /// Multiplier on `l`; < 1 shortens toward/below process minimum.
        factor: f64,
    },
    /// Skew a complementary stage's beta ratio by widening one pull-up.
    BetaSkew {
        /// Multiplier on the victim PMOS width.
        factor: f64,
    },
    /// Resize a keeper against its write path (the "monster keeper").
    KeeperResize {
        /// Multiplier on the keeper's width.
        w_factor: f64,
        /// Multiplier on the keeper's length.
        l_factor: f64,
    },
    /// Delete a keeper: detach it so its dynamic node floats unrestored.
    KeeperDelete,
    /// Swap a device's polarity (NMOS ↔ PMOS) — a functional bug.
    PolaritySwap,
    /// Bridge two component outputs with an always-on transistor.
    NetBridge,
    /// Open one terminal: rewire it onto a fresh floating net.
    NetOpen,
    /// Delete a precharge device: its dynamic node is never restored.
    PrechargeDrop,
    /// Move a clocked gate onto a different clock phase.
    ClockPhaseSwap,
}

impl MutationOp {
    /// Every operator at its default (legacy-injector-equivalent)
    /// magnitude, in canonical order.
    pub const COUNT: usize = 10;

    /// Short kebab-case operator name (stable across magnitudes).
    pub fn name(&self) -> &'static str {
        match self {
            MutationOp::WidthScale { .. } => "width-scale",
            MutationOp::LengthScale { .. } => "length-scale",
            MutationOp::BetaSkew { .. } => "beta-skew",
            MutationOp::KeeperResize { .. } => "keeper-resize",
            MutationOp::KeeperDelete => "keeper-delete",
            MutationOp::PolaritySwap => "polarity-swap",
            MutationOp::NetBridge => "net-bridge",
            MutationOp::NetOpen => "net-open",
            MutationOp::PrechargeDrop => "precharge-drop",
            MutationOp::ClockPhaseSwap => "clock-phase-swap",
        }
    }

    /// The magnitude knob (ε), for parametric operators.
    pub fn magnitude(&self) -> Option<f64> {
        match self {
            MutationOp::WidthScale { factor }
            | MutationOp::LengthScale { factor }
            | MutationOp::BetaSkew { factor } => Some(*factor),
            MutationOp::KeeperResize { w_factor, .. } => Some(*w_factor),
            _ => None,
        }
    }

    /// The same operator at magnitude `eps` — the knob a sensitivity
    /// sweep turns. Structural operators (no knob) are returned as-is.
    pub fn with_magnitude(&self, eps: f64) -> MutationOp {
        match self {
            MutationOp::WidthScale { .. } => MutationOp::WidthScale { factor: eps },
            MutationOp::LengthScale { .. } => MutationOp::LengthScale { factor: eps },
            MutationOp::BetaSkew { .. } => MutationOp::BetaSkew { factor: eps },
            MutationOp::KeeperResize { l_factor, .. } => MutationOp::KeeperResize {
                w_factor: eps,
                l_factor: *l_factor,
            },
            other => *other,
        }
    }
}

impl fmt::Display for MutationOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.magnitude() {
            Some(m) => write!(f, "{}(x{:.3})", self.name(), m),
            None => f.write_str(self.name()),
        }
    }
}

/// One concrete place an operator applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// A device (geometry / polarity / detach operators).
    Device(DeviceId),
    /// One terminal of a device, rewired to the given existing net.
    Rewire(DeviceId, Term, NetId),
    /// Two nets, shorted by an appended always-on device.
    Bridge(NetId, NetId),
    /// One terminal of a device, opened onto a fresh floating net.
    Open(DeviceId, Term),
}

impl Site {
    /// Human-readable site description using design names.
    pub fn describe(&self, netlist: &FlatNetlist) -> String {
        match *self {
            Site::Device(d) => format!("device `{}`", netlist.device(d).name),
            Site::Rewire(d, term, net) => format!(
                "{:?} of `{}` -> `{}`",
                term,
                netlist.device(d).name,
                netlist.net_name(net)
            ),
            Site::Bridge(a, b) => {
                format!("nets `{}` + `{}`", netlist.net_name(a), netlist.net_name(b))
            }
            Site::Open(d, term) => format!("{:?} of `{}` opened", term, netlist.device(d).name),
        }
    }
}

/// NMOS devices whose channel lies entirely between non-rail nets — the
/// internal stack positions where widening provokes charge sharing.
/// (The legacy `ChargeShare` injector widens all of these at once.)
pub fn stack_internal_nmos(netlist: &FlatNetlist) -> Vec<DeviceId> {
    netlist
        .device_ids()
        .filter(|&id| {
            let d = netlist.device(id);
            d.kind == MosKind::Nmos
                && !netlist.net_kind(d.source).is_rail()
                && !netlist.net_kind(d.drain).is_rail()
        })
        .collect()
}

/// Devices acting as keepers: a channel from a rail onto a storage net
/// of a recognized [`StateKind::Keeper`] element, gated not by a clock
/// but by a net fed back from that storage net's fan-out (the keeper's
/// half-latch loop).
fn keeper_devices(netlist: &FlatNetlist, recognition: &Recognition) -> Vec<DeviceId> {
    let mut found = Vec::new();
    for se in &recognition.state_elements {
        if se.kind != StateKind::Keeper {
            continue;
        }
        for &storage in &se.storage_nets {
            for &dev in &netlist.channel_devices(storage) {
                let d = netlist.device(dev);
                let other = d.other_channel_end(storage);
                if !netlist.net_kind(other).is_rail() {
                    continue;
                }
                if recognition.clock_nets.contains(&d.gate) {
                    continue; // that's a precharge, not a keeper
                }
                // Feedback test: the gate net is produced by a component
                // that reads the storage net.
                let feedback = recognition
                    .cccs
                    .iter()
                    .any(|c| c.outputs.contains(&d.gate) && c.inputs.contains(&storage));
                if feedback && !found.contains(&dev) {
                    found.push(dev);
                }
            }
        }
    }
    found.sort_unstable();
    found
}

/// Precharge devices: a PMOS gated by a clock whose channel restores a
/// recognized dynamic node from the power rail.
fn precharge_devices(netlist: &FlatNetlist, recognition: &Recognition) -> Vec<DeviceId> {
    netlist
        .device_ids()
        .filter(|&id| {
            let d = netlist.device(id);
            if d.kind != MosKind::Pmos || !recognition.clock_nets.contains(&d.gate) {
                return false;
            }
            let (s, dr) = d.channel();
            let dynamic = |n: NetId| {
                recognition.is_dynamic(n) || recognition.role(n) == cbv_recognize::NetRole::State
            };
            (netlist.net_kind(s) == NetKind::Power && dynamic(dr))
                || (netlist.net_kind(dr) == NetKind::Power && dynamic(s))
        })
        .collect()
}

/// Enumerates every site `op` applies to, deterministically (ascending
/// device/net id, one pass). The recognition must describe `netlist`.
pub fn sites(op: &MutationOp, netlist: &FlatNetlist, recognition: &Recognition) -> Vec<Site> {
    match op {
        MutationOp::WidthScale { .. }
        | MutationOp::LengthScale { .. }
        | MutationOp::PolaritySwap => netlist.device_ids().map(Site::Device).collect(),
        MutationOp::BetaSkew { .. } => netlist
            .device_ids()
            .filter(|&d| netlist.device(d).kind == MosKind::Pmos)
            .map(Site::Device)
            .collect(),
        MutationOp::KeeperResize { .. } | MutationOp::KeeperDelete => {
            keeper_devices(netlist, recognition)
                .into_iter()
                .map(Site::Device)
                .collect()
        }
        MutationOp::PrechargeDrop => precharge_devices(netlist, recognition)
            .into_iter()
            .map(Site::Device)
            .collect(),
        MutationOp::NetBridge => {
            // Short the first output of each adjacent component pair:
            // every bridge spans two distinct gate cones.
            let outs: Vec<NetId> = recognition
                .cccs
                .iter()
                .filter_map(|c| c.outputs.first().copied())
                .collect();
            outs.windows(2)
                .filter(|w| w[0] != w[1])
                .map(|w| Site::Bridge(w[0], w[1]))
                .collect()
        }
        MutationOp::NetOpen => netlist
            .device_ids()
            .map(|d| Site::Open(d, Term::Gate))
            .collect(),
        MutationOp::ClockPhaseSwap => {
            let clocks = &recognition.clock_nets;
            if clocks.len() < 2 {
                return Vec::new();
            }
            netlist
                .device_ids()
                .filter_map(|id| {
                    let gate = netlist.device(id).gate;
                    let pos = clocks.iter().position(|&c| c == gate)?;
                    let target = clocks[(pos + 1) % clocks.len()];
                    (target != gate).then_some(Site::Rewire(id, Term::Gate, target))
                })
                .collect()
        }
    }
}

/// The undo record of one applied mutation.
#[derive(Debug, Clone)]
enum Undo {
    /// Restore a device's geometry/polarity.
    Geometry {
        device: DeviceId,
        w: f64,
        l: f64,
        kind: MosKind,
    },
    /// Re-attach a detached (deleted) device's signal terminals.
    Detach {
        device: DeviceId,
        gate: NetId,
        source: NetId,
        drain: NetId,
    },
    /// Rewire one terminal back.
    Rewire {
        device: DeviceId,
        term: Term,
        old: NetId,
    },
    /// Rewire the opened terminal back, then drop the scratch net.
    Open {
        device: DeviceId,
        term: Term,
        old: NetId,
    },
    /// Pop the appended bridge device.
    Bridge,
}

/// One applied mutation, holding everything needed to undo it exactly.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// The operator applied.
    pub op: MutationOp,
    /// Where.
    pub site: Site,
    /// Human-readable description of the edit.
    pub description: String,
    undo: Undo,
}

impl Mutation {
    /// Un-applies the mutation, restoring the netlist to its exact
    /// pre-mutation content (fingerprint-identical; see the property
    /// tests).
    pub fn revert(self, netlist: &mut FlatNetlist) {
        match self.undo {
            Undo::Geometry { device, w, l, kind } => {
                let d = netlist.device_mut(device);
                d.w = w;
                d.l = l;
                d.kind = kind;
            }
            Undo::Detach {
                device,
                gate,
                source,
                drain,
            } => {
                netlist.rewire(device, Term::Gate, gate);
                netlist.rewire(device, Term::Source, source);
                netlist.rewire(device, Term::Drain, drain);
            }
            Undo::Rewire { device, term, old } => {
                netlist.rewire(device, term, old);
            }
            Undo::Open { device, term, old } => {
                netlist.rewire(device, term, old);
                let name = netlist.pop_net();
                debug_assert!(name.starts_with("mutopen"), "unexpected scratch net {name}");
            }
            Undo::Bridge => {
                let d = netlist.pop_device();
                debug_assert_eq!(d.name, "mutbridge");
            }
        }
    }
}

/// Detaches a device in place: every signal terminal is rewired onto the
/// bulk rail, leaving the device electrically inert without disturbing
/// any id (deletion by detachment keeps cached bindings of *other* units
/// valid — the whole point of running mutants as ECOs).
fn detach(netlist: &mut FlatNetlist, id: DeviceId) -> Undo {
    let d = netlist.device(id);
    let (gate, source, drain, bulk) = (d.gate, d.source, d.drain, d.bulk);
    netlist.rewire(id, Term::Gate, bulk);
    netlist.rewire(id, Term::Source, bulk);
    netlist.rewire(id, Term::Drain, bulk);
    Undo::Detach {
        device: id,
        gate,
        source,
        drain,
    }
}

/// Applies `op` at `site`. Returns `None` when the pairing is invalid
/// (wrong site shape for the operator, or no rail available for a
/// bridge); otherwise the netlist is mutated and the undo record
/// returned.
pub fn apply(netlist: &mut FlatNetlist, op: &MutationOp, site: Site) -> Option<Mutation> {
    let mutation = |description: String, undo: Undo| Mutation {
        op: *op,
        site,
        description,
        undo,
    };
    match (*op, site) {
        (MutationOp::WidthScale { factor }, Site::Device(id)) => {
            let geom = geometry_undo(netlist, id);
            let d = netlist.device_mut(id);
            d.w *= factor;
            Some(mutation(
                format!("width of `{}` x{factor:.3}", d.name),
                geom,
            ))
        }
        (MutationOp::LengthScale { factor }, Site::Device(id)) => {
            let geom = geometry_undo(netlist, id);
            let d = netlist.device_mut(id);
            d.l *= factor;
            Some(mutation(
                format!("length of `{}` x{factor:.3}", d.name),
                geom,
            ))
        }
        (MutationOp::BetaSkew { factor }, Site::Device(id)) => {
            let geom = geometry_undo(netlist, id);
            let d = netlist.device_mut(id);
            d.w *= factor;
            Some(mutation(
                format!("beta skew: pull-up `{}` x{factor:.3}", d.name),
                geom,
            ))
        }
        (MutationOp::KeeperResize { w_factor, l_factor }, Site::Device(id)) => {
            let geom = geometry_undo(netlist, id);
            let d = netlist.device_mut(id);
            d.w *= w_factor;
            d.l *= l_factor;
            Some(mutation(
                format!("keeper `{}` x{w_factor:.3} wide", d.name),
                geom,
            ))
        }
        (MutationOp::PolaritySwap, Site::Device(id)) => {
            let geom = geometry_undo(netlist, id);
            let d = netlist.device_mut(id);
            d.kind = match d.kind {
                MosKind::Nmos => MosKind::Pmos,
                MosKind::Pmos => MosKind::Nmos,
            };
            Some(mutation(format!("polarity of `{}` swapped", d.name), geom))
        }
        (MutationOp::KeeperDelete, Site::Device(id)) => {
            let undo = detach(netlist, id);
            Some(mutation(
                format!("keeper `{}` deleted", netlist.device(id).name),
                undo,
            ))
        }
        (MutationOp::PrechargeDrop, Site::Device(id)) => {
            let undo = detach(netlist, id);
            Some(mutation(
                format!("precharge `{}` dropped", netlist.device(id).name),
                undo,
            ))
        }
        (MutationOp::NetBridge, Site::Bridge(a, b)) => {
            if a == b {
                return None;
            }
            let vdd = netlist
                .net_ids()
                .find(|&n| netlist.net_kind(n) == NetKind::Power)?;
            let gnd = netlist
                .net_ids()
                .find(|&n| netlist.net_kind(n) == NetKind::Ground)?;
            let desc = format!(
                "bridge `{}` <-> `{}`",
                netlist.net_name(a),
                netlist.net_name(b)
            );
            netlist.add_device(Device::mos(
                MosKind::Nmos,
                "mutbridge",
                vdd, // gate tied high: always conducting
                a,
                b,
                gnd,
                2e-6,
                0.35e-6,
            ));
            Some(mutation(desc, Undo::Bridge))
        }
        (MutationOp::NetOpen, Site::Open(id, term)) => {
            let scratch = netlist.add_net("mutopen", NetKind::Signal);
            let old = netlist.rewire(id, term, scratch);
            Some(mutation(
                format!("{:?} of `{}` opened", term, netlist.device(id).name),
                Undo::Open {
                    device: id,
                    term,
                    old,
                },
            ))
        }
        (MutationOp::ClockPhaseSwap, Site::Rewire(id, term, target)) => {
            if netlist.device(id).gate == target {
                return None;
            }
            let old = netlist.rewire(id, term, target);
            Some(mutation(
                format!(
                    "clock of `{}` -> `{}`",
                    netlist.device(id).name,
                    netlist.net_name(target)
                ),
                Undo::Rewire {
                    device: id,
                    term,
                    old,
                },
            ))
        }
        _ => None,
    }
}

fn geometry_undo(netlist: &FlatNetlist, id: DeviceId) -> Undo {
    let d = netlist.device(id);
    Undo::Geometry {
        device: id,
        w: d.w,
        l: d.l,
        kind: d.kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_gen::latches::keeper_domino;
    use cbv_recognize::recognize;
    use cbv_tech::Process;

    fn recognized_domino() -> (FlatNetlist, Recognition) {
        let p = Process::strongarm_035();
        let mut nl = keeper_domino(&p, 1e-6).netlist;
        let rec = recognize(&mut nl);
        (nl, rec)
    }

    #[test]
    fn keeper_and_precharge_enumerators_find_the_named_devices() {
        let (nl, rec) = recognized_domino();
        let keepers = keeper_devices(&nl, &rec);
        assert!(!keepers.is_empty(), "domino cell has a keeper");
        for &k in &keepers {
            assert!(
                nl.device(k).name.contains("keep"),
                "topological keeper is the named keeper, got `{}`",
                nl.device(k).name
            );
        }
        let pres = precharge_devices(&nl, &rec);
        assert!(!pres.is_empty(), "domino cell has a precharge");
        for &pd in &pres {
            assert!(
                nl.device(pd).name.contains("pre"),
                "topological precharge is the named precharge, got `{}`",
                nl.device(pd).name
            );
        }
    }

    #[test]
    fn every_op_enumerates_and_round_trips_on_the_domino_cell() {
        let (base, rec) = recognized_domino();
        for op in crate::campaign::default_ops() {
            let ss = sites(&op, &base, &rec);
            if matches!(op, MutationOp::ClockPhaseSwap) && rec.clock_nets.len() < 2 {
                assert!(ss.is_empty());
                continue;
            }
            assert!(!ss.is_empty(), "{op} found no site");
            let mut nl = base.clone();
            let m = apply(&mut nl, &op, ss[0]).expect("applies");
            assert!(!m.description.is_empty());
            m.revert(&mut nl);
            // Exact structural restoration: device fields and net tables.
            assert_eq!(nl.devices(), base.devices(), "{op} revert restores devices");
            assert_eq!(nl.net_count(), base.net_count());
            for n in nl.net_ids() {
                assert_eq!(nl.net_name(n), base.net_name(n));
                assert_eq!(nl.net_kind(n), base.net_kind(n));
            }
        }
    }

    #[test]
    fn bridge_appends_and_revert_pops() {
        let (base, rec) = recognized_domino();
        let ss = sites(&MutationOp::NetBridge, &base, &rec);
        assert!(!ss.is_empty());
        let mut nl = base.clone();
        let m = apply(&mut nl, &MutationOp::NetBridge, ss[0]).expect("applies");
        assert_eq!(nl.devices().len(), base.devices().len() + 1);
        let Site::Bridge(a, b) = ss[0] else {
            panic!("bridge site")
        };
        // The bridge genuinely conducts between the two nets.
        let bridged = nl.channel_devices(a);
        assert!(bridged
            .iter()
            .any(|&d| nl.device(d).name == "mutbridge" && nl.device(d).channel_touches(b)));
        m.revert(&mut nl);
        assert_eq!(nl.devices().len(), base.devices().len());
    }

    #[test]
    fn open_creates_then_removes_the_scratch_net() {
        let (base, rec) = recognized_domino();
        let ss = sites(&MutationOp::NetOpen, &base, &rec);
        let mut nl = base.clone();
        let m = apply(&mut nl, &MutationOp::NetOpen, ss[0]).expect("applies");
        assert_eq!(nl.net_count(), base.net_count() + 1);
        let Site::Open(d, Term::Gate) = ss[0] else {
            panic!("open site")
        };
        assert_eq!(nl.net_name(nl.device(d).gate), "mutopen");
        m.revert(&mut nl);
        assert_eq!(nl.net_count(), base.net_count());
        assert_eq!(nl.device(d).gate, base.device(d).gate);
    }

    #[test]
    fn detach_makes_the_device_inert_but_keeps_ids() {
        let (base, rec) = recognized_domino();
        let ss = sites(&MutationOp::KeeperDelete, &base, &rec);
        let Site::Device(keeper) = ss[0] else {
            panic!("device site")
        };
        let mut nl = base.clone();
        let storage_uses_before = base
            .net_uses(base.device(keeper).drain)
            .iter()
            .filter(|u| u.device() == keeper)
            .count()
            + base
                .net_uses(base.device(keeper).source)
                .iter()
                .filter(|u| u.device() == keeper)
                .count();
        assert!(storage_uses_before > 0);
        let m = apply(&mut nl, &MutationOp::KeeperDelete, ss[0]).expect("applies");
        let d = nl.device(keeper);
        assert_eq!(d.gate, d.bulk);
        assert_eq!(d.source, d.bulk);
        assert_eq!(d.drain, d.bulk);
        assert_eq!(nl.devices().len(), base.devices().len(), "ids stable");
        m.revert(&mut nl);
        assert_eq!(nl.devices(), base.devices());
    }

    #[test]
    fn magnitude_knob_round_trips() {
        let op = MutationOp::WidthScale { factor: 12.0 };
        assert_eq!(op.magnitude(), Some(12.0));
        assert_eq!(
            op.with_magnitude(3.0),
            MutationOp::WidthScale { factor: 3.0 }
        );
        assert_eq!(MutationOp::KeeperDelete.magnitude(), None);
        assert_eq!(format!("{op}"), "width-scale(x12.000)");
        assert_eq!(format!("{}", MutationOp::KeeperDelete), "keeper-delete");
    }
}

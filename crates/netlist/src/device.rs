//! Circuit elements: MOS devices and passive parasitics.

use crate::NetId;
use cbv_tech::MosKind;

/// A MOS transistor instance with per-instance sizing — the paper's
/// fundamental building element ("Every transistor in the design can be
/// (and often is) individually sized, regardless of its functional
/// context").
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Instance name (unique within its cell by convention, not enforced).
    pub name: String,
    /// Polarity.
    pub kind: MosKind,
    /// Gate net.
    pub gate: NetId,
    /// Source net. For recognition purposes source/drain are symmetric;
    /// the names only record schematic orientation.
    pub source: NetId,
    /// Drain net.
    pub drain: NetId,
    /// Bulk/well net.
    pub bulk: NetId,
    /// Drawn width in meters.
    pub w: f64,
    /// Drawn length in meters. Individual devices may be drawn longer than
    /// process minimum — the §3 leakage fix.
    pub l: f64,
    /// Number of parallel fingers this device is drawn with. Electrically
    /// the total width is `w` regardless; fingers matter to layout and to
    /// the distributed-gate timing model of Fig 5.
    pub fingers: u32,
}

impl Device {
    /// Creates a MOS device. `w` and `l` are meters.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is not strictly positive.
    #[allow(clippy::too_many_arguments)]
    pub fn mos(
        kind: MosKind,
        name: impl Into<String>,
        gate: NetId,
        drain: NetId,
        source: NetId,
        bulk: NetId,
        w: f64,
        l: f64,
    ) -> Device {
        assert!(w > 0.0 && l > 0.0, "device geometry must be positive");
        Device {
            name: name.into(),
            kind,
            gate,
            source,
            drain,
            bulk,
            w,
            l,
            fingers: 1,
        }
    }

    /// Sets the finger count (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `fingers` is zero.
    pub fn with_fingers(mut self, fingers: u32) -> Device {
        assert!(fingers > 0, "finger count must be at least 1");
        self.fingers = fingers;
        self
    }

    /// The two channel terminals, in (source, drain) order.
    pub fn channel(&self) -> (NetId, NetId) {
        (self.source, self.drain)
    }

    /// Given one channel terminal, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `net` is neither channel terminal.
    pub fn other_channel_end(&self, net: NetId) -> NetId {
        if net == self.source {
            self.drain
        } else if net == self.drain {
            self.source
        } else {
            panic!("net {net:?} is not a channel terminal of {}", self.name)
        }
    }

    /// True if `net` touches the channel (source or drain).
    pub fn channel_touches(&self, net: NetId) -> bool {
        self.source == net || self.drain == net
    }

    /// Width-to-length ratio (drive strength proxy).
    pub fn aspect(&self) -> f64 {
        self.w / self.l
    }
}

/// Kind of a passive element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassiveKind {
    /// Resistor (ohms).
    Resistor,
    /// Capacitor (farads).
    Capacitor,
}

/// A two-terminal passive element — used for extracted parasitics and for
/// explicit design capacitors (e.g. boost capacitors in sense amps).
#[derive(Debug, Clone, PartialEq)]
pub struct Passive {
    /// Instance name.
    pub name: String,
    /// Resistor or capacitor.
    pub kind: PassiveKind,
    /// First terminal.
    pub a: NetId,
    /// Second terminal.
    pub b: NetId,
    /// Value in SI units (ohms or farads).
    pub value: f64,
}

impl Passive {
    /// Creates a resistor of `ohms` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is negative.
    pub fn resistor(name: impl Into<String>, a: NetId, b: NetId, ohms: f64) -> Passive {
        assert!(ohms >= 0.0, "resistance must be non-negative");
        Passive {
            name: name.into(),
            kind: PassiveKind::Resistor,
            a,
            b,
            value: ohms,
        }
    }

    /// Creates a capacitor of `farads` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is negative.
    pub fn capacitor(name: impl Into<String>, a: NetId, b: NetId, farads: f64) -> Passive {
        assert!(farads >= 0.0, "capacitance must be non-negative");
        Passive {
            name: name.into(),
            kind: PassiveKind::Capacitor,
            a,
            b,
            value: farads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_channel_end_round_trip() {
        let d = Device::mos(
            MosKind::Nmos,
            "m1",
            NetId(0),
            NetId(1),
            NetId(2),
            NetId(3),
            1e-6,
            0.35e-6,
        );
        assert_eq!(d.other_channel_end(NetId(1)), NetId(2));
        assert_eq!(d.other_channel_end(NetId(2)), NetId(1));
        assert!(d.channel_touches(NetId(1)));
        assert!(!d.channel_touches(NetId(0)));
    }

    #[test]
    #[should_panic(expected = "not a channel terminal")]
    fn other_channel_end_rejects_gate() {
        let d = Device::mos(
            MosKind::Nmos,
            "m1",
            NetId(0),
            NetId(1),
            NetId(2),
            NetId(3),
            1e-6,
            0.35e-6,
        );
        let _ = d.other_channel_end(NetId(0));
    }

    #[test]
    fn aspect_ratio() {
        let d = Device::mos(
            MosKind::Pmos,
            "m",
            NetId(0),
            NetId(1),
            NetId(2),
            NetId(3),
            7e-6,
            0.35e-6,
        );
        assert!((d.aspect() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn fingers_builder() {
        let d = Device::mos(
            MosKind::Nmos,
            "m",
            NetId(0),
            NetId(1),
            NetId(2),
            NetId(3),
            8e-6,
            0.35e-6,
        )
        .with_fingers(4);
        assert_eq!(d.fingers, 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_panics() {
        let _ = Device::mos(
            MosKind::Nmos,
            "m",
            NetId(0),
            NetId(1),
            NetId(2),
            NetId(3),
            1e-6,
            0.0,
        );
    }

    #[test]
    fn passive_constructors() {
        let r = Passive::resistor("r1", NetId(0), NetId(1), 100.0);
        assert_eq!(r.kind, PassiveKind::Resistor);
        let c = Passive::capacitor("c1", NetId(0), NetId(1), 1e-15);
        assert_eq!(c.kind, PassiveKind::Capacitor);
    }
}

//! Hierarchical cells and the cell library.
//!
//! Hierarchy here is *electrical*: a cell is any reusable cluster of
//! transistors the designer found convenient (the paper's "macro-box"
//! templates), not a mandated logic boundary. Flattening resolves the
//! whole tree to one transistor network for analysis.

use std::collections::HashMap;

use crate::device::{Device, Passive};
use crate::error::NetlistError;
use crate::flat::FlatNetlist;
use crate::{NetId, NetKind};

/// Index of a cell within a [`Library`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl CellId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An instance of another cell inside a parent cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instance name (hierarchical path component).
    pub name: String,
    /// The master cell being instantiated.
    pub master: CellId,
    /// Parent-cell nets bound to the master's ports, in the master's port
    /// declaration order.
    pub connections: Vec<NetId>,
}

/// One schematic cell: nets, devices, passives and subcell instances.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cell {
    name: String,
    net_names: Vec<String>,
    net_kinds: Vec<NetKind>,
    ports: Vec<NetId>,
    devices: Vec<Device>,
    passives: Vec<Passive>,
    instances: Vec<Instance>,
}

impl Cell {
    /// Creates an empty cell.
    pub fn new(name: impl Into<String>) -> Cell {
        Cell {
            name: name.into(),
            ..Cell::default()
        }
    }

    /// The cell's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a net and returns its id. Nets whose kind
    /// [`is_port`](NetKind::is_port) are appended to the port list in
    /// creation order.
    pub fn add_net(&mut self, name: impl Into<String>, kind: NetKind) -> NetId {
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(name.into());
        self.net_kinds.push(kind);
        if kind.is_port() {
            self.ports.push(id);
        }
        id
    }

    /// Adds a MOS device.
    pub fn add_device(&mut self, device: Device) {
        self.devices.push(device);
    }

    /// Adds a passive element.
    pub fn add_passive(&mut self, passive: Passive) {
        self.passives.push(passive);
    }

    /// Adds an instance of another cell.
    pub fn add_instance(&mut self, instance: Instance) {
        self.instances.push(instance);
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Name of a net.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.net_names[id.index()]
    }

    /// Kind of a net.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net_kind(&self, id: NetId) -> NetKind {
        self.net_kinds[id.index()]
    }

    /// Looks up a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names
            .iter()
            .position(|n| n == name)
            .map(|i| NetId(i as u32))
    }

    /// The ports in declaration order.
    pub fn ports(&self) -> &[NetId] {
        &self.ports
    }

    /// The devices of this cell (not of subcells).
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The passive elements of this cell.
    pub fn passives(&self) -> &[Passive] {
        &self.passives
    }

    /// The subcell instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Checks that all net references inside the cell are in range.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let n = self.net_names.len() as u32;
        let check = |id: NetId| -> Result<(), NetlistError> {
            if id.0 < n {
                Ok(())
            } else {
                Err(NetlistError::InvalidNet {
                    cell: self.name.clone(),
                    index: id.0,
                })
            }
        };
        for d in &self.devices {
            check(d.gate)?;
            check(d.source)?;
            check(d.drain)?;
            check(d.bulk)?;
        }
        for p in &self.passives {
            check(p.a)?;
            check(p.b)?;
        }
        for i in &self.instances {
            for &c in &i.connections {
                check(c)?;
            }
        }
        Ok(())
    }
}

/// A library of cells, the root container of a schematic design.
#[derive(Debug, Clone, Default)]
pub struct Library {
    cells: Vec<Cell>,
    by_name: HashMap<String, CellId>,
}

/// Maximum instantiation depth tolerated during flattening.
const MAX_DEPTH: usize = 64;

impl Library {
    /// Creates an empty library.
    pub fn new() -> Library {
        Library::default()
    }

    /// Adds a cell.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateCell`] if a cell with the same name
    /// exists, or [`NetlistError::InvalidNet`] if the cell fails
    /// [`Cell::validate`].
    pub fn add_cell(&mut self, cell: Cell) -> Result<CellId, NetlistError> {
        cell.validate()?;
        if self.by_name.contains_key(cell.name()) {
            return Err(NetlistError::DuplicateCell(cell.name().to_owned()));
        }
        let id = CellId(self.cells.len() as u32);
        self.by_name.insert(cell.name().to_owned(), id);
        self.cells.push(cell);
        Ok(id)
    }

    /// Looks up a cell by name.
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        self.by_name.get(name).copied()
    }

    /// Borrows a cell.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// All cells, in insertion order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Flattens `top` and everything below it into a single transistor
    /// network. Hierarchical names are joined with `/`. Rail nets (power /
    /// ground) of subcells are merged with the parent rails they connect
    /// to via ports; unconnected internal rails remain distinct nets but
    /// keep their rail kind.
    ///
    /// # Errors
    ///
    /// Returns an error on dangling cell references, port count mismatches
    /// or excessive depth (cyclic hierarchy).
    pub fn flatten(&self, top: CellId) -> Result<FlatNetlist, NetlistError> {
        let top_cell = self.cell(top);
        let mut flat = FlatNetlist::new(top_cell.name());
        // Map the top cell's nets straight through.
        let mut net_map = Vec::with_capacity(top_cell.net_count());
        for i in 0..top_cell.net_count() {
            let id = NetId(i as u32);
            net_map.push(flat.add_net(top_cell.net_name(id), top_cell.net_kind(id)));
        }
        self.flatten_into(top, "", &net_map, &mut flat, 0)?;
        Ok(flat)
    }

    fn flatten_into(
        &self,
        cell_id: CellId,
        prefix: &str,
        net_map: &[NetId],
        flat: &mut FlatNetlist,
        depth: usize,
    ) -> Result<(), NetlistError> {
        let cell = self.cell(cell_id);
        if depth > MAX_DEPTH {
            return Err(NetlistError::RecursionLimit(cell.name().to_owned()));
        }
        let qualify = |name: &str| -> String {
            if prefix.is_empty() {
                name.to_owned()
            } else {
                format!("{prefix}/{name}")
            }
        };
        for d in cell.devices() {
            let mut d2 = d.clone();
            d2.name = qualify(&d.name);
            d2.gate = net_map[d.gate.index()];
            d2.source = net_map[d.source.index()];
            d2.drain = net_map[d.drain.index()];
            d2.bulk = net_map[d.bulk.index()];
            flat.add_device(d2);
        }
        for p in cell.passives() {
            let mut p2 = p.clone();
            p2.name = qualify(&p.name);
            p2.a = net_map[p.a.index()];
            p2.b = net_map[p.b.index()];
            flat.add_passive(p2);
        }
        for inst in cell.instances() {
            let master = self
                .cells
                .get(inst.master.index())
                .ok_or_else(|| NetlistError::UnknownCell(format!("#{}", inst.master.0)))?;
            if master.ports().len() != inst.connections.len() {
                return Err(NetlistError::PortCountMismatch {
                    instance: qualify(&inst.name),
                    master: master.name().to_owned(),
                    expected: master.ports().len(),
                    actual: inst.connections.len(),
                });
            }
            // Build the child's net map: ports bind to parent nets,
            // internal nets become fresh flat nets.
            let mut child_map = vec![NetId(u32::MAX); master.net_count()];
            for (port, &conn) in master.ports().iter().zip(&inst.connections) {
                child_map[port.index()] = net_map[conn.index()];
            }
            let child_prefix = qualify(&inst.name);
            for (i, slot) in child_map.iter_mut().enumerate() {
                let id = NetId(i as u32);
                if slot.0 == u32::MAX {
                    let name = format!("{child_prefix}/{}", master.net_name(id));
                    *slot = flat.add_net(&name, master.net_kind(id));
                }
            }
            self.flatten_into(inst.master, &child_prefix, &child_map, flat, depth + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_tech::MosKind;

    fn inverter_cell() -> Cell {
        let mut inv = Cell::new("inv");
        let a = inv.add_net("a", NetKind::Input);
        let y = inv.add_net("y", NetKind::Output);
        let vdd = inv.add_net("vdd", NetKind::Inout);
        let gnd = inv.add_net("gnd", NetKind::Inout);
        inv.add_device(Device::mos(
            MosKind::Pmos,
            "mp",
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        inv.add_device(Device::mos(
            MosKind::Nmos,
            "mn",
            a,
            y,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        inv
    }

    #[test]
    fn two_level_flatten_merges_ports() {
        let mut lib = Library::new();
        let inv_id = lib.add_cell(inverter_cell()).unwrap();

        let mut buf = Cell::new("buf");
        let a = buf.add_net("a", NetKind::Input);
        let y = buf.add_net("y", NetKind::Output);
        let vdd = buf.add_net("vdd", NetKind::Power);
        let gnd = buf.add_net("gnd", NetKind::Ground);
        let mid = buf.add_net("mid", NetKind::Signal);
        buf.add_instance(Instance {
            name: "i0".into(),
            master: inv_id,
            connections: vec![a, mid, vdd, gnd],
        });
        buf.add_instance(Instance {
            name: "i1".into(),
            master: inv_id,
            connections: vec![mid, y, vdd, gnd],
        });
        let top = lib.add_cell(buf).unwrap();

        let flat = lib.flatten(top).unwrap();
        assert_eq!(flat.devices().len(), 4);
        // a, y, vdd, gnd, mid — no extra nets (inverter has no internals).
        assert_eq!(flat.net_count(), 5);
        assert!(flat.find_net("mid").is_some());
        let names: Vec<_> = flat.devices().iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"i0/mp"));
        assert!(names.contains(&"i1/mn"));
    }

    #[test]
    fn port_mismatch_is_reported() {
        let mut lib = Library::new();
        let inv_id = lib.add_cell(inverter_cell()).unwrap();
        let mut top = Cell::new("top");
        let a = top.add_net("a", NetKind::Input);
        top.add_instance(Instance {
            name: "i0".into(),
            master: inv_id,
            connections: vec![a],
        });
        let top_id = lib.add_cell(top).unwrap();
        let err = lib.flatten(top_id).unwrap_err();
        assert!(matches!(
            err,
            NetlistError::PortCountMismatch {
                expected: 4,
                actual: 1,
                ..
            }
        ));
    }

    #[test]
    fn duplicate_cell_rejected() {
        let mut lib = Library::new();
        lib.add_cell(Cell::new("x")).unwrap();
        assert!(matches!(
            lib.add_cell(Cell::new("x")),
            Err(NetlistError::DuplicateCell(_))
        ));
    }

    #[test]
    fn invalid_net_rejected_at_add() {
        let mut bad = Cell::new("bad");
        let a = bad.add_net("a", NetKind::Input);
        bad.add_device(Device::mos(
            MosKind::Nmos,
            "m",
            a,
            NetId(99),
            a,
            a,
            1e-6,
            0.35e-6,
        ));
        let mut lib = Library::new();
        assert!(matches!(
            lib.add_cell(bad),
            Err(NetlistError::InvalidNet { index: 99, .. })
        ));
    }

    #[test]
    fn cyclic_hierarchy_hits_depth_limit() {
        let mut lib = Library::new();
        // Manually create a self-instantiating cell; add_cell can't know
        // the id ahead of time so we cheat by referencing CellId(0).
        let mut c = Cell::new("ouroboros");
        let a = c.add_net("a", NetKind::Input);
        c.add_instance(Instance {
            name: "self".into(),
            master: CellId(0),
            connections: vec![a],
        });
        let id = lib.add_cell(c).unwrap();
        let err = lib.flatten(id).unwrap_err();
        assert!(matches!(err, NetlistError::RecursionLimit(_)));
    }

    #[test]
    fn find_net_and_names() {
        let inv = inverter_cell();
        let a = inv.find_net("a").unwrap();
        assert_eq!(inv.net_name(a), "a");
        assert_eq!(inv.net_kind(a), NetKind::Input);
        assert!(inv.find_net("nope").is_none());
        assert_eq!(inv.ports().len(), 4);
    }
}

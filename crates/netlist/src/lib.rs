//! `cbv-netlist` — transistor-level design database.
//!
//! In the paper's methodology "transistors are the building elements"
//! (§2): there is no mandatory cell library, every device is individually
//! sized, and hierarchy is used only "when it makes appropriate electrical
//! sense". This crate is the design database that makes that workable:
//!
//! * [`Cell`] / [`Library`] — hierarchical schematics: MOS devices, passive
//!   parasitics, and instances of other cells, with free-form hierarchy
//!   (the schematic hierarchy deliberately does **not** have to match the
//!   RTL hierarchy — see `cbv-core`'s multi-view database).
//! * [`FlatNetlist`] — the flattened, analysis-ready view: all verification
//!   tools in the toolkit (recognition, timing, electrical checks, power)
//!   run on the flat transistor network, exactly as the paper's tools
//!   "conservatively deduce \[meaning\] from the topology and context of the
//!   actual transistors".
//! * [`ccc`] — channel-connected-component partitioning, the universal
//!   first step of automatic circuit recognition.
//! * [`spice`] — a SPICE-subset reader/writer so designs can round-trip
//!   through text.
//!
//! # Example
//!
//! ```
//! use cbv_netlist::{Cell, Device, Library, NetKind};
//! use cbv_tech::MosKind;
//!
//! let mut inv = Cell::new("inv");
//! let vdd = inv.add_net("vdd", NetKind::Power);
//! let gnd = inv.add_net("gnd", NetKind::Ground);
//! let a = inv.add_net("a", NetKind::Input);
//! let y = inv.add_net("y", NetKind::Output);
//! inv.add_device(Device::mos(cbv_tech::MosKind::Pmos, "mp", a, y, vdd, vdd, 4.0e-6, 0.35e-6));
//! inv.add_device(Device::mos(MosKind::Nmos, "mn", a, y, gnd, gnd, 2.0e-6, 0.35e-6));
//!
//! let mut lib = Library::new();
//! let id = lib.add_cell(inv).unwrap();
//! let flat = lib.flatten(id).unwrap();
//! assert_eq!(flat.devices().len(), 2);
//! ```

pub mod canon;
pub mod ccc;
pub mod cell;
pub mod device;
pub mod error;
pub mod flat;
pub mod spice;

pub use canon::CanonicalKeys;
pub use ccc::{partition_cccs, Ccc, CccId};
pub use cell::{Cell, CellId, Instance, Library};
pub use device::{Device, Passive, PassiveKind};
pub use error::NetlistError;
pub use flat::{FlatNetlist, NetUse, Term};

/// Index of a net within one [`Cell`] or one [`FlatNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Index of a device within one [`Cell`] or one [`FlatNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl NetId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl DeviceId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Electrical role of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// Ordinary internal signal.
    Signal,
    /// Power supply rail (logic 1, infinite strength).
    Power,
    /// Ground rail (logic 0, infinite strength).
    Ground,
    /// Primary input port.
    Input,
    /// Primary output port.
    Output,
    /// Bidirectional port.
    Inout,
    /// A net the designer has declared to be a clock. Recognition will
    /// also *infer* clocks; a declared kind is a methodology assertion.
    Clock,
}

impl NetKind {
    /// True for the supply rails.
    pub fn is_rail(self) -> bool {
        matches!(self, NetKind::Power | NetKind::Ground)
    }

    /// True for cell ports (externally visible nets, clocks included).
    pub fn is_port(self) -> bool {
        matches!(
            self,
            NetKind::Input | NetKind::Output | NetKind::Inout | NetKind::Clock
        )
    }

    /// True for nets that drive into the cell from outside (inputs,
    /// bidirectionals and clocks).
    pub fn is_driven_externally(self) -> bool {
        matches!(self, NetKind::Input | NetKind::Inout | NetKind::Clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_kind_classification() {
        assert!(NetKind::Power.is_rail());
        assert!(NetKind::Ground.is_rail());
        assert!(!NetKind::Clock.is_rail());
        assert!(NetKind::Clock.is_port());
        assert!(NetKind::Input.is_driven_externally());
        assert!(!NetKind::Output.is_driven_externally());
        assert!(!NetKind::Signal.is_port());
    }

    #[test]
    fn ids_expose_indices() {
        assert_eq!(NetId(7).index(), 7);
        assert_eq!(DeviceId(3).index(), 3);
    }
}

//! The flattened transistor network — the substrate every verifier runs on.

use std::collections::HashMap;

use crate::device::{Device, Passive};
use crate::{DeviceId, NetId, NetKind};

/// How a device touches a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetUse {
    /// The net drives the device's gate.
    Gate(DeviceId),
    /// The net is a channel terminal (source or drain) of the device.
    Channel(DeviceId),
    /// The net ties the device's bulk.
    Bulk(DeviceId),
}

impl NetUse {
    /// The device involved, whatever the terminal.
    pub fn device(self) -> DeviceId {
        match self {
            NetUse::Gate(d) | NetUse::Channel(d) | NetUse::Bulk(d) => d,
        }
    }
}

/// Names one terminal of a MOS device — the address a rewire edit needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// The gate terminal.
    Gate,
    /// The source terminal.
    Source,
    /// The drain terminal.
    Drain,
    /// The bulk/well tie.
    Bulk,
}

impl Term {
    /// All four terminals in declaration order.
    pub const ALL: [Term; 4] = [Term::Gate, Term::Source, Term::Drain, Term::Bulk];
}

/// A flattened design: plain vectors of nets and devices plus connectivity
/// indices. Construction is append-only; the connectivity index is
/// maintained incrementally on every append, so all connectivity queries
/// take `&self` — verifiers can share one netlist read-only across
/// worker threads.
#[derive(Debug, Clone)]
pub struct FlatNetlist {
    name: String,
    net_names: Vec<String>,
    net_kinds: Vec<NetKind>,
    by_name: HashMap<String, NetId>,
    devices: Vec<Device>,
    passives: Vec<Passive>,
    /// net -> uses; updated as devices are appended.
    uses: Vec<Vec<NetUse>>,
}

impl FlatNetlist {
    /// Creates an empty flat netlist named after its top cell.
    pub fn new(name: impl Into<String>) -> FlatNetlist {
        FlatNetlist {
            name: name.into(),
            net_names: Vec::new(),
            net_kinds: Vec::new(),
            by_name: HashMap::new(),
            devices: Vec::new(),
            passives: Vec::new(),
            uses: Vec::new(),
        }
    }

    /// Name of the design (top cell).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a net. Duplicate names are allowed (hierarchical paths make
    /// them unique in practice); `find_net` returns the first match.
    pub fn add_net(&mut self, name: &str, kind: NetKind) -> NetId {
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(name.to_owned());
        self.by_name.entry(name.to_owned()).or_insert(id);
        self.net_kinds.push(kind);
        self.uses.push(Vec::new());
        id
    }

    /// Appends a device.
    ///
    /// # Panics
    ///
    /// Panics if any terminal references a net that does not exist.
    pub fn add_device(&mut self, device: Device) -> DeviceId {
        let n = self.net_names.len() as u32;
        assert!(
            device.gate.0 < n && device.source.0 < n && device.drain.0 < n && device.bulk.0 < n,
            "device `{}` references an out-of-range net",
            device.name
        );
        let id = DeviceId(self.devices.len() as u32);
        self.uses[device.gate.index()].push(NetUse::Gate(id));
        self.uses[device.source.index()].push(NetUse::Channel(id));
        if device.drain != device.source {
            self.uses[device.drain.index()].push(NetUse::Channel(id));
        }
        self.uses[device.bulk.index()].push(NetUse::Bulk(id));
        self.devices.push(device);
        id
    }

    /// Appends a passive element.
    ///
    /// # Panics
    ///
    /// Panics if a terminal references a net that does not exist.
    pub fn add_passive(&mut self, passive: Passive) {
        let n = self.net_names.len() as u32;
        assert!(
            passive.a.0 < n && passive.b.0 < n,
            "passive `{}` references an out-of-range net",
            passive.name
        );
        self.passives.push(passive);
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Name of a net.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.net_names[id.index()]
    }

    /// Kind of a net.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn net_kind(&self, id: NetId) -> NetKind {
        self.net_kinds[id.index()]
    }

    /// Reclassifies a net (e.g. recognition promoting a signal to clock).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set_net_kind(&mut self, id: NetId, kind: NetKind) {
        self.net_kinds[id.index()] = kind;
    }

    /// First net with the given name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// All net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.net_names.len() as u32).map(NetId)
    }

    /// The devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Borrow one device.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// Mutable access to one device (used by sizing optimizers).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.index()]
    }

    /// Moves one terminal of a device to another net, keeping the
    /// connectivity index current. Returns the net the terminal was on.
    ///
    /// This is the connectivity edit a mutation/ECO needs: unlike
    /// [`FlatNetlist::device_mut`] (which only the geometry fields may be
    /// edited through), rewiring updates the `uses` index so every
    /// `net_uses`-based query stays correct afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the device or the target net is out of range.
    pub fn rewire(&mut self, id: DeviceId, term: Term, net: NetId) -> NetId {
        assert!(
            net.0 < self.net_names.len() as u32,
            "rewire target net out of range"
        );
        let d = &self.devices[id.index()];
        let (gate, source, drain, bulk) = (d.gate, d.source, d.drain, d.bulk);
        let old = match term {
            Term::Gate => gate,
            Term::Source => source,
            Term::Drain => drain,
            Term::Bulk => bulk,
        };
        if old == net {
            return old;
        }
        // Detach every index entry of this device, update the terminal,
        // then re-attach using the same dedup rule as `add_device` (one
        // Channel entry when source == drain).
        for n in [gate, source, drain, bulk] {
            self.uses[n.index()].retain(|u| u.device() != id);
        }
        {
            let d = &mut self.devices[id.index()];
            match term {
                Term::Gate => d.gate = net,
                Term::Source => d.source = net,
                Term::Drain => d.drain = net,
                Term::Bulk => d.bulk = net,
            }
        }
        let d = &self.devices[id.index()];
        let (gate, source, drain, bulk) = (d.gate, d.source, d.drain, d.bulk);
        self.uses[gate.index()].push(NetUse::Gate(id));
        self.uses[source.index()].push(NetUse::Channel(id));
        if drain != source {
            self.uses[drain.index()].push(NetUse::Channel(id));
        }
        self.uses[bulk.index()].push(NetUse::Bulk(id));
        old
    }

    /// Removes the most recently appended device, unwinding its index
    /// entries — the undo for a mutation that added a device.
    ///
    /// # Panics
    ///
    /// Panics if there are no devices.
    pub fn pop_device(&mut self) -> Device {
        let d = self.devices.pop().expect("pop_device on empty netlist");
        let id = DeviceId(self.devices.len() as u32);
        for n in [d.gate, d.source, d.drain, d.bulk] {
            self.uses[n.index()].retain(|u| u.device() != id);
        }
        d
    }

    /// Removes the most recently appended net — the undo for a mutation
    /// that introduced a scratch net (e.g. the floating net of an "open"
    /// fault).
    ///
    /// # Panics
    ///
    /// Panics if there are no nets, if anything still uses the net, or if
    /// a passive terminal references it.
    pub fn pop_net(&mut self) -> String {
        let id = NetId(self.net_names.len() as u32 - 1);
        assert!(
            self.uses[id.index()].is_empty(),
            "pop_net: net `{}` still has attached devices",
            self.net_names[id.index()]
        );
        assert!(
            self.passives.iter().all(|p| p.a != id && p.b != id),
            "pop_net: net `{}` still has attached passives",
            self.net_names[id.index()]
        );
        self.uses.pop();
        self.net_kinds.pop();
        let name = self.net_names.pop().expect("pop_net on empty netlist");
        if self.by_name.get(&name) == Some(&id) {
            self.by_name.remove(&name);
            // An earlier net may share the name; restore the first match
            // so `find_net` keeps its "first declaration wins" contract.
            if let Some(first) = self.net_names.iter().position(|n| n == &name) {
                self.by_name.insert(name.clone(), NetId(first as u32));
            }
        }
        name
    }

    /// The passive elements.
    pub fn passives(&self) -> &[Passive] {
        &self.passives
    }

    /// All device ids.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.devices.len() as u32).map(DeviceId)
    }

    /// The uses (terminal attachments) of a net. The index is maintained
    /// incrementally, so this is always current and read-only.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn net_uses(&self, id: NetId) -> &[NetUse] {
        &self.uses[id.index()]
    }

    /// The full net→uses table (index = net id): connectivity for
    /// analyses that sweep every net.
    pub fn uses_table(&self) -> &[Vec<NetUse>] {
        &self.uses
    }

    /// Devices whose gate is on `net`.
    pub fn gate_loads(&self, net: NetId) -> Vec<DeviceId> {
        self.net_uses(net)
            .iter()
            .filter_map(|u| match u {
                NetUse::Gate(d) => Some(*d),
                _ => None,
            })
            .collect()
    }

    /// Devices with a channel terminal on `net`.
    pub fn channel_devices(&self, net: NetId) -> Vec<DeviceId> {
        self.net_uses(net)
            .iter()
            .filter_map(|u| match u {
                NetUse::Channel(d) => Some(*d),
                _ => None,
            })
            .collect()
    }

    /// All rail nets (power and ground).
    pub fn rails(&self) -> Vec<NetId> {
        self.net_ids()
            .filter(|&n| self.net_kind(n).is_rail())
            .collect()
    }

    /// All primary input / clock nets.
    pub fn external_drivers(&self) -> Vec<NetId> {
        self.net_ids()
            .filter(|&n| self.net_kind(n).is_driven_externally())
            .collect()
    }

    /// Total transistor width attached by gate to the net — the gate load
    /// used everywhere in delay and power estimation.
    pub fn gate_width_on(&self, net: NetId) -> f64 {
        self.gate_loads(net)
            .into_iter()
            .map(|d| self.device(d).w)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_tech::MosKind;

    fn nand2() -> FlatNetlist {
        let mut f = FlatNetlist::new("nand2");
        let a = f.add_net("a", NetKind::Input);
        let b = f.add_net("b", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let x = f.add_net("x", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "mpa",
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "mpb",
            b,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "mna",
            a,
            y,
            x,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "mnb",
            b,
            x,
            gnd,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f
    }

    #[test]
    fn uses_index_tracks_terminals() {
        let f = nand2();
        let a = f.find_net("a").unwrap();
        let gates = f.gate_loads(a);
        assert_eq!(gates.len(), 2);
        let y = f.find_net("y").unwrap();
        let ch = f.channel_devices(y);
        assert_eq!(ch.len(), 3, "y touches both pullups and the top nmos");
    }

    #[test]
    fn gate_width_accumulates() {
        let f = nand2();
        let a = f.find_net("a").unwrap();
        assert!((f.gate_width_on(a) - 8e-6).abs() < 1e-12);
    }

    #[test]
    fn rails_and_externals() {
        let f = nand2();
        assert_eq!(f.rails().len(), 2);
        assert_eq!(f.external_drivers().len(), 2);
    }

    #[test]
    fn index_rebuilds_after_mutation() {
        let mut f = nand2();
        let a = f.find_net("a").unwrap();
        assert_eq!(f.gate_loads(a).len(), 2);
        let gnd = f.find_net("gnd").unwrap();
        let y = f.find_net("y").unwrap();
        f.add_device(Device::mos(
            MosKind::Nmos,
            "extra",
            a,
            y,
            gnd,
            gnd,
            1e-6,
            0.35e-6,
        ));
        assert_eq!(f.gate_loads(a).len(), 3);
    }

    #[test]
    fn set_net_kind_reclassifies() {
        let mut f = nand2();
        let a = f.find_net("a").unwrap();
        f.set_net_kind(a, NetKind::Clock);
        assert_eq!(f.net_kind(a), NetKind::Clock);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn device_with_bad_net_panics() {
        let mut f = FlatNetlist::new("bad");
        let a = f.add_net("a", NetKind::Input);
        f.add_device(Device::mos(
            MosKind::Nmos,
            "m",
            a,
            NetId(9),
            a,
            a,
            1e-6,
            1e-6,
        ));
    }

    #[test]
    fn rewire_moves_one_terminal_and_updates_index() {
        let mut f = nand2();
        let a = f.find_net("a").unwrap();
        let b = f.find_net("b").unwrap();
        let mna = f.device_ids().find(|&d| f.device(d).name == "mna").unwrap();
        let old = f.rewire(mna, Term::Gate, b);
        assert_eq!(old, a);
        assert_eq!(f.device(mna).gate, b);
        assert_eq!(f.gate_loads(a).len(), 1, "a keeps only mpa's gate");
        assert_eq!(f.gate_loads(b).len(), 3, "b gains mna's gate");
        // Channel attachments were re-added untouched.
        let y = f.find_net("y").unwrap();
        assert!(f.channel_devices(y).contains(&mna));
        // Rewiring back restores the original attachment sets.
        f.rewire(mna, Term::Gate, a);
        assert_eq!(f.gate_loads(a).len(), 2);
        assert_eq!(f.gate_loads(b).len(), 2);
    }

    #[test]
    fn rewire_handles_merged_channel_terminals() {
        let mut f = nand2();
        let y = f.find_net("y").unwrap();
        let x = f.find_net("x").unwrap();
        let mna = f.device_ids().find(|&d| f.device(d).name == "mna").unwrap();
        // Collapse mna's channel onto one net: exactly one Channel entry.
        f.rewire(mna, Term::Drain, x);
        assert_eq!(f.device(mna).source, x);
        assert_eq!(f.device(mna).drain, x);
        let entries = f
            .net_uses(x)
            .iter()
            .filter(|u| matches!(u, NetUse::Channel(d) if *d == mna))
            .count();
        assert_eq!(entries, 1, "merged channel indexes once, like add_device");
        assert!(!f.channel_devices(y).contains(&mna));
        // Split it back out.
        f.rewire(mna, Term::Drain, y);
        assert!(f.channel_devices(y).contains(&mna));
        assert_eq!(
            f.net_uses(x)
                .iter()
                .filter(|u| matches!(u, NetUse::Channel(d) if *d == mna))
                .count(),
            1
        );
    }

    #[test]
    fn pop_device_unwinds_the_index() {
        let mut f = nand2();
        let a = f.find_net("a").unwrap();
        let y = f.find_net("y").unwrap();
        let gnd = f.find_net("gnd").unwrap();
        let before_gates = f.gate_loads(a).len();
        f.add_device(Device::mos(
            MosKind::Nmos,
            "extra",
            a,
            y,
            gnd,
            gnd,
            1e-6,
            0.35e-6,
        ));
        assert_eq!(f.gate_loads(a).len(), before_gates + 1);
        let d = f.pop_device();
        assert_eq!(d.name, "extra");
        assert_eq!(f.gate_loads(a).len(), before_gates);
        assert_eq!(f.devices().len(), 4);
    }

    #[test]
    fn pop_net_removes_an_unused_scratch_net() {
        let mut f = nand2();
        let n = f.net_count();
        let scratch = f.add_net("scratch", NetKind::Signal);
        assert_eq!(f.find_net("scratch"), Some(scratch));
        let name = f.pop_net();
        assert_eq!(name, "scratch");
        assert_eq!(f.net_count(), n);
        assert_eq!(f.find_net("scratch"), None);
    }

    #[test]
    fn pop_net_restores_earlier_duplicate_name() {
        let mut f = FlatNetlist::new("dup");
        let first = f.add_net("n", NetKind::Signal);
        let _second = f.add_net("n", NetKind::Signal);
        f.pop_net();
        assert_eq!(f.find_net("n"), Some(first));
    }

    #[test]
    #[should_panic(expected = "still has attached devices")]
    fn pop_net_refuses_a_used_net() {
        let mut f = nand2();
        f.pop_net(); // "gnd" is a bulk/channel net of mna/mnb
    }

    #[test]
    fn netuse_device_accessor() {
        assert_eq!(NetUse::Gate(DeviceId(4)).device(), DeviceId(4));
        assert_eq!(NetUse::Channel(DeviceId(1)).device(), DeviceId(1));
        assert_eq!(NetUse::Bulk(DeviceId(2)).device(), DeviceId(2));
    }
}

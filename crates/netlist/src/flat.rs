//! The flattened transistor network — the substrate every verifier runs on.

use std::collections::HashMap;

use crate::device::{Device, Passive};
use crate::{DeviceId, NetId, NetKind};

/// How a device touches a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetUse {
    /// The net drives the device's gate.
    Gate(DeviceId),
    /// The net is a channel terminal (source or drain) of the device.
    Channel(DeviceId),
    /// The net ties the device's bulk.
    Bulk(DeviceId),
}

impl NetUse {
    /// The device involved, whatever the terminal.
    pub fn device(self) -> DeviceId {
        match self {
            NetUse::Gate(d) | NetUse::Channel(d) | NetUse::Bulk(d) => d,
        }
    }
}

/// A flattened design: plain vectors of nets and devices plus connectivity
/// indices. Construction is append-only; the connectivity index is
/// maintained incrementally on every append, so all connectivity queries
/// take `&self` — verifiers can share one netlist read-only across
/// worker threads.
#[derive(Debug, Clone)]
pub struct FlatNetlist {
    name: String,
    net_names: Vec<String>,
    net_kinds: Vec<NetKind>,
    by_name: HashMap<String, NetId>,
    devices: Vec<Device>,
    passives: Vec<Passive>,
    /// net -> uses; updated as devices are appended.
    uses: Vec<Vec<NetUse>>,
}

impl FlatNetlist {
    /// Creates an empty flat netlist named after its top cell.
    pub fn new(name: impl Into<String>) -> FlatNetlist {
        FlatNetlist {
            name: name.into(),
            net_names: Vec::new(),
            net_kinds: Vec::new(),
            by_name: HashMap::new(),
            devices: Vec::new(),
            passives: Vec::new(),
            uses: Vec::new(),
        }
    }

    /// Name of the design (top cell).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a net. Duplicate names are allowed (hierarchical paths make
    /// them unique in practice); `find_net` returns the first match.
    pub fn add_net(&mut self, name: &str, kind: NetKind) -> NetId {
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(name.to_owned());
        self.by_name.entry(name.to_owned()).or_insert(id);
        self.net_kinds.push(kind);
        self.uses.push(Vec::new());
        id
    }

    /// Appends a device.
    ///
    /// # Panics
    ///
    /// Panics if any terminal references a net that does not exist.
    pub fn add_device(&mut self, device: Device) -> DeviceId {
        let n = self.net_names.len() as u32;
        assert!(
            device.gate.0 < n && device.source.0 < n && device.drain.0 < n && device.bulk.0 < n,
            "device `{}` references an out-of-range net",
            device.name
        );
        let id = DeviceId(self.devices.len() as u32);
        self.uses[device.gate.index()].push(NetUse::Gate(id));
        self.uses[device.source.index()].push(NetUse::Channel(id));
        if device.drain != device.source {
            self.uses[device.drain.index()].push(NetUse::Channel(id));
        }
        self.uses[device.bulk.index()].push(NetUse::Bulk(id));
        self.devices.push(device);
        id
    }

    /// Appends a passive element.
    ///
    /// # Panics
    ///
    /// Panics if a terminal references a net that does not exist.
    pub fn add_passive(&mut self, passive: Passive) {
        let n = self.net_names.len() as u32;
        assert!(
            passive.a.0 < n && passive.b.0 < n,
            "passive `{}` references an out-of-range net",
            passive.name
        );
        self.passives.push(passive);
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Name of a net.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.net_names[id.index()]
    }

    /// Kind of a net.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn net_kind(&self, id: NetId) -> NetKind {
        self.net_kinds[id.index()]
    }

    /// Reclassifies a net (e.g. recognition promoting a signal to clock).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set_net_kind(&mut self, id: NetId, kind: NetKind) {
        self.net_kinds[id.index()] = kind;
    }

    /// First net with the given name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// All net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.net_names.len() as u32).map(NetId)
    }

    /// The devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Borrow one device.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// Mutable access to one device (used by sizing optimizers).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.index()]
    }

    /// The passive elements.
    pub fn passives(&self) -> &[Passive] {
        &self.passives
    }

    /// All device ids.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.devices.len() as u32).map(DeviceId)
    }

    /// The uses (terminal attachments) of a net. The index is maintained
    /// incrementally, so this is always current and read-only.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn net_uses(&self, id: NetId) -> &[NetUse] {
        &self.uses[id.index()]
    }

    /// The full net→uses table (index = net id): connectivity for
    /// analyses that sweep every net.
    pub fn uses_table(&self) -> &[Vec<NetUse>] {
        &self.uses
    }

    /// Devices whose gate is on `net`.
    pub fn gate_loads(&self, net: NetId) -> Vec<DeviceId> {
        self.net_uses(net)
            .iter()
            .filter_map(|u| match u {
                NetUse::Gate(d) => Some(*d),
                _ => None,
            })
            .collect()
    }

    /// Devices with a channel terminal on `net`.
    pub fn channel_devices(&self, net: NetId) -> Vec<DeviceId> {
        self.net_uses(net)
            .iter()
            .filter_map(|u| match u {
                NetUse::Channel(d) => Some(*d),
                _ => None,
            })
            .collect()
    }

    /// All rail nets (power and ground).
    pub fn rails(&self) -> Vec<NetId> {
        self.net_ids()
            .filter(|&n| self.net_kind(n).is_rail())
            .collect()
    }

    /// All primary input / clock nets.
    pub fn external_drivers(&self) -> Vec<NetId> {
        self.net_ids()
            .filter(|&n| self.net_kind(n).is_driven_externally())
            .collect()
    }

    /// Total transistor width attached by gate to the net — the gate load
    /// used everywhere in delay and power estimation.
    pub fn gate_width_on(&self, net: NetId) -> f64 {
        self.gate_loads(net)
            .into_iter()
            .map(|d| self.device(d).w)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_tech::MosKind;

    fn nand2() -> FlatNetlist {
        let mut f = FlatNetlist::new("nand2");
        let a = f.add_net("a", NetKind::Input);
        let b = f.add_net("b", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let x = f.add_net("x", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "mpa",
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "mpb",
            b,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "mna",
            a,
            y,
            x,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "mnb",
            b,
            x,
            gnd,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f
    }

    #[test]
    fn uses_index_tracks_terminals() {
        let f = nand2();
        let a = f.find_net("a").unwrap();
        let gates = f.gate_loads(a);
        assert_eq!(gates.len(), 2);
        let y = f.find_net("y").unwrap();
        let ch = f.channel_devices(y);
        assert_eq!(ch.len(), 3, "y touches both pullups and the top nmos");
    }

    #[test]
    fn gate_width_accumulates() {
        let f = nand2();
        let a = f.find_net("a").unwrap();
        assert!((f.gate_width_on(a) - 8e-6).abs() < 1e-12);
    }

    #[test]
    fn rails_and_externals() {
        let f = nand2();
        assert_eq!(f.rails().len(), 2);
        assert_eq!(f.external_drivers().len(), 2);
    }

    #[test]
    fn index_rebuilds_after_mutation() {
        let mut f = nand2();
        let a = f.find_net("a").unwrap();
        assert_eq!(f.gate_loads(a).len(), 2);
        let gnd = f.find_net("gnd").unwrap();
        let y = f.find_net("y").unwrap();
        f.add_device(Device::mos(
            MosKind::Nmos,
            "extra",
            a,
            y,
            gnd,
            gnd,
            1e-6,
            0.35e-6,
        ));
        assert_eq!(f.gate_loads(a).len(), 3);
    }

    #[test]
    fn set_net_kind_reclassifies() {
        let mut f = nand2();
        let a = f.find_net("a").unwrap();
        f.set_net_kind(a, NetKind::Clock);
        assert_eq!(f.net_kind(a), NetKind::Clock);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn device_with_bad_net_panics() {
        let mut f = FlatNetlist::new("bad");
        let a = f.add_net("a", NetKind::Input);
        f.add_device(Device::mos(
            MosKind::Nmos,
            "m",
            a,
            NetId(9),
            a,
            a,
            1e-6,
            1e-6,
        ));
    }

    #[test]
    fn netuse_device_accessor() {
        assert_eq!(NetUse::Gate(DeviceId(4)).device(), DeviceId(4));
        assert_eq!(NetUse::Channel(DeviceId(1)).device(), DeviceId(1));
        assert_eq!(NetUse::Bulk(DeviceId(2)).device(), DeviceId(2));
    }
}

//! Canonical identities for nets and devices.
//!
//! Numeric [`NetId`]s and [`DeviceId`]s encode *append order*, which is
//! an accident of how a netlist was built — two textually reordered
//! SPICE decks describe the same circuit with different ids. Anything
//! that wants an id-independent identity (content fingerprinting, cache
//! keys, cross-run diffing) needs a canonical key instead: the element's
//! *name*, disambiguated among duplicates by occurrence index. Names are
//! the designer-facing identity in the paper's methodology — every
//! report line addresses nets and devices by name — so they are the
//! stable axis; the occurrence index only exists to keep duplicate names
//! (legal in flattened hierarchies) from aliasing each other.
//!
//! Keys are exposed pre-hashed as FNV-1a 64-bit values so consumers can
//! mix them into larger fingerprints without touching strings again.

use std::collections::HashMap;

use crate::flat::FlatNetlist;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a accumulator.
#[inline]
pub fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Hashes one name + occurrence index into a canonical key.
fn key_of(name: &str, occurrence: u32) -> u64 {
    let h = fnv1a(FNV_OFFSET, name.as_bytes());
    fnv1a(h, &occurrence.to_le_bytes())
}

/// Canonical per-net and per-device keys for one netlist.
///
/// A key is `fnv1a(name) ⊕ occurrence`, where `occurrence` counts
/// same-named elements in id order. For the common case of unique names
/// the key depends on the name alone, making it invariant under net and
/// device reordering; duplicate names degrade gracefully to order-
/// sensitive (conservative: a cache keyed on these can only miss, never
/// falsely hit).
#[derive(Debug, Clone)]
pub struct CanonicalKeys {
    net_keys: Vec<u64>,
    device_keys: Vec<u64>,
}

impl CanonicalKeys {
    /// Computes keys for every net and device in `netlist`.
    pub fn new(netlist: &FlatNetlist) -> CanonicalKeys {
        let mut seen: HashMap<&str, u32> = HashMap::new();
        let mut net_keys = Vec::with_capacity(netlist.net_count());
        for id in netlist.net_ids() {
            let name = netlist.net_name(id);
            let occurrence = seen.entry(name).and_modify(|c| *c += 1).or_insert(0);
            net_keys.push(key_of(name, *occurrence));
        }
        let mut seen: HashMap<&str, u32> = HashMap::new();
        let mut device_keys = Vec::with_capacity(netlist.devices().len());
        for d in netlist.devices() {
            let occurrence = seen
                .entry(d.name.as_str())
                .and_modify(|c| *c += 1)
                .or_insert(0);
            device_keys.push(key_of(&d.name, *occurrence));
        }
        CanonicalKeys {
            net_keys,
            device_keys,
        }
    }

    /// Canonical key of a net.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn net(&self, id: crate::NetId) -> u64 {
        self.net_keys[id.index()]
    }

    /// Canonical key of a device.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn device(&self, id: crate::DeviceId) -> u64 {
        self.device_keys[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::{NetId, NetKind};
    use cbv_tech::MosKind;

    fn pair() -> FlatNetlist {
        let mut f = FlatNetlist::new("t");
        let a = f.add_net("a", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(MosKind::Nmos, "m1", a, y, gnd, gnd, 1e-6, 1e-6));
        f.add_device(Device::mos(MosKind::Nmos, "m2", y, a, gnd, gnd, 1e-6, 1e-6));
        f
    }

    #[test]
    fn keys_depend_on_name_not_id() {
        let f = pair();
        let keys = CanonicalKeys::new(&f);
        // Rebuild with nets appended in a different order.
        let mut g = FlatNetlist::new("t");
        let gnd = g.add_net("gnd", NetKind::Ground);
        let y = g.add_net("y", NetKind::Output);
        let a = g.add_net("a", NetKind::Input);
        g.add_device(Device::mos(MosKind::Nmos, "m2", y, a, gnd, gnd, 1e-6, 1e-6));
        g.add_device(Device::mos(MosKind::Nmos, "m1", a, y, gnd, gnd, 1e-6, 1e-6));
        let rekeys = CanonicalKeys::new(&g);
        assert_eq!(keys.net(f.find_net("a").unwrap()), rekeys.net(a));
        assert_eq!(keys.net(f.find_net("y").unwrap()), rekeys.net(y));
        assert_eq!(
            keys.device(crate::DeviceId(0)),
            rekeys.device(crate::DeviceId(1))
        );
    }

    #[test]
    fn duplicate_names_get_distinct_keys() {
        let mut f = FlatNetlist::new("dup");
        let a = f.add_net("x", NetKind::Signal);
        let b = f.add_net("x", NetKind::Signal);
        let keys = CanonicalKeys::new(&f);
        assert_ne!(keys.net(a), keys.net(b));
    }

    #[test]
    fn fnv_is_stable() {
        // Pin the function: a changed hash silently invalidates every
        // persisted cache, so the constant is part of the format.
        assert_eq!(fnv1a(FNV_OFFSET, b"cbv"), fnv1a(FNV_OFFSET, b"cbv"));
        assert_ne!(fnv1a(FNV_OFFSET, b"cbv"), fnv1a(FNV_OFFSET, b"cbw"));
        let _ = NetId(0);
    }
}

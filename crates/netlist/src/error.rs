//! Error type for netlist construction, flattening and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced by the netlist database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A cell name was defined twice in a library.
    DuplicateCell(String),
    /// A referenced cell does not exist in the library.
    UnknownCell(String),
    /// An instance supplied the wrong number of connections for its
    /// master's port list.
    PortCountMismatch {
        /// Instance name.
        instance: String,
        /// Master cell name.
        master: String,
        /// Ports the master declares.
        expected: usize,
        /// Connections the instance supplied.
        actual: usize,
    },
    /// Instantiation recursion exceeded the depth limit (almost certainly
    /// a cycle in the cell graph).
    RecursionLimit(String),
    /// A net id referenced something outside the cell it was used in.
    InvalidNet {
        /// The cell where the bad reference appeared.
        cell: String,
        /// The offending index.
        index: u32,
    },
    /// SPICE text could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateCell(name) => {
                write!(f, "cell `{name}` is already defined in the library")
            }
            NetlistError::UnknownCell(name) => write!(f, "unknown cell `{name}`"),
            NetlistError::PortCountMismatch {
                instance,
                master,
                expected,
                actual,
            } => write!(
                f,
                "instance `{instance}` of `{master}` connects {actual} nets but the master declares {expected} ports"
            ),
            NetlistError::RecursionLimit(cell) => write!(
                f,
                "instantiation depth limit exceeded while flattening `{cell}` (cycle in cell graph?)"
            ),
            NetlistError::InvalidNet { cell, index } => {
                write!(f, "net index {index} is out of range in cell `{cell}`")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetlistError::UnknownCell("adder".into());
        assert_eq!(e.to_string(), "unknown cell `adder`");
        let e = NetlistError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 12"));
    }
}

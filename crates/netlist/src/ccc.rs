//! Channel-connected-component (CCC) partitioning.
//!
//! A CCC is a maximal set of devices connected through source/drain
//! terminals, cut at the supply rails and at gate terminals. It is the
//! natural unit of full-custom circuit recognition: the paper's tools must
//! "automatically and conservatively deduce" logic and timing meaning
//! "from the topology and context of the actual transistors", and every
//! such deduction starts from the CCC — a CCC is one "gate" in the loose,
//! full-custom sense (a complementary gate, a domino stage, a latch, a
//! pass-gate network...).

use std::collections::HashMap;

use crate::flat::FlatNetlist;
use crate::{DeviceId, NetId};

/// Index of a CCC within a [`partition_cccs`] result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CccId(pub u32);

impl CccId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One channel-connected component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ccc {
    /// Devices in this component.
    pub devices: Vec<DeviceId>,
    /// Non-rail nets internal to or on the boundary of the channel graph
    /// (every source/drain net of the member devices, rails excluded).
    pub channel_nets: Vec<NetId>,
    /// Nets that are *inputs* to this component: gates of member devices.
    /// A net can appear in both `inputs` and `channel_nets` (e.g. pass
    /// gates driven by a net they also conduct to).
    pub inputs: Vec<NetId>,
    /// Channel nets that leave the component: they are read by gates of
    /// other components, are ports, or touch passives — the component's
    /// observable outputs.
    pub outputs: Vec<NetId>,
}

impl Ccc {
    /// True if the net is one of the component's channel nets.
    pub fn contains_channel_net(&self, net: NetId) -> bool {
        self.channel_nets.contains(&net)
    }
}

/// Union–find over net indices.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

/// Partitions a flat netlist into channel-connected components.
///
/// Rails never merge components (they are cut points); devices whose both
/// channel ends are rails (e.g. decoupling caps built from transistors)
/// form singleton components keyed by the device itself.
///
/// Returns the components plus a device→component map.
pub fn partition_cccs(netlist: &mut FlatNetlist) -> (Vec<Ccc>, Vec<CccId>) {
    let n_nets = netlist.net_count();
    let n_devs = netlist.devices().len();
    let mut uf = UnionFind::new(n_nets + n_devs);
    // Each device is a union-find node (offset by n_nets) so that devices
    // merge through shared non-rail channel nets.
    for (i, d) in netlist.devices().iter().enumerate() {
        let dev_node = (n_nets + i) as u32;
        for net in [d.source, d.drain] {
            if !netlist.net_kind(net).is_rail() {
                uf.union(dev_node, net.0);
            }
        }
    }

    // Group devices by root.
    let mut groups: HashMap<u32, Vec<DeviceId>> = HashMap::new();
    for i in 0..n_devs {
        let root = uf.find((n_nets + i) as u32);
        groups.entry(root).or_default().push(DeviceId(i as u32));
    }

    // Deterministic order: by smallest device id in the group.
    let mut ordered: Vec<Vec<DeviceId>> = groups.into_values().collect();
    ordered.sort_by_key(|g| g.iter().min().copied());

    // Precompute which nets are read as gates anywhere, are ports, or
    // touch passives — those make a channel net an "output".
    let mut gate_read = vec![false; n_nets];
    for d in netlist.devices() {
        gate_read[d.gate.index()] = true;
    }
    let mut passive_touched = vec![false; n_nets];
    for p in netlist.passives() {
        passive_touched[p.a.index()] = true;
        passive_touched[p.b.index()] = true;
    }

    let mut dev_to_ccc = vec![CccId(0); n_devs];
    let mut cccs = Vec::with_capacity(ordered.len());
    for (ci, devices) in ordered.into_iter().enumerate() {
        let id = CccId(ci as u32);
        let mut channel_nets = Vec::new();
        let mut inputs = Vec::new();
        for &d in &devices {
            dev_to_ccc[d.index()] = id;
            let dev = netlist.device(d);
            for net in [dev.source, dev.drain] {
                if !netlist.net_kind(net).is_rail() && !channel_nets.contains(&net) {
                    channel_nets.push(net);
                }
            }
            if !inputs.contains(&dev.gate) {
                inputs.push(dev.gate);
            }
        }
        channel_nets.sort();
        inputs.sort();
        // A channel net is an output if something outside the channel
        // graph observes it: a gate (of any device — self-loading domino
        // keepers count), a port, or a passive.
        let outputs: Vec<NetId> = channel_nets
            .iter()
            .copied()
            .filter(|&n| {
                gate_read[n.index()] || netlist.net_kind(n).is_port() || passive_touched[n.index()]
            })
            .collect();
        cccs.push(Ccc {
            devices,
            channel_nets,
            inputs,
            outputs,
        });
    }
    (cccs, dev_to_ccc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::NetKind;
    use cbv_tech::MosKind;

    /// Two back-to-back inverters: each is its own CCC; the middle net is
    /// output of the first and input of the second.
    fn two_inverters() -> FlatNetlist {
        let mut f = FlatNetlist::new("buf");
        let a = f.add_net("a", NetKind::Input);
        let m = f.add_net("m", NetKind::Signal);
        let y = f.add_net("y", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "p0",
            a,
            m,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "n0",
            a,
            m,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "p1",
            m,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "n1",
            m,
            y,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        f
    }

    #[test]
    fn inverter_chain_splits_at_gates() {
        let mut f = two_inverters();
        let (cccs, dev_map) = partition_cccs(&mut f);
        assert_eq!(cccs.len(), 2);
        assert_ne!(dev_map[0], dev_map[2]);
        assert_eq!(dev_map[0], dev_map[1]);
        let m = f.find_net("m").unwrap();
        // m is output of ccc 0 (read by gates of ccc 1) and input of ccc 1.
        assert!(cccs[0].outputs.contains(&m));
        assert!(cccs[1].inputs.contains(&m));
    }

    #[test]
    fn stack_is_single_ccc() {
        // nand2: the nmos stack shares internal net x with the output.
        let mut f = FlatNetlist::new("nand2");
        let a = f.add_net("a", NetKind::Input);
        let b = f.add_net("b", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let x = f.add_net("x", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pa",
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pb",
            b,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "na",
            a,
            y,
            x,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "nb",
            b,
            x,
            gnd,
            gnd,
            4e-6,
            0.35e-6,
        ));
        let (cccs, _) = partition_cccs(&mut f);
        assert_eq!(cccs.len(), 1);
        let y_id = f.find_net("y").unwrap();
        let x_id = f.find_net("x").unwrap();
        assert!(cccs[0].outputs.contains(&y_id), "y is a port");
        assert!(!cccs[0].outputs.contains(&x_id), "x is purely internal");
        assert_eq!(cccs[0].inputs.len(), 2);
    }

    #[test]
    fn pass_gate_bridges_components() {
        // in -> passgate -> out: the pass device's channel joins both
        // sides into one CCC.
        let mut f = FlatNetlist::new("pass");
        let a = f.add_net("a", NetKind::Input);
        let b = f.add_net("b", NetKind::Output);
        let en = f.add_net("en", NetKind::Input);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Nmos,
            "mp",
            en,
            a,
            b,
            gnd,
            2e-6,
            0.35e-6,
        ));
        let (cccs, _) = partition_cccs(&mut f);
        assert_eq!(cccs.len(), 1);
        assert!(cccs[0].channel_nets.contains(&a));
        assert!(cccs[0].channel_nets.contains(&b));
        assert_eq!(cccs[0].inputs, vec![en]);
    }

    #[test]
    fn rail_to_rail_device_is_singleton() {
        // A mos cap from vdd to gnd channel-wise.
        let mut f = FlatNetlist::new("decap");
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Nmos,
            "mc",
            vdd,
            gnd,
            gnd,
            gnd,
            10e-6,
            1e-6,
        ));
        let (cccs, _) = partition_cccs(&mut f);
        assert_eq!(cccs.len(), 1);
        assert!(cccs[0].channel_nets.is_empty());
    }

    #[test]
    fn empty_netlist_has_no_cccs() {
        let mut f = FlatNetlist::new("empty");
        f.add_net("a", NetKind::Input);
        let (cccs, map) = partition_cccs(&mut f);
        assert!(cccs.is_empty());
        assert!(map.is_empty());
    }

    #[test]
    fn deterministic_ordering() {
        let mut f1 = two_inverters();
        let mut f2 = two_inverters();
        let (c1, _) = partition_cccs(&mut f1);
        let (c2, _) = partition_cccs(&mut f2);
        assert_eq!(c1, c2);
    }
}

//! SPICE-subset reader and writer.
//!
//! The supported subset is what a transistor-level methodology needs to
//! round-trip designs through text:
//!
//! * `.subckt NAME port...` / `.ends` — cell definitions
//! * `Mname drain gate source bulk nmos|pmos w=.. l=.. [m=..]` — MOS devices
//! * `Xname net... CELLNAME` — subcircuit instances
//! * `Cname a b value` / `Rname a b value` — passives
//! * `*` comments, `+` continuation lines, engineering suffixes
//!   (`f p n u m k meg g`)
//!
//! Nets named `vdd`/`vcc` parse as power, `gnd`/`vss`/`0` as ground —
//! matching universal SPICE convention.

use std::collections::HashMap;
use std::fmt::Write as _;

use cbv_tech::MosKind;

use crate::cell::{Cell, Instance, Library};
use crate::device::{Device, Passive};
use crate::error::NetlistError;
use crate::{NetId, NetKind};

/// Parses engineering-notation numbers: `4u`, `0.35e-6`, `10f`, `1meg`.
///
/// # Errors
///
/// Returns a description of the malformed token.
pub fn parse_value(token: &str) -> Result<f64, String> {
    let t = token.trim().to_ascii_lowercase();
    if t.is_empty() {
        return Err("empty value".to_owned());
    }
    // Split the numeric prefix from any suffix.
    let split = t
        .char_indices()
        .find(|(_, c)| c.is_ascii_alphabetic() && *c != 'e')
        .map(|(i, _)| i);
    // Careful: `1e-6` keeps the `e`; `1meg` splits at `m`.
    let (num_str, suffix) = match split {
        Some(i) => (&t[..i], &t[i..]),
        None => (t.as_str(), ""),
    };
    let base: f64 = num_str
        .parse()
        .map_err(|_| format!("malformed number `{token}`"))?;
    let mult = match suffix {
        "" => 1.0,
        "f" => 1e-15,
        "p" => 1e-12,
        "n" => 1e-9,
        "u" => 1e-6,
        "m" => 1e-3,
        "k" => 1e3,
        "meg" => 1e6,
        "g" => 1e9,
        other => return Err(format!("unknown unit suffix `{other}` in `{token}`")),
    };
    Ok(base * mult)
}

fn net_kind_for_name(name: &str) -> NetKind {
    match name.to_ascii_lowercase().as_str() {
        "vdd" | "vcc" => NetKind::Power,
        "gnd" | "vss" | "0" => NetKind::Ground,
        _ => NetKind::Signal,
    }
}

struct CellBuilder {
    cell: Cell,
    nets: HashMap<String, NetId>,
}

impl CellBuilder {
    fn new(name: &str, ports: &[&str]) -> CellBuilder {
        let mut cell = Cell::new(name);
        let mut nets = HashMap::new();
        for p in ports {
            let kind = match net_kind_for_name(p) {
                NetKind::Signal => NetKind::Inout,
                rail => rail,
            };
            // Rails are also ports when listed in a .subckt header; the
            // Inout port kind subsumes direction which SPICE lacks. We keep
            // the rail kind for vdd/gnd so flattening merges them right,
            // and register them as explicit ports below.
            let id = cell.add_net(*p, if kind.is_rail() { NetKind::Inout } else { kind });
            nets.insert((*p).to_owned(), id);
        }
        CellBuilder { cell, nets }
    }

    fn net(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.nets.get(name) {
            return id;
        }
        let id = self.cell.add_net(name, net_kind_for_name(name));
        self.nets.insert(name.to_owned(), id);
        id
    }
}

/// Parses SPICE text into a [`Library`]. Top-level elements (outside any
/// `.subckt`) are collected into a cell named `top`; if there are none,
/// no `top` cell is created.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] with a line number on malformed input,
/// and propagates library errors (duplicate cells, dangling references).
pub fn parse(text: &str) -> Result<Library, NetlistError> {
    // Join continuation lines first, tracking original line numbers.
    let mut logical: Vec<(usize, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('+') {
            match logical.last_mut() {
                Some((_, prev)) => {
                    prev.push(' ');
                    prev.push_str(rest.trim());
                }
                None => {
                    return Err(NetlistError::Parse {
                        line: i + 1,
                        message: "continuation line with nothing to continue".into(),
                    })
                }
            }
        } else {
            logical.push((i + 1, line.to_owned()));
        }
    }

    let mut lib = Library::new();
    let mut top = CellBuilder::new("top", &[]);
    let mut top_used = false;
    let mut current: Option<CellBuilder> = None;
    // Instances are resolved by name after all cells are defined:
    // (instance name, master name, connection nets).
    type PendingInst = (String, String, Vec<String>);
    let mut pending: Vec<(String, Vec<PendingInst>)> = Vec::new();
    let mut cur_pending: Vec<(String, String, Vec<String>)> = Vec::new();
    let mut top_pending: Vec<(String, String, Vec<String>)> = Vec::new();

    let err = |line: usize, msg: String| NetlistError::Parse { line, message: msg };

    for (lineno, line) in logical {
        let lower = line.to_ascii_lowercase();
        let toks: Vec<&str> = line.split_whitespace().collect();
        if lower.starts_with(".subckt") {
            if current.is_some() {
                return Err(err(lineno, "nested .subckt is not supported".into()));
            }
            if toks.len() < 2 {
                return Err(err(lineno, ".subckt needs a name".into()));
            }
            current = Some(CellBuilder::new(toks[1], &toks[2..]));
            continue;
        }
        if lower.starts_with(".ends") {
            let Some(builder) = current.take() else {
                return Err(err(lineno, ".ends without .subckt".into()));
            };
            pending.push((
                builder.cell.name().to_owned(),
                std::mem::take(&mut cur_pending),
            ));
            lib.add_cell(builder.cell)?;
            continue;
        }
        if lower.starts_with('.') {
            // .global, .end, .option... — accepted and ignored.
            continue;
        }

        let (builder, pend) = match current.as_mut() {
            Some(b) => (b, &mut cur_pending),
            None => {
                top_used = true;
                (&mut top, &mut top_pending)
            }
        };

        let first = toks[0];
        match first.chars().next().map(|c| c.to_ascii_lowercase()) {
            Some('m') => {
                // Mname drain gate source bulk model [w=..] [l=..] [m=..]
                if toks.len() < 6 {
                    return Err(err(
                        lineno,
                        format!("device `{first}` needs 4 nets and a model"),
                    ));
                }
                let d = builder.net(toks[1]);
                let g = builder.net(toks[2]);
                let s = builder.net(toks[3]);
                let b = builder.net(toks[4]);
                let kind = match toks[5].to_ascii_lowercase().as_str() {
                    m if m.starts_with('n') => MosKind::Nmos,
                    m if m.starts_with('p') => MosKind::Pmos,
                    other => return Err(err(lineno, format!("unknown model `{other}`"))),
                };
                let mut w = None;
                let mut l = None;
                let mut fingers = 1u32;
                for t in &toks[6..] {
                    let Some((k, v)) = t.split_once('=') else {
                        return Err(err(lineno, format!("expected key=value, got `{t}`")));
                    };
                    let val = parse_value(v).map_err(|m| err(lineno, m))?;
                    match k.to_ascii_lowercase().as_str() {
                        "w" => w = Some(val),
                        "l" => l = Some(val),
                        "m" => fingers = val as u32,
                        other => return Err(err(lineno, format!("unknown parameter `{other}`"))),
                    }
                }
                let (Some(w), Some(l)) = (w, l) else {
                    return Err(err(lineno, format!("device `{first}` is missing w= or l=")));
                };
                builder.cell.add_device(
                    Device::mos(kind, first, g, d, s, b, w, l).with_fingers(fingers.max(1)),
                );
            }
            Some('c') | Some('r') => {
                if toks.len() < 4 {
                    return Err(err(
                        lineno,
                        format!("passive `{first}` needs 2 nets and a value"),
                    ));
                }
                let a = builder.net(toks[1]);
                let b = builder.net(toks[2]);
                let val = parse_value(toks[3]).map_err(|m| err(lineno, m))?;
                let p = if first.to_ascii_lowercase().starts_with('c') {
                    Passive::capacitor(first, a, b, val)
                } else {
                    Passive::resistor(first, a, b, val)
                };
                builder.cell.add_passive(p);
            }
            Some('x') => {
                if toks.len() < 2 {
                    return Err(err(lineno, format!("instance `{first}` needs a master")));
                }
                let master = toks[toks.len() - 1].to_owned();
                let conns: Vec<String> = toks[1..toks.len() - 1]
                    .iter()
                    .map(|s| (*s).to_owned())
                    .collect();
                // Create the nets now; resolve the master later.
                for c in &conns {
                    builder.net(c);
                }
                pend.push((first.to_owned(), master, conns));
            }
            _ => return Err(err(lineno, format!("unrecognized element `{first}`"))),
        }
    }

    if current.is_some() {
        return Err(NetlistError::Parse {
            line: text.lines().count(),
            message: "missing .ends".into(),
        });
    }

    if top_used {
        pending.push(("top".to_owned(), top_pending));
        lib.add_cell(top.cell)?;
    }

    // Second pass: resolve instances now that every cell exists. We must
    // rebuild the library because cells are immutable once added; instead
    // we rebuilt via a temporary map of extra instances.
    let mut lib2 = Library::new();
    for cell in lib.cells() {
        let mut c2 = cell.clone();
        if let Some((_, insts)) = pending.iter().find(|(n, _)| n == cell.name()) {
            for (iname, master, conns) in insts {
                let master_id = lib
                    .find_cell(master)
                    .ok_or_else(|| NetlistError::UnknownCell(master.clone()))?;
                let connections: Vec<NetId> = conns
                    .iter()
                    .map(|n| c2.find_net(n).expect("net created during first pass"))
                    .collect();
                c2.add_instance(Instance {
                    name: iname.clone(),
                    master: master_id,
                    connections,
                });
            }
        }
        lib2.add_cell(c2)?;
    }
    Ok(lib2)
}

/// Serializes a library back to SPICE text. Instance masters must precede
/// their users, which insertion order already guarantees for parsed
/// libraries.
pub fn write(lib: &Library) -> String {
    let mut out = String::from("* written by cbv-netlist\n");
    for cell in lib.cells() {
        let ports: Vec<&str> = cell.ports().iter().map(|&p| cell.net_name(p)).collect();
        let _ = writeln!(out, ".subckt {} {}", cell.name(), ports.join(" "));
        for d in cell.devices() {
            let model = match d.kind {
                MosKind::Nmos => "nmos",
                MosKind::Pmos => "pmos",
            };
            // SPICE dispatches element type on the first letter.
            let name = if d.name.starts_with(['m', 'M']) {
                d.name.clone()
            } else {
                format!("m_{}", d.name)
            };
            let _ = writeln!(
                out,
                "{} {} {} {} {} {} w={:.6e} l={:.6e} m={}",
                name,
                cell.net_name(d.drain),
                cell.net_name(d.gate),
                cell.net_name(d.source),
                cell.net_name(d.bulk),
                model,
                d.w,
                d.l,
                d.fingers
            );
        }
        for p in cell.passives() {
            let prefix = match p.kind {
                crate::device::PassiveKind::Capacitor => 'c',
                crate::device::PassiveKind::Resistor => 'r',
            };
            let name = if p.name.to_ascii_lowercase().starts_with(prefix) {
                p.name.clone()
            } else {
                format!("{prefix}_{}", p.name)
            };
            let _ = writeln!(
                out,
                "{} {} {} {:.6e}",
                name,
                cell.net_name(p.a),
                cell.net_name(p.b),
                p.value
            );
        }
        for i in cell.instances() {
            let conns: Vec<&str> = i.connections.iter().map(|&c| cell.net_name(c)).collect();
            let master = lib.cell(i.master).name();
            let _ = writeln!(out, "{} {} {}", i.name, conns.join(" "), master);
        }
        let _ = writeln!(out, ".ends");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const INV_BUF: &str = "\
* an inverter and a buffer built from it
.subckt inv a y vdd gnd
mp y a vdd vdd pmos w=4u l=0.35u
mn y a gnd gnd nmos w=2u l=0.35u
.ends
.subckt buf a y vdd gnd
xi0 a m vdd gnd inv
xi1 m y vdd gnd inv
.ends
xtop in out vdd gnd buf
cload out 0 25f
";

    #[test]
    fn parse_value_suffixes() {
        let close = |v: f64, expect: f64| (v / expect - 1.0).abs() < 1e-12;
        assert!(close(parse_value("4u").unwrap(), 4e-6));
        assert!(close(parse_value("10f").unwrap(), 10e-15));
        assert!(close(parse_value("0.35e-6").unwrap(), 0.35e-6));
        assert!(close(parse_value("1meg").unwrap(), 1e6));
        assert!(close(parse_value("2.5k").unwrap(), 2500.0));
        assert!(parse_value("4z").is_err());
        assert!(parse_value("").is_err());
    }

    #[test]
    fn parse_and_flatten() {
        let lib = parse(INV_BUF).unwrap();
        let top = lib.find_cell("top").unwrap();
        let flat = lib.flatten(top).unwrap();
        assert_eq!(flat.devices().len(), 4);
        assert_eq!(flat.passives().len(), 1);
        // Hierarchical names: xtop/xi0/mp etc.
        assert!(flat.devices().iter().any(|d| d.name == "xtop/xi0/mp"));
    }

    #[test]
    fn continuation_lines() {
        let text = ".subckt i a y vdd gnd\nmp y a vdd vdd pmos\n+ w=4u l=0.35u\n.ends\n";
        let lib = parse(text).unwrap();
        let c = lib.cell(lib.find_cell("i").unwrap());
        assert_eq!(c.devices().len(), 1);
        assert_eq!(c.devices()[0].w, 4e-6);
    }

    #[test]
    fn rails_recognized_by_name() {
        let lib = parse("m1 y a 0 0 nmos w=1u l=1u\n").unwrap();
        let top = lib.cell(lib.find_cell("top").unwrap());
        let zero = top.find_net("0").unwrap();
        assert_eq!(top.net_kind(zero), NetKind::Ground);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let lib = parse(INV_BUF).unwrap();
        let text = write(&lib);
        let lib2 = parse(&text).unwrap();
        let f1 = lib.flatten(lib.find_cell("top").unwrap()).unwrap();
        let f2 = lib2.flatten(lib2.find_cell("top").unwrap()).unwrap();
        assert_eq!(f1.devices().len(), f2.devices().len());
        assert_eq!(f1.passives().len(), f2.passives().len());
        assert_eq!(f1.net_count(), f2.net_count());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("q1 a b c\n").unwrap_err();
        match e {
            NetlistError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
        let e = parse(".subckt x a\nmn y a gnd gnd nmos w=1u\n.ends\n").unwrap_err();
        match e {
            NetlistError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("missing"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_master_detected() {
        let e = parse("xi a b ghost\n").unwrap_err();
        assert!(matches!(e, NetlistError::UnknownCell(name) if name == "ghost"));
    }

    #[test]
    fn missing_ends_detected() {
        let e = parse(".subckt x a\n").unwrap_err();
        assert!(matches!(e, NetlistError::Parse { .. }));
    }

    #[test]
    fn fingers_parse_as_m() {
        let lib = parse("m1 y a 0 0 nmos w=8u l=0.35u m=4\n").unwrap();
        let top = lib.cell(lib.find_cell("top").unwrap());
        assert_eq!(top.devices()[0].fingers, 4);
    }
}

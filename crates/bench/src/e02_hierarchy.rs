//! E2 — **Fig 1**: RTL vs schematic hierarchy overlap.
//!
//! The designer partitions logic into RTL blocks by *function* (one block
//! per adder bit); the schematic partitions the same transistors into
//! channel-connected components by *electrical* structure. Fig 1's claim
//! is that these boundaries overlap irregularly — measured here as
//! best-match Jaccard and boundary-crossing fraction.

use cbv_core::gen::datapath::alu_slice;
use cbv_core::recognize::recognize;
use cbv_core::tech::Process;
use cbv_core::views::{partition_overlap, OverlapStats};

/// The two comparisons: a strawman where the schematic mirrors the RTL
/// exactly, and the real electrical partition.
pub struct HierarchyResult {
    /// RTL blocks vs themselves (sanity: perfect overlap).
    pub aligned: OverlapStats,
    /// RTL blocks vs electrical CCC clusters (the Fig 1 situation).
    pub electrical: OverlapStats,
}

/// Derives an "RTL block" label for a net from its generated name — the
/// generator names encode the functional block (`xp3_...` = bit 3 xor).
fn rtl_block_of(name: &str) -> u32 {
    // Bit index digits in the name choose the block; shared nets
    // (clocks, rails) go to block 99.
    name.chars()
        .find(|c| c.is_ascii_digit())
        .map(|c| c.to_digit(10).expect("digit"))
        .unwrap_or(99)
}

/// Runs the overlap measurement on an 8-bit ALU slice.
pub fn run() -> HierarchyResult {
    let p = Process::strongarm_035();
    let g = alu_slice(8, &p);
    let mut netlist = g.netlist;
    let rec = recognize(&mut netlist);

    // Element universe: every net driven by some CCC.
    let mut rtl_labels = Vec::new();
    let mut sch_labels = Vec::new();
    for (ci, ccc) in rec.cccs.iter().enumerate() {
        for &out in &ccc.outputs {
            rtl_labels.push(rtl_block_of(netlist.net_name(out)));
            sch_labels.push(ci as u32);
        }
    }
    // Cluster CCCs: group several CCCs per "schematic sheet" the way a
    // designer would (every 6 components = one sheet), crossing RTL bits.
    let sheet_labels: Vec<u32> = sch_labels.iter().map(|&c| c / 6).collect();

    HierarchyResult {
        aligned: partition_overlap(&rtl_labels, &rtl_labels),
        electrical: partition_overlap(&rtl_labels, &sheet_labels),
    }
}

/// Prints the Fig 1 quantification.
pub fn print() {
    crate::banner("E2", "Fig 1 — RTL vs schematic hierarchy overlap");
    let r = run();
    println!(
        "{:<28}{:>10}{:>10}{:>16}{:>12}",
        "comparison", "blocks A", "blocks B", "mean jaccard", "crossers"
    );
    for (name, s) in [
        ("rtl vs rtl (control)", &r.aligned),
        ("rtl vs schematic", &r.electrical),
    ] {
        println!(
            "{:<28}{:>10}{:>10}{:>16.3}{:>11.1}%",
            name,
            s.groups_a,
            s.groups_b,
            s.mean_best_jaccard,
            s.crossing_fraction() * 100.0
        );
    }
    println!("\n(the schematic is free to cluster across RTL boundaries — Fig 1's");
    println!(" irregular overlap — and the database never forces correspondence)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn electrical_partition_overlaps_irregularly() {
        let r = run();
        assert_eq!(r.aligned.mean_best_jaccard, 1.0);
        assert!(r.electrical.mean_best_jaccard < 0.9, "must be irregular");
        assert!(r.electrical.crossing_elements > 0);
    }
}

//! E17 — the verification daemon under concurrent ECO load.
//!
//! §2 sizes the methodology for "hundreds of designers" iterating
//! against a shared verification filter. E17 measures the service form
//! of that loop: a loopback `cbv-serve` daemon, K clients each
//! streaming an M-step ECO walk over the same seed design, every step
//! answered with an incremental signoff from the shared bounded cache.
//! Reported: request throughput, p50/p99 signoff latency, and the
//! shared-cache hit rate — plus the protocol's headline soundness bit,
//! whether every client's final signoff was byte-identical to an
//! in-process `run_flow_incremental` replay of the same stream.

use std::time::Instant;

use cbv_core::flow::FlowConfig;
use cbv_core::service::FlowService;
use cbv_core::tech::Process;
use cbv_serve::{serve, Client, ServerConfig, Session};
use serde_json::Value;

/// One load point: K clients × M ECO steps against one daemon.
pub struct ServePoint {
    /// Concurrent clients.
    pub clients: usize,
    /// ECO steps (verification requests) per client.
    pub steps: usize,
    /// Worker threads the daemon ran.
    pub workers: usize,
    /// Wall-clock for the whole load, seconds.
    pub wall_s: f64,
    /// Signoffs per second across all clients.
    pub throughput: f64,
    /// Median signoff latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile signoff latency, milliseconds.
    pub p99_ms: f64,
    /// Shared-cache hit rate across every request's everify stage.
    pub hit_rate: f64,
    /// Queue-full rejections clients had to retry through.
    pub retries: usize,
    /// Every client's final signoff matched the in-process replay.
    pub byte_identical: bool,
}

/// The M-step edit stream every client replays: step k width-scales a
/// deterministic device, so all clients walk identical revisions.
pub fn eco_step(step: usize, n_devices: usize) -> String {
    let device = (step * 97 + 13) % n_devices;
    format!(
        "{{\"edit\":\"op\",\"op\":{{\"op\":\"width-scale\",\"factor\":1.02}},\
         \"site\":{{\"site\":\"device\",\"device\":{device}}}}}"
    )
}

/// In-process replay of the same stream — the byte-identity reference.
fn reference_signoff(design: &str, steps: usize) -> String {
    let process = Process::strongarm_035();
    let mut session = Session::open(design, &process).expect("registry design");
    let n_devices = session.netlist().devices().len();
    for step in 0..steps {
        let v: Value = serde_json::from_str(&eco_step(step, n_devices)).expect("edit json");
        let edits = cbv_serve::edits_from_json(&v).expect("edit vocabulary");
        session.apply_batch(&edits).expect("edit applies");
    }
    let service = FlowService::new(process, FlowConfig::default());
    service
        .verify(session.netlist().clone(), None, None)
        .signoff_json
}

struct ClientRun {
    latencies_ms: Vec<f64>,
    hits: usize,
    misses: usize,
    retries: usize,
    final_signoff: String,
}

fn drive_client(addr: std::net::SocketAddr, design: &str, steps: usize) -> ClientRun {
    let mut client = Client::connect(addr).expect("connect");
    let devices = client.open(design).expect("open");
    let mut run = ClientRun {
        latencies_ms: Vec::with_capacity(steps),
        hits: 0,
        misses: 0,
        retries: 0,
        final_signoff: String::new(),
    };
    for step in 0..steps {
        let edit = eco_step(step, devices);
        let t0 = Instant::now();
        let verdict = loop {
            match client.eco(&edit, None) {
                Ok(v) => break v,
                Err(e) if e.is_retryable() => {
                    run.retries += 1;
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(e) => panic!("eco step {step}: {e}"),
            }
        };
        run.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        run.hits += verdict.cache_hits;
        run.misses += verdict.cache_misses;
        run.final_signoff = verdict.signoff_raw;
    }
    run
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

/// Runs one load point: a fresh daemon, `clients` threads each
/// streaming `steps` ECOs over `design`.
pub fn run_load(design: &str, clients: usize, steps: usize, workers: usize) -> ServePoint {
    let server = serve(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("bind loopback daemon");
    let addr = server.addr();
    let reference = reference_signoff(design, steps);

    let t0 = Instant::now();
    let runs: Vec<ClientRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| scope.spawn(move || drive_client(addr, design, steps)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    server.shutdown();

    let mut latencies: Vec<f64> = runs.iter().flat_map(|r| r.latencies_ms.clone()).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let hits: usize = runs.iter().map(|r| r.hits).sum();
    let misses: usize = runs.iter().map(|r| r.misses).sum();
    ServePoint {
        clients,
        steps,
        workers,
        wall_s,
        throughput: (clients * steps) as f64 / wall_s,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        retries: runs.iter().map(|r| r.retries).sum(),
        byte_identical: runs.iter().all(|r| r.final_signoff == reference),
    }
}

/// Prints the E17 table (the EXPERIMENTS.md protocol).
pub fn print() {
    crate::banner(
        "E17",
        "verification daemon under concurrent ECO load (ripple4)",
    );
    println!(
        "{:>8}{:>7}{:>9}{:>10}{:>11}{:>10}{:>10}{:>9}{:>11}",
        "clients", "steps", "workers", "wall", "signoff/s", "p50", "p99", "hits", "identical"
    );
    for (clients, workers) in [(1, 1), (2, 2), (4, 2), (4, 4)] {
        let pt = run_load("ripple4", clients, 6, workers);
        println!(
            "{:>8}{:>7}{:>9}{:>9.2}s{:>11.1}{:>8.1}ms{:>8.1}ms{:>8.0}%{:>11}",
            pt.clients,
            pt.steps,
            pt.workers,
            pt.wall_s,
            pt.throughput,
            pt.p50_ms,
            pt.p99_ms,
            pt.hit_rate * 100.0,
            if pt.byte_identical { "yes" } else { "NO" },
        );
    }
    println!("\n(each client streams the same 6-step width-scale ECO walk over");
    println!(" ripple4; \"hits\" is the shared-cache hit rate across every");
    println!(" request's everify stage; \"identical\" compares every client's");
    println!(" final signoff byte-for-byte against an in-process replay.)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_load_stays_sound_and_warm() {
        let pt = run_load("dcvsl", 2, 2, 2);
        assert_eq!(pt.clients, 2);
        assert!(pt.byte_identical, "remote signoffs must match the replay");
        assert!(pt.throughput > 0.0 && pt.wall_s > 0.0);
        assert!(pt.p99_ms >= pt.p50_ms);
        // Later requests replay revisions earlier ones primed. How many
        // is scheduling-dependent (two racing clients can miss the same
        // unit simultaneously), so only the direction is asserted.
        assert!(
            pt.hit_rate > 0.0,
            "shared cache never hit across {} requests",
            pt.clients * pt.steps
        );
    }
}

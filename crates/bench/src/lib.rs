//! `cbv-bench` — the experiment harness.
//!
//! One module per experiment in DESIGN.md's index (E1–E19), each covering
//! one table, figure or quantitative claim of the paper. Every module
//! exposes a pure `run()`-style function returning the experiment's data;
//! the `src/bin/` binaries print the paper-style tables and the Criterion
//! benches in `benches/` measure the underlying kernels.

pub mod e01_waterfall;
pub mod e02_hierarchy;
pub mod e03_flow;
pub mod e04_noise;
pub mod e05_timing;
pub mod e06_rcgrid;
pub mod e07_throughput;
pub mod e08_equiv;
pub mod e09_leakage;
pub mod e10_pessimism;
pub mod e11_sizing;
pub mod e12_coverage;
pub mod e13_parallel;
pub mod e14_eco;
pub mod e15_trace;
pub mod e16_mutation;
pub mod e17_serve;
pub mod e18_compile;
pub mod e19_farm;

/// Prints a uniform experiment header.
pub fn banner(id: &str, what: &str) {
    println!("==================================================================");
    println!("{id}: {what}");
    println!("==================================================================");
}

//! E19 — the verification farm: signoff throughput vs worker count.
//!
//! §6's methodology runs final verification as a compute-farm job —
//! hundreds of workstations chewing through the checking workload
//! overnight. E19 measures the repo's farm form of that loop: W
//! loopback worker daemons, W designer streams each replaying the same
//! M-step ECO walk through its own coordinator, every coordinator
//! sharing one content-addressed cache tier. The tier is the farm's
//! force multiplier: the first stream to miss a unit pays for it once,
//! every other stream's verify of that revision is a tier hit that
//! never crosses the wire. Reported per load point: aggregate
//! signoff/s, p50/p99 signoff latency, the shared-tier hit rate, wire
//! traffic (remote vs local units, steals, busy retries), and the
//! byte-identity bit against an in-process replay.
//!
//! Honesty note: this host has **one core**, so worker processes are
//! oversubscribed — the scaling measured here comes from the shared
//! cache tier absorbing cross-stream redundancy (architectural, and
//! real on any host), not from parallel compute (which this host
//! cannot exhibit). Concretely, three sharing layers stack: the unit
//! tier (a warm unit never recomputes), prep sharing (W streams of one
//! revision build the serial prep once), and single-flight coalescing
//! (a stream that arrives while another is computing a unit waits for
//! that result instead of dispatching its own — the "coalesced"
//! column). The Amdahl projection at the end extrapolates the measured
//! coordinator-serial fraction to real multi-machine farms like the
//! paper's.

use std::sync::Arc;
use std::time::Instant;

use cbv_core::flow::FlowConfig;
use cbv_core::service::FlowService;
use cbv_core::tech::Process;
use cbv_serve::{serve, Farm, FarmConfig, ServerConfig, Session};
use serde_json::Value;

use crate::e17_serve::eco_step;

/// One load point: W workers serving W concurrent coordinator streams.
pub struct FarmPoint {
    /// Worker daemons (and concurrent designer streams).
    pub workers: usize,
    /// ECO steps per stream.
    pub steps: usize,
    /// Wall-clock for the whole load, seconds.
    pub wall_s: f64,
    /// Aggregate signoffs per second across all streams.
    pub throughput: f64,
    /// Median signoff latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile signoff latency, milliseconds.
    pub p99_ms: f64,
    /// Shared-tier hit rate across every verify's everify stage.
    pub hit_rate: f64,
    /// Unit results fetched over the wire.
    pub remote_units: u64,
    /// Unit results computed by coordinator fallback.
    pub local_units: u64,
    /// Unit results coalesced from another stream's in-flight
    /// computation (single-flight on the shared tier).
    pub coalesced: u64,
    /// Straggler batches stolen.
    pub stolen: u64,
    /// Queue-full rejections retried through with jitter.
    pub busy_retries: u64,
    /// Every stream's final signoff matched the in-process replay.
    pub byte_identical: bool,
}

/// In-process replay of the walk — the byte-identity reference.
fn reference_signoff(design: &str, steps: usize) -> String {
    let process = Process::strongarm_035();
    let mut session = Session::open(design, &process).expect("registry design");
    let n_devices = session.netlist().devices().len();
    for step in 0..steps {
        let v: Value = serde_json::from_str(&eco_step(step, n_devices)).expect("edit json");
        let edits = cbv_serve::edits_from_json(&v).expect("edit vocabulary");
        session.apply_batch(&edits).expect("edit applies");
    }
    let service = FlowService::new(process, FlowConfig::default());
    service
        .verify(session.netlist().clone(), None, None)
        .signoff_json
}

struct StreamRun {
    latencies_ms: Vec<f64>,
    hits: u64,
    misses: u64,
    final_signoff: String,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

/// Runs one load point: `workers` daemons, `workers` streams, `steps`
/// ECOs each, one shared cache tier.
pub fn run_farm_load(design: &str, workers: usize, steps: usize) -> FarmPoint {
    let daemons: Vec<_> = (0..workers)
        .map(|_| serve(ServerConfig::default()).expect("bind worker daemon"))
        .collect();
    let addrs: Vec<String> = daemons.iter().map(|d| d.addr().to_string()).collect();
    let service = Arc::new(FlowService::new(
        Process::strongarm_035(),
        FlowConfig::default(),
    ));
    let process = Process::strongarm_035();
    let n_devices = Session::open(design, &process)
        .expect("registry design")
        .netlist()
        .devices()
        .len();
    let reference = reference_signoff(design, steps);

    // Stream-farm stats accumulate per farm; collect them via a second
    // channel: each stream returns its verify-level numbers, the farms'
    // wire counters are summed after the scope joins.
    let wire = std::sync::Mutex::new((0u64, 0u64, 0u64, 0u64, 0u64));
    let t0 = Instant::now();
    let runs: Vec<StreamRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let farm = Farm::new(
                        Arc::clone(&service),
                        FarmConfig {
                            workers: addrs.clone(),
                            ..FarmConfig::default()
                        },
                    );
                    let mut run = StreamRun {
                        latencies_ms: Vec::with_capacity(steps),
                        hits: 0,
                        misses: 0,
                        final_signoff: String::new(),
                    };
                    let mut prefix: Vec<String> = Vec::with_capacity(steps);
                    for step in 0..steps {
                        prefix.push(eco_step(step, n_devices));
                        let t = Instant::now();
                        let (_report, verdict) = farm.verify(design, &prefix).expect("farm verify");
                        run.latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
                        run.hits += verdict.cache.remote_hits as u64;
                        run.misses += verdict.cache.remote_misses as u64;
                        run.final_signoff = verdict.signoff_json;
                    }
                    let s = farm.stats();
                    let mut w = wire.lock().expect("wire stats");
                    w.0 += s.remote_units;
                    w.1 += s.local_units;
                    w.2 += s.stolen_batches;
                    w.3 += s.busy_retries;
                    w.4 += s.coalesced_units;
                    run
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stream thread"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    for d in daemons {
        d.shutdown();
    }

    let mut latencies: Vec<f64> = runs.iter().flat_map(|r| r.latencies_ms.clone()).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let hits: u64 = runs.iter().map(|r| r.hits).sum();
    let misses: u64 = runs.iter().map(|r| r.misses).sum();
    let (remote_units, local_units, stolen, busy_retries, coalesced) =
        *wire.lock().expect("wire stats");
    FarmPoint {
        workers,
        steps,
        wall_s,
        throughput: (workers * steps) as f64 / wall_s,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        remote_units,
        local_units,
        coalesced,
        stolen,
        busy_retries,
        byte_identical: runs.iter().all(|r| r.final_signoff == reference),
    }
}

/// Amdahl fit from two measured points: the serial (coordinator-side)
/// fraction `s` such that `speedup(w) = 1 / (s + (1 - s) / w)` matches
/// the measured W-vs-1 throughput ratio.
pub fn serial_fraction(speedup: f64, workers: f64) -> f64 {
    // speedup = 1 / (s + (1-s)/w)  =>  s = (w/speedup - 1) / (w - 1)
    ((workers / speedup - 1.0) / (workers - 1.0)).clamp(0.0, 1.0)
}

/// The projected speedup at `n` workers under the fitted fraction.
pub fn amdahl(s: f64, n: f64) -> f64 {
    1.0 / (s + (1.0 - s) / n)
}

/// Prints the E19 table and the farm-scaling projection
/// (the EXPERIMENTS.md protocol).
pub fn print() {
    crate::banner(
        "E19",
        "verification farm: signoff/s vs worker count (ripple4)",
    );
    // Discarded warmup so the W=1 row (which runs first) is not
    // penalized by process cold-start.
    run_farm_load("ripple4", 1, 2);
    println!(
        "{:>8}{:>7}{:>10}{:>11}{:>10}{:>10}{:>9}{:>8}{:>10}{:>11}",
        "workers",
        "steps",
        "wall",
        "signoff/s",
        "p50",
        "p99",
        "tier",
        "wire",
        "coalesced",
        "identical"
    );
    let mut base = None;
    let mut at4 = None;
    for workers in [1usize, 2, 4, 8] {
        let pt = run_farm_load("ripple4", workers, 6);
        println!(
            "{:>8}{:>7}{:>9.2}s{:>11.2}{:>8.1}ms{:>8.1}ms{:>8.0}%{:>8}{:>10}{:>11}",
            pt.workers,
            pt.steps,
            pt.wall_s,
            pt.throughput,
            pt.p50_ms,
            pt.p99_ms,
            pt.hit_rate * 100.0,
            pt.remote_units,
            pt.coalesced,
            if pt.byte_identical { "yes" } else { "NO" },
        );
        if workers == 1 {
            base = Some(pt.throughput);
        }
        if workers == 4 {
            at4 = Some(pt.throughput);
        }
    }
    let (t1, t4) = (base.expect("w=1 ran"), at4.expect("w=4 ran"));
    let s = serial_fraction(t4 / t1, 4.0);
    println!("\n(W workers serve W concurrent streams replaying the same 6-step");
    println!(" walk through one shared content-addressed tier; \"tier\" is the");
    println!(" shared-tier hit rate, \"wire\" the unit results that actually");
    println!(" crossed a socket, \"coalesced\" the units answered by waiting on");
    println!(" another stream's in-flight computation. One-core host: scaling");
    println!(" comes from the tier, prep sharing and single-flight absorbing");
    println!(" cross-stream redundancy, not parallel compute.)");
    println!("\nfarm-scaling projection (Amdahl, fitted serial fraction s = {s:.3}):");
    println!("{:>10}{:>12}{:>16}", "workers", "speedup", "signoff/day");
    for n in [1.0, 4.0, 8.0, 16.0, 100.0] {
        let sp = amdahl(s, n);
        println!("{n:>10.0}{sp:>12.2}{:>16.0}", t1 * sp * 86_400.0);
    }
    println!("\n(the 100-worker row is the paper's overnight-farm regime: §6 runs");
    println!(" final verification across hundreds of workstations; the projection");
    println!(" assumes independent CPUs, which this one-core host cannot show.)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn farm_load_stays_sound_and_warm() {
        // ripple4, not dcvsl: the walk must dirty a strict subset of
        // the units or the shared tier has nothing to answer.
        let pt = run_farm_load("ripple4", 2, 2);
        assert_eq!(pt.workers, 2);
        assert!(pt.byte_identical, "farm signoffs must match the replay");
        assert!(pt.throughput > 0.0 && pt.wall_s > 0.0);
        assert!(pt.p99_ms >= pt.p50_ms);
        assert!(
            pt.hit_rate > 0.0,
            "shared tier never hit across {} verifies",
            pt.workers * pt.steps
        );
    }

    #[test]
    fn amdahl_fit_recovers_the_serial_fraction() {
        for s in [0.05, 0.25, 0.5] {
            let speedup = amdahl(s, 4.0);
            let fitted = serial_fraction(speedup, 4.0);
            assert!((fitted - s).abs() < 1e-9, "s={s} fitted={fitted}");
        }
        // Degenerate ratios clamp instead of exploding.
        assert_eq!(serial_fraction(5.0, 4.0), 0.0);
        assert_eq!(serial_fraction(0.5, 4.0), 1.0);
    }
}

//! E8 — §4.1 equivalence checking across liberal reimplementation.
//!
//! Three demonstrations:
//!
//! * the paper's own example — a mod-5 counter vs a one-hot shift
//!   register — proved equivalent by product-machine reachability;
//! * a transistor-level domino stage proved against its single-output
//!   RTL function (the "dual-rail, precharge-discharge" mapping);
//! * BDD-based combinational equivalence of two structurally different
//!   adders.

use std::time::Instant;

use cbv_core::bdd::Bdd;
use cbv_core::equiv::comb::{boolnet_to_bdds, VarTable};
use cbv_core::equiv::{check_circuit_outputs, check_sequential, CombResult, OutputSpec, SeqResult};
use cbv_core::netlist::{Device, FlatNetlist, NetKind};
use cbv_core::recognize::recognize;
use cbv_core::rtl::{blast::blast, compile};
use cbv_core::tech::MosKind;

/// Results of the three checks.
pub struct EquivResult {
    /// Joint states explored proving counter ⇔ shifter.
    pub seq_states: usize,
    /// Seconds for the sequential proof.
    pub seq_seconds: f64,
    /// Whether the domino stage matched its RTL function.
    pub domino_equivalent: bool,
    /// Whether the two adders' BDDs coincided.
    pub adders_equivalent: bool,
    /// BDD nodes after building both adders.
    pub bdd_nodes: usize,
}

/// Runs all three checks.
pub fn run() -> EquivResult {
    // --- Sequential: the paper's counter example ---
    let counter = compile(
        "module tick5(clock ck, in rst, out tick) {\n\
           reg cnt[3];\n\
           at posedge(ck) { if (rst) { cnt <= 0; } else if (cnt == 4) { cnt <= 0; } else { cnt <= cnt + 1; } }\n\
           assign tick = cnt == 4;\n\
         }",
        "tick5",
    )
    .expect("compiles");
    let shifter = compile(
        "module tick5(clock ck, in rst, out tick) {\n\
           reg s[5] = 1;\n\
           at posedge(ck) { if (rst) { s <= 1; } else { s <= {s[3:0], s[4]}; } }\n\
           assign tick = s[4];\n\
         }",
        "tick5",
    )
    .expect("compiles");
    let t0 = Instant::now();
    let seq = check_sequential(&counter, &shifter, &["tick"], 100_000).expect("comparable");
    let seq_seconds = t0.elapsed().as_secs_f64();
    let seq_states = match seq {
        SeqResult::Equivalent { states_explored } => states_explored,
        other => panic!("counter/shifter must be equivalent: {other:?}"),
    };

    // --- Transistor domino AND3 vs its RTL function ---
    let mut f = FlatNetlist::new("dom3");
    let clk = f.add_net("clk", NetKind::Clock);
    let ins: Vec<_> = (0..3)
        .map(|i| f.add_net(&format!("i{i}[0]"), NetKind::Input))
        .collect();
    let d = f.add_net("dynn", NetKind::Output);
    let vdd = f.add_net("vdd", NetKind::Power);
    let gnd = f.add_net("gnd", NetKind::Ground);
    f.add_device(Device::mos(
        MosKind::Pmos,
        "pre",
        clk,
        d,
        vdd,
        vdd,
        3e-6,
        0.35e-6,
    ));
    let mut prev = d;
    for (i, &a) in ins.iter().enumerate() {
        let nxt = f.add_net(&format!("s{i}"), NetKind::Signal);
        f.add_device(Device::mos(
            MosKind::Nmos,
            format!("m{i}"),
            a,
            prev,
            nxt,
            gnd,
            4e-6,
            0.35e-6,
        ));
        prev = nxt;
    }
    f.add_device(Device::mos(
        MosKind::Nmos,
        "foot",
        clk,
        prev,
        gnd,
        gnd,
        6e-6,
        0.35e-6,
    ));
    let rec = recognize(&mut f);
    let golden_rtl = compile(
        "module g(in i0, in i1, in i2, out y) { assign y = i0 & i1 & i2; }",
        "g",
    )
    .expect("compiles");
    let gnet = blast(&golden_rtl).expect("blasts");
    let mut mgr = Bdd::new();
    let mut vars = VarTable::default();
    let gout = boolnet_to_bdds(&gnet, &mut mgr, &mut vars).expect("combinational");
    let golden = gout.iter().find(|(n, _)| n == "y").expect("y").1[0];
    let domino = check_circuit_outputs(
        &f,
        &rec,
        &[OutputSpec {
            net: "dynn".into(),
            golden,
            complemented: true,
        }],
        &mut mgr,
        &mut vars,
    )
    .expect("check runs");
    let domino_equivalent = domino[0].1 == CombResult::Equivalent;

    // --- Two adders, structurally different ---
    let a = compile(
        "module m(in a[8], in b[8], out s[8]) { assign s = a + b; }",
        "m",
    )
    .expect("compiles");
    let b = {
        // Carry-select-ish restructuring: low nibble + both high options.
        let src = "module m(in a[8], in b[8], out s[8]) {\n\
             wire lo[5] = {1'b0, a[3:0]} + b[3:0];\n\
             wire hi0[4] = a[7:4] + b[7:4];\n\
             wire hi1[4] = a[7:4] + b[7:4] + 1;\n\
             assign s = {lo[4] ? hi1 : hi0, lo[3:0]};\n\
           }";
        compile(src, "m").expect("compiles")
    };
    let na = blast(&a).expect("blasts");
    let nb = blast(&b).expect("blasts");
    let oa = boolnet_to_bdds(&na, &mut mgr, &mut vars).expect("combinational");
    let ob = boolnet_to_bdds(&nb, &mut mgr, &mut vars).expect("combinational");
    let adders_equivalent = oa.iter().find(|(n, _)| n == "s").expect("s").1
        == ob.iter().find(|(n, _)| n == "s").expect("s").1;

    EquivResult {
        seq_states,
        seq_seconds,
        domino_equivalent,
        adders_equivalent,
        bdd_nodes: mgr.node_count(),
    }
}

/// Prints the results.
pub fn print() {
    crate::banner("E8", "§4.1 — equivalence across liberal reimplementation");
    let r = run();
    println!(
        "counter vs one-hot shifter:  EQUIVALENT  ({} joint states, {:.2} ms)",
        r.seq_states,
        r.seq_seconds * 1e3
    );
    println!(
        "domino AND3 vs RTL a&b&c:    {}",
        if r.domino_equivalent {
            "EQUIVALENT (complement-rail mapping)"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "ripple vs carry-select +:    {}  ({} BDD nodes total)",
        if r.adders_equivalent {
            "EQUIVALENT (canonical BDDs coincide)"
        } else {
            "MISMATCH"
        },
        r.bdd_nodes
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_prove_equivalent() {
        let r = run();
        assert!(r.seq_states >= 5);
        assert!(r.domino_equivalent);
        assert!(r.adders_equivalent);
    }
}

//! E9 — §3 standby leakage vs selective channel lengthening.
//!
//! "devices in the cache arrays, the pad drivers, and certain other areas
//! were lengthened by 0.045µm or 0.09µm ... below the 20mW specification
//! in the fastest process corner."

use cbv_core::netlist::{Device, FlatNetlist, NetKind};
use cbv_core::power::{standby_analysis, LengtheningPolicy};
use cbv_core::tech::units::milliwatts;
use cbv_core::tech::{Corner, CornerKind, MosKind, Process, Watts};

/// One point of the ΔL × corner matrix.
pub struct LeakagePoint {
    /// Channel lengthening in µm.
    pub delta_l_um: f64,
    /// Corner.
    pub corner: CornerKind,
    /// Standby power after lengthening.
    pub standby: Watts,
    /// Whether the 20 mW spec is met.
    pub meets_spec: bool,
}

/// A chip-scale leaky-device population: cache columns and pad drivers
/// aggregated to ~5 meters of total gate width, matching a mid-90s
/// full-custom CPU's off-state perimeter.
fn leaky_chip(process: &Process) -> FlatNetlist {
    let mut f = FlatNetlist::new("standby_chip");
    let gnd = f.add_net("gnd", NetKind::Ground);
    let wl = f.add_net("wl", NetKind::Input);
    let bit = f.add_net("bit", NetKind::Signal);
    let l = process.l_min().meters();
    // 40k aggregated cache columns at 100 µm each ≈ 4 m of width.
    for i in 0..40_000 {
        f.add_device(Device::mos(
            MosKind::Nmos,
            format!("cache_col{i}"),
            wl,
            bit,
            gnd,
            gnd,
            100e-6,
            l,
        ));
    }
    // Pad drivers: 64 pads at ~8 mm/1000 µm... keep 64 × 1 mm.
    let vdd = f.add_net("vdd", NetKind::Power);
    for i in 0..64 {
        f.add_device(Device::mos(
            MosKind::Nmos,
            format!("pad_n{i}"),
            wl,
            bit,
            gnd,
            gnd,
            1000e-6,
            l,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            format!("pad_p{i}"),
            wl,
            bit,
            vdd,
            vdd,
            2000e-6,
            l,
        ));
    }
    f
}

/// Runs the ΔL × corner sweep.
pub fn run() -> Vec<LeakagePoint> {
    let p = Process::strongarm_035();
    let spec = milliwatts(20.0);
    let mut out = Vec::new();
    for delta_um in [0.0, 0.045, 0.090] {
        for kind in CornerKind::ALL {
            let corner = Corner::of(kind, &p);
            let mut chip = leaky_chip(&p);
            let r = standby_analysis(
                &mut chip,
                &p,
                &corner,
                &LengtheningPolicy::selective(&["cache", "pad"], delta_um * 1e-6),
                spec,
            );
            out.push(LeakagePoint {
                delta_l_um: delta_um,
                corner: kind,
                standby: r.after,
                meets_spec: r.meets_spec,
            });
        }
    }
    out
}

/// Prints the matrix.
pub fn print() {
    crate::banner(
        "E9",
        "§3 — standby leakage vs channel lengthening (20 mW spec)",
    );
    println!(
        "{:>10}{:>14}{:>14}{:>12}",
        "dL um", "corner", "standby mW", "spec"
    );
    for pt in run() {
        println!(
            "{:>10.3}{:>14}{:>14.2}{:>12}",
            pt.delta_l_um,
            format!("{:?}", pt.corner),
            pt.standby.watts() * 1e3,
            if pt.meets_spec { "MEETS" } else { "FAILS" }
        );
    }
    println!("\n(the paper's fix in miniature: at the fastest corner the bare");
    println!(" low-Vt devices blow the budget; +0.045/0.09 um recovers it)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_corner_fails_until_lengthened() {
        let pts = run();
        let at = |dl: f64, c: CornerKind| {
            pts.iter()
                .find(|p| (p.delta_l_um - dl).abs() < 1e-9 && p.corner == c)
                .expect("point exists")
        };
        assert!(
            !at(0.0, CornerKind::FastFast).meets_spec,
            "bare fast corner must fail: {}",
            at(0.0, CornerKind::FastFast).standby
        );
        assert!(at(0.090, CornerKind::FastFast).meets_spec);
    }

    #[test]
    fn leakage_monotone_in_delta_l() {
        let pts = run();
        let fast: Vec<f64> = pts
            .iter()
            .filter(|p| p.corner == CornerKind::FastFast)
            .map(|p| p.standby.watts())
            .collect();
        assert!(fast[0] > fast[1] && fast[1] > fast[2]);
        // Superlinear: 0.09 um buys far more than 2x of 0.045 um's gain.
        assert!(fast[0] / fast[2] > 5.0 * (fast[0] / fast[1]).min(10.0) / 10.0);
    }
}

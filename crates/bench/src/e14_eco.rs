//! E14 — incremental verification across an ECO loop.
//!
//! §2.3 frames the CAD tools as a filter the designer iterates against:
//! run the battery, fix what it flags, run again. Between iterations of
//! that loop almost nothing changes — one resized device, one rewired
//! gate — yet a cold flow re-verifies all of it. This experiment
//! measures what the content-fingerprinted cache (`cbv-cache`) buys in
//! that loop: an N-step ECO walk over a 16-bit ALU slice where each
//! step perturbs one device and re-runs `run_flow_incremental`,
//! comparing everify+timing compute against a cold `run_flow` of the
//! same edited design.
//!
//! Soundness rides along: at every step the incremental signoff JSON is
//! compared byte-for-byte against the cold run's (the same contract
//! `tests/incremental.rs` enforces, here across a whole edit sequence).

use cbv_core::cache::VerifyCache;
use cbv_core::flow::{run_flow, run_flow_incremental, FlowConfig, FlowReport};
use cbv_core::gen::datapath::alu_slice;
use cbv_core::netlist::DeviceId;
use cbv_core::tech::Process;

/// One step of the ECO walk.
pub struct EcoPoint {
    /// Which device was perturbed this step.
    pub device: usize,
    /// everify+timing compute of the cold flow, seconds.
    pub cold_verify_cpu: f64,
    /// everify+timing compute of the incremental flow, seconds.
    pub warm_verify_cpu: f64,
    /// Units re-verified (everify stage misses).
    pub reverified: usize,
    /// Units replayed from cache (everify stage hits).
    pub replayed: usize,
    /// Incremental signoff JSON was byte-identical to the cold run's.
    pub byte_identical: bool,
}

impl EcoPoint {
    /// Compute saved on the verification stages, as a ratio.
    pub fn speedup(&self) -> f64 {
        self.cold_verify_cpu / self.warm_verify_cpu
    }
}

fn verify_cpu(report: &FlowReport) -> f64 {
    report
        .stages
        .iter()
        .filter(|s| s.stage == "everify" || s.stage == "timing")
        .map(|s| s.cpu_time.seconds())
        .sum()
}

fn signoff_json(report: &FlowReport) -> String {
    serde_json::to_string(&report.signoff).expect("signoff serializes")
}

/// Runs a `steps`-edit ECO walk over a `width`-bit ALU slice.
///
/// The cache is primed once on the unedited design (the designer's
/// first full run), then each step widens a different device by 5 % and
/// re-verifies both ways.
pub fn run_walk(width: u32, steps: usize) -> Vec<EcoPoint> {
    let process = Process::strongarm_035();
    let config = FlowConfig::default();
    let base = alu_slice(width, &process).netlist;

    let mut cache = VerifyCache::new();
    run_flow_incremental(base.clone(), &process, &config, &mut cache);

    let n_devices = base.devices().len();
    let mut netlist = base;
    let mut points = Vec::with_capacity(steps);
    for step in 0..steps {
        // Spread the edits across the slice so each step dirties a
        // different CCC neighbourhood.
        let device = (step * 97 + 13) % n_devices;
        netlist.device_mut(DeviceId(device as u32)).w *= 1.05;

        let cold = run_flow(netlist.clone(), &process, &config);
        let warm = run_flow_incremental(netlist.clone(), &process, &config, &mut cache);
        let stats = warm
            .stages
            .iter()
            .find(|s| s.stage == "everify")
            .and_then(|s| s.cache)
            .expect("incremental everify reports cache stats");
        points.push(EcoPoint {
            device,
            cold_verify_cpu: verify_cpu(&cold),
            warm_verify_cpu: verify_cpu(&warm),
            reverified: stats.misses,
            replayed: stats.hits,
            byte_identical: signoff_json(&warm) == signoff_json(&cold),
        });
    }
    points
}

/// Prints the E14 table (the EXPERIMENTS.md protocol).
pub fn print() {
    crate::banner(
        "E14",
        "incremental verification across an ECO loop (16-bit ALU slice)",
    );
    let points = run_walk(16, 8);
    println!(
        "{:>6}{:>8}{:>12}{:>12}{:>12}{:>10}{:>11}",
        "step", "device", "cold cpu", "warm cpu", "reverified", "speedup", "identical"
    );
    for (i, pt) in points.iter().enumerate() {
        println!(
            "{:>6}{:>8}{:>10.2}ms{:>10.2}ms{:>6} of {:<4}{:>9.1}x{:>11}",
            i,
            pt.device,
            pt.cold_verify_cpu * 1e3,
            pt.warm_verify_cpu * 1e3,
            pt.reverified,
            pt.reverified + pt.replayed,
            pt.speedup(),
            if pt.byte_identical { "yes" } else { "NO" },
        );
    }
    let gmean = (points.iter().map(|p| p.speedup().ln()).sum::<f64>() / points.len() as f64).exp();
    println!("\ngeomean verify-stage speedup: {gmean:.1}x");
    println!("(cold cpu = everify+timing compute of run_flow on the edited");
    println!(" design; warm cpu = same stages under run_flow_incremental with");
    println!(" the cache primed by the previous step. \"identical\" compares");
    println!(" the two signoff JSONs byte-for-byte.)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_stays_sound_and_mostly_cached() {
        // Small width keeps this cheap; headline numbers use width 16.
        let pts = run_walk(4, 2);
        assert_eq!(pts.len(), 2);
        for pt in &pts {
            assert!(pt.byte_identical, "incremental signoff must match cold");
            assert!(pt.reverified >= 1, "an edit dirties at least one unit");
            assert!(
                pt.replayed > pt.reverified,
                "most units replay from cache ({} hit vs {} miss)",
                pt.replayed,
                pt.reverified
            );
            assert!(pt.cold_verify_cpu > 0.0 && pt.warm_verify_cpu > 0.0);
        }
    }
}

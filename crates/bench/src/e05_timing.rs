//! E5 — **Fig 4**: critical paths and races under two-phase clocking,
//! with correlated vs uncorrelated min/max analysis.
//!
//! Part A sweeps the cycle time on an 8-bit two-phase accumulator and
//! counts critical-path (setup) violations. Part B builds the classic
//! race structure — same-phase latch-to-latch min paths — and shows how
//! uncorrelated min/max skew analysis manufactures false races that the
//! paper's correlated analysis removes.

use cbv_core::extract::extract;
use cbv_core::gen::datapath::alu_slice;
use cbv_core::gen::gates::{add_inverter, Sizing};
use cbv_core::layout::synthesize;
use cbv_core::netlist::{Device, FlatNetlist, NetKind};
use cbv_core::recognize::recognize;
use cbv_core::tech::units::nanoseconds;
use cbv_core::tech::{MosKind, Process, Seconds, Tolerance};
use cbv_core::timing::{
    analyze, graph::build_graph, infer_constraints, ClockSchedule, ClockSkew, DelayCalc, Pessimism,
    ViolationKind,
};

/// One row of the setup sweep.
pub struct SetupPoint {
    /// Cycle time in ns.
    pub period_ns: f64,
    /// Setup (critical-path) violations.
    pub setups: usize,
    /// Worst setup slack, seconds.
    pub worst_slack: Seconds,
}

/// Part A: cycle-time sweep on the two-phase ALU.
pub fn setup_sweep() -> Vec<SetupPoint> {
    let p = Process::strongarm_035();
    let g = alu_slice(8, &p);
    let mut netlist = g.netlist;
    let rec = recognize(&mut netlist);
    let layout = synthesize(&mut netlist, &p);
    let ex = extract(&layout, &netlist, &p);
    let pess = Pessimism::signoff();
    let calc = DelayCalc::new(&p, Tolerance::conservative(), pess);
    let graph = build_graph(&netlist, &rec, &ex, &calc);
    let constraints = infer_constraints(&netlist, &rec, &p, &pess);

    [250.0, 120.0, 60.0, 25.0]
        .into_iter()
        .map(|period_ns| {
            let schedule = ClockSchedule::two_phase(
                "phi1",
                "phi2",
                nanoseconds(period_ns),
                nanoseconds(period_ns * 0.04),
            );
            let report = analyze(&netlist, &graph, &constraints, &schedule, &pess, &[]);
            SetupPoint {
                period_ns,
                setups: report.of_kind(ViolationKind::Setup).count(),
                worst_slack: report.worst_setup_slack().unwrap_or(Seconds::ZERO),
            }
        })
        .collect()
}

/// One row of the race study.
pub struct RacePoint {
    /// Buffers between the same-phase latches.
    pub buffers: usize,
    /// Races under correlated min/max analysis.
    pub races_correlated: usize,
    /// Races under uncorrelated analysis.
    pub races_uncorrelated: usize,
}

/// Builds a same-phase latch-to-latch path with `k` buffering inverters —
/// the Fig 4 race structure — and analyzes it both ways under a skewed
/// clock.
fn race_chain(k: usize) -> (FlatNetlist, Vec<cbv_core::netlist::NetId>) {
    let p = Process::strongarm_035();
    let s = Sizing::standard(&p, 1.0);
    let mut f = FlatNetlist::new(format!("race{k}"));
    let vdd = f.add_net("vdd", NetKind::Power);
    let gnd = f.add_net("gnd", NetKind::Ground);
    let ck = f.add_net("ck", NetKind::Clock);
    let ckb = f.add_net("ckb", NetKind::Clock);
    let d = f.add_net("d", NetKind::Input);
    // Launch latch.
    let add_latch = |f: &mut FlatNetlist, name: &str, din, qout| {
        let x = f.add_net(&format!("{name}_x"), NetKind::Signal);
        let qb = f.add_net(&format!("{name}_qb"), NetKind::Signal);
        f.add_device(Device::mos(
            MosKind::Nmos,
            format!("{name}_pass"),
            ck,
            din,
            x,
            gnd,
            4.0 * s.wn,
            s.l,
        ));
        add_inverter(f, &format!("{name}_fwd"), x, qb, vdd, gnd, s);
        add_inverter(f, &format!("{name}_out"), qb, qout, vdd, gnd, s);
        f.add_device(Device::mos(
            MosKind::Nmos,
            format!("{name}_fbk"),
            ckb,
            qout,
            x,
            gnd,
            0.5 * s.wn,
            2.0 * s.l,
        ));
    };
    let q1 = f.add_net("q1", NetKind::Signal);
    add_latch(&mut f, "la", d, q1);
    let mut prev = q1;
    for i in 0..k {
        let n = f.add_net(&format!("b{i}"), NetKind::Signal);
        add_inverter(&mut f, &format!("buf{i}"), prev, n, vdd, gnd, s);
        prev = n;
    }
    let q2 = f.add_net("q2", NetKind::Output);
    add_latch(&mut f, "lb", prev, q2);
    let clocks = vec![ck, ckb];
    (f, clocks)
}

/// Part B: same-phase race counts vs buffering depth, correlated vs
/// uncorrelated skew analysis.
pub fn race_study() -> Vec<RacePoint> {
    let p = Process::strongarm_035();
    [2usize, 4, 8, 16, 40]
        .into_iter()
        .map(|k| {
            let (mut netlist, clocks) = race_chain(k);
            let rec = recognize(&mut netlist);
            let layout = synthesize(&mut netlist, &p);
            let ex = extract(&layout, &netlist, &p);
            let skews: Vec<ClockSkew> = clocks
                .iter()
                .map(|&c| ClockSkew {
                    net: c,
                    min: Seconds::new(5e-12),
                    max: Seconds::new(250e-12),
                })
                .collect();
            let schedule = ClockSchedule::single("ck", nanoseconds(20.0));
            let mut races = [0usize; 2];
            for (slot, correlated) in [(0usize, true), (1, false)] {
                let mut pess = Pessimism::signoff();
                pess.correlated = correlated;
                let calc = DelayCalc::new(&p, Tolerance::conservative(), pess);
                let graph = build_graph(&netlist, &rec, &ex, &calc);
                let constraints = infer_constraints(&netlist, &rec, &p, &pess);
                let report = analyze(&netlist, &graph, &constraints, &schedule, &pess, &skews);
                races[slot] = report.of_kind(ViolationKind::Race).count();
            }
            RacePoint {
                buffers: k,
                races_correlated: races[0],
                races_uncorrelated: races[1],
            }
        })
        .collect()
}

/// Prints both tables.
pub fn print() {
    crate::banner("E5", "Fig 4 — critical paths and races");
    println!("critical paths: cycle-time sweep on the two-phase accumulator");
    println!(
        "{:>12}{:>10}{:>18}",
        "period ns", "setups", "worst slack ps"
    );
    for pt in setup_sweep() {
        println!(
            "{:>12.0}{:>10}{:>18.0}",
            pt.period_ns,
            pt.setups,
            pt.worst_slack.seconds() * 1e12
        );
    }
    println!("\nraces: same-phase latch-to-latch min paths, 250 ps clock spread");
    println!(
        "{:>10}{:>16}{:>18}",
        "buffers", "races (corr)", "races (uncorr)"
    );
    for pt in race_study() {
        println!(
            "{:>10}{:>16}{:>18}",
            pt.buffers, pt.races_correlated, pt.races_uncorrelated
        );
    }
    println!("\n(\"Critical paths will limit the clock frequency ... race paths");
    println!(" will prevent the chip from working at any frequency\"; uncorrelated");
    println!(" min/max charges the skew window everywhere and cries wolf)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shorter_cycles_create_setup_violations() {
        let pts = setup_sweep();
        assert_eq!(
            pts[0].setups, 0,
            "250 ns must close: {:?}",
            pts[0].worst_slack
        );
        assert!(pts.last().unwrap().setups > 0, "25 ns must fail");
    }

    #[test]
    fn uncorrelated_analysis_cries_wolf() {
        let pts = race_study();
        let corr: usize = pts.iter().map(|p| p.races_correlated).sum();
        let uncorr: usize = pts.iter().map(|p| p.races_uncorrelated).sum();
        assert!(
            uncorr > corr,
            "uncorrelated must flag more: {uncorr} vs {corr}"
        );
        assert_eq!(corr, 0, "these paths are safe on a real (correlated) die");
        // Deep buffering protects even the pessimistic analysis.
        assert_eq!(pts.last().unwrap().races_uncorrelated, 0);
    }
}

//! E11 — §2.2 automatic path sizing.
//!
//! "Transistors are sized either by the designer or by using automatic
//! path sizing techniques." The optimizer takes a chain of raw unsized
//! gates (what logic synthesis would emit) and tapers it toward the
//! logical-effort optimum; measured as delay before/after over a load
//! sweep.

use cbv_core::netlist::{Device, DeviceId, FlatNetlist, NetKind};
use cbv_core::tech::{Farads, MosKind, Process};
use cbv_core::timing::size_path;

/// One load point.
pub struct SizingPoint {
    /// Load in fF.
    pub load_ff: f64,
    /// Chain delay before sizing, ps.
    pub before_ps: f64,
    /// Chain delay after sizing, ps.
    pub after_ps: f64,
    /// Speedup.
    pub speedup: f64,
    /// The stage scale factors chosen.
    pub scales: Vec<f64>,
}

fn raw_chain(n: usize, process: &Process) -> (FlatNetlist, Vec<Vec<DeviceId>>) {
    let mut f = FlatNetlist::new("chain");
    let l = process.l_min().meters();
    let vdd = f.add_net("vdd", NetKind::Power);
    let gnd = f.add_net("gnd", NetKind::Ground);
    let mut prev = f.add_net("in", NetKind::Input);
    let mut stages = Vec::new();
    for i in 0..n {
        let out = f.add_net(&format!("n{i}"), NetKind::Signal);
        let p = f.add_device(Device::mos(
            MosKind::Pmos,
            format!("p{i}"),
            prev,
            out,
            vdd,
            vdd,
            2.0 * l * process.balanced_beta(),
            l,
        ));
        let nd = f.add_device(Device::mos(
            MosKind::Nmos,
            format!("n{i}"),
            prev,
            out,
            gnd,
            gnd,
            2.0 * l,
            l,
        ));
        stages.push(vec![p, nd]);
        prev = out;
    }
    (f, stages)
}

/// Sizes a 5-stage raw chain into loads from 10 fF to 1 pF.
pub fn run() -> Vec<SizingPoint> {
    let p = Process::strongarm_035();
    [10.0, 50.0, 200.0, 1000.0]
        .into_iter()
        .map(|load_ff| {
            let (mut f, stages) = raw_chain(5, &p);
            let r = size_path(&mut f, &stages, Farads::new(load_ff * 1e-15), &p);
            SizingPoint {
                load_ff,
                before_ps: r.delay_before.seconds() * 1e12,
                after_ps: r.delay_after.seconds() * 1e12,
                speedup: r.delay_before.seconds() / r.delay_after.seconds(),
                scales: r.stage_scale,
            }
        })
        .collect()
}

/// Prints the sizing table.
pub fn print() {
    crate::banner("E11", "§2.2 — automatic path sizing of raw unsized gates");
    println!(
        "{:>10}{:>12}{:>12}{:>10}   taper",
        "load fF", "before ps", "after ps", "speedup"
    );
    for pt in run() {
        let taper: Vec<String> = pt.scales.iter().map(|s| format!("{s:.1}")).collect();
        println!(
            "{:>10.0}{:>12.1}{:>12.1}{:>9.2}x   [{}]",
            pt.load_ff,
            pt.before_ps,
            pt.after_ps,
            pt.speedup,
            taper.join(", ")
        );
    }
    println!("\n(the optimizer reproduces the logical-effort geometric taper;");
    println!(" big loads reward sizing heavily, small loads are left alone)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_grows_with_load() {
        let pts = run();
        assert!(pts[0].speedup < pts.last().unwrap().speedup);
        assert!(
            pts.last().unwrap().speedup > 3.0,
            "1 pF on minimum gates must reward sizing: {:.2}",
            pts.last().unwrap().speedup
        );
    }

    #[test]
    fn taper_is_geometric_increasing() {
        let pts = run();
        let scales = &pts.last().unwrap().scales;
        for w in scales.windows(2) {
            assert!(w[1] >= w[0] * 0.99, "{scales:?}");
        }
    }
}

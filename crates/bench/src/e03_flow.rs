//! E3 — **Fig 2**: the design flow, run end to end with per-stage
//! runtimes and artifact counts on designs of increasing size.

use cbv_core::flow::{run_flow, FlowConfig, FlowReport};
use cbv_core::gen::adders::static_ripple_adder;
use cbv_core::tech::Process;

/// One flow run's summary.
pub struct FlowPoint {
    /// Adder width.
    pub width: u32,
    /// Transistor count.
    pub devices: usize,
    /// The full report.
    pub report: FlowReport,
}

/// Runs the flow on 4/8/16-bit adders.
pub fn run() -> Vec<FlowPoint> {
    let p = Process::strongarm_035();
    [4u32, 8, 16]
        .into_iter()
        .map(|width| {
            let g = static_ripple_adder(width, &p);
            let devices = g.netlist.devices().len();
            let report = run_flow(g.netlist, &p, &FlowConfig::default());
            FlowPoint {
                width,
                devices,
                report,
            }
        })
        .collect()
}

/// Prints the flow table.
pub fn print() {
    crate::banner("E3", "Fig 2 — the verification flow, end to end");
    let points = run();
    print!("{:<12}{:>10}", "stage", "artifacts");
    for p in &points {
        print!("{:>14}", format!("{}b ms", p.width));
    }
    println!();
    let stage_count = points[0].report.stages.len();
    for si in 0..stage_count {
        print!(
            "{:<12}{:>10}",
            points[0].report.stages[si].stage, points[0].report.stages[si].artifacts
        );
        for p in &points {
            print!("{:>14.2}", p.report.stages[si].runtime.seconds() * 1e3);
        }
        println!();
    }
    for p in &points {
        println!(
            "\n{}-bit adder ({} devices): total {:.1} ms, verdict {}",
            p.width,
            p.devices,
            p.report.total_runtime().seconds() * 1e3,
            if p.report.signoff.clean() {
                "CLEAN"
            } else {
                "VIOLATIONS"
            }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_scales_and_signs_off() {
        let points = run();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(
                p.report.signoff.clean(),
                "{}b: {}",
                p.width,
                p.report.signoff
            );
        }
        assert!(points[2].devices > 3 * points[0].devices);
    }
}

//! E4 — **Fig 3**: noise sources in dynamic structures.
//!
//! Sweeps the three §4.2 noise knobs on generated domino stages and
//! reports what the battery detects vs filters: charge-share droop vs
//! stack depth, leakage droop vs channel lengthening, and the
//! keeper-vs-no-keeper coupling margin — the probability-filter behavior
//! in action.

use cbv_core::everify::{run_all, CheckKind, EverifyConfig, Severity};
use cbv_core::extract::extract;
use cbv_core::gen::latches::keeper_domino;
use cbv_core::layout::synthesize;
use cbv_core::netlist::{Device, FlatNetlist, NetId, NetKind};
use cbv_core::recognize::recognize;
use cbv_core::tech::{MosKind, Process, Seconds};

/// One sweep point.
pub struct NoisePoint {
    /// The swept parameter's value (stack depth, ΔL in nm, ...).
    pub param: f64,
    /// Worst stress recorded by the check under study.
    pub worst_stress: f64,
    /// Violations reported.
    pub violations: usize,
    /// Reviews reported.
    pub reviews: usize,
    /// Situations filtered as clearly fine.
    pub filtered: usize,
}

fn domino_stack(depth: usize, w: f64, process: &Process) -> FlatNetlist {
    let mut f = FlatNetlist::new(format!("dom{depth}"));
    let l = process.l_min().meters();
    let clk = f.add_net("clk", NetKind::Clock);
    let d = f.add_net("d", NetKind::Signal);
    let out = f.add_net("out", NetKind::Output);
    let vdd = f.add_net("vdd", NetKind::Power);
    let gnd = f.add_net("gnd", NetKind::Ground);
    f.add_device(Device::mos(
        MosKind::Pmos,
        "pre",
        clk,
        d,
        vdd,
        vdd,
        3.4e-6,
        l,
    ));
    let mut prev = d;
    for i in 0..depth {
        let a = f.add_net(&format!("a{i}"), NetKind::Input);
        let nxt = f.add_net(&format!("x{i}"), NetKind::Signal);
        f.add_device(Device::mos(
            MosKind::Nmos,
            format!("m{i}"),
            a,
            prev,
            nxt,
            gnd,
            w,
            l,
        ));
        prev = nxt;
    }
    f.add_device(Device::mos(
        MosKind::Nmos,
        "foot",
        clk,
        prev,
        gnd,
        gnd,
        w,
        l,
    ));
    f.add_device(Device::mos(
        MosKind::Pmos,
        "op",
        d,
        out,
        vdd,
        vdd,
        3.4e-6,
        l,
    ));
    f.add_device(Device::mos(
        MosKind::Nmos,
        "on",
        d,
        out,
        gnd,
        gnd,
        1.4e-6,
        l,
    ));
    f
}

fn battery(netlist: FlatNetlist, process: &Process, check: CheckKind, hold: Seconds) -> NoisePoint {
    let mut netlist = netlist;
    let rec = recognize(&mut netlist);
    let layout = synthesize(&mut netlist, process);
    let ex = extract(&layout, &netlist, process);
    let mut cfg = EverifyConfig::for_process(process);
    cfg.dynamic_hold = hold;
    // Keep every record so the sweep shows the filter boundary moving.
    cfg.filter_threshold = 1e-6;
    let report = run_all(&netlist, &rec, &ex, Some(&layout), process, &cfg);
    let findings: Vec<_> = report.of_check(check).collect();
    let worst = findings.iter().map(|f| f.stress).fold(0.0, f64::max);
    // Re-bucket against the signoff threshold 0.6.
    let violations = findings
        .iter()
        .filter(|f| f.severity == Severity::Violation)
        .count();
    let reviews = findings
        .iter()
        .filter(|f| f.severity == Severity::Review && f.stress >= 0.6)
        .count();
    let filtered = findings.len() - violations - reviews;
    NoisePoint {
        param: 0.0,
        worst_stress: worst,
        violations,
        reviews,
        filtered,
    }
}

/// Charge-share droop vs evaluate-stack depth.
pub fn charge_share_sweep() -> Vec<NoisePoint> {
    let p = Process::strongarm_035();
    (1..=6)
        .map(|depth| {
            let mut pt = battery(
                domino_stack(depth, 8e-6, &p),
                &p,
                CheckKind::ChargeShare,
                Seconds::new(10e-9),
            );
            pt.param = depth as f64;
            pt
        })
        .collect()
}

/// Leakage droop vs channel lengthening (ΔL in nm) at a long gated-clock
/// hold.
pub fn leakage_sweep() -> Vec<NoisePoint> {
    let p = Process::strongarm_035();
    [0.0, 22.5, 45.0, 90.0]
        .into_iter()
        .map(|dl_nm| {
            let mut f = domino_stack(2, 8e-6, &p);
            for id in f.device_ids().collect::<Vec<_>>() {
                if f.device(id).kind == MosKind::Nmos {
                    f.device_mut(id).l += dl_nm * 1e-9;
                }
            }
            let mut pt = battery(f, &p, CheckKind::Leakage, Seconds::new(5e-6));
            pt.param = dl_nm;
            pt
        })
        .collect()
}

/// Coupling stress with and without a keeper on the dynamic node.
pub fn keeper_coupling() -> Vec<(String, f64)> {
    let p = Process::strongarm_035();
    let mut out = Vec::new();
    for (name, w_keeper) in [("no keeper", None), ("weak keeper", Some(0.7e-6))] {
        let mut netlist = match w_keeper {
            Some(w) => keeper_domino(&p, w).netlist,
            None => {
                let mut g = keeper_domino(&p, 0.7e-6);
                // Remove the keeper by shrinking it to irrelevance is not
                // removal; rebuild without it instead.
                let mut f = FlatNetlist::new("nokeep");
                let mut map = Vec::new();
                for i in 0..g.netlist.net_count() as u32 {
                    let id = NetId(i);
                    map.push(f.add_net(g.netlist.net_name(id), g.netlist.net_kind(id)));
                }
                for d in g.netlist.devices() {
                    if d.name == "keep" {
                        continue;
                    }
                    let mut d2 = d.clone();
                    d2.gate = map[d.gate.index()];
                    d2.source = map[d.source.index()];
                    d2.drain = map[d.drain.index()];
                    d2.bulk = map[d.bulk.index()];
                    f.add_device(d2);
                }
                g.netlist = f;
                g.netlist
            }
        };
        let rec = recognize(&mut netlist);
        let layout = synthesize(&mut netlist, &p);
        let ex = extract(&layout, &netlist, &p);
        let mut cfg = EverifyConfig::for_process(&p);
        cfg.filter_threshold = 1e-6;
        let report = run_all(&netlist, &rec, &ex, Some(&layout), &p, &cfg);
        let dyn_net = netlist.find_net("dyn").expect("dyn exists");
        let stress = report
            .of_check(CheckKind::Coupling)
            .filter(|f| matches!(f.subject, cbv_core::everify::Subject::Net(n) if n == dyn_net))
            .map(|f| f.stress)
            .fold(0.0, f64::max);
        out.push((name.to_owned(), stress));
    }
    out
}

/// Prints all three sweeps.
pub fn print() {
    crate::banner("E4", "Fig 3 — noise sources in dynamic structures");
    println!("charge sharing vs evaluate-stack depth:");
    println!(
        "{:>8}{:>14}{:>12}{:>10}{:>10}",
        "depth", "worst stress", "violations", "reviews", "filtered"
    );
    for pt in charge_share_sweep() {
        println!(
            "{:>8.0}{:>14.2}{:>12}{:>10}{:>10}",
            pt.param, pt.worst_stress, pt.violations, pt.reviews, pt.filtered
        );
    }
    println!("\nsubthreshold leakage vs channel lengthening (5 us hold):");
    println!("{:>8}{:>14}{:>12}", "dL nm", "worst stress", "violations");
    for pt in leakage_sweep() {
        println!(
            "{:>8.1}{:>14.2}{:>12}",
            pt.param, pt.worst_stress, pt.violations
        );
    }
    println!("\ncoupling stress on the dynamic node, keeper ablation:");
    for (name, stress) in keeper_coupling() {
        println!("{:>14}: {:.2}", name, stress);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_share_monotone_in_depth() {
        let pts = charge_share_sweep();
        for w in pts.windows(2) {
            assert!(
                w[1].worst_stress >= w[0].worst_stress * 0.98,
                "deeper stacks share more: {} -> {}",
                w[0].worst_stress,
                w[1].worst_stress
            );
        }
        assert!(pts.last().unwrap().worst_stress > pts[0].worst_stress);
    }

    #[test]
    fn leakage_falls_with_lengthening() {
        let pts = leakage_sweep();
        assert!(pts[0].worst_stress > pts.last().unwrap().worst_stress * 3.0);
    }

    #[test]
    fn keeper_reduces_coupling_stress() {
        let rows = keeper_coupling();
        let no_keeper = rows[0].1;
        let keeper = rows[1].1;
        assert!(keeper < no_keeper, "keeper {keeper} vs bare {no_keeper}");
    }
}

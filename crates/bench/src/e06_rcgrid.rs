//! E6 — **Fig 5**: "Real gates have multiple inputs/outputs".
//!
//! A large driver distributed as fingers along an RC line is not a single
//! lumped port. Two measurements:
//!
//! * the *lumped single-port* delay model (`R_drive · C_total`) vs the
//!   distributed line's true far-end Elmore delay, as wire length grows;
//! * the gate-input-capacitance *context window* (§4.3: input cap depends
//!   on the state of everything around it) as device size grows.

use cbv_core::extract::RcNet;
use cbv_core::netlist::NetId;
use cbv_core::tech::{Corner, Layer, MosKind, Process};

/// One row of the Fig 5 delay comparison.
pub struct RcPoint {
    /// Wire length in µm.
    pub length_um: f64,
    /// Lumped single-port model delay, ps.
    pub lumped_ps: f64,
    /// Distributed multi-tap reality, ps: worst sink with the driver's
    /// fingers spread along the line.
    pub distributed_ps: f64,
    /// Relative error of the lumped model.
    pub error: f64,
}

/// Compares the lumped model against a 64-segment distributed line for a
/// 16-finger driver of total width `w_total`.
pub fn run() -> Vec<RcPoint> {
    let p = Process::strongarm_035();
    let corner = Corner::typical(&p);
    let nmos = p.mos(MosKind::Nmos);
    let w_total = 48e-6;
    let l = p.l_min().meters();
    let r_drive = nmos.effective_resistance(w_total, l, &corner);
    let wire = p.wires().params(Layer::Metal2);

    [50.0, 200.0, 500.0, 1000.0, 2000.0]
        .into_iter()
        .map(|length_um| {
            let len = length_um * 1e-6;
            let r_wire = wire.resistance(len, wire.width_min);
            let c_wire = wire.ground_capacitance(len, wire.width_min);
            // Lumped single-port model: all wire C at the driver pin.
            let lumped = r_drive.ohms() * c_wire.farads();

            // Distributed reality: 16 fingers tapped evenly along the
            // first quarter of the line (a wide driver is physically
            // long), load at the far end.
            let segments = 64;
            let rc = RcNet::line(NetId(0), segments, r_wire, c_wire);
            let fingers = 16;
            // Each finger is 1/16 of the drive spread over taps; the
            // effective source is approximated by the tap at the driver
            // centroid with the full drive strength, plus the wire
            // resistance *within* the driver footprint that the lumped
            // model ignores.
            let centroid_tap = segments / 8; // middle of the first quarter
            let t_far = rc
                .elmore(
                    cbv_core::extract::RcNodeId(centroid_tap as u32),
                    rc.last_node(),
                    r_drive,
                )
                .expect("line is connected");
            // The near end also matters: signal must fill the driver's own
            // extent backwards.
            let t_near = rc
                .elmore(
                    cbv_core::extract::RcNodeId(centroid_tap as u32),
                    rc.first_node(),
                    r_drive,
                )
                .expect("line is connected");
            let distributed = t_far.seconds().max(t_near.seconds());
            let _ = fingers;
            RcPoint {
                length_um,
                lumped_ps: lumped * 1e12,
                distributed_ps: distributed * 1e12,
                error: (distributed - lumped).abs() / distributed,
            }
        })
        .collect()
}

/// Gate-capacitance context window (min/max over logical context) vs
/// device width — the other half of Fig 5.
pub fn gate_context_window() -> Vec<(f64, f64, f64)> {
    let p = Process::strongarm_035();
    let nmos = p.mos(MosKind::Nmos);
    let l = p.l_min().meters();
    [2.0, 8.0, 32.0]
        .into_iter()
        .map(|w_um| {
            let (lo, hi) = nmos.gate_capacitance_bounds(w_um * 1e-6, l);
            (w_um, lo.farads() * 1e15, hi.farads() * 1e15)
        })
        .collect()
}

/// Prints the Fig 5 tables.
pub fn print() {
    crate::banner(
        "E6",
        "Fig 5 — distributed drivers vs the lumped single-port model",
    );
    println!(
        "{:>12}{:>14}{:>16}{:>12}",
        "length um", "lumped ps", "distributed ps", "error %"
    );
    for pt in run() {
        println!(
            "{:>12.0}{:>14.1}{:>16.1}{:>12.1}",
            pt.length_um,
            pt.lumped_ps,
            pt.distributed_ps,
            pt.error * 100.0
        );
    }
    println!("\ngate input capacitance context window (fF):");
    println!("{:>10}{:>10}{:>10}{:>10}", "W um", "min", "max", "ratio");
    for (w, lo, hi) in gate_context_window() {
        println!("{:>10.0}{:>10.2}{:>10.2}{:>10.2}", w, lo, hi, hi / lo);
    }
    println!("\n(the lumped model's error grows with wire RC — \"the traditional");
    println!(" gate modeled with a single output port no longer works\")");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lumped_error_grows_with_length() {
        let pts = run();
        assert!(
            pts.last().unwrap().error > pts[0].error,
            "{} -> {}",
            pts[0].error,
            pts.last().unwrap().error
        );
        assert!(
            pts.last().unwrap().error > 0.10,
            "long-wire error is material"
        );
    }

    #[test]
    fn capacitance_context_window_is_wide() {
        for (_, lo, hi) in gate_context_window() {
            assert!(hi / lo > 1.5, "context window must be wide: {lo}..{hi}");
        }
    }

    #[test]
    fn one_known_point_for_farads_units() {
        use cbv_core::tech::{Farads, Ohms};
        // Keep the unit plumbing honest: 1 kΩ driving 1 pF is 1 ns.
        let t = Ohms::new(1e3).ohms() * Farads::new(1e-12).farads();
        assert!((t - 1e-9).abs() < 1e-21);
    }
}

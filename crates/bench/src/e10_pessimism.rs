//! E10 — §4.3's two conflicting goals: "enough pessimism to insure
//! identification of all violations, while not so much pessimism to cause
//! false violations."
//!
//! A population of paths straddling the cycle boundary is checked at
//! several pessimism settings against a reference ("silicon truth" =
//! signoff-calibrated bounds). Under-deratred analyses miss real
//! violations; over-derated analyses flood the designer with false ones.

use cbv_core::exec::Executor;
use cbv_core::netlist::{CccId, FlatNetlist, NetKind};
use cbv_core::tech::units::{nanoseconds, picoseconds};
use cbv_core::tech::Seconds;
use cbv_core::timing::{
    analyze, Arc, CaptureKind, ClockSchedule, Constraint, LaunchPoint, Pessimism, TimingGraph,
    ViolationKind,
};

/// One pessimism sweep point.
pub struct RocPoint {
    /// Pessimism scale (1.0 = reference truth).
    pub scale: f64,
    /// Real violations missed at this setting.
    pub missed: usize,
    /// False violations reported.
    pub false_alarms: usize,
    /// True violations correctly reported.
    pub caught: usize,
}

/// Builds a chain population: path k has k stages of 100 ps nominal
/// delay captured by a latch closing at 1 ns; truth derates by
/// `truth_scale`.
fn flagged_paths(scale: f64) -> Vec<bool> {
    let stage_nominal_ps = 100.0;
    let pess = Pessimism::scaled(scale);
    let n_paths = 24usize;
    let mut flagged = Vec::with_capacity(n_paths);
    for k in 1..=n_paths {
        let mut f = FlatNetlist::new("p");
        let inp = f.add_net("in", NetKind::Input);
        let ck = f.add_net("ck", NetKind::Clock);
        let mut arcs = Vec::new();
        let mut prev = inp;
        for i in 0..k {
            let n = f.add_net(&format!("n{i}"), NetKind::Signal);
            arcs.push(Arc {
                from: prev,
                to: n,
                min: picoseconds(stage_nominal_ps * 0.5 * pess.early_derate),
                max: picoseconds(stage_nominal_ps * pess.late_derate),
                ccc: CccId(i as u32),
            });
            prev = n;
        }
        let graph = TimingGraph {
            arcs,
            launches: vec![LaunchPoint {
                net: inp,
                clock: Some(ck),
            }],
            cut_nets: vec![prev],
        };
        let constraints = vec![Constraint {
            net: prev,
            kind: CaptureKind::Latch,
            clock: Some(ck),
            setup: picoseconds(50.0) + pess.constraint_margin,
            hold: picoseconds(30.0),
        }];
        let schedule = ClockSchedule::single("ck", nanoseconds(2.0));
        let report = analyze(&f, &graph, &constraints, &schedule, &pess, &[]);
        flagged.push(report.of_kind(ViolationKind::Setup).next().is_some());
    }
    flagged
}

/// The swept pessimism scales; `1.0` is the calibrated reference
/// ("silicon truth").
const SCALES: [f64; 5] = [0.0, 0.5, 1.0, 2.0, 4.0];

/// Runs the sweep; truth = scale 1.0. Workers come from `CBV_THREADS` /
/// machine parallelism; see [`run_with`].
pub fn run() -> Vec<RocPoint> {
    run_with(&Executor::new())
}

/// Runs the sweep with each pessimism setting's 24-path campaign on its
/// own worker. The executor preserves sweep order, so the ROC table is
/// identical at any thread count.
pub fn run_with(exec: &Executor) -> Vec<RocPoint> {
    let flagged_by_scale = exec.map(SCALES.to_vec(), flagged_paths);
    let truth = flagged_by_scale[SCALES.iter().position(|&s| s == 1.0).expect("reference")].clone();
    SCALES
        .into_iter()
        .zip(flagged_by_scale)
        .map(|(scale, flagged)| {
            let mut missed = 0;
            let mut false_alarms = 0;
            let mut caught = 0;
            for (f, t) in flagged.iter().zip(&truth) {
                match (f, t) {
                    (true, true) => caught += 1,
                    (true, false) => false_alarms += 1,
                    (false, true) => missed += 1,
                    (false, false) => {}
                }
            }
            RocPoint {
                scale,
                missed,
                false_alarms,
                caught,
            }
        })
        .collect()
}

/// Prints the trade-off frontier.
pub fn print() {
    crate::banner("E10", "§4.3 — pessimism: missed vs false violations");
    println!(
        "{:>10}{:>10}{:>10}{:>14}",
        "scale", "caught", "missed", "false alarms"
    );
    for pt in run() {
        println!(
            "{:>10.1}{:>10}{:>10}{:>14}",
            pt.scale, pt.caught, pt.missed, pt.false_alarms
        );
    }
    println!("\n(1.0 is the calibrated reference; optimistic settings miss real");
    println!(" violations — \"a costly debug along with a schedule slip\" — and");
    println!(" over-derated settings drown the designer in false ones)");
    let _ = Seconds::ZERO;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_point_is_exact() {
        let pts = run();
        let r = pts.iter().find(|p| p.scale == 1.0).expect("reference");
        assert_eq!(r.missed, 0);
        assert_eq!(r.false_alarms, 0);
        assert!(r.caught > 0);
    }

    #[test]
    fn optimism_misses_and_pessimism_cries_wolf() {
        let pts = run();
        let optimistic = &pts[0];
        let paranoid = pts.last().expect("points");
        assert!(optimistic.missed > 0, "under-derated analysis must miss");
        assert_eq!(optimistic.false_alarms, 0);
        assert!(
            paranoid.false_alarms > 0,
            "over-derated analysis must over-report"
        );
        assert_eq!(paranoid.missed, 0, "pessimism never misses");
    }

    #[test]
    fn sweep_is_deterministic_across_workers() {
        let fingerprint = |pts: Vec<RocPoint>| -> Vec<(f64, usize, usize, usize)> {
            pts.into_iter()
                .map(|p| (p.scale, p.caught, p.missed, p.false_alarms))
                .collect()
        };
        assert_eq!(
            fingerprint(run_with(&Executor::serial())),
            fingerprint(run_with(&Executor::threads(8)))
        );
    }
}

//! E15 — flow observability: the trace waterfall and its overhead.
//!
//! The paper's flow (Fig 2) is a pipeline the designer iterates around
//! all day; knowing *where* a slow signoff spent its time is what makes
//! the iteration loop tunable. This experiment runs the full flow over
//! a 16-bit ALU slice with a collecting [`Tracer`] attached, renders the
//! span waterfall (one span per stage, child spans per §4.2 check, per
//! CCC chunk of the timing-graph build, per cached unit), and then
//! measures the cost of observability itself: the E13 workload (32-bit
//! manchester domino adder) timed with tracing off versus on.
//!
//! Two invariants ride along, proven in tests/obs.rs: the signoff JSON
//! is byte-identical with tracing on or off at any worker count, and
//! the trace's counters and span tree are themselves deterministic
//! across worker counts (only timestamps and thread ids move).

use cbv_core::flow::{run_flow, FlowConfig, FlowReport};
use cbv_core::gen::adders::manchester_domino_adder;
use cbv_core::gen::datapath::alu_slice;
use cbv_core::obs::{render::waterfall, Trace, Tracer};
use cbv_core::tech::Process;
use std::time::Instant;

/// Traced-versus-untraced wall-clock of one workload.
pub struct Overhead {
    /// Seconds per flow with the disabled tracer (the default).
    pub off_wall: f64,
    /// Seconds per flow with a collecting tracer attached.
    pub on_wall: f64,
}

impl Overhead {
    /// Overhead of tracing as a percentage of the untraced wall-clock.
    pub fn percent(&self) -> f64 {
        (self.on_wall - self.off_wall) / self.off_wall * 100.0
    }
}

/// Runs the flow over a `width`-bit ALU slice with a collecting tracer
/// and returns the flow report plus the finished trace.
pub fn trace_alu(width: u32, threads: usize) -> (FlowReport, Trace) {
    let process = Process::strongarm_035();
    let design = alu_slice(width, &process);
    let (tracer, collector) = Tracer::collecting();
    let config = FlowConfig {
        parallelism: threads,
        tracer,
        ..FlowConfig::default()
    };
    let report = run_flow(design.netlist, &process, &config);
    (report, collector.trace())
}

/// Times `reps` flows over the E13 workload with tracing off and on.
///
/// Each reading is the *best* of `reps` runs — minimum wall-clock is the
/// standard estimator for "the cost of the work itself" on a machine
/// with background noise, and the quantity the <5% overhead budget in
/// EXPERIMENTS.md is defined over. Off/on runs are *interleaved* so a
/// system-load drift during the measurement hits both modes equally
/// instead of biasing whichever block ran second.
pub fn measure_overhead(width: u32, reps: usize) -> Overhead {
    let process = Process::strongarm_035();
    let run_one = |traced: bool| -> f64 {
        let netlist = manchester_domino_adder(width, &process).netlist;
        let config = FlowConfig {
            tracer: if traced {
                Tracer::collecting().0
            } else {
                Tracer::disabled()
            },
            ..FlowConfig::default()
        };
        let t0 = Instant::now();
        std::hint::black_box(run_flow(netlist, &process, &config));
        t0.elapsed().as_secs_f64()
    };
    let mut off_wall = f64::INFINITY;
    let mut on_wall = f64::INFINITY;
    for _ in 0..reps {
        off_wall = off_wall.min(run_one(false));
        on_wall = on_wall.min(run_one(true));
    }
    Overhead { off_wall, on_wall }
}

/// Prints the waterfall for `alu_slice(16)` and the measured overhead.
pub fn print() {
    crate::banner("E15", "flow observability: trace waterfall + overhead");
    let (report, trace) = trace_alu(16, 0);
    println!("{}", waterfall(&trace, 8));
    println!(
        "flow: {} stages, signoff {}",
        report.stages.len(),
        if report.signoff.clean() {
            "CLEAN"
        } else {
            "VIOLATIONS PRESENT"
        }
    );
    let o = measure_overhead(32, 15);
    println!(
        "\ntracing overhead on the E13 workload (32-bit domino adder):\n\
         untraced {:.1} ms, traced {:.1} ms — {:+.2}% (budget: <5%)",
        o.off_wall * 1e3,
        o.on_wall * 1e3,
        o.percent()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_flow_yields_stage_spans_and_counters() {
        let (report, trace) = trace_alu(4, 2);
        // Every stage's span id resolves to a recorded span whose name
        // matches the stage.
        for s in &report.stages {
            let id = s.span_id.expect("traced flow fills span ids");
            let span = trace
                .spans
                .iter()
                .find(|sp| sp.id == id)
                .unwrap_or_else(|| panic!("span {id} for stage {} recorded", s.stage));
            assert_eq!(span.name, s.stage);
        }
        // The battery emitted per-check child spans and counters.
        assert!(trace.spans.iter().any(|s| s.name.starts_with("check:")));
        assert!(trace.counters.iter().any(|(n, _)| n == "everify.checked"));
        assert!(trace.counters.iter().any(|(n, _)| n == "timing.arcs"));
        // And the waterfall renders them.
        let text = waterfall(&trace, 5);
        assert!(text.contains("flow"), "{text}");
        assert!(text.contains("everify"), "{text}");
    }

    #[test]
    fn overhead_measures_both_modes() {
        let o = measure_overhead(4, 1);
        assert!(o.off_wall > 0.0 && o.on_wall > 0.0);
        assert!(o.percent().is_finite());
    }
}

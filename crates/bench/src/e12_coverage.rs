//! E12 — §4.2 check-battery fault-injection coverage matrix.
//!
//! Each hazard class is planted into a clean target design; the matrix
//! records which checks fire. This is the "does the methodology catch
//! what silicon would expose" experiment.

use cbv_core::everify::{run_all, CheckKind, EverifyConfig};
use cbv_core::exec::Executor;
use cbv_core::extract::extract;
use cbv_core::gen::adders::{manchester_domino_adder, static_ripple_adder};
use cbv_core::gen::clocktree::clock_trunk;
use cbv_core::gen::latches::keeper_domino;
use cbv_core::gen::{inject, FaultKind};
use cbv_core::layout::synthesize;
use cbv_core::netlist::FlatNetlist;
use cbv_core::recognize::recognize;
use cbv_core::tech::Process;

/// One row of the matrix.
pub struct CoverageRow {
    /// The injected fault.
    pub fault: FaultKind,
    /// Injection description.
    pub description: String,
    /// Checks that reported violations.
    pub fired: Vec<CheckKind>,
    /// Whether anything fired.
    pub detected: bool,
}

fn violations_of(mut netlist: FlatNetlist, p: &Process, cfg: &EverifyConfig) -> Vec<CheckKind> {
    let rec = recognize(&mut netlist);
    let layout = synthesize(&mut netlist, p);
    let ex = extract(&layout, &netlist, p);
    let report = run_all(&netlist, &rec, &ex, Some(&layout), p, cfg);
    let mut fired: Vec<CheckKind> = report.violations().map(|f| f.check).collect();
    fired.sort_unstable();
    fired.dedup();
    fired
}

/// The fault → target-design pairing (each fault needs a design where its
/// victim structure exists). Workers come from `CBV_THREADS` / machine
/// parallelism; see [`run_with`].
pub fn run() -> Vec<CoverageRow> {
    run_with(&Executor::new())
}

/// Runs the campaign with each fault-injection case (inject → recognize
/// → layout → extract → battery) on its own worker. The executor
/// preserves case order, so the matrix is identical at any thread count.
pub fn run_with(exec: &Executor) -> Vec<CoverageRow> {
    let p = Process::strongarm_035();
    let cases: Vec<(FaultKind, FlatNetlist)> = vec![
        (FaultKind::BetaSkew, static_ripple_adder(2, &p).netlist),
        (FaultKind::SubMinLength, keeper_domino(&p, 1e-6).netlist),
        (FaultKind::MonsterKeeper, keeper_domino(&p, 1e-6).netlist),
        (
            FaultKind::ChargeShare,
            manchester_domino_adder(2, &p).netlist,
        ),
        (FaultKind::WeakDriver, clock_trunk(3, 3.0, 256, &p).netlist),
        (FaultKind::LeakyDynamic, keeper_domino(&p, 1e-6).netlist),
    ];
    exec.map(cases, |(fault, mut netlist)| {
        let description = inject(&mut netlist, fault).expect("fault injects");
        let mut cfg = EverifyConfig::for_process(&p);
        // LeakyDynamic only shows under a long gated-clock hold.
        if fault == FaultKind::LeakyDynamic {
            cfg.dynamic_hold = cbv_core::tech::Seconds::new(3e-6);
        }
        let fired = violations_of(netlist, &p, &cfg);
        CoverageRow {
            fault,
            description,
            detected: !fired.is_empty(),
            fired,
        }
    })
}

/// Prints the matrix.
pub fn print() {
    crate::banner("E12", "§4.2 — fault-injection detection matrix");
    println!("{:<16}{:<12}  fired checks", "fault", "detected");
    for row in run() {
        let checks: Vec<String> = row.fired.iter().map(|c| c.to_string()).collect();
        println!(
            "{:<16}{:<12}  {}",
            format!("{:?}", row.fault),
            if row.detected { "DETECTED" } else { "MISSED" },
            checks.join(", ")
        );
        println!("{:<16}({})", "", row.description);
    }
    println!("\n(WrongPolarity is a functional bug: it is caught by the logic");
    println!(" battery — shadow simulation / equivalence — not the electrical one)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_electrical_fault_is_detected() {
        for row in run() {
            assert!(
                row.detected,
                "{:?} ({}) was missed",
                row.fault, row.description
            );
        }
    }

    #[test]
    fn detections_are_specific() {
        // Each fault must fire its designated check, not just anything.
        let expected: &[(FaultKind, CheckKind)] = &[
            (FaultKind::BetaSkew, CheckKind::BetaRatio),
            (FaultKind::MonsterKeeper, CheckKind::Writability),
            (FaultKind::ChargeShare, CheckKind::ChargeShare),
            (FaultKind::WeakDriver, CheckKind::EdgeRate),
            (FaultKind::LeakyDynamic, CheckKind::Leakage),
        ];
        let rows = run();
        for (fault, check) in expected {
            let row = rows.iter().find(|r| r.fault == *fault).expect("row exists");
            assert!(
                row.fired.contains(check),
                "{fault:?} should fire {check}; fired {:?}",
                row.fired
            );
        }
    }

    #[test]
    fn matrix_is_deterministic_across_workers() {
        let fingerprint = |rows: Vec<CoverageRow>| -> Vec<String> {
            rows.into_iter()
                .map(|r| {
                    format!(
                        "{:?} {} {:?} {}",
                        r.fault, r.detected, r.fired, r.description
                    )
                })
                .collect()
        };
        assert_eq!(
            fingerprint(run_with(&Executor::serial())),
            fingerprint(run_with(&Executor::threads(8)))
        );
    }
}

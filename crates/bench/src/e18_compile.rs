//! E18 — compiled 64-lane bit-parallel simulation throughput.
//!
//! The paper's logic-verification budget (§4.1) is 2×10⁹ cycles/day at
//! ">200 cycles per second per simulation CPU" — a farm of ~100 machines.
//! E7 showed the word-level interpreter clears the 1997 per-CPU bar by
//! orders of magnitude; this experiment measures how much further the
//! compiled backend (`cbv-csim`) goes: blast the RTL to a `BoolNet`,
//! levelize once, compile to a flat threaded-bytecode program, and
//! execute it over `u64` planes so every pass advances 64 independent
//! stimulus vectors.
//!
//! Three columns per registry design, same stimulus discipline:
//!
//! * **interp** — the word-level RTL interpreter (`cbv_rtl::interp`),
//!   cycles/sec;
//! * **scalar net** — one-lane bit-level simulation of the same blasted
//!   `BoolNet` via the buffer-reusing `eval_into` /
//!   `next_states_edge_into` loop — the honest apples-to-apples
//!   baseline (same netlist, lane count 1);
//! * **compiled** — `CSim`, reported as lane-cycles/sec (word passes ×
//!   64) because that is what a verification campaign consumes: 64
//!   vectors really do advance per pass.
//!
//! The headline row is `mda32_two_phase` (the Manchester-class pipelined
//! adder): the speedup column there is this PR's acceptance number.

use std::hint::black_box;
use std::time::Instant;

use cbv_core::csim::{compile as csim_compile, CSim, LANES};
use cbv_core::gen::rtl_designs::{rtl_design_registry, RtlDesignSpec};
use cbv_core::rtl::ast::Edge;
use cbv_core::rtl::boolnet::BoolNet;
use cbv_core::rtl::{blast::blast, compile, interp::Interp};

/// One design's compile + throughput measurements.
pub struct CompilePoint {
    /// Registry design name.
    pub design: String,
    /// Ops in the compiled program (dead branches already dropped).
    pub ops: usize,
    /// Combinational depth of the compiled schedule.
    pub levels: u32,
    /// One-time compile cost (blast excluded; blast is shared by every
    /// bit-level engine), milliseconds.
    pub compile_ms: f64,
    /// Word-level interpreter, cycles/sec.
    pub interp_cps: f64,
    /// Scalar (one-lane) `BoolNet` evaluation, cycles/sec.
    pub scalar_cps: f64,
    /// Compiled engine, *lane*-cycles/sec (passes × 64).
    pub lane_cps: f64,
    /// `lane_cps / interp_cps` — the campaign-throughput multiplier.
    pub speedup: f64,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Word-level interpreter throughput on one registry design.
fn interp_rate(spec: &RtlDesignSpec, cycles: u64) -> f64 {
    let design = compile(&spec.source, spec.top).expect("registry design compiles");
    let mut sim = Interp::new(&design);
    let inputs = design.inputs.clone();
    let out_names: Vec<String> = design.outputs.iter().map(|(n, _)| n.clone()).collect();
    let mut rng = 0x1234_5678u64;
    let t0 = Instant::now();
    for _ in 0..cycles {
        for (name, w) in &inputs {
            sim.set_input(name, splitmix(&mut rng) & mask(*w));
        }
        match spec.clock {
            Some(ck) => sim.step(ck),
            None => {
                for name in &out_names {
                    black_box(sim.output(name));
                }
            }
        }
    }
    cycles as f64 / t0.elapsed().as_secs_f64()
}

/// One-lane bit-level throughput: the buffer-reusing `BoolNet` loop.
fn scalar_rate(net: &BoolNet, has_clock: bool, cycles: u64) -> f64 {
    let mut states = net.initial_states();
    let mut next = Vec::new();
    let mut values = Vec::new();
    let mut inputs = vec![false; net.inputs.len()];
    let negedge = has_clock && net.has_negedge(0);
    let out_bits: Vec<_> = net.outputs.iter().flat_map(|(_, b)| b.clone()).collect();
    let mut rng = 0x1234_5678u64;
    let t0 = Instant::now();
    for _ in 0..cycles {
        let mut r = splitmix(&mut rng);
        for (i, v) in inputs.iter_mut().enumerate() {
            if i % 64 == 0 && i > 0 {
                r = splitmix(&mut rng);
            }
            *v = (r >> (i % 64)) & 1 == 1;
        }
        net.eval_into(&inputs, &states, &mut values);
        if has_clock {
            net.next_states_edge_into(&values, &states, 0, Edge::Pos, &mut next);
            std::mem::swap(&mut states, &mut next);
            if negedge {
                net.eval_into(&inputs, &states, &mut values);
                net.next_states_edge_into(&values, &states, 0, Edge::Neg, &mut next);
                std::mem::swap(&mut states, &mut next);
            }
        } else {
            for &b in &out_bits {
                black_box(values[b.index()]);
            }
        }
    }
    cycles as f64 / t0.elapsed().as_secs_f64()
}

/// Compiled-engine throughput in *word passes* per second; multiply by
/// [`LANES`] for lane-cycles/sec. Stimulus planes are pre-generated so
/// the timed region is exactly the engine.
fn csim_rate(sim: &mut CSim, clock: Option<&str>, passes: u64) -> f64 {
    let n_inputs = sim.program().n_inputs as usize;
    let mut rng = 0x9abc_def0u64;
    match clock {
        Some(ck) => {
            let stimulus: Vec<u64> = (0..passes as usize * n_inputs)
                .map(|_| splitmix(&mut rng))
                .collect();
            let mut outputs = Vec::new();
            let t0 = Instant::now();
            sim.run_vectors(ck, passes as usize, &stimulus, &mut outputs);
            black_box(&outputs);
            passes as f64 / t0.elapsed().as_secs_f64()
        }
        None => {
            let out_words: Vec<String> = sim
                .program()
                .outputs
                .iter()
                .map(|(n, _)| n.clone())
                .collect();
            let t0 = Instant::now();
            for _ in 0..passes {
                for bit in 0..n_inputs {
                    sim.set_input_plane(bit, splitmix(&mut rng));
                }
                for name in &out_words {
                    black_box(sim.output_plane(name, 0));
                }
            }
            passes as f64 / t0.elapsed().as_secs_f64()
        }
    }
}

/// Measures every registry design at a cycle-count scale (`1.0` = the
/// full counts used by the binary; tests pass a fraction).
pub fn run_scaled(scale: f64) -> Vec<CompilePoint> {
    let n = |base: u64| ((base as f64 * scale) as u64).max(64);
    rtl_design_registry()
        .iter()
        .map(|spec| {
            let design = compile(&spec.source, spec.top).expect("registry design compiles");
            let net = blast(&design).expect("registry design blasts");
            let t0 = Instant::now();
            let prog = csim_compile(&net).expect("registry design is acyclic");
            let compile_ms = t0.elapsed().as_secs_f64() * 1e3;
            let ops = prog.ops.len();
            let levels = prog.levels;
            let mut sim = CSim::new(prog);

            let interp_cps = interp_rate(spec, n(50_000));
            let scalar_cps = scalar_rate(&net, spec.clock.is_some(), n(5_000));
            let word_cps = csim_rate(&mut sim, spec.clock, n(10_000));
            let lane_cps = word_cps * LANES as f64;
            CompilePoint {
                design: spec.name.to_owned(),
                ops,
                levels,
                compile_ms,
                interp_cps,
                scalar_cps,
                lane_cps,
                speedup: lane_cps / interp_cps,
            }
        })
        .collect()
}

/// Full-count measurement (the binary's table).
pub fn run() -> Vec<CompilePoint> {
    run_scaled(1.0)
}

/// Prints the compile/throughput table and the farm projection.
pub fn print() {
    crate::banner(
        "E18",
        "compiled 64-lane simulation — §4.1 farm throughput, revisited",
    );
    let points = run();
    println!(
        "{:<20}{:>7}{:>7}{:>9}{:>14}{:>14}{:>14}{:>9}",
        "design", "ops", "levels", "comp ms", "interp c/s", "scalar c/s", "lane c/s", "speedup"
    );
    for p in &points {
        println!(
            "{:<20}{:>7}{:>7}{:>9.2}{:>14.0}{:>14.0}{:>14.0}{:>8.1}x",
            p.design,
            p.ops,
            p.levels,
            p.compile_ms,
            p.interp_cps,
            p.scalar_cps,
            p.lane_cps,
            p.speedup
        );
    }
    let mda = points
        .iter()
        .find(|p| p.design == "mda32_two_phase")
        .expect("headline design present");
    let per_day = mda.lane_cps * 86_400.0;
    println!(
        "\nheadline (mda32_two_phase): {:.2}M lane-cycles/sec on one core ({:.1}x the\n\
         word-level interpreter; {:.1}x the one-lane bit-level loop)",
        mda.lane_cps / 1e6,
        mda.speedup,
        mda.lane_cps / mda.scalar_cps
    );
    println!(
        "paper: 2e9 cycles/day needed ~100 CPUs at >200 cycles/sec each;\n\
         ours:  one core delivers {:.1}e9 lane-cycles/day -> {:.5} CPUs for the\n\
         paper's daily budget (the farm collapses into a fraction of a core)",
        per_day / 1e9,
        2e9 / per_day
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registry_design_measures() {
        let points = run_scaled(0.02);
        assert_eq!(points.len(), rtl_design_registry().len());
        for p in &points {
            assert!(p.ops > 0, "{}: empty program", p.design);
            assert!(p.interp_cps > 0.0 && p.scalar_cps > 0.0 && p.lane_cps > 0.0);
        }
    }

    #[test]
    fn compiled_lane_throughput_beats_interp_on_the_headline_adder() {
        // Release acceptance is >=5x (documented in EXPERIMENTS.md); the
        // in-test bar is lower so an unoptimized CI build stays green.
        let points = run_scaled(0.2);
        let mda = points
            .iter()
            .find(|p| p.design == "mda32_two_phase")
            .expect("headline design present");
        assert!(
            mda.speedup > 2.0,
            "lane throughput must clearly beat the interpreter: {:.2}x",
            mda.speedup
        );
    }
}

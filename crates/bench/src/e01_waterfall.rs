//! E1 — **Table 1**: the ALPHA 21064 → StrongARM power waterfall.

use cbv_core::power::{strongarm_waterfall, WaterfallRow};
use cbv_core::tech::Watts;

/// The paper's published factors and intermediate powers, for comparison.
pub const PAPER: [(&str, f64, f64); 5] = [
    ("VDD reduction", 5.3, 4.9),
    ("Reduce functions", 3.0, 1.6),
    ("Scale process", 2.0, 0.8),
    ("Clock load", 1.3, 0.6),
    ("Clock rate", 1.25, 0.5),
];

/// Regenerates Table 1 from the process definitions.
pub fn run() -> Vec<WaterfallRow> {
    strongarm_waterfall(Watts::new(26.0))
}

/// Prints the paper-vs-measured table.
pub fn print() {
    crate::banner("E1", "Table 1 — ALPHA 21064 -> StrongARM power waterfall");
    let rows = run();
    println!(
        "{:<18}{:>12}{:>12}{:>14}{:>12}",
        "step", "paper x", "ours x", "paper W", "ours W"
    );
    println!(
        "{:<18}{:>12}{:>12}{:>14}{:>12}",
        "start (21064)", "-", "-", "26.0", "26.0"
    );
    for (row, (name, pf, pw)) in rows.iter().zip(PAPER) {
        println!(
            "{:<18}{:>12.2}{:>12.2}{:>14.2}{:>12.2}",
            name,
            pf,
            row.factor,
            pw,
            row.power.watts()
        );
    }
    let last = rows.last().expect("five rows").power.watts();
    println!("\nfinal: {last:.3} W  (paper ~0.5 W, realized SA-110: 0.45 W)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let rows = run();
        assert_eq!(rows.len(), PAPER.len());
        for (row, (name, pf, _)) in rows.iter().zip(PAPER) {
            assert!(
                (row.factor / pf - 1.0).abs() < 0.05,
                "{name}: factor {} vs paper {pf}",
                row.factor
            );
        }
        let last = rows.last().unwrap().power.watts();
        assert!((0.45..0.56).contains(&last));
    }
}

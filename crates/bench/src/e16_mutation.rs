//! E16 — exhaustive single-site mutation campaign against the §4.2
//! probability filter.
//!
//! §2.3 and §4.2 claim the electrical battery acts as a *probability
//! filter*: it discharges what is provably fine and flags what might be
//! broken. The E12 detection matrix sampled that claim with seven
//! hand-picked injections; this experiment measures it. Every mutation
//! operator of `cbv-mutate` is applied at (a deterministic spread of)
//! its enumerable sites, each mutant is verified as a one-site ECO via
//! `run_flow_incremental` on a campaign-long cache, and a detector
//! counts only when its violation count strictly *increases* over the
//! unmutated baseline — the designs are not spotless, so presence alone
//! proves nothing.
//!
//! Outputs: the operator × check detection matrix, the escape list,
//! per-operator sensitivity curves (smallest magnitude each check
//! fires at), and the ECO economics (mean per-mutant verify compute vs
//! the cold baseline — the ratio that makes a 500-mutant campaign
//! affordable at all).

use cbv_core::flow::FlowConfig;
use cbv_core::gen::adders::manchester_domino_adder;
use cbv_core::gen::datapath::alu_slice;
use cbv_core::mutate::report::{render_full, render_matrix};
use cbv_core::mutate::{
    default_ops, default_sensitivity, run_campaign, CampaignConfig, CampaignReport,
};
use cbv_core::netlist::FlatNetlist;
use cbv_core::oracle::IncrementalOracle;
use cbv_core::tech::Process;

/// Runs the campaign over `netlist` with every default operator capped
/// at `max_sites_per_op` sites (0 = exhaustive), optionally with the
/// default sensitivity ladders.
pub fn run(netlist: &FlatNetlist, max_sites_per_op: usize, sweep: bool) -> CampaignReport {
    let process = Process::strongarm_035();
    let mut oracle = IncrementalOracle::new(&process, FlowConfig::default());
    let config = CampaignConfig {
        ops: default_ops(),
        max_sites_per_op,
        sensitivity: if sweep {
            default_sensitivity()
        } else {
            Vec::new()
        },
    };
    run_campaign(netlist, &mut oracle, &config)
}

/// The headline campaign: a 16-bit ALU slice, sites capped so the run
/// stays in the hundreds of mutants.
pub fn headline() -> CampaignReport {
    let process = Process::strongarm_035();
    run(&alu_slice(16, &process).netlist, 80, true)
}

/// Prints the E16 tables (the EXPERIMENTS.md protocol).
pub fn print() {
    crate::banner(
        "E16",
        "single-site mutation campaign vs the §4.2 probability filter",
    );

    let report = headline();
    println!("{}", render_full(&report));
    let capped: Vec<String> = report
        .rows
        .iter()
        .filter(|r| r.sites_found > r.mutants_run)
        .map(|r| {
            format!(
                "{} ({} of {} sites)",
                r.op.name(),
                r.mutants_run,
                r.sites_found
            )
        })
        .collect();
    if !capped.is_empty() {
        println!("site caps applied: {}", capped.join(", "));
    }

    // The dynamic-logic operators have no sites on a static datapath;
    // cover them on the domino adder.
    println!();
    let process = Process::strongarm_035();
    let domino = run(&manchester_domino_adder(32, &process).netlist, 12, false);
    println!("{}", render_matrix(&domino));

    println!("(each mutant is one ECO on the campaign-long verification");
    println!(" cache; `speedup vs cold` compares its everify+timing compute");
    println!(" to the cold baseline run that primed the cache. detection is");
    println!(" differential: a check fires only when its violation count");
    println!(" strictly exceeds the unmutated design's.)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_detects_and_amortizes() {
        // Width 4 keeps this cheap; the headline uses width 16.
        let process = Process::strongarm_035();
        let report = run(&alu_slice(4, &process).netlist, 2, false);
        assert_eq!(report.rows.len(), default_ops().len());
        assert!(report.total_mutants() >= 10);
        assert!(
            report.mutants.iter().any(|m| m.detected()),
            "some mutant must be detected"
        );
        assert!(
            report.verify_speedup() > 1.0,
            "incremental mutants must beat the cold baseline ({:.2}x)",
            report.verify_speedup()
        );
        assert!(report.cache_hit_fraction() > 0.5);
        let text = render_full(&report);
        assert!(text.contains("mutation campaign: alu4"));
    }
}

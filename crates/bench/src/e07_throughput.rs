//! E7 — §4.1 simulation throughput.
//!
//! The paper: phase-accurate RTL runs at ">200 cycles per second per
//! simulation CPU", and the logic verification goal of 2×10⁹ aggregated
//! cycles/day needs ~100 CPUs. We measure our engines' cycles/sec on a
//! generated design and on the CAM (native primitive vs gate expansion),
//! then project the farm size for the paper's daily budget.

use std::time::Instant;

use cbv_core::gen::cam::{cam_rtl_expanded, cam_rtl_source};
use cbv_core::rtl::{blast::blast, compile, interp::Interp};
use cbv_core::sim::{GateSim, Logic, SwitchSim};
use cbv_core::tech::Process;

/// One engine's throughput measurement.
pub struct ThroughputPoint {
    /// Engine / workload label.
    pub engine: String,
    /// Measured cycles per second.
    pub cycles_per_sec: f64,
}

/// A small CPU-ish RTL design: 16-bit datapath with an accumulator, ALU
/// ops and a flag — a stand-in for "phase accurate Behavioral/RTL".
const CPU_RTL: &str = "module mini(clock ck, in op[2], in d[16], out acc[16], out z) {\n\
    reg r[16];\n\
    at posedge(ck) {\n\
        if (op == 0) { r <= r + d; }\n\
        else if (op == 1) { r <= r ^ d; }\n\
        else if (op == 2) { r <= r & d; }\n\
        else { r <= d; }\n\
    }\n\
    assign acc = r;\n\
    assign z = r == 0;\n\
}";

fn time_cycles(mut step: impl FnMut(u64), cycles: u64) -> f64 {
    let t0 = Instant::now();
    for i in 0..cycles {
        step(i);
    }
    cycles as f64 / t0.elapsed().as_secs_f64()
}

/// Measures every engine.
pub fn run() -> Vec<ThroughputPoint> {
    let mut out = Vec::new();

    // RTL interpreter on the mini CPU.
    let cpu = compile(CPU_RTL, "mini").expect("compiles");
    let mut sim = Interp::new(&cpu);
    let rate = time_cycles(
        |i| {
            sim.set_input("op", i & 3);
            sim.set_input("d", (i * 2654435761) & 0xFFFF);
            sim.step("ck");
        },
        200_000,
    );
    out.push(ThroughputPoint {
        engine: "rtl interpreter (mini cpu)".into(),
        cycles_per_sec: rate,
    });

    // Gate-level event sim on the blasted mini CPU.
    let net = blast(&cpu).expect("blasts");
    let mut gsim = GateSim::new(&net);
    let rate = time_cycles(
        |i| {
            for b in 0..2 {
                gsim.set_input_by_name(&format!("op[{b}]"), (i >> b) & 1 == 1);
            }
            let d = (i * 2654435761) & 0xFFFF;
            for b in 0..16 {
                gsim.set_input_by_name(&format!("d[{b}]"), (d >> b) & 1 == 1);
            }
            gsim.step(0);
        },
        20_000,
    );
    out.push(ThroughputPoint {
        engine: "gate-level event sim".into(),
        cycles_per_sec: rate,
    });

    // Switch-level transistor sim on a generated 8-bit adder.
    let p = Process::strongarm_035();
    let g = cbv_core::gen::adders::static_ripple_adder(8, &p);
    let mut ssim = SwitchSim::new(&g.netlist);
    let rate = time_cycles(
        |i| {
            let a = i & 0xFF;
            let b = (i >> 8) & 0xFF;
            for bit in 0..8 {
                ssim.set(g.inputs[bit], Logic::from_bool((a >> bit) & 1 == 1));
                ssim.set(g.inputs[8 + bit], Logic::from_bool((b >> bit) & 1 == 1));
            }
            ssim.set(g.inputs[16], Logic::Zero);
            let _ = ssim.settle();
        },
        300,
    );
    out.push(ThroughputPoint {
        engine: "switch-level sim (8b adder)".into(),
        cycles_per_sec: rate,
    });

    // CAM: native primitive vs gate expansion (256 x 16).
    for (label, src) in [
        ("cam native primitive (64x16)", cam_rtl_source(64, 16)),
        ("cam gate-expanded (64x16)", cam_rtl_expanded(64, 16)),
    ] {
        let design = compile(&src, "camq").expect("compiles");
        let mut sim = Interp::new(&design);
        let rate = time_cycles(
            |i| {
                sim.set_input("we", i & 1);
                sim.set_input("wi", i % 64);
                sim.set_input("wv", (i * 7) & 0xFFFF);
                sim.set_input("k", (i * 13) & 0xFFFF);
                sim.step("ck");
            },
            20_000,
        );
        out.push(ThroughputPoint {
            engine: label.into(),
            cycles_per_sec: rate,
        });
    }
    out
}

/// Prints the throughput table and the farm projection.
pub fn print() {
    crate::banner("E7", "§4.1 — simulation throughput and the farm projection");
    let points = run();
    println!("{:<34}{:>16}", "engine", "cycles/sec");
    for p in &points {
        println!("{:<34}{:>16.0}", p.engine, p.cycles_per_sec);
    }
    let rtl = points[0].cycles_per_sec;
    // The paper's chip model is vastly bigger than our mini CPU; what
    // matters is the *ratio* math: 2e9 cycles/day at the paper's >200
    // cycles/sec/CPU needs ~115 CPUs; at ours:
    let per_day = rtl * 86_400.0;
    println!("\npaper: >200 cycles/sec/CPU, 2e9 cycles/day -> ~100 CPUs");
    println!(
        "ours:  {:.0} cycles/sec/CPU on the mini design -> {:.4} CPUs for 2e9/day",
        rtl,
        2e9 / per_day
    );
    let native = points[3].cycles_per_sec;
    let expanded = points[4].cycles_per_sec;
    println!(
        "\ncam primitive speedup over gate expansion: {:.1}x  (\"standard languages\n\
         ... result in highly inefficient run-times, e.g. a 2000 port CAM\")",
        native / expanded
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtl_beats_the_paper_per_cpu_target() {
        let points = run();
        assert!(
            points[0].cycles_per_sec > 200.0,
            "must beat the 1997 farm per-CPU figure"
        );
    }

    #[test]
    fn native_cam_is_much_faster_than_expansion() {
        let points = run();
        let native = points
            .iter()
            .find(|p| p.engine.contains("native"))
            .unwrap()
            .cycles_per_sec;
        let expanded = points
            .iter()
            .find(|p| p.engine.contains("expanded"))
            .unwrap()
            .cycles_per_sec;
        assert!(native > 3.0 * expanded, "{native} vs {expanded}");
    }
}

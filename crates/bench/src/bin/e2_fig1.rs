//! Regenerates experiment e2's table (see DESIGN.md's index).
fn main() {
    cbv_bench::e02_hierarchy::print();
}

//! Regenerates experiment e9's table (see DESIGN.md's index).
fn main() {
    cbv_bench::e09_leakage::print();
}

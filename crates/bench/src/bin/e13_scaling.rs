//! Regenerates experiment e13's table (see DESIGN.md's index).
fn main() {
    cbv_bench::e13_parallel::print();
}

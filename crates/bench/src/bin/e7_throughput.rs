//! Regenerates experiment e7's table (see DESIGN.md's index).
fn main() {
    cbv_bench::e07_throughput::print();
}

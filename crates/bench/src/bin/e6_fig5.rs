//! Regenerates experiment e6's table (see DESIGN.md's index).
fn main() {
    cbv_bench::e06_rcgrid::print();
}

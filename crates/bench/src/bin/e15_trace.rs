//! Regenerates experiment e15's waterfall and overhead table (see
//! DESIGN.md's index).
fn main() {
    cbv_bench::e15_trace::print();
}

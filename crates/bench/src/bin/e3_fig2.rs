//! Regenerates experiment e3's table (see DESIGN.md's index).
fn main() {
    cbv_bench::e03_flow::print();
}

//! Regenerates experiment e12's table (see DESIGN.md's index).
fn main() {
    cbv_bench::e12_coverage::print();
}

//! Regenerates experiment e10's table (see DESIGN.md's index).
fn main() {
    cbv_bench::e10_pessimism::print();
}

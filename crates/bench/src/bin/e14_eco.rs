fn main() {
    cbv_bench::e14_eco::print();
}

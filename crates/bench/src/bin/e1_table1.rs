//! Regenerates experiment e1's table (see DESIGN.md's index).
fn main() {
    cbv_bench::e01_waterfall::print();
}

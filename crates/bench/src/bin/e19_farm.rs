fn main() {
    cbv_bench::e19_farm::print();
}

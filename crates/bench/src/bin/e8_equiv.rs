//! Regenerates experiment e8's table (see DESIGN.md's index).
fn main() {
    cbv_bench::e08_equiv::print();
}

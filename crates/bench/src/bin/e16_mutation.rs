fn main() {
    cbv_bench::e16_mutation::print();
}

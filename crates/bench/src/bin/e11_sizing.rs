//! Regenerates experiment e11's table (see DESIGN.md's index).
fn main() {
    cbv_bench::e11_sizing::print();
}

//! Regenerates experiment e4's table (see DESIGN.md's index).
fn main() {
    cbv_bench::e04_noise::print();
}

//! Regenerates experiment e5's table (see DESIGN.md's index).
fn main() {
    cbv_bench::e05_timing::print();
}

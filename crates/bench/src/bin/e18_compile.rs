//! Regenerates experiment e18's table (see DESIGN.md's index).
fn main() {
    cbv_bench::e18_compile::print();
}

fn main() {
    cbv_bench::e17_serve::print();
}

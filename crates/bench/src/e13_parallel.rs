//! E13 — parallel verification scaling.
//!
//! §4.1: logic verification at DEC ran "on a network of 100 high
//! performance workstations" — throughput is what makes
//! Correct-by-Verification viable, because every check must rerun over
//! every transistor on every design iteration. This experiment is the
//! single-machine analogue: the flow's parallel stages (the §4.2 battery
//! and the §4.3 timing-graph build) are swept over worker counts on a
//! 32-bit manchester domino adder, reporting per-stage wall-clock,
//! aggregate worker-CPU time, and speedup over the serial run.
//!
//! Determinism is part of the claim: tests/parallel.rs proves the
//! reports are byte-identical at every point of this sweep, so the
//! speedup is free — no reproducibility is traded for it.

use cbv_core::flow::{run_flow, FlowConfig, FlowReport};
use cbv_core::gen::adders::manchester_domino_adder;
use cbv_core::tech::Process;

/// Worker counts swept.
pub const SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Scaling measurements for one worker count.
pub struct ScalingPoint {
    /// Worker threads used for the parallel stages.
    pub threads: usize,
    /// Wall-clock of the §4.2 battery stage, seconds.
    pub everify_wall: f64,
    /// Aggregate worker-CPU of the battery stage, seconds.
    pub everify_cpu: f64,
    /// Wall-clock of the timing stage, seconds.
    pub timing_wall: f64,
    /// Aggregate worker-CPU of the timing stage, seconds.
    pub timing_cpu: f64,
    /// Wall-clock of the whole flow, seconds.
    pub total_wall: f64,
}

impl ScalingPoint {
    /// Combined wall-clock of the two parallel stages.
    pub fn parallel_wall(&self) -> f64 {
        self.everify_wall + self.timing_wall
    }
}

fn stage_times(report: &FlowReport, stage: &str) -> (f64, f64) {
    let s = report
        .stages
        .iter()
        .find(|s| s.stage == stage)
        .unwrap_or_else(|| panic!("flow has a `{stage}` stage"));
    (s.runtime.seconds(), s.cpu_time.seconds())
}

/// Runs the full flow over a `width`-bit manchester domino adder at one
/// worker count and pulls out the parallel stages' timings.
pub fn measure(width: u32, threads: usize) -> ScalingPoint {
    let process = Process::strongarm_035();
    let design = manchester_domino_adder(width, &process);
    let config = FlowConfig {
        parallelism: threads,
        ..FlowConfig::default()
    };
    let report = run_flow(design.netlist, &process, &config);
    let (everify_wall, everify_cpu) = stage_times(&report, "everify");
    let (timing_wall, timing_cpu) = stage_times(&report, "timing");
    ScalingPoint {
        threads,
        everify_wall,
        everify_cpu,
        timing_wall,
        timing_cpu,
        total_wall: report.total_runtime().seconds(),
    }
}

/// Sweeps [`SWEEP`] over a `width`-bit adder.
pub fn run_width(width: u32) -> Vec<ScalingPoint> {
    SWEEP.iter().map(|&t| measure(width, t)).collect()
}

/// The headline sweep: 1/2/4/8 workers over a 32-bit adder.
pub fn run() -> Vec<ScalingPoint> {
    run_width(32)
}

/// Prints the scaling table.
pub fn print() {
    crate::banner("E13", "parallel verification scaling (32-bit domino adder)");
    let points = run();
    let base = points[0].parallel_wall();
    println!(
        "{:>8}{:>14}{:>14}{:>14}{:>14}{:>10}",
        "threads", "everify wall", "everify cpu", "timing wall", "timing cpu", "speedup"
    );
    for pt in &points {
        println!(
            "{:>8}{:>12.1}ms{:>12.1}ms{:>12.1}ms{:>12.1}ms{:>9.2}x",
            pt.threads,
            pt.everify_wall * 1e3,
            pt.everify_cpu * 1e3,
            pt.timing_wall * 1e3,
            pt.timing_cpu * 1e3,
            base / pt.parallel_wall()
        );
    }
    println!("\n(speedup = serial wall / parallel wall over the two parallel");
    println!(" stages; cpu ≈ wall × threads when scaling is ideal. Reports are");
    println!(" byte-identical at every worker count — see tests/parallel.rs)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_measures_every_thread_count() {
        // A small width keeps this test cheap; the headline numbers use 32.
        let pts = run_width(4);
        assert_eq!(pts.len(), SWEEP.len());
        for (pt, threads) in pts.iter().zip(SWEEP) {
            assert_eq!(pt.threads, threads);
            assert!(pt.everify_wall > 0.0 && pt.timing_wall > 0.0);
            assert!(pt.everify_cpu > 0.0 && pt.timing_cpu > 0.0);
            assert!(pt.total_wall >= pt.parallel_wall());
        }
    }
}

//! Criterion bench for E9: chip-scale standby analysis.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_standby");
    g.sample_size(10);
    g.bench_function("standby_matrix", |b| {
        b.iter(|| std::hint::black_box(cbv_bench::e09_leakage::run()))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for E5: STA over the two-phase ALU slice.
use cbv_core::extract::extract;
use cbv_core::gen::datapath::alu_slice;
use cbv_core::layout::synthesize;
use cbv_core::recognize::recognize;
use cbv_core::tech::units::nanoseconds;
use cbv_core::tech::{Process, Tolerance};
use cbv_core::timing::{
    analyze, graph::build_graph, infer_constraints, ClockSchedule, DelayCalc, Pessimism,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let p = Process::strongarm_035();
    let g = alu_slice(8, &p);
    let mut netlist = g.netlist;
    let rec = recognize(&mut netlist);
    let layout = synthesize(&mut netlist, &p);
    let ex = extract(&layout, &netlist, &p);
    let pess = Pessimism::signoff();
    let calc = DelayCalc::new(&p, Tolerance::conservative(), pess);
    let graph = build_graph(&netlist, &rec, &ex, &calc);
    let constraints = infer_constraints(&netlist, &rec, &p, &pess);
    let schedule = ClockSchedule::two_phase("phi1", "phi2", nanoseconds(120.0), nanoseconds(5.0));
    c.bench_function("e5_fig4_sta_alu8", |b| {
        b.iter(|| {
            std::hint::black_box(analyze(
                &netlist,
                &graph,
                &constraints,
                &schedule,
                &pess,
                &[],
            ))
        })
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);

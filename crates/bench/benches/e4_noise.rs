//! Criterion bench for E4: the electrical battery on a domino stage.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_fig3");
    g.sample_size(10);
    g.bench_function("charge_share_sweep", |b| {
        b.iter(|| std::hint::black_box(cbv_bench::e04_noise::charge_share_sweep()))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for E2: hierarchy-overlap measurement.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_fig1");
    g.sample_size(20);
    g.bench_function("hierarchy_overlap_alu8", |b| {
        b.iter(|| std::hint::black_box(cbv_bench::e02_hierarchy::run()))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);

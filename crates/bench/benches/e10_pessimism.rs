//! Criterion bench for E10: the pessimism sweep.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_roc");
    g.sample_size(20);
    g.bench_function("pessimism_frontier", |b| {
        b.iter(|| std::hint::black_box(cbv_bench::e10_pessimism::run()))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);

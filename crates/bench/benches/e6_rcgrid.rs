//! Criterion bench for E6: Elmore evaluation on distributed lines.
use cbv_core::extract::RcNet;
use cbv_core::netlist::NetId;
use cbv_core::tech::{Farads, Ohms};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let rc = RcNet::line(NetId(0), 256, Ohms::new(800.0), Farads::new(2e-12));
    c.bench_function("e6_fig5_elmore_256seg", |b| {
        b.iter(|| {
            std::hint::black_box(rc.elmore(rc.first_node(), rc.last_node(), Ohms::new(150.0)))
        })
    });
    c.bench_function("e6_fig5_model_study", |b| {
        b.iter(|| std::hint::black_box(cbv_bench::e06_rcgrid::run()))
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for E15: the flow with tracing off versus on over
//! the E13 workload (32-bit manchester domino adder). The two curves
//! quantify the observability tax directly.
use cbv_core::flow::{run_flow, FlowConfig};
use cbv_core::gen::adders::manchester_domino_adder;
use cbv_core::obs::Tracer;
use cbv_core::tech::Process;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let process = Process::strongarm_035();
    let mut g = c.benchmark_group("e15_trace_overhead");
    g.sample_size(10);
    for traced in [false, true] {
        let label = if traced { "traced" } else { "untraced" };
        g.bench_function(label, |b| {
            b.iter_with_setup(
                || {
                    let config = FlowConfig {
                        tracer: if traced {
                            Tracer::collecting().0
                        } else {
                            Tracer::disabled()
                        },
                        ..FlowConfig::default()
                    };
                    (manchester_domino_adder(32, &process).netlist, config)
                },
                |(netlist, config)| std::hint::black_box(run_flow(netlist, &process, &config)),
            )
        });
    }
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);

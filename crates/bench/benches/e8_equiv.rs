//! Criterion bench for E8: equivalence-checking kernels.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_equiv");
    g.sample_size(20);
    g.bench_function("counter_vs_shifter_plus_bdds", |b| {
        b.iter(|| std::hint::black_box(cbv_bench::e08_equiv::run()))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for E11: the path-sizing optimizer.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("e11_size_paths", |b| {
        b.iter(|| std::hint::black_box(cbv_bench::e11_sizing::run()))
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);

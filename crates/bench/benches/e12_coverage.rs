//! Criterion bench for E12: the fault-injection matrix.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_matrix");
    g.sample_size(10);
    g.bench_function("detection_matrix", |b| {
        b.iter(|| std::hint::black_box(cbv_bench::e12_coverage::run()))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for E18: compile cost and per-pass execution cost of
//! the 64-lane compiled engine on the headline two-phase adder.
use cbv_core::csim::{compile as csim_compile, CSim};
use cbv_core::gen::rtl_designs::manchester_class_adder_rtl;
use cbv_core::rtl::{blast::blast, compile};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let design = compile(&manchester_class_adder_rtl(32), "mda32").expect("compiles");
    let net = blast(&design).expect("blasts");
    c.bench_function("e18_compile_mda32", |b| {
        b.iter(|| csim_compile(&net).expect("acyclic"))
    });

    let mut sim = CSim::new(csim_compile(&net).expect("acyclic"));
    let mut i = 0u64;
    c.bench_function("e18_csim_pass_mda32", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9e3779b97f4a7c15);
            for (lane, bit) in [(0usize, 0usize), (17, 13), (42, 31)] {
                sim.set_input_plane(bit, i.rotate_left(lane as u32));
            }
            sim.step("ck");
        })
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for E1: regenerating Table 1.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("e1_table1_waterfall", |b| {
        b.iter(|| std::hint::black_box(cbv_bench::e01_waterfall::run()))
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);

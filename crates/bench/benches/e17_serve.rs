//! Criterion bench for E17: one ECO round-trip (frame → queue → verify
//! → signoff reply) against a warm loopback daemon, vs the in-process
//! service call it wraps — the protocol + queue overhead.
use cbv_core::flow::FlowConfig;
use cbv_core::service::FlowService;
use cbv_core::tech::Process;
use cbv_serve::{serve, Client, ServerConfig, Session};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let server = serve(ServerConfig::default()).expect("bind loopback daemon");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.open("dcvsl").expect("open");
    client.signoff(None).expect("warm the shared cache");
    let edit = cbv_bench::e17_serve::eco_step(0, 8);

    let process = Process::strongarm_035();
    let session = Session::open("dcvsl", &process).expect("open");
    let service = FlowService::new(process, FlowConfig::default());
    service.verify(session.netlist().clone(), None, None);

    let mut g = c.benchmark_group("e17_serve_roundtrip");
    g.sample_size(10);
    g.bench_function("remote_eco_signoff", |b| {
        b.iter(|| {
            let v = client.eco(&edit, None).expect("eco");
            client.rollback(0).expect("rollback");
            std::hint::black_box(v)
        })
    });
    g.bench_function("in_process_verify", |b| {
        b.iter(|| std::hint::black_box(service.verify(session.netlist().clone(), None, None)))
    });
    g.finish();
    drop(client);
    server.shutdown();
}
criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for E7: per-cycle cost of each simulation engine.
use cbv_core::rtl::{compile, interp::Interp};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let design = compile(
        "module mini(clock ck, in d[16], out acc[16]) { reg r[16]; at posedge(ck) { r <= r + d; } assign acc = r; }",
        "mini",
    )
    .expect("compiles");
    let mut sim = Interp::new(&design);
    let mut i = 0u64;
    c.bench_function("e7_rtl_interp_cycle", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            sim.set_input("d", i & 0xFFFF);
            sim.step("ck");
        })
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for E16: the marginal cost of one mutant — apply +
//! incremental verify + revert — against a campaign-primed cache, vs
//! the site enumeration sweep itself.
use cbv_core::cache::VerifyCache;
use cbv_core::flow::{run_flow_incremental, FlowConfig};
use cbv_core::gen::datapath::alu_slice;
use cbv_core::mutate::{apply, default_ops, sites, MutationOp};
use cbv_core::recognize::recognize;
use cbv_core::tech::Process;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let process = Process::strongarm_035();
    let base = alu_slice(16, &process).netlist;
    let config = FlowConfig::default();
    let mut recognized = base.clone();
    let recognition = recognize(&mut recognized);

    let mut g = c.benchmark_group("e16_mutation");
    g.sample_size(10);

    g.bench_function("enumerate_all_default_op_sites", |b| {
        b.iter(|| {
            let total: usize = default_ops()
                .iter()
                .map(|op| sites(op, &recognized, &recognition).len())
                .sum();
            std::hint::black_box(total)
        })
    });

    let op = MutationOp::WidthScale { factor: 12.0 };
    let site = sites(&op, &recognized, &recognition)[0];
    g.bench_function("one_mutant_as_eco", |b| {
        b.iter_with_setup(
            || {
                let mut cache = VerifyCache::new();
                run_flow_incremental(base.clone(), &process, &config, &mut cache);
                cache
            },
            |mut cache| {
                let mut nl = base.clone();
                let m = apply(&mut nl, &op, site).expect("applies");
                let report = run_flow_incremental(nl.clone(), &process, &config, &mut cache);
                m.revert(&mut nl);
                std::hint::black_box((report.signoff.clean(), nl))
            },
        )
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for E13: the flow's parallel stages at 1/2/4/8
//! workers over a 32-bit manchester domino adder.
use cbv_core::flow::{run_flow, FlowConfig};
use cbv_core::gen::adders::manchester_domino_adder;
use cbv_core::tech::Process;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let process = Process::strongarm_035();
    let mut g = c.benchmark_group("e13_parallel_flow");
    g.sample_size(10);
    for threads in cbv_bench::e13_parallel::SWEEP {
        let config = FlowConfig {
            parallelism: threads,
            ..FlowConfig::default()
        };
        g.bench_function(&format!("threads_{threads}"), |b| {
            b.iter_with_setup(
                || manchester_domino_adder(32, &process).netlist,
                |netlist| std::hint::black_box(run_flow(netlist, &process, &config)),
            )
        });
    }
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for E19: one farm signoff (coordinator dirty
//! closure → batch dispatch → wire → merge → signoff) against a warm
//! shared tier, vs the in-process service call it shards — the
//! coordination + transport overhead per signoff.

use std::sync::Arc;

use cbv_core::flow::FlowConfig;
use cbv_core::service::FlowService;
use cbv_core::tech::Process;
use cbv_serve::{serve, Farm, FarmConfig, ServerConfig, Session};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let server = serve(ServerConfig::default()).expect("bind loopback daemon");
    let farm = Farm::new(
        Arc::new(FlowService::new(
            Process::strongarm_035(),
            FlowConfig::default(),
        )),
        FarmConfig {
            workers: vec![server.addr().to_string()],
            ..FarmConfig::default()
        },
    );
    farm.verify("dcvsl", &[]).expect("warm the shared tier");

    let process = Process::strongarm_035();
    let session = Session::open("dcvsl", &process).expect("open");
    let service = FlowService::new(process, FlowConfig::default());
    service.verify(session.netlist().clone(), None, None);

    let mut g = c.benchmark_group("e19_farm_signoff");
    g.sample_size(10);
    g.bench_function("farm_verify_warm_tier", |b| {
        b.iter(|| std::hint::black_box(farm.verify("dcvsl", &[]).expect("farm verify")))
    });
    g.bench_function("in_process_verify", |b| {
        b.iter(|| std::hint::black_box(service.verify(session.netlist().clone(), None, None)))
    });
    g.finish();
    drop(farm);
    server.shutdown();
}
criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for E14: cold `run_flow` vs warm `run_flow_incremental`
//! after a one-device ECO on a 16-bit ALU slice.
use cbv_core::cache::VerifyCache;
use cbv_core::flow::{run_flow, run_flow_incremental, FlowConfig};
use cbv_core::gen::datapath::alu_slice;
use cbv_core::netlist::DeviceId;
use cbv_core::tech::Process;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let process = Process::strongarm_035();
    let config = FlowConfig::default();
    let base = alu_slice(16, &process).netlist;
    let mut eco = base.clone();
    eco.device_mut(DeviceId(0)).w *= 1.05;

    let mut g = c.benchmark_group("e14_eco_rerun");
    g.sample_size(10);
    g.bench_function("cold_run_flow", |b| {
        b.iter_with_setup(
            || eco.clone(),
            |n| std::hint::black_box(run_flow(n, &process, &config)),
        )
    });
    g.bench_function("warm_run_flow_incremental", |b| {
        b.iter_with_setup(
            || {
                let mut cache = VerifyCache::new();
                run_flow_incremental(base.clone(), &process, &config, &mut cache);
                (eco.clone(), cache)
            },
            |(n, mut cache)| {
                std::hint::black_box(run_flow_incremental(n, &process, &config, &mut cache))
            },
        )
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);

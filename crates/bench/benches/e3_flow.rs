//! Criterion bench for E3: the full CBV flow on an 8-bit adder.
use cbv_core::flow::{run_flow, FlowConfig};
use cbv_core::gen::adders::static_ripple_adder;
use cbv_core::tech::Process;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let p = Process::strongarm_035();
    let mut g = c.benchmark_group("e3_fig2");
    g.sample_size(10);
    g.bench_function("full_flow_ripple8", |b| {
        b.iter_with_setup(
            || static_ripple_adder(8, &p).netlist,
            |netlist| std::hint::black_box(run_flow(netlist, &p, &FlowConfig::default())),
        )
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);

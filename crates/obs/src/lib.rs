//! `cbv-obs` — structured tracing and metrics for the verification flow.
//!
//! The paper's CBV tools are *probability filters*: their value is the
//! feedback they hand the designer — what was discharged, what was
//! flagged, and how long each filter spent (§4, Fig 2). DEC steered
//! sizing and schedule from exactly this feedback. This crate is the
//! reporting backbone that makes the flow's own behaviour inspectable:
//!
//! * [`Span`] — a nested, timed region (monotonic nanosecond timestamps
//!   relative to the tracer's epoch, plus a small stable per-tracer
//!   thread index), emitted to the sink when it closes;
//! * counters ([`Tracer::add`]) and gauges ([`Tracer::gauge`]) — named
//!   registries aggregated inside the tracer and flushed as final
//!   totals, in sorted name order, by [`Tracer::flush`];
//! * [`TraceSink`] — where finished spans and flushed metrics go, with
//!   two built-ins: the in-memory [`Collector`] and the line-oriented
//!   [`JsonlSink`].
//!
//! Like `cbv-exec`, the crate is zero-dependency, and the whole layer is
//! free when disabled: [`Tracer::disabled`] carries no allocation, every
//! operation on it is a branch on a `None`, and the flow's outputs are
//! byte-identical with observability on or off (proven in
//! `tests/obs.rs`).
//!
//! # Determinism contract
//!
//! Counters and the *shape* of the span tree (names and parent/child
//! edges) depend only on the work performed, never on how it was
//! scheduled: the same design traced at 1, 2 or 8 worker threads
//! produces identical counter totals and an identical span tree modulo
//! ids, timestamps and thread indices. Quantities that are inherently
//! timing-dependent (busy times, wall-clocks) are recorded as *gauges*
//! or span durations, never as counters.
//!
//! # JSONL schema (`cbv-trace/1`)
//!
//! [`JsonlSink`] writes one JSON object per line:
//!
//! ```text
//! {"type":"meta","format":"cbv-trace/1"}                      — first line
//! {"type":"span","id":2,"parent":1,"name":"everify",
//!  "t0_ns":1200,"t1_ns":58100,"thread":0}                     — one per closed span
//! {"type":"counter","name":"timing.arcs","value":421}         — at flush, sorted by name
//! {"type":"gauge","name":"everify.busy_s","value":0.0521}     — at flush, sorted by name
//! ```
//!
//! * `id` is unique and nonzero within one tracer; `parent` is `null`
//!   for root spans, else the id of an emitted span.
//! * `t0_ns`/`t1_ns` are monotonic nanoseconds since the tracer was
//!   created, `t0_ns <= t1_ns`.
//! * `thread` is a dense index (0, 1, ...) in order of first appearance,
//!   not an OS thread id.
//! * Span lines appear in completion order (concurrent spans may
//!   interleave arbitrarily); counter and gauge lines are sorted.
//! * Non-finite gauge values serialize as `null`.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

pub mod render;

pub use render::waterfall;

/// One closed span, as delivered to a [`TraceSink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique nonzero id within the tracer.
    pub id: u64,
    /// Parent span id (`None` for roots).
    pub parent: Option<u64>,
    /// Span name, e.g. `"everify"` or `"check:beta-ratio"`.
    pub name: String,
    /// Start, monotonic nanoseconds since the tracer's epoch.
    pub t0_ns: u64,
    /// End, monotonic nanoseconds since the tracer's epoch.
    pub t1_ns: u64,
    /// Dense per-tracer index of the thread the span closed on.
    pub thread: u32,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.t1_ns.saturating_sub(self.t0_ns)
    }
}

/// Destination for closed spans and flushed metrics.
///
/// `counter`/`gauge` receive *final totals* (the tracer aggregates
/// increments internally), so a sink may simply overwrite by name; a
/// second [`Tracer::flush`] re-emits current totals rather than deltas.
pub trait TraceSink: Send {
    /// A span closed.
    fn span(&mut self, span: &SpanRecord);
    /// Final total of one counter (called at flush, sorted by name).
    fn counter(&mut self, name: &str, value: u64);
    /// Final value of one gauge (called at flush, sorted by name).
    fn gauge(&mut self, name: &str, value: f64);
    /// Flush buffered output, if any.
    fn flush(&mut self) {}
}

/// Everything a tracer gathered: the [`Collector`]'s snapshot, also the
/// input to [`render::waterfall`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Closed spans in completion order.
    pub spans: Vec<SpanRecord>,
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, f64>,
}

impl Trace {
    /// The scheduling-independent shape of the span tree: a sorted list
    /// of `(parent name, name)` edges (roots get an empty parent name).
    /// Two runs of the same work at different worker counts produce
    /// equal signatures — the determinism contract `tests/obs.rs`
    /// checks.
    pub fn tree_signature(&self) -> Vec<(String, String)> {
        let name_of: BTreeMap<u64, &str> =
            self.spans.iter().map(|s| (s.id, s.name.as_str())).collect();
        let mut sig: Vec<(String, String)> = self
            .spans
            .iter()
            .map(|s| {
                let parent = s
                    .parent
                    .and_then(|p| name_of.get(&p).copied())
                    .unwrap_or("")
                    .to_owned();
                (parent, s.name.clone())
            })
            .collect();
        sig.sort();
        sig
    }

    /// Spans with a given name, in completion order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }
}

/// In-memory [`TraceSink`]: accumulates everything into a shared
/// [`Trace`]. Clones share the same storage, so keep one handle and
/// read it after the traced work (and a [`Tracer::flush`]) completes.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    data: Arc<Mutex<Trace>>,
}

impl Collector {
    /// A fresh, empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Snapshot of everything collected so far.
    pub fn trace(&self) -> Trace {
        self.data.lock().expect("collector lock").clone()
    }
}

impl TraceSink for Collector {
    fn span(&mut self, span: &SpanRecord) {
        self.data
            .lock()
            .expect("collector lock")
            .spans
            .push(span.clone());
    }

    fn counter(&mut self, name: &str, value: u64) {
        self.data
            .lock()
            .expect("collector lock")
            .counters
            .insert(name.to_owned(), value);
    }

    fn gauge(&mut self, name: &str, value: f64) {
        self.data
            .lock()
            .expect("collector lock")
            .gauges
            .insert(name.to_owned(), value);
    }
}

/// Minimal JSON string escaper (quotes, backslashes, control chars).
fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Line-oriented JSONL [`TraceSink`] over any writer. See the crate
/// docs for the `cbv-trace/1` schema. I/O errors are deliberately
/// swallowed: tracing must never take down a verification run.
///
/// The sink is **line-atomic under concurrent writers**: every record
/// is rendered into a complete line (newline included) first, then
/// written with a single `write_all` while holding the writer's lock.
/// Clones share the same locked writer, so several tracers — e.g. the
/// daemon's interleaved sessions — can stream into one `cbv-trace/1`
/// file without ever tearing a line (regression-tested with racing
/// spans in `tests/obs.rs`).
pub struct JsonlSink<W: Write + Send> {
    out: Arc<Mutex<W>>,
}

impl<W: Write + Send> Clone for JsonlSink<W> {
    fn clone(&self) -> JsonlSink<W> {
        JsonlSink {
            out: Arc::clone(&self.out),
        }
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer and emits the meta header line (once — clones
    /// share the header).
    pub fn new(mut out: W) -> JsonlSink<W> {
        let _ = out.write_all(b"{\"type\":\"meta\",\"format\":\"cbv-trace/1\"}\n");
        JsonlSink {
            out: Arc::new(Mutex::new(out)),
        }
    }

    fn emit(&self, mut line: String) {
        line.push('\n');
        let mut out = self.out.lock().expect("jsonl writer lock");
        let _ = out.write_all(line.as_bytes());
    }

    /// Consumes the sink, returning the writer (after a flush) — or
    /// `None` while clones of this sink are still alive.
    pub fn into_inner(self) -> Option<W> {
        if let Ok(mutex) = Arc::try_unwrap(self.out) {
            let mut out = mutex.into_inner().expect("jsonl writer lock");
            let _ = out.flush();
            Some(out)
        } else {
            None
        }
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn span(&mut self, span: &SpanRecord) {
        let mut line = String::with_capacity(96);
        line.push_str("{\"type\":\"span\",\"id\":");
        line.push_str(&span.id.to_string());
        line.push_str(",\"parent\":");
        match span.parent {
            Some(p) => line.push_str(&p.to_string()),
            None => line.push_str("null"),
        }
        line.push_str(",\"name\":");
        write_json_str(&span.name, &mut line);
        let _ = write!(
            line,
            ",\"t0_ns\":{},\"t1_ns\":{},\"thread\":{}}}",
            span.t0_ns, span.t1_ns, span.thread
        );
        self.emit(line);
    }

    fn counter(&mut self, name: &str, value: u64) {
        let mut line = String::with_capacity(64);
        line.push_str("{\"type\":\"counter\",\"name\":");
        write_json_str(name, &mut line);
        let _ = write!(line, ",\"value\":{value}}}");
        self.emit(line);
    }

    fn gauge(&mut self, name: &str, value: f64) {
        let mut line = String::with_capacity(64);
        line.push_str("{\"type\":\"gauge\",\"name\":");
        write_json_str(name, &mut line);
        if value.is_finite() {
            let _ = write!(line, ",\"value\":{value}}}");
        } else {
            line.push_str(",\"value\":null}");
        }
        self.emit(line);
    }

    fn flush(&mut self) {
        let _ = self.out.lock().expect("jsonl writer lock").flush();
    }
}

struct State {
    sink: Box<dyn TraceSink>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    threads: Vec<ThreadId>,
}

struct Inner {
    epoch: Instant,
    next_id: AtomicU64,
    state: Mutex<State>,
}

impl Inner {
    fn thread_index(state: &mut State) -> u32 {
        let id = std::thread::current().id();
        match state.threads.iter().position(|&t| t == id) {
            Some(i) => i as u32,
            None => {
                state.threads.push(id);
                (state.threads.len() - 1) as u32
            }
        }
    }
}

/// Handle to one trace session. Cheap to clone (clones share the same
/// sink and registries); a disabled tracer is two words and every
/// operation on it is a no-op branch.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

/// A `const` disabled tracer, usable where a `&'static Tracer` default
/// is needed (e.g. [`TraceCtx::disabled`]).
pub const DISABLED: Tracer = Tracer { inner: None };

impl Tracer {
    /// A tracer that records nothing, at (almost) no cost.
    pub fn disabled() -> Tracer {
        DISABLED
    }

    /// A tracer writing to the given sink.
    pub fn new(sink: impl TraceSink + 'static) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                state: Mutex::new(State {
                    sink: Box::new(sink),
                    counters: BTreeMap::new(),
                    gauges: BTreeMap::new(),
                    threads: Vec::new(),
                }),
            })),
        }
    }

    /// A tracer backed by an in-memory [`Collector`]; returns both. Read
    /// the collector after the traced work and a [`Tracer::flush`].
    pub fn collecting() -> (Tracer, Collector) {
        let collector = Collector::new();
        (Tracer::new(collector.clone()), collector)
    }

    /// Whether this tracer records anything. Use this to skip building
    /// dynamic span names on hot paths.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a root span.
    pub fn span(&self, name: &str) -> Span<'_> {
        self.span_in(None, name)
    }

    /// Opens a span under an explicit parent id (how spans cross thread
    /// boundaries: pass [`Span::id`] into the worker).
    pub fn span_in(&self, parent: Option<u64>, name: &str) -> Span<'_> {
        let data = self.inner.as_ref().map(|inner| SpanData {
            id: inner.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            name: name.to_owned(),
            start: Instant::now(),
        });
        Span { tracer: self, data }
    }

    /// Adds to a named counter. Counters must be scheduling-independent
    /// (finding counts, arcs, cache hits) — see the determinism
    /// contract in the crate docs.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock().expect("tracer lock");
            *state.counters.entry(name.to_owned()).or_insert(0) += delta;
        }
    }

    /// Sets a named gauge (last write wins). The home for quantities
    /// that legitimately vary run to run: busy times, sizes-of-the-day.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock().expect("tracer lock");
            state.gauges.insert(name.to_owned(), value);
        }
    }

    /// Current total of a counter (0 if never incremented or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|inner| {
                inner
                    .state
                    .lock()
                    .expect("tracer lock")
                    .counters
                    .get(name)
                    .copied()
            })
            .unwrap_or(0)
    }

    /// Emits every counter and gauge total to the sink (sorted by name)
    /// and flushes it. Idempotent: sinks receive totals, not deltas.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock().expect("tracer lock");
            let counters: Vec<(String, u64)> = state
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect();
            let gauges: Vec<(String, f64)> =
                state.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect();
            for (name, value) in counters {
                state.sink.counter(&name, value);
            }
            for (name, value) in gauges {
                state.sink.gauge(&name, value);
            }
            state.sink.flush();
        }
    }

    fn record(&self, data: SpanData) {
        let Some(inner) = &self.inner else { return };
        let t1_ns = inner.epoch.elapsed().as_nanos() as u64;
        let t0_ns = t1_ns.saturating_sub(data.start.elapsed().as_nanos() as u64);
        let mut state = inner.state.lock().expect("tracer lock");
        let thread = Inner::thread_index(&mut state);
        let record = SpanRecord {
            id: data.id,
            parent: data.parent,
            name: data.name,
            t0_ns,
            t1_ns,
            thread,
        };
        state.sink.span(&record);
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::disabled()
    }
}

struct SpanData {
    id: u64,
    parent: Option<u64>,
    name: String,
    start: Instant,
}

/// An open span; closing (dropping) it emits a [`SpanRecord`]. Inert
/// when the tracer is disabled.
pub struct Span<'t> {
    tracer: &'t Tracer,
    data: Option<SpanData>,
}

impl<'t> Span<'t> {
    /// The span's id, for parenting work that crosses a thread boundary
    /// (`None` when tracing is disabled).
    pub fn id(&self) -> Option<u64> {
        self.data.as_ref().map(|d| d.id)
    }

    /// Opens a child span on the same tracer.
    pub fn child(&self, name: &str) -> Span<'t> {
        self.tracer.span_in(self.id(), name)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(data) = self.data.take() {
            self.tracer.record(data);
        }
    }
}

/// A tracer plus a parent span id: the one-argument bundle layer
/// boundaries pass around so deep callees can attach spans to the right
/// place in the tree.
#[derive(Clone, Copy)]
pub struct TraceCtx<'a> {
    /// The tracer (possibly disabled).
    pub tracer: &'a Tracer,
    /// Parent span id for anything the callee opens.
    pub parent: Option<u64>,
}

impl<'a> TraceCtx<'a> {
    /// Context under a tracer's root (no parent).
    pub fn root(tracer: &'a Tracer) -> TraceCtx<'a> {
        TraceCtx {
            tracer,
            parent: None,
        }
    }

    /// Context under an open span.
    pub fn under(tracer: &'a Tracer, span: &Span<'_>) -> TraceCtx<'a> {
        TraceCtx {
            tracer,
            parent: span.id(),
        }
    }

    /// The do-nothing context.
    pub fn disabled() -> TraceCtx<'static> {
        TraceCtx {
            tracer: &DISABLED,
            parent: None,
        }
    }

    /// Opens a span at this context's position.
    pub fn span(&self, name: &str) -> Span<'a> {
        self.tracer.span_in(self.parent, name)
    }

    /// Whether anything is recorded.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }
}

impl fmt::Debug for TraceCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceCtx")
            .field("enabled", &self.is_enabled())
            .field("parent", &self.parent)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let s = t.span("root");
        assert_eq!(s.id(), None);
        let c = s.child("leaf");
        assert_eq!(c.id(), None);
        drop(c);
        drop(s);
        t.add("x", 5);
        t.gauge("y", 1.0);
        assert_eq!(t.counter_value("x"), 0);
        t.flush();
    }

    #[test]
    fn spans_nest_and_record() {
        let (t, collector) = Tracer::collecting();
        {
            let root = t.span("flow");
            {
                let child = root.child("stage");
                let _grandchild = child.child("task");
            }
        }
        t.flush();
        let trace = collector.trace();
        assert_eq!(trace.spans.len(), 3);
        // Children close before parents.
        assert_eq!(trace.spans[0].name, "task");
        assert_eq!(trace.spans[2].name, "flow");
        assert_eq!(trace.spans[2].parent, None);
        let sig = trace.tree_signature();
        assert_eq!(
            sig,
            vec![
                ("".into(), "flow".into()),
                ("flow".into(), "stage".into()),
                ("stage".into(), "task".into()),
            ]
        );
        for s in &trace.spans {
            assert!(s.id > 0);
            assert!(s.t1_ns >= s.t0_ns);
        }
    }

    #[test]
    fn counters_accumulate_gauges_overwrite() {
        let (t, collector) = Tracer::collecting();
        t.add("findings", 3);
        t.add("findings", 4);
        t.gauge("busy_s", 1.0);
        t.gauge("busy_s", 2.0);
        assert_eq!(t.counter_value("findings"), 7);
        t.flush();
        let trace = collector.trace();
        assert_eq!(trace.counters["findings"], 7);
        assert_eq!(trace.gauges["busy_s"], 2.0);
        // Flush is idempotent: totals, not deltas.
        t.flush();
        assert_eq!(collector.trace().counters["findings"], 7);
    }

    #[test]
    fn cross_thread_spans_parent_correctly() {
        let (t, collector) = Tracer::collecting();
        {
            let root = t.span("map");
            let parent = root.id();
            std::thread::scope(|scope| {
                for i in 0..4 {
                    let t = &t;
                    scope.spawn(move || {
                        let _s = t.span_in(parent, &format!("task:{i}"));
                    });
                }
            });
        }
        t.flush();
        let trace = collector.trace();
        assert_eq!(trace.spans.len(), 5);
        let sig = trace.tree_signature();
        for i in 0..4 {
            assert!(sig.contains(&("map".into(), format!("task:{i}"))));
        }
        // Thread indices are dense and small.
        assert!(trace.spans.iter().all(|s| s.thread < 8));
    }

    #[test]
    fn jsonl_sink_emits_schema_lines() {
        let buf: Vec<u8> = Vec::new();
        let sink = JsonlSink::new(buf);
        let t = Tracer::new(sink);
        {
            let root = t.span("flow");
            let _c = root.child("check:\"quoted\"");
        }
        t.add("everify.checked", 12);
        t.gauge("busy_s", 0.5);
        t.gauge("bad", f64::NAN);
        t.flush();
        // The sink is owned by the tracer; emit again to a local sink to
        // check the raw encoding instead.
        let mut out = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut out);
            sink.span(&SpanRecord {
                id: 1,
                parent: None,
                name: "a\"b\\c\n".into(),
                t0_ns: 5,
                t1_ns: 9,
                thread: 0,
            });
            sink.counter("n", 3);
            sink.gauge("g", f64::INFINITY);
            sink.flush();
        }
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "{\"type\":\"meta\",\"format\":\"cbv-trace/1\"}");
        assert!(lines[1].contains("\"name\":\"a\\\"b\\\\c\\n\""));
        assert!(lines[1].contains("\"parent\":null"));
        assert!(lines[2].contains("\"value\":3"));
        assert!(lines[3].contains("\"value\":null"), "{}", lines[3]);
    }

    #[test]
    fn racing_tracers_share_a_sink_without_tearing_lines() {
        // Two tracers (two "sessions") stream concurrently into one
        // shared JSONL sink; line atomicity means every emitted line is
        // a complete record no matter how the threads interleave.
        let sink = JsonlSink::new(Vec::<u8>::new());
        let spans_per_tracer = 200;
        let tracers: Vec<Tracer> = (0..2).map(|_| Tracer::new(sink.clone())).collect();
        std::thread::scope(|scope| {
            for (t, tracer) in tracers.iter().enumerate() {
                scope.spawn(move || {
                    for i in 0..spans_per_tracer {
                        let _s = tracer.span(&format!(
                            "session:{t}:span:{i}:padded-to-make-torn-writes-likely"
                        ));
                    }
                    tracer.add("done", 1);
                    tracer.flush();
                });
            }
        });
        drop(tracers);
        let bytes = sink.into_inner().expect("no clones remain");
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        // 1 meta + 2×200 spans + 2 counter flushes.
        assert_eq!(lines.len(), 1 + 2 * spans_per_tracer + 2);
        assert_eq!(lines[0], "{\"type\":\"meta\",\"format\":\"cbv-trace/1\"}");
        for line in &lines {
            assert!(
                line.starts_with("{\"type\":\"") && line.ends_with('}'),
                "torn line: {line:?}"
            );
        }
        let spans = lines.iter().filter(|l| l.contains("\"type\":\"span\""));
        assert_eq!(spans.count(), 2 * spans_per_tracer);
    }

    #[test]
    fn trace_ctx_routes_spans() {
        let (t, collector) = Tracer::collecting();
        {
            let root = t.span("flow");
            let ctx = TraceCtx::under(&t, &root);
            let _child = ctx.span("stage");
        }
        t.flush();
        let sig = collector.trace().tree_signature();
        assert!(sig.contains(&("flow".into(), "stage".into())));
        // Disabled context costs nothing and records nothing.
        let ctx = TraceCtx::disabled();
        assert!(!ctx.is_enabled());
        assert_eq!(ctx.span("x").id(), None);
    }
}

//! Text rendering of a collected [`Trace`]: a waterfall of the span
//! tree (total and self time per span) followed by the top-N hottest
//! span names — the E15 report the designer reads to see where the
//! flow's wall-clock went.

use std::collections::BTreeMap;

use crate::{SpanRecord, Trace};

/// A span name with any trailing `:<digits>` instance suffix removed,
/// so `"unit:17"` and `"unit:3"` aggregate as `"unit"` in the hot-spot
/// table while `"check:beta-ratio"` stays itself.
fn family(name: &str) -> &str {
    match name.rfind(':') {
        Some(i) if i + 1 < name.len() && name[i + 1..].bytes().all(|b| b.is_ascii_digit()) => {
            &name[..i]
        }
        _ => name,
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

struct Node<'a> {
    span: &'a SpanRecord,
    children: Vec<usize>,
    self_ns: u64,
}

fn build_nodes(trace: &Trace) -> (Vec<Node<'_>>, Vec<usize>) {
    let mut nodes: Vec<Node<'_>> = trace
        .spans
        .iter()
        .map(|span| Node {
            span,
            children: Vec::new(),
            self_ns: span.duration_ns(),
        })
        .collect();
    let index_of: BTreeMap<u64, usize> = trace
        .spans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.id, i))
        .collect();
    let mut roots: Vec<usize> = Vec::new();
    for i in 0..nodes.len() {
        match nodes[i].span.parent.and_then(|p| index_of.get(&p).copied()) {
            Some(p) => {
                nodes[p].children.push(i);
                let child_ns = nodes[i].span.duration_ns();
                nodes[p].self_ns = nodes[p].self_ns.saturating_sub(child_ns);
            }
            None => roots.push(i),
        }
    }
    // Children and roots in start order so the waterfall reads
    // chronologically regardless of completion interleaving.
    let by_start = |&a: &usize, &b: &usize| {
        let (sa, sb) = (&trace.spans[a], &trace.spans[b]);
        sa.t0_ns.cmp(&sb.t0_ns).then(sa.id.cmp(&sb.id))
    };
    for node in &mut nodes {
        let mut children = std::mem::take(&mut node.children);
        children.sort_by(by_start);
        node.children = children;
    }
    roots.sort_by(by_start);
    (nodes, roots)
}

fn render_node(nodes: &[Node<'_>], i: usize, depth: usize, out: &mut String) {
    let node = &nodes[i];
    let total = node.span.duration_ns();
    out.push_str(&format!(
        "{:indent$}{}  total {}  self {}  [t{}]\n",
        "",
        node.span.name,
        fmt_ns(total),
        fmt_ns(node.self_ns),
        node.span.thread,
        indent = depth * 2
    ));
    for &c in &node.children {
        render_node(nodes, c, depth + 1, out);
    }
}

/// Renders a trace as an indented waterfall (one line per span, in
/// start order, `total` = span duration, `self` = duration minus direct
/// children) followed by the `top_n` hottest span families by summed
/// self time, and the counter/gauge registries.
pub fn waterfall(trace: &Trace, top_n: usize) -> String {
    let (nodes, roots) = build_nodes(trace);
    let mut out = String::new();
    out.push_str("== span waterfall ==\n");
    if roots.is_empty() {
        out.push_str("(no spans)\n");
    }
    for &r in &roots {
        render_node(&nodes, r, 0, &mut out);
    }

    // Hot families by aggregate self time.
    let mut hot: BTreeMap<&str, (u64, usize)> = BTreeMap::new();
    for node in &nodes {
        let entry = hot.entry(family(&node.span.name)).or_insert((0, 0));
        entry.0 += node.self_ns;
        entry.1 += 1;
    }
    let mut hot: Vec<(&str, u64, usize)> = hot.into_iter().map(|(k, (ns, n))| (k, ns, n)).collect();
    hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    out.push_str(&format!("== top {top_n} hot spans (by self time) ==\n"));
    for (name, ns, count) in hot.iter().take(top_n) {
        out.push_str(&format!(
            "{}  self {}  spans {}\n",
            name,
            fmt_ns(*ns),
            count
        ));
    }

    if !trace.counters.is_empty() {
        out.push_str("== counters ==\n");
        for (name, value) in &trace.counters {
            out.push_str(&format!("{name} = {value}\n"));
        }
    }
    if !trace.gauges.is_empty() {
        out.push_str("== gauges ==\n");
        for (name, value) in &trace.gauges {
            out.push_str(&format!("{name} = {value:.6}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    #[test]
    fn family_strips_instance_suffixes() {
        assert_eq!(family("unit:17"), "unit");
        assert_eq!(family("cccs:0..64"), "cccs:0..64");
        assert_eq!(family("check:beta-ratio"), "check:beta-ratio");
        assert_eq!(family("flow"), "flow");
        assert_eq!(family("x:"), "x:");
    }

    #[test]
    fn waterfall_renders_tree_and_hotspots() {
        let (t, collector) = Tracer::collecting();
        {
            let root = t.span("flow");
            {
                let stage = root.child("everify");
                let _a = stage.child("unit:0");
                let _b = stage.child("unit:1");
            }
            let _other = root.child("timing");
        }
        t.add("everify.findings", 2);
        t.gauge("busy_s", 0.25);
        t.flush();
        let text = waterfall(&collector.trace(), 3);
        assert!(text.contains("flow  total"), "{text}");
        assert!(text.contains("  everify  total"), "{text}");
        assert!(text.contains("    unit:0"), "{text}");
        assert!(text.contains("unit  self"), "{text}"); // aggregated family
        assert!(text.contains("everify.findings = 2"), "{text}");
        assert!(text.contains("busy_s = 0.25"), "{text}");
    }

    #[test]
    fn self_time_excludes_children() {
        let trace = Trace {
            spans: vec![
                SpanRecord {
                    id: 2,
                    parent: Some(1),
                    name: "child".into(),
                    t0_ns: 100,
                    t1_ns: 600,
                    thread: 0,
                },
                SpanRecord {
                    id: 1,
                    parent: None,
                    name: "root".into(),
                    t0_ns: 0,
                    t1_ns: 1000,
                    thread: 0,
                },
            ],
            ..Trace::default()
        };
        let text = waterfall(&trace, 5);
        assert!(text.contains("root  total 1.0us  self 500ns"), "{text}");
        assert!(text.contains("child  total 500ns  self 500ns"), "{text}");
    }
}

//! `cbv-sim` — logic simulation at every level the methodology needs.
//!
//! §4.1: "We perform logic verification at four levels: Behavioral/RTL
//! simulation, standalone schematic simulation, shadowed schematics under
//! RTL simulation, and RTL to schematic equivalence checking."
//!
//! The first level lives in `cbv-rtl` ([`cbv_rtl::interp::Interp`]);
//! equivalence checking in `cbv-equiv`. This crate provides the middle
//! two plus the supporting machinery:
//!
//! * [`switch`] — a switch-level simulator over transistor netlists:
//!   three-valued logic with charge retention on isolated nodes,
//!   conductance-based strength resolution (ratioed fights, keepers) and
//!   pessimistic X-propagation for unknown gates. This is "standalone
//!   schematic simulation".
//! * [`gatesim`] — an event-driven gate-level simulator over the
//!   bit-blasted [`cbv_rtl::boolnet::BoolNet`].
//! * [`shadow`] — **shadow-mode co-simulation**: "a mixed mode simulation
//!   of full design Behavioral/RTL with a part of the circuit logic
//!   shadowing (not replacing) the corresponding RTL description" — the
//!   golden RTL drives the transistor block's inputs and every declared
//!   output bit is compared cycle by cycle.
//! * [`stimulus`] — manual and pseudo-random pattern sources ("stimulus
//!   patterns, which are either manually generated or pseudo-random
//!   sequences").

pub mod gatesim;
pub mod shadow;
pub mod stimulus;
pub mod switch;

pub use gatesim::GateSim;
pub use shadow::{BitBinding, Mismatch, ShadowSim};
pub use stimulus::Stimulus;
pub use switch::{Logic, SwitchSim};

//! Shadow-mode co-simulation.
//!
//! §4.1: "This latter simulator is a mixed mode simulation of full design
//! Behavioral/RTL with a part of the circuit logic shadowing (not
//! replacing) the corresponding RTL description."
//!
//! The golden RTL interpreter runs the whole design; a transistor-level
//! block *shadows* one piece of it: the block's inputs are driven from
//! the golden simulation's values every cycle, the block settles at
//! switch level, and its outputs are compared against the golden values.
//! Divergence means the circuit implementation does not realize the
//! designer's intent.

use cbv_netlist::{FlatNetlist, NetId};
use cbv_rtl::{interp::Interp, lookup::LookupError, RtlDesign};

use crate::switch::{Logic, SwitchSim};

/// Binds one bit of an RTL signal to one netlist net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitBinding {
    /// RTL signal name (an input, output or register of the design).
    pub signal: String,
    /// Which bit of the signal.
    pub bit: u32,
    /// The netlist net name carrying that bit.
    pub net: String,
}

impl BitBinding {
    /// Convenience constructor.
    pub fn new(signal: impl Into<String>, bit: u32, net: impl Into<String>) -> BitBinding {
        BitBinding {
            signal: signal.into(),
            bit,
            net: net.into(),
        }
    }
}

/// One recorded divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Cycle number (0-based).
    pub cycle: usize,
    /// The RTL signal.
    pub signal: String,
    /// The bit.
    pub bit: u32,
    /// What the golden model said.
    pub golden: bool,
    /// What the circuit produced.
    pub circuit: Logic,
}

/// A [`BitBinding`] with its net name resolved to a [`NetId`] and the
/// RTL-input test hoisted out of the per-cycle loops.
#[derive(Debug, Clone)]
struct ResolvedBinding {
    signal: String,
    bit: u32,
    net: NetId,
    /// Whether `signal` is an RTL primary input (driven by the
    /// testbench, not readable back from the golden model).
    is_input: bool,
}

/// The shadow-mode co-simulator.
pub struct ShadowSim<'d, 'n> {
    /// The golden RTL model.
    pub golden: Interp<'d>,
    /// The shadowing transistor block.
    pub circuit: SwitchSim<'n>,
    design: &'d RtlDesign,
    inputs: Vec<ResolvedBinding>,
    outputs: Vec<ResolvedBinding>,
    clock_nets: Vec<NetId>,
    mismatches: Vec<Mismatch>,
    cycle: usize,
}

/// Reads bit `bit` of RTL signal `signal` from the golden model
/// (outputs and registers work; inputs are testbench-driven).
fn golden_bit(golden: &mut Interp<'_>, design: &RtlDesign, signal: &str, bit: u32) -> bool {
    let word = if design.output(signal).is_some() {
        golden.output(signal)
    } else {
        golden.reg(signal)
    };
    (word >> bit) & 1 == 1
}

impl<'d, 'n> ShadowSim<'d, 'n> {
    /// Creates a shadow setup.
    ///
    /// `inputs` bind RTL values → circuit input nets; `outputs` bind
    /// circuit output nets → RTL values for comparison; `clock_nets` are
    /// the circuit's clock nets, toggled around each golden step.
    ///
    /// # Panics
    ///
    /// Panics when a binding names an unknown net or RTL signal; use
    /// [`ShadowSim::try_new`] for a recoverable error.
    pub fn new(
        design: &'d RtlDesign,
        netlist: &'n FlatNetlist,
        inputs: Vec<BitBinding>,
        outputs: Vec<BitBinding>,
        clock_nets: Vec<String>,
    ) -> ShadowSim<'d, 'n> {
        Self::try_new(design, netlist, inputs, outputs, clock_nets)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`ShadowSim::new`] with every binding validated up front: each
    /// net name must exist in the netlist and each signal must be an
    /// RTL output, input or register. Names resolve to ids *once* here,
    /// so the per-cycle loops in [`ShadowSim::step`] do no string
    /// lookups (or clones) at all.
    ///
    /// # Errors
    ///
    /// Returns a [`LookupError`] (with a near-miss suggestion) naming
    /// the first binding that does not resolve.
    pub fn try_new(
        design: &'d RtlDesign,
        netlist: &'n FlatNetlist,
        inputs: Vec<BitBinding>,
        outputs: Vec<BitBinding>,
        clock_nets: Vec<String>,
    ) -> Result<ShadowSim<'d, 'n>, LookupError> {
        let find_net = |name: &str| {
            netlist.find_net(name).ok_or_else(|| {
                LookupError::new(
                    "net",
                    name,
                    netlist.net_ids().map(|id| netlist.net_name(id)),
                )
            })
        };
        // `allow_input`: input bindings may name an RTL primary input
        // (the testbench drives it); output bindings must name something
        // readable back from the golden model — an output or a register.
        let resolve = |b: &BitBinding, allow_input: bool| -> Result<ResolvedBinding, LookupError> {
            let is_input = design.input_index(&b.signal).is_some();
            let readable = design.output(&b.signal).is_some()
                || design.regs.iter().any(|r| r.name == b.signal);
            let accepted = readable || (allow_input && is_input);
            if !accepted {
                let (kind, inputs_too) = if allow_input {
                    ("rtl signal", &design.inputs[..])
                } else {
                    ("rtl output or register", &[][..])
                };
                let candidates: Vec<&str> = design
                    .outputs
                    .iter()
                    .map(|(n, _)| &**n)
                    .chain(design.regs.iter().map(|r| &*r.name))
                    .chain(inputs_too.iter().map(|(n, _)| &**n))
                    .collect();
                return Err(LookupError::new(kind, &b.signal, candidates));
            }
            Ok(ResolvedBinding {
                signal: b.signal.clone(),
                bit: b.bit,
                net: find_net(&b.net)?,
                is_input,
            })
        };
        Ok(ShadowSim {
            golden: Interp::new(design),
            circuit: SwitchSim::new(netlist),
            design,
            inputs: inputs
                .iter()
                .map(|b| resolve(b, true))
                .collect::<Result<_, _>>()?,
            outputs: outputs
                .iter()
                .map(|b| resolve(b, false))
                .collect::<Result<_, _>>()?,
            clock_nets: clock_nets
                .iter()
                .map(|n| find_net(n))
                .collect::<Result<_, _>>()?,
            mismatches: Vec::new(),
            cycle: 0,
        })
    }

    /// Sets an RTL primary input (propagated to bound circuit inputs on
    /// the next [`ShadowSim::step`]).
    pub fn set_input(&mut self, name: &str, value: u64) {
        self.golden.set_input(name, value);
        // Mirror onto circuit nets bound to this signal immediately.
        for b in &self.inputs {
            if b.signal == name {
                let bit = (value >> b.bit) & 1 == 1;
                self.circuit.set(b.net, Logic::from_bool(bit));
            }
        }
    }

    /// Runs one cycle: drive bound inputs from golden, pulse the circuit
    /// clocks around the golden clock step, settle and compare outputs.
    ///
    /// Returns the number of new mismatches this cycle.
    pub fn step(&mut self, rtl_clock: &str) -> usize {
        // Drive circuit inputs from golden pre-edge values where bound to
        // outputs/registers.
        for b in &self.inputs {
            if !b.is_input {
                let v = golden_bit(&mut self.golden, self.design, &b.signal, b.bit);
                self.circuit.set(b.net, Logic::from_bool(v));
            }
        }
        // Clock low phase.
        for &ck in &self.clock_nets {
            self.circuit.set(ck, Logic::Zero);
        }
        let _ = self.circuit.settle();
        // Clock high phase (active edge).
        for &ck in &self.clock_nets {
            self.circuit.set(ck, Logic::One);
        }
        let _ = self.circuit.settle();
        // Golden takes its edge.
        self.golden.step(rtl_clock);
        // Re-drive bound inputs with post-edge values so purely
        // combinational shadow cones compare against the same cycle the
        // golden model now shows (sequential shadows already captured
        // the pre-edge data at the clock pulse above, matching golden).
        for b in &self.inputs {
            if !b.is_input {
                let v = golden_bit(&mut self.golden, self.design, &b.signal, b.bit);
                self.circuit.set(b.net, Logic::from_bool(v));
            }
        }
        let _ = self.circuit.settle();
        // Compare outputs post-edge.
        let mut new = 0;
        for b in &self.outputs {
            let golden = golden_bit(&mut self.golden, self.design, &b.signal, b.bit);
            let circuit = self.circuit.value(b.net);
            if circuit != Logic::from_bool(golden) {
                self.mismatches.push(Mismatch {
                    cycle: self.cycle,
                    signal: b.signal.clone(),
                    bit: b.bit,
                    golden,
                    circuit,
                });
                new += 1;
            }
        }
        self.cycle += 1;
        new
    }

    /// All mismatches so far.
    pub fn mismatches(&self) -> &[Mismatch] {
        &self.mismatches
    }

    /// Cycles run.
    pub fn cycles(&self) -> usize {
        self.cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_netlist::{Device, NetKind};
    use cbv_rtl::compile;
    use cbv_tech::MosKind;

    /// Transistor-level dynamic-logic XOR-ish block shadowing an RTL xor:
    /// here a static CMOS inverter shadowing `q = ~d` registered.
    fn rtl() -> cbv_rtl::RtlDesign {
        compile(
            "module m(clock ck, in d, out q, out qn) { reg r; at posedge(ck) { r <= d; } assign q = r; assign qn = ~r; }",
            "m",
        )
        .unwrap()
    }

    /// Circuit: an inverter computing qn from q (combinational shadow of
    /// the `qn = ~r` cone).
    fn inverter_netlist() -> FlatNetlist {
        let mut f = FlatNetlist::new("shadow_inv");
        let a = f.add_net("q_in", NetKind::Input);
        let y = f.add_net("qn_out", NetKind::Output);
        let ck = f.add_net("ck", NetKind::Clock);
        let _ = ck;
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "p",
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "n",
            a,
            y,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
        f
    }

    #[test]
    fn correct_shadow_never_mismatches() {
        let d = rtl();
        let n = inverter_netlist();
        let mut shadow = ShadowSim::new(
            &d,
            &n,
            vec![BitBinding::new("q", 0, "q_in")],
            vec![BitBinding::new("qn", 0, "qn_out")],
            vec!["ck".into()],
        );
        let pattern = [1u64, 0, 1, 1, 0, 0, 1, 0];
        for &p in &pattern {
            shadow.set_input("d", p);
            shadow.step("ck");
        }
        assert_eq!(shadow.mismatches().len(), 0, "{:?}", shadow.mismatches());
        assert_eq!(shadow.cycles(), 8);
    }

    #[test]
    fn try_new_rejects_bad_bindings_with_suggestions() {
        let d = rtl();
        let n = inverter_netlist();
        // Misspelled circuit net.
        let e = ShadowSim::try_new(
            &d,
            &n,
            vec![BitBinding::new("q", 0, "q_inn")],
            vec![],
            vec![],
        )
        .err()
        .unwrap();
        assert_eq!(e.to_string(), "no net named `q_inn`; did you mean `q_in`?");
        // Misspelled RTL signal.
        let e = ShadowSim::try_new(
            &d,
            &n,
            vec![],
            vec![BitBinding::new("qm", 0, "qn_out")],
            vec![],
        )
        .err()
        .unwrap();
        assert_eq!(e.kind, "rtl output or register");
        assert_eq!(e.suggestion.as_deref(), Some("q"));
        // Output bindings may not name a primary input (nothing to read
        // back from the golden model).
        let e = ShadowSim::try_new(
            &d,
            &n,
            vec![],
            vec![BitBinding::new("d", 0, "qn_out")],
            vec![],
        )
        .err()
        .unwrap();
        assert_eq!(e.kind, "rtl output or register");
        // Misspelled clock net.
        let e = ShadowSim::try_new(&d, &n, vec![], vec![], vec!["cck".into()])
            .err()
            .unwrap();
        assert_eq!(e.suggestion.as_deref(), Some("ck"));
        // And the valid setup still constructs.
        assert!(ShadowSim::try_new(
            &d,
            &n,
            vec![BitBinding::new("q", 0, "q_in")],
            vec![BitBinding::new("qn", 0, "qn_out")],
            vec!["ck".into()],
        )
        .is_ok());
    }

    #[test]
    fn broken_shadow_is_caught() {
        let d = rtl();
        // Bug: the "inverter" is a buffer (swapped device types).
        let mut f = FlatNetlist::new("buggy");
        let a = f.add_net("q_in", NetKind::Input);
        let y = f.add_net("qn_out", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        // Source-follower style pass from input: y follows q.
        f.add_device(Device::mos(
            MosKind::Nmos,
            "m1",
            vdd,
            a,
            y,
            gnd,
            2e-6,
            0.35e-6,
        ));
        let mut shadow = ShadowSim::new(
            &d,
            &f,
            vec![BitBinding::new("q", 0, "q_in")],
            vec![BitBinding::new("qn", 0, "qn_out")],
            vec![],
        );
        shadow.set_input("d", 1);
        shadow.step("ck"); // r becomes 1, qn = 0, circuit outputs 1
        shadow.step("ck");
        assert!(
            !shadow.mismatches().is_empty(),
            "the buffer-instead-of-inverter bug must be caught"
        );
        let m = &shadow.mismatches()[0];
        assert_eq!(m.signal, "qn");
    }
}

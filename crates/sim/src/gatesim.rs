//! Event-driven gate-level simulation over a bit-blasted network.
//!
//! Used for throughput comparisons against the word-level interpreter
//! (experiment E7) and as the reference engine for gate-level fault
//! studies. Unit gate delays; events propagate through a level-ordered
//! queue built from the shared [`cbv_rtl::level`] levelization (the same
//! schedule the compiled backend `cbv-csim` emits its bytecode from), so
//! every gate settles at most once per propagation wave.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cbv_rtl::ast::Edge;
use cbv_rtl::boolnet::{BoolNet, Gate};
use cbv_rtl::level::{levelize, LevelError};
use cbv_rtl::lookup::LookupError;

/// Event-driven simulator state for one [`BoolNet`].
#[derive(Debug, Clone)]
pub struct GateSim<'n> {
    net: &'n BoolNet,
    values: Vec<bool>,
    inputs: Vec<bool>,
    states: Vec<bool>,
    /// gate -> gates that read it
    fanout: Vec<Vec<u32>>,
    /// gate -> combinational level (shared levelization).
    level: Vec<u32>,
    /// input bit index -> gate id (if the input gate exists).
    input_gate: Vec<Option<u32>>,
    /// state bit index -> gate id.
    state_gate: Vec<Option<u32>>,
    /// Level-ordered wavefront, reused across propagations.
    queue: BinaryHeap<Reverse<(u32, u32)>>,
    queued: Vec<bool>,
    /// Scratch for edge commits (no per-cycle allocation).
    next_states: Vec<bool>,
    /// Total events processed (activity metric: gates whose settled
    /// value changed in some wave).
    pub events: u64,
}

impl<'n> GateSim<'n> {
    /// Builds the simulator and settles the initial state.
    ///
    /// # Panics
    ///
    /// Panics if the network cannot be levelized (combinational cycle or
    /// dangling gate reference) — use [`GateSim::try_new`] to handle
    /// that as an error.
    pub fn new(net: &'n BoolNet) -> GateSim<'n> {
        GateSim::try_new(net).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the simulator, reporting an ill-formed network (cycle or
    /// dangling reference) as a [`LevelError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`LevelError`] when the network cannot be levelized.
    pub fn try_new(net: &'n BoolNet) -> Result<GateSim<'n>, LevelError> {
        let lv = levelize(net)?;
        let n = net.gate_count();
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut input_gate = vec![None; net.inputs.len()];
        let mut state_gate = vec![None; net.states.len()];
        for (i, g) in net.gates().iter().enumerate() {
            let mut add = |id: cbv_rtl::boolnet::BoolId| fanout[id.index()].push(i as u32);
            match *g {
                Gate::Not(a) => add(a),
                Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                    add(a);
                    add(b);
                }
                Gate::Mux(s, a, b) => {
                    add(s);
                    add(a);
                    add(b);
                }
                Gate::Input(k) => input_gate[k as usize] = Some(i as u32),
                Gate::State(k) => state_gate[k as usize] = Some(i as u32),
                Gate::Const(_) => {}
            }
        }
        let mut sim = GateSim {
            net,
            values: vec![false; n],
            inputs: vec![false; net.inputs.len()],
            states: net.initial_states(),
            fanout,
            level: lv.level,
            input_gate,
            state_gate,
            queue: BinaryHeap::new(),
            queued: vec![false; n],
            next_states: Vec::new(),
            events: 0,
        };
        // Initial settle in schedule order (id order is only guaranteed
        // topological for `mk`-built nets; the levelized order always is).
        for &id in &lv.order {
            sim.values[id.index()] = sim.eval_gate(id.index());
        }
        Ok(sim)
    }

    fn eval_gate(&self, i: usize) -> bool {
        match self.net.gates()[i] {
            Gate::Const(b) => b,
            Gate::Input(k) => self.inputs[k as usize],
            Gate::State(k) => self.states[k as usize],
            Gate::Not(a) => !self.values[a.index()],
            Gate::And(a, b) => self.values[a.index()] && self.values[b.index()],
            Gate::Or(a, b) => self.values[a.index()] || self.values[b.index()],
            Gate::Xor(a, b) => self.values[a.index()] ^ self.values[b.index()],
            Gate::Mux(s, a, b) => {
                if self.values[s.index()] {
                    self.values[a.index()]
                } else {
                    self.values[b.index()]
                }
            }
        }
    }

    /// Sets one input bit by index and propagates incrementally.
    pub fn set_input(&mut self, index: usize, value: bool) {
        if self.inputs[index] == value {
            return;
        }
        self.inputs[index] = value;
        if let Some(g) = self.input_gate[index] {
            self.enqueue(g as usize);
            self.drain();
        }
    }

    /// Sets an input bit by name.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn set_input_by_name(&mut self, name: &str, value: bool) {
        self.try_set_input_by_name(name, value)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Sets an input bit by name, reporting an unknown name as a
    /// [`LookupError`] with a near-miss suggestion.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError`] when the input bit does not exist.
    pub fn try_set_input_by_name(&mut self, name: &str, value: bool) -> Result<(), LookupError> {
        let idx = self
            .net
            .inputs
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| {
                LookupError::new("input bit", name, self.net.inputs.iter().map(|n| &**n))
            })?;
        self.set_input(idx, value);
        Ok(())
    }

    fn enqueue(&mut self, gate: usize) {
        if !self.queued[gate] {
            self.queued[gate] = true;
            self.queue.push(Reverse((self.level[gate], gate as u32)));
        }
    }

    /// Settles the queued wavefront in level order: every gate's inputs
    /// (strictly lower level) are final before the gate is evaluated, so
    /// each gate settles at most once per wave.
    fn drain(&mut self) {
        while let Some(Reverse((_, i))) = self.queue.pop() {
            let i = i as usize;
            self.queued[i] = false;
            let v = self.eval_gate(i);
            if v != self.values[i] {
                self.values[i] = v;
                self.events += 1;
                for k in 0..self.fanout[i].len() {
                    let f = self.fanout[i][k] as usize;
                    self.enqueue(f);
                }
            }
        }
    }

    /// One full cycle of clock `clock_index`: the rising edge captures
    /// `at posedge` state bits and re-propagates; if the network has any
    /// falling-edge state bits on this clock, a second capture commits
    /// them from the re-propagated values (matching
    /// [`cbv_rtl::interp::Interp::step`]'s two-phase cycle).
    pub fn step(&mut self, clock_index: u32) {
        self.commit_edge(clock_index, Edge::Pos);
        if self.net.has_negedge(clock_index) {
            self.commit_edge(clock_index, Edge::Neg);
        }
    }

    fn commit_edge(&mut self, clock_index: u32, edge: Edge) {
        // Reused scratch: stepping allocates nothing per cycle.
        let mut next = std::mem::take(&mut self.next_states);
        self.net
            .next_states_edge_into(&self.values, &self.states, clock_index, edge, &mut next);
        for (i, &new) in next.iter().enumerate() {
            if self.states[i] != new {
                if let Some(g) = self.state_gate[i] {
                    self.enqueue(g as usize);
                }
            }
        }
        std::mem::swap(&mut self.states, &mut next);
        self.next_states = next;
        // One level-ordered wave settles every changed state cone.
        self.drain();
    }

    /// Reads a named output as an integer (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if the output does not exist.
    pub fn output(&self, name: &str) -> u64 {
        self.try_output(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Reads a named output, reporting an unknown name as a
    /// [`LookupError`] with a near-miss suggestion.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError`] when the output does not exist.
    pub fn try_output(&self, name: &str) -> Result<u64, LookupError> {
        let bits = self.net.output(name).ok_or_else(|| {
            LookupError::new("output", name, self.net.outputs.iter().map(|(n, _)| &**n))
        })?;
        Ok(bits
            .iter()
            .enumerate()
            .map(|(i, b)| (self.values[b.index()] as u64) << i)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_rtl::{blast::blast, compile, interp::Interp};

    #[test]
    fn matches_interpreter_on_counter() {
        let d = compile(
            "module c(clock ck, in en, out v[4]) { reg r[4]; at posedge(ck) { if (en) { r <= r + 1; } } assign v = r; }",
            "c",
        )
        .unwrap();
        let net = blast(&d).unwrap();
        let mut gsim = GateSim::new(&net);
        let mut isim = Interp::new(&d);
        gsim.set_input_by_name("en[0]", true);
        isim.set_input("en", 1);
        for cycle in 0..20 {
            assert_eq!(gsim.output("v"), isim.output("v"), "cycle {cycle}");
            gsim.step(0);
            isim.step("ck");
        }
    }

    #[test]
    fn matches_interpreter_on_two_phase_design() {
        // A posedge stage feeding a negedge stage on the same clock: the
        // event-driven simulator's two-phase step must agree with the
        // interpreter at every full-cycle boundary.
        let d = compile(
            "module m(clock ck, in d[4], out qa[4], out qb[4]) {\n\
               reg a[4]; reg b[4];\n\
               at posedge(ck) { a <= d; }\n\
               at negedge(ck) { b <= a ^ 5; }\n\
               assign qa = a; assign qb = b;\n\
             }",
            "m",
        )
        .unwrap();
        let net = blast(&d).unwrap();
        let mut gsim = GateSim::new(&net);
        let mut isim = Interp::new(&d);
        let mut rng = 777u64;
        for cycle in 0..30 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = (rng >> 17) & 15;
            for i in 0..4 {
                gsim.set_input_by_name(&format!("d[{i}]"), (v >> i) & 1 == 1);
            }
            isim.set_input("d", v);
            gsim.step(0);
            isim.step("ck");
            assert_eq!(gsim.output("qa"), isim.output("qa"), "qa at cycle {cycle}");
            assert_eq!(gsim.output("qb"), isim.output("qb"), "qb at cycle {cycle}");
            // The negedge stage saw this cycle's posedge value.
            assert_eq!(
                gsim.output("qb"),
                v ^ 5,
                "intra-cycle transfer at cycle {cycle}"
            );
        }
    }

    #[test]
    fn incremental_matches_full_eval() {
        let d = compile(
            "module m(in a[6], in b[6], out s[7], out p) { assign s = {1'b0,a} + b; assign p = ^(a ^ b); }",
            "m",
        )
        .unwrap();
        let net = blast(&d).unwrap();
        let mut sim = GateSim::new(&net);
        let mut rng = 123u64;
        for _ in 0..100 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (rng >> 10) & 63;
            let b = (rng >> 20) & 63;
            for i in 0..6 {
                sim.set_input_by_name(&format!("a[{i}]"), (a >> i) & 1 == 1);
                sim.set_input_by_name(&format!("b[{i}]"), (b >> i) & 1 == 1);
            }
            assert_eq!(sim.output("s"), a + b);
            assert_eq!(sim.output("p"), ((a ^ b).count_ones() & 1) as u64);
        }
        assert!(sim.events > 0, "incremental events occurred");
    }

    #[test]
    fn unknown_names_yield_typed_errors_with_suggestions() {
        let d = compile(
            "module m(in enable, out ready) { assign ready = ~enable; }",
            "m",
        )
        .unwrap();
        let net = blast(&d).unwrap();
        let mut sim = GateSim::new(&net);
        let e = sim.try_set_input_by_name("enable[1]", true).unwrap_err();
        assert_eq!(
            e.to_string(),
            "no input bit named `enable[1]`; did you mean `enable[0]`?"
        );
        let e = sim.try_output("redy").unwrap_err();
        assert_eq!(
            e.to_string(),
            "no output named `redy`; did you mean `ready`?"
        );
        assert!(sim.try_set_input_by_name("enable[0]", true).is_ok());
        assert_eq!(sim.try_output("ready").unwrap(), 0);
    }

    #[test]
    fn ill_formed_network_is_an_error_not_a_panic() {
        use cbv_rtl::boolnet::{BoolNet, Gate};
        let mut n = BoolNet::new();
        let a = n.input("a");
        let x = n.mk(Gate::Not(a));
        let y = n.mk(Gate::And(a, x));
        n.replace_gate(x, Gate::And(y, a)); // x <-> y combinational loop
        let err = GateSim::try_new(&n).unwrap_err();
        assert!(err.to_string().contains("combinational cycle"), "{err}");
    }

    #[test]
    fn redundant_input_sets_cause_no_events() {
        let d = compile("module m(in a, out y) { assign y = ~a; }", "m").unwrap();
        let net = blast(&d).unwrap();
        let mut sim = GateSim::new(&net);
        sim.set_input_by_name("a[0]", true);
        let e1 = sim.events;
        sim.set_input_by_name("a[0]", true);
        assert_eq!(sim.events, e1, "no-change set is free");
    }
}

//! Event-driven gate-level simulation over a bit-blasted network.
//!
//! Used for throughput comparisons against the word-level interpreter
//! (experiment E7) and as the reference engine for gate-level fault
//! studies. Unit gate delays; events propagate through a levelized queue.

use cbv_rtl::ast::Edge;
use cbv_rtl::boolnet::{BoolNet, Gate};
use cbv_rtl::lookup::LookupError;

/// Event-driven simulator state for one [`BoolNet`].
#[derive(Debug, Clone)]
pub struct GateSim<'n> {
    net: &'n BoolNet,
    values: Vec<bool>,
    inputs: Vec<bool>,
    states: Vec<bool>,
    /// gate -> gates that read it
    fanout: Vec<Vec<u32>>,
    /// Total events processed (activity metric).
    pub events: u64,
}

impl<'n> GateSim<'n> {
    /// Builds the simulator and settles the initial state.
    pub fn new(net: &'n BoolNet) -> GateSim<'n> {
        let n = net.gate_count();
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, g) in net.gates().iter().enumerate() {
            let mut add = |id: cbv_rtl::boolnet::BoolId| fanout[id.index()].push(i as u32);
            match *g {
                Gate::Not(a) => add(a),
                Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                    add(a);
                    add(b);
                }
                Gate::Mux(s, a, b) => {
                    add(s);
                    add(a);
                    add(b);
                }
                Gate::Const(_) | Gate::Input(_) | Gate::State(_) => {}
            }
        }
        let mut sim = GateSim {
            net,
            values: vec![false; n],
            inputs: vec![false; net.inputs.len()],
            states: net.initial_states(),
            fanout,
            events: 0,
        };
        sim.full_eval();
        sim
    }

    fn eval_gate(&self, i: usize) -> bool {
        match self.net.gates()[i] {
            Gate::Const(b) => b,
            Gate::Input(k) => self.inputs[k as usize],
            Gate::State(k) => self.states[k as usize],
            Gate::Not(a) => !self.values[a.index()],
            Gate::And(a, b) => self.values[a.index()] && self.values[b.index()],
            Gate::Or(a, b) => self.values[a.index()] || self.values[b.index()],
            Gate::Xor(a, b) => self.values[a.index()] ^ self.values[b.index()],
            Gate::Mux(s, a, b) => {
                if self.values[s.index()] {
                    self.values[a.index()]
                } else {
                    self.values[b.index()]
                }
            }
        }
    }

    fn full_eval(&mut self) {
        for i in 0..self.values.len() {
            self.values[i] = self.eval_gate(i);
        }
    }

    /// Sets one input bit by index and propagates incrementally.
    pub fn set_input(&mut self, index: usize, value: bool) {
        if self.inputs[index] == value {
            return;
        }
        self.inputs[index] = value;
        // Find the input gate and propagate.
        for (i, g) in self.net.gates().iter().enumerate() {
            if matches!(g, Gate::Input(k) if *k as usize == index) {
                self.propagate_from(i);
                break;
            }
        }
    }

    /// Sets an input bit by name.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn set_input_by_name(&mut self, name: &str, value: bool) {
        self.try_set_input_by_name(name, value)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Sets an input bit by name, reporting an unknown name as a
    /// [`LookupError`] with a near-miss suggestion.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError`] when the input bit does not exist.
    pub fn try_set_input_by_name(&mut self, name: &str, value: bool) -> Result<(), LookupError> {
        let idx = self
            .net
            .inputs
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| {
                LookupError::new("input bit", name, self.net.inputs.iter().map(|n| &**n))
            })?;
        self.set_input(idx, value);
        Ok(())
    }

    fn propagate_from(&mut self, start: usize) {
        let mut queue = vec![start as u32];
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head] as usize;
            head += 1;
            let v = self.eval_gate(i);
            if v != self.values[i] {
                self.values[i] = v;
                self.events += 1;
                for &f in &self.fanout[i] {
                    if !queue[head..].contains(&f) {
                        queue.push(f);
                    }
                }
            }
        }
    }

    /// One full cycle of clock `clock_index`: the rising edge captures
    /// `at posedge` state bits and re-propagates; if the network has any
    /// falling-edge state bits on this clock, a second capture commits
    /// them from the re-propagated values (matching
    /// [`cbv_rtl::interp::Interp::step`]'s two-phase cycle).
    pub fn step(&mut self, clock_index: u32) {
        self.commit_edge(clock_index, Edge::Pos);
        if self.net.has_negedge(clock_index) {
            self.commit_edge(clock_index, Edge::Neg);
        }
    }

    fn commit_edge(&mut self, clock_index: u32, edge: Edge) {
        let next = self
            .net
            .next_states_edge(&self.values, &self.states, clock_index, edge);
        let changed: Vec<usize> = (0..self.states.len())
            .filter(|&i| self.states[i] != next[i])
            .collect();
        self.states = next;
        for (gi, g) in self.net.gates().iter().enumerate() {
            if let Gate::State(k) = g {
                if changed.contains(&(*k as usize)) {
                    self.propagate_from(gi);
                }
            }
        }
    }

    /// Reads a named output as an integer (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if the output does not exist.
    pub fn output(&self, name: &str) -> u64 {
        self.try_output(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Reads a named output, reporting an unknown name as a
    /// [`LookupError`] with a near-miss suggestion.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError`] when the output does not exist.
    pub fn try_output(&self, name: &str) -> Result<u64, LookupError> {
        let bits = self.net.output(name).ok_or_else(|| {
            LookupError::new("output", name, self.net.outputs.iter().map(|(n, _)| &**n))
        })?;
        Ok(bits
            .iter()
            .enumerate()
            .map(|(i, b)| (self.values[b.index()] as u64) << i)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_rtl::{blast::blast, compile, interp::Interp};

    #[test]
    fn matches_interpreter_on_counter() {
        let d = compile(
            "module c(clock ck, in en, out v[4]) { reg r[4]; at posedge(ck) { if (en) { r <= r + 1; } } assign v = r; }",
            "c",
        )
        .unwrap();
        let net = blast(&d).unwrap();
        let mut gsim = GateSim::new(&net);
        let mut isim = Interp::new(&d);
        gsim.set_input_by_name("en[0]", true);
        isim.set_input("en", 1);
        for cycle in 0..20 {
            assert_eq!(gsim.output("v"), isim.output("v"), "cycle {cycle}");
            gsim.step(0);
            isim.step("ck");
        }
    }

    #[test]
    fn matches_interpreter_on_two_phase_design() {
        // A posedge stage feeding a negedge stage on the same clock: the
        // event-driven simulator's two-phase step must agree with the
        // interpreter at every full-cycle boundary.
        let d = compile(
            "module m(clock ck, in d[4], out qa[4], out qb[4]) {\n\
               reg a[4]; reg b[4];\n\
               at posedge(ck) { a <= d; }\n\
               at negedge(ck) { b <= a ^ 5; }\n\
               assign qa = a; assign qb = b;\n\
             }",
            "m",
        )
        .unwrap();
        let net = blast(&d).unwrap();
        let mut gsim = GateSim::new(&net);
        let mut isim = Interp::new(&d);
        let mut rng = 777u64;
        for cycle in 0..30 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = (rng >> 17) & 15;
            for i in 0..4 {
                gsim.set_input_by_name(&format!("d[{i}]"), (v >> i) & 1 == 1);
            }
            isim.set_input("d", v);
            gsim.step(0);
            isim.step("ck");
            assert_eq!(gsim.output("qa"), isim.output("qa"), "qa at cycle {cycle}");
            assert_eq!(gsim.output("qb"), isim.output("qb"), "qb at cycle {cycle}");
            // The negedge stage saw this cycle's posedge value.
            assert_eq!(
                gsim.output("qb"),
                v ^ 5,
                "intra-cycle transfer at cycle {cycle}"
            );
        }
    }

    #[test]
    fn incremental_matches_full_eval() {
        let d = compile(
            "module m(in a[6], in b[6], out s[7], out p) { assign s = {1'b0,a} + b; assign p = ^(a ^ b); }",
            "m",
        )
        .unwrap();
        let net = blast(&d).unwrap();
        let mut sim = GateSim::new(&net);
        let mut rng = 123u64;
        for _ in 0..100 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (rng >> 10) & 63;
            let b = (rng >> 20) & 63;
            for i in 0..6 {
                sim.set_input_by_name(&format!("a[{i}]"), (a >> i) & 1 == 1);
                sim.set_input_by_name(&format!("b[{i}]"), (b >> i) & 1 == 1);
            }
            assert_eq!(sim.output("s"), a + b);
            assert_eq!(sim.output("p"), ((a ^ b).count_ones() & 1) as u64);
        }
        assert!(sim.events > 0, "incremental events occurred");
    }

    #[test]
    fn unknown_names_yield_typed_errors_with_suggestions() {
        let d = compile(
            "module m(in enable, out ready) { assign ready = ~enable; }",
            "m",
        )
        .unwrap();
        let net = blast(&d).unwrap();
        let mut sim = GateSim::new(&net);
        let e = sim.try_set_input_by_name("enable[1]", true).unwrap_err();
        assert_eq!(
            e.to_string(),
            "no input bit named `enable[1]`; did you mean `enable[0]`?"
        );
        let e = sim.try_output("redy").unwrap_err();
        assert_eq!(
            e.to_string(),
            "no output named `redy`; did you mean `ready`?"
        );
        assert!(sim.try_set_input_by_name("enable[0]", true).is_ok());
        assert_eq!(sim.try_output("ready").unwrap(), 0);
    }

    #[test]
    fn redundant_input_sets_cause_no_events() {
        let d = compile("module m(in a, out y) { assign y = ~a; }", "m").unwrap();
        let net = blast(&d).unwrap();
        let mut sim = GateSim::new(&net);
        sim.set_input_by_name("a[0]", true);
        let e1 = sim.events;
        sim.set_input_by_name("a[0]", true);
        assert_eq!(sim.events, e1, "no-change set is free");
    }
}

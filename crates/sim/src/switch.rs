//! Switch-level simulation of transistor netlists.
//!
//! The value system is three-valued (0 / 1 / X) with implicit charge
//! storage: a node whose conducting group touches no rail and no driven
//! input *retains* its previous value — which is precisely what makes
//! dynamic logic simulate correctly. Rail fights resolve by conductance
//! ratio (a 3× stronger side wins, else X), which models ratioed logic
//! and keepers without a full strength lattice.

use cbv_netlist::{DeviceId, FlatNetlist, NetId};
use cbv_rtl::lookup::LookupError;
use cbv_tech::MosKind;

/// Three-valued signal level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Logic {
    /// Driven or stored low.
    Zero,
    /// Driven or stored high.
    One,
    /// Unknown / conflict.
    X,
}

impl Logic {
    /// Logical complement (X stays X). Not `std::ops::Not`: that trait
    /// cannot express the X fixpoint without implying total negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
        }
    }

    /// From a bool.
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }
}

/// Is a device's channel conducting for a given gate level?
/// Returns `Some(true/false)` when definite, `None` for X.
fn conducts(kind: MosKind, gate: Logic) -> Option<bool> {
    match (kind, gate) {
        (MosKind::Nmos, Logic::One) | (MosKind::Pmos, Logic::Zero) => Some(true),
        (MosKind::Nmos, Logic::Zero) | (MosKind::Pmos, Logic::One) => Some(false),
        (_, Logic::X) => None,
    }
}

/// The switch-level simulator.
#[derive(Debug, Clone)]
pub struct SwitchSim<'n> {
    netlist: &'n FlatNetlist,
    values: Vec<Logic>,
    driven: Vec<bool>,
    /// Per-net charge weight: total channel width attached (diffusion
    /// capacitance proxy), used to resolve charge sharing.
    charge_weight: Vec<f64>,
    /// Per-net list of devices whose channel touches the net, in device
    /// id order — the same order a full device scan visits them. The
    /// conducting-group BFS walks this index instead of rescanning every
    /// device per node, taking group exploration from O(nets × devices)
    /// to O(touching devices).
    channel_adj: Vec<Vec<cbv_netlist::DeviceId>>,
    /// Rail-fight win threshold: the stronger side must exceed the weaker
    /// by this conductance factor to win cleanly.
    pub fight_ratio: f64,
}

impl<'n> SwitchSim<'n> {
    /// Creates a simulator; every non-rail node starts at X, rails at
    /// their levels.
    pub fn new(netlist: &'n FlatNetlist) -> SwitchSim<'n> {
        let mut values = vec![Logic::X; netlist.net_count()];
        let mut driven = vec![false; netlist.net_count()];
        for id in netlist.net_ids() {
            match netlist.net_kind(id) {
                cbv_netlist::NetKind::Power => {
                    values[id.index()] = Logic::One;
                    driven[id.index()] = true;
                }
                cbv_netlist::NetKind::Ground => {
                    values[id.index()] = Logic::Zero;
                    driven[id.index()] = true;
                }
                _ => {}
            }
        }
        let mut charge_weight = vec![0.0f64; netlist.net_count()];
        let mut channel_adj = vec![Vec::new(); netlist.net_count()];
        for (i, d) in netlist.devices().iter().enumerate() {
            charge_weight[d.source.index()] += d.w;
            channel_adj[d.source.index()].push(cbv_netlist::DeviceId(i as u32));
            if d.drain != d.source {
                charge_weight[d.drain.index()] += d.w;
                channel_adj[d.drain.index()].push(cbv_netlist::DeviceId(i as u32));
            }
        }
        SwitchSim {
            netlist,
            values,
            driven,
            charge_weight,
            channel_adj,
            fight_ratio: 3.0,
        }
    }

    /// Drives an external node (input, clock, or test override).
    pub fn set(&mut self, net: NetId, value: Logic) {
        self.values[net.index()] = value;
        self.driven[net.index()] = true;
    }

    /// Releases an externally driven node (it will float / be driven by
    /// the circuit again).
    pub fn release(&mut self, net: NetId) {
        self.driven[net.index()] = false;
    }

    /// Convenience: set by net name.
    ///
    /// # Panics
    ///
    /// Panics if the net does not exist.
    pub fn set_by_name(&mut self, name: &str, value: Logic) {
        self.try_set_by_name(name, value)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Set by net name, reporting an unknown name as a [`LookupError`]
    /// with a near-miss suggestion.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError`] when the net does not exist.
    pub fn try_set_by_name(&mut self, name: &str, value: Logic) -> Result<(), LookupError> {
        let net = self.find_net(name)?;
        self.set(net, value);
        Ok(())
    }

    fn find_net(&self, name: &str) -> Result<NetId, LookupError> {
        self.netlist.find_net(name).ok_or_else(|| {
            LookupError::new(
                "net",
                name,
                self.netlist.net_ids().map(|id| self.netlist.net_name(id)),
            )
        })
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// Value by name.
    ///
    /// # Panics
    ///
    /// Panics if the net does not exist.
    pub fn value_by_name(&self, name: &str) -> Logic {
        self.try_value_by_name(name)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Value by net name, reporting an unknown name as a
    /// [`LookupError`] with a near-miss suggestion.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError`] when the net does not exist.
    pub fn try_value_by_name(&self, name: &str) -> Result<Logic, LookupError> {
        Ok(self.value(self.find_net(name)?))
    }

    /// Relaxes the network to a fixpoint. Returns the number of sweeps,
    /// or `None` if it failed to stabilize (oscillation — e.g. an
    /// enabled ring oscillator).
    ///
    /// Two phases: an *optimistic bootstrap* (X-gated devices treated
    /// off) lets bistable structures like cross-coupled pairs and DCVSL
    /// loads resolve out of the initial all-X state; a *pessimistic
    /// verify* then re-evaluates every node with X-gated devices on both
    /// ways, demoting genuinely ambiguous nodes back to X.
    pub fn settle(&mut self) -> Option<usize> {
        let max_sweeps = 4 * self.netlist.net_count().max(8);
        let mut total = 0;
        for phase_pessimistic in [false, true] {
            let mut stable = false;
            for _ in 0..max_sweeps {
                total += 1;
                if !self.sweep_once(phase_pessimistic) {
                    stable = true;
                    break;
                }
            }
            if !stable {
                return None;
            }
        }
        Some(total)
    }

    /// One relaxation sweep; true if anything changed.
    fn sweep_once(&mut self, pessimistic: bool) -> bool {
        let mut changed = false;
        let n = self.netlist.net_count();
        let mut new_values = self.values.clone();
        for (net_idx, slot) in new_values.iter_mut().enumerate().take(n) {
            let net = NetId(net_idx as u32);
            if self.driven[net_idx] {
                continue;
            }
            let v = self.evaluate_node(net, pessimistic);
            if v != self.values[net_idx] {
                *slot = v;
                changed = true;
            }
        }
        self.values = new_values;
        changed
    }

    /// Evaluates one node. In pessimistic mode the conducting group is
    /// explored twice — optimistic (X-gated devices off) and pessimistic
    /// (on); disagreement means X. The bootstrap phase uses only the
    /// optimistic exploration.
    fn evaluate_node(&self, net: NetId, pessimistic: bool) -> Logic {
        let a = self.group_value(net, false);
        if !pessimistic {
            return a;
        }
        let b = self.group_value(net, true);
        if a == b {
            a
        } else {
            Logic::X
        }
    }

    /// Value of the conducting group containing `net`, treating X-gated
    /// devices as on (`x_on`) or off.
    fn group_value(&self, start: NetId, x_on: bool) -> Logic {
        // BFS the conducting channel graph, tracking the bottleneck
        // (weakest series device) conductance from `start` to each node —
        // a cheap proxy for the series path resistance that decides
        // ratioed fights.
        let mut group = vec![start];
        let mut bottleneck = vec![f64::INFINITY];
        let mut head = 0;
        let mut g_one: f64 = 0.0;
        let mut g_zero: f64 = 0.0;
        let mut driven_vals: Vec<Logic> = Vec::new();
        while head < group.len() {
            let cur = group[head];
            let cur_bn = bottleneck[head];
            head += 1;
            for &did in &self.channel_adj[cur.index()] {
                let d = self.netlist.device(did);
                let on = match conducts(d.kind, self.values[d.gate.index()]) {
                    Some(on) => on,
                    None => x_on,
                };
                if !on {
                    continue;
                }
                let other = d.other_channel_end(cur);
                // Electron mobility advantage: an NMOS square conducts
                // ~2.5x a PMOS square.
                let mobility = match d.kind {
                    MosKind::Nmos => 1.0,
                    MosKind::Pmos => 0.4,
                };
                let g_path = cur_bn.min(mobility * d.w / d.l);
                let v = self.values[other.index()];
                let is_rail = self.netlist.net_kind(other).is_rail();
                let is_driven = self.driven[other.index()];
                if is_rail || is_driven {
                    match v {
                        Logic::One => g_one = g_one.max(g_path),
                        Logic::Zero => g_zero = g_zero.max(g_path),
                        Logic::X => driven_vals.push(Logic::X),
                    }
                    if is_driven && !is_rail {
                        driven_vals.push(v);
                    }
                    continue;
                }
                match group.iter().position(|&g| g == other) {
                    Some(i) => {
                        // Found a stronger route into an already-seen
                        // node: revisit it so terminals get the better
                        // bottleneck.
                        if g_path > bottleneck[i] {
                            bottleneck[i] = g_path;
                            if i < head {
                                group.push(other);
                                bottleneck.push(g_path);
                            }
                        }
                    }
                    None => {
                        group.push(other);
                        bottleneck.push(g_path);
                    }
                }
            }
        }
        // Deduplicate revisited nodes for the charge computation below.
        let mut seen = std::collections::HashSet::new();
        let group: Vec<NetId> = group.into_iter().filter(|&g| seen.insert(g)).collect();
        if driven_vals.contains(&Logic::X) {
            return Logic::X;
        }
        match (g_one > 0.0, g_zero > 0.0) {
            (true, true) => {
                if g_one >= self.fight_ratio * g_zero {
                    Logic::One
                } else if g_zero >= self.fight_ratio * g_one {
                    Logic::Zero
                } else {
                    Logic::X
                }
            }
            (true, false) => Logic::One,
            (false, true) => Logic::Zero,
            (false, false) => {
                // Isolated: charge storage / charge sharing. The group
                // settles to the charge-weighted majority; nodes still at
                // X carry no known charge and are ignored (they are the
                // tiny never-initialized stack internals). A near-tie is
                // X — that is exactly the hazard the charge-share checker
                // flags.
                let mut w_one = 0.0f64;
                let mut w_zero = 0.0f64;
                for &g in &group {
                    let w = self.charge_weight[g.index()].max(1e-9);
                    match self.values[g.index()] {
                        Logic::One => w_one += w,
                        Logic::Zero => w_zero += w,
                        Logic::X => {}
                    }
                }
                match (w_one > 0.0, w_zero > 0.0) {
                    (true, false) => Logic::One,
                    (false, true) => Logic::Zero,
                    (false, false) => Logic::X,
                    (true, true) => {
                        if w_one >= 2.0 * w_zero {
                            Logic::One
                        } else if w_zero >= 2.0 * w_one {
                            Logic::Zero
                        } else {
                            Logic::X
                        }
                    }
                }
            }
        }
    }

    /// Reads a bus of nets as an integer, MSB-first names like `a[3]`.
    /// Returns `None` if any bit is X.
    pub fn read_bus(&self, base: &str, width: u32) -> Option<u64> {
        let mut out = 0u64;
        for i in 0..width {
            let net = self.netlist.find_net(&format!("{base}[{i}]"))?;
            match self.value(net) {
                Logic::One => out |= 1 << i,
                Logic::Zero => {}
                Logic::X => return None,
            }
        }
        Some(out)
    }
}

/// A map of device ids to conduction state (exposed for debug tooling).
pub fn conducting_devices(sim: &SwitchSim<'_>, netlist: &FlatNetlist) -> Vec<(DeviceId, bool)> {
    netlist
        .devices()
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let on = conducts(d.kind, sim.value(d.gate)).unwrap_or(false);
            (DeviceId(i as u32), on)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_netlist::{Device, NetKind};

    fn add_inverter(f: &mut FlatNetlist, name: &str, a: NetId, y: NetId, vdd: NetId, gnd: NetId) {
        f.add_device(Device::mos(
            MosKind::Pmos,
            format!("{name}p"),
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            format!("{name}n"),
            a,
            y,
            gnd,
            gnd,
            2e-6,
            0.35e-6,
        ));
    }

    #[test]
    fn unknown_net_yields_typed_error_with_suggestion() {
        let mut f = FlatNetlist::new("inv");
        let a = f.add_net("data_in", NetKind::Input);
        let y = f.add_net("data_out", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        add_inverter(&mut f, "i", a, y, vdd, gnd);
        let mut sim = SwitchSim::new(&f);
        let e = sim.try_set_by_name("data_inn", Logic::One).unwrap_err();
        assert_eq!(
            e.to_string(),
            "no net named `data_inn`; did you mean `data_in`?"
        );
        let e = sim.try_value_by_name("dataout").unwrap_err();
        assert_eq!(e.suggestion.as_deref(), Some("data_out"));
        sim.try_set_by_name("data_in", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.try_value_by_name("data_out").unwrap(), Logic::One);
    }

    #[test]
    fn adjacency_index_matches_brute_force_scan() {
        // Build a mixed topology: inverter chain + a pass-gate mux +
        // a device with source == drain (degenerate channel).
        let mut f = FlatNetlist::new("mix");
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        let a = f.add_net("a", NetKind::Input);
        let s = f.add_net("s", NetKind::Input);
        let n0 = f.add_net("n0", NetKind::Signal);
        let y = f.add_net("y", NetKind::Output);
        add_inverter(&mut f, "i0", a, n0, vdd, gnd);
        add_inverter(&mut f, "i1", n0, y, vdd, gnd);
        f.add_device(Device::mos(
            MosKind::Nmos,
            "pass",
            s,
            y,
            n0,
            gnd,
            2e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "degen",
            s,
            n0,
            n0,
            gnd,
            2e-6,
            0.35e-6,
        ));

        let sim = SwitchSim::new(&f);
        // The index must list, per net, exactly the devices a full scan
        // in id order finds touching that net — including them in the
        // same order. The BFS previously iterated `devices()` and
        // skipped non-touching ones, so ordered equality of the
        // filtered list proves the fast path visits identical devices
        // in identical order, hence settles identically.
        for net in f.net_ids() {
            let brute: Vec<DeviceId> = f
                .devices()
                .iter()
                .enumerate()
                .filter(|(_, d)| d.channel_touches(net))
                .map(|(i, _)| DeviceId(i as u32))
                .collect();
            assert_eq!(sim.channel_adj[net.index()], brute, "net {net:?}");
        }
    }

    #[test]
    fn indexed_settle_matches_expected_mux_values() {
        let mut f = FlatNetlist::new("mux");
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        let a = f.add_net("a", NetKind::Input);
        let s = f.add_net("s", NetKind::Input);
        let sb = f.add_net("sb", NetKind::Signal);
        let y = f.add_net("y", NetKind::Output);
        add_inverter(&mut f, "si", s, sb, vdd, gnd);
        // Transmission-gate mux: y = s ? a : vdd-side constant one.
        f.add_device(Device::mos(
            MosKind::Nmos,
            "tn",
            s,
            y,
            a,
            gnd,
            2e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "tp",
            sb,
            y,
            a,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pu",
            s,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        let mut sim = SwitchSim::new(&f);
        sim.set(s, Logic::One);
        for v in [Logic::Zero, Logic::One] {
            sim.set(a, v);
            sim.settle().unwrap();
            assert_eq!(sim.value(y), v, "selected input passes through");
        }
        sim.set(s, Logic::Zero);
        sim.set(a, Logic::Zero);
        sim.settle().unwrap();
        assert_eq!(sim.value(y), Logic::One, "deselected: pull-up wins");
    }

    #[test]
    fn inverter_truth_table() {
        let mut f = FlatNetlist::new("inv");
        let a = f.add_net("a", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        add_inverter(&mut f, "i", a, y, vdd, gnd);
        let mut sim = SwitchSim::new(&f);
        sim.set(a, Logic::Zero);
        sim.settle().unwrap();
        assert_eq!(sim.value(y), Logic::One);
        sim.set(a, Logic::One);
        sim.settle().unwrap();
        assert_eq!(sim.value(y), Logic::Zero);
        sim.set(a, Logic::X);
        sim.settle().unwrap();
        assert_eq!(sim.value(y), Logic::X);
    }

    #[test]
    fn nand_gate() {
        let mut f = FlatNetlist::new("nand2");
        let a = f.add_net("a", NetKind::Input);
        let b = f.add_net("b", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let x = f.add_net("x", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pa",
            a,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pb",
            b,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "na",
            a,
            y,
            x,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "nb",
            b,
            x,
            gnd,
            gnd,
            4e-6,
            0.35e-6,
        ));
        let mut sim = SwitchSim::new(&f);
        for (va, vb, expect) in [
            (Logic::Zero, Logic::Zero, Logic::One),
            (Logic::Zero, Logic::One, Logic::One),
            (Logic::One, Logic::Zero, Logic::One),
            (Logic::One, Logic::One, Logic::Zero),
        ] {
            sim.set(a, va);
            sim.set(b, vb);
            sim.settle().unwrap();
            assert_eq!(sim.value(y), expect, "a={va:?} b={vb:?}");
        }
    }

    #[test]
    fn domino_precharge_evaluate() {
        let mut f = FlatNetlist::new("dom");
        let clk = f.add_net("clk", NetKind::Clock);
        let a = f.add_net("a", NetKind::Input);
        let d = f.add_net("d", NetKind::Signal);
        let out = f.add_net("out", NetKind::Output);
        let x = f.add_net("x", NetKind::Signal);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "pre",
            clk,
            d,
            vdd,
            vdd,
            3e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "na",
            a,
            d,
            x,
            gnd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "ft",
            clk,
            x,
            gnd,
            gnd,
            6e-6,
            0.35e-6,
        ));
        add_inverter(&mut f, "o", d, out, vdd, gnd);
        let mut sim = SwitchSim::new(&f);
        // Precharge phase: clk low.
        sim.set(clk, Logic::Zero);
        sim.set(a, Logic::Zero);
        sim.settle().unwrap();
        assert_eq!(sim.value(d), Logic::One, "precharged high");
        assert_eq!(sim.value(out), Logic::Zero);
        // Evaluate with a=0: node floats, retains charge.
        sim.set(clk, Logic::One);
        sim.settle().unwrap();
        assert_eq!(sim.value(d), Logic::One, "charge retained");
        // Evaluate with a=1: discharges.
        sim.set(a, Logic::One);
        sim.settle().unwrap();
        assert_eq!(sim.value(d), Logic::Zero);
        assert_eq!(sim.value(out), Logic::One);
        // Back to precharge.
        sim.set(clk, Logic::Zero);
        sim.settle().unwrap();
        assert_eq!(sim.value(d), Logic::One);
    }

    #[test]
    fn pass_gate_mux_and_charge_retention() {
        let mut f = FlatNetlist::new("pass");
        let s = f.add_net("s", NetKind::Input);
        let a = f.add_net("a", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(MosKind::Nmos, "m", s, a, y, gnd, 2e-6, 0.35e-6));
        let mut sim = SwitchSim::new(&f);
        sim.set(s, Logic::One);
        sim.set(a, Logic::One);
        sim.settle().unwrap();
        assert_eq!(sim.value(y), Logic::One, "pass gate conducts");
        // Turn the pass gate off: y floats, retaining One.
        sim.set(s, Logic::Zero);
        sim.settle().unwrap();
        assert_eq!(sim.value(y), Logic::One, "charge retained on floating node");
        // Change a: y must NOT follow.
        sim.set(a, Logic::Zero);
        sim.settle().unwrap();
        assert_eq!(sim.value(y), Logic::One);
    }

    #[test]
    fn ratioed_fight_resolves_by_strength() {
        // Pseudo-NMOS: weak always-on pullup vs strong pulldown.
        let mut f = FlatNetlist::new("ratioed");
        let a = f.add_net("a", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(
            MosKind::Pmos,
            "load",
            gnd,
            y,
            vdd,
            vdd,
            1.0e-6,
            1.4e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "n",
            a,
            y,
            gnd,
            gnd,
            8e-6,
            0.35e-6,
        ));
        let mut sim = SwitchSim::new(&f);
        sim.set(a, Logic::Zero);
        sim.settle().unwrap();
        assert_eq!(sim.value(y), Logic::One, "load pulls high when n off");
        sim.set(a, Logic::One);
        sim.settle().unwrap();
        assert_eq!(sim.value(y), Logic::Zero, "strong pulldown wins the fight");
    }

    #[test]
    fn balanced_fight_is_x() {
        let mut f = FlatNetlist::new("fight");
        let y = f.add_net("y", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        // Two equal always-on devices fighting.
        f.add_device(Device::mos(
            MosKind::Pmos,
            "up",
            gnd,
            y,
            vdd,
            vdd,
            4e-6,
            0.35e-6,
        ));
        f.add_device(Device::mos(
            MosKind::Nmos,
            "dn",
            vdd,
            y,
            gnd,
            gnd,
            4e-6,
            0.35e-6,
        ));
        let mut sim = SwitchSim::new(&f);
        sim.settle().unwrap();
        assert_eq!(sim.value(y), Logic::X);
    }

    #[test]
    fn cross_coupled_latch_holds_either_state() {
        let mut f = FlatNetlist::new("sr");
        let q = f.add_net("q", NetKind::Output);
        let qb = f.add_net("qb", NetKind::Output);
        let vdd = f.add_net("vdd", NetKind::Power);
        let gnd = f.add_net("gnd", NetKind::Ground);
        add_inverter(&mut f, "i1", q, qb, vdd, gnd);
        add_inverter(&mut f, "i2", qb, q, vdd, gnd);
        let mut sim = SwitchSim::new(&f);
        // Force a state, then release.
        sim.set(q, Logic::One);
        sim.settle().unwrap();
        assert_eq!(sim.value(qb), Logic::Zero);
        sim.release(q);
        sim.settle().unwrap();
        assert_eq!(sim.value(q), Logic::One, "latch holds");
        assert_eq!(sim.value(qb), Logic::Zero);
        // Flip it.
        sim.set(q, Logic::Zero);
        sim.settle().unwrap();
        sim.release(q);
        sim.settle().unwrap();
        assert_eq!(sim.value(q), Logic::Zero);
        assert_eq!(sim.value(qb), Logic::One);
    }

    #[test]
    fn x_gate_pessimism() {
        // NMOS with X gate between driven 1 and output: output X only if
        // it matters.
        let mut f = FlatNetlist::new("xg");
        let g = f.add_net("g", NetKind::Input);
        let a = f.add_net("a", NetKind::Input);
        let y = f.add_net("y", NetKind::Output);
        let gnd = f.add_net("gnd", NetKind::Ground);
        f.add_device(Device::mos(MosKind::Nmos, "m", g, a, y, gnd, 2e-6, 0.35e-6));
        let mut sim = SwitchSim::new(&f);
        sim.set(g, Logic::X);
        sim.set(a, Logic::One);
        // y previous value X -> on: 1, off: retains X -> X overall.
        sim.settle().unwrap();
        assert_eq!(sim.value(y), Logic::X);
        // But if y already held One, X gate cannot change it to anything
        // else (both branches give One).
        sim.set(g, Logic::One);
        sim.settle().unwrap();
        assert_eq!(sim.value(y), Logic::One);
        sim.set(g, Logic::X);
        sim.settle().unwrap();
        assert_eq!(sim.value(y), Logic::One, "agreeing optimistic/pessimistic");
    }
}

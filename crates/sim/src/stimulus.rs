//! Stimulus sources: manual vectors and pseudo-random sequences (§4.1:
//! "Simulation requires stimulus patterns, which are either manually
//! generated or pseudo-random sequences").

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A stimulus source producing per-cycle input assignments.
#[derive(Debug, Clone)]
pub enum Stimulus {
    /// Explicit vectors: one `Vec<(name, value)>` per cycle, repeated
    /// cyclically.
    Vectors(Vec<Vec<(String, u64)>>),
    /// Pseudo-random values for the named inputs each cycle.
    Random {
        /// (input name, width) pairs.
        inputs: Vec<(String, u32)>,
        /// RNG seed (deterministic across runs).
        seed: u64,
    },
}

impl Stimulus {
    /// Materializes `cycles` cycles of stimulus.
    pub fn generate(&self, cycles: usize) -> Vec<Vec<(String, u64)>> {
        match self {
            Stimulus::Vectors(v) => {
                if v.is_empty() {
                    return vec![Vec::new(); cycles];
                }
                (0..cycles).map(|i| v[i % v.len()].clone()).collect()
            }
            Stimulus::Random { inputs, seed } => {
                let mut rng = SmallRng::seed_from_u64(*seed);
                (0..cycles)
                    .map(|_| {
                        inputs
                            .iter()
                            .map(|(n, w)| {
                                let mask = if *w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
                                (n.clone(), rng.gen::<u64>() & mask)
                            })
                            .collect()
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_repeat_cyclically() {
        let s = Stimulus::Vectors(vec![vec![("a".into(), 1)], vec![("a".into(), 0)]]);
        let g = s.generate(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0][0].1, 1);
        assert_eq!(g[1][0].1, 0);
        assert_eq!(g[4][0].1, 1);
    }

    #[test]
    fn random_is_deterministic_and_masked() {
        let s = Stimulus::Random {
            inputs: vec![("x".into(), 5)],
            seed: 42,
        };
        let a = s.generate(32);
        let b = s.generate(32);
        assert_eq!(a, b, "same seed, same stream");
        assert!(a.iter().all(|cyc| cyc[0].1 < 32), "masked to width");
        // Not constant.
        assert!(a.iter().any(|cyc| cyc[0].1 != a[0][0].1));
    }

    #[test]
    fn empty_vectors_yield_empty_cycles() {
        let s = Stimulus::Vectors(vec![]);
        assert_eq!(s.generate(3), vec![Vec::new(); 3]);
    }
}

//! The multi-view design database and hierarchy-correspondence metrics.
//!
//! §2.1: "Our hierarchy may be significantly different between different
//! views of the design (RTL, schematic, and layout). ... This causes
//! irregular overlapping of schematic and RTL boundaries as shown in
//! Figure 1."
//!
//! [`Design`] holds the three views side by side with *no* structural
//! coupling — correspondence is measured, not mandated.
//! [`partition_overlap`] quantifies Fig 1: given two groupings of the
//! same elements (e.g. nets grouped by RTL block vs by schematic cell),
//! it reports how irregularly the boundaries overlap.

use std::collections::HashMap;

use cbv_layout::Layout;
use cbv_netlist::{FlatNetlist, Library};
use cbv_rtl::RtlDesign;

/// The three views of one design. Any view may be absent; nothing forces
/// their hierarchies to match.
#[derive(Debug, Default)]
pub struct Design {
    /// Design name.
    pub name: String,
    /// Behavioral/RTL view.
    pub rtl: Option<RtlDesign>,
    /// Hierarchical schematic view.
    pub schematic: Option<Library>,
    /// Flattened transistor view (what verification runs on).
    pub flat: Option<FlatNetlist>,
    /// Layout view.
    pub layout: Option<Layout>,
}

impl Design {
    /// An empty design shell.
    pub fn new(name: impl Into<String>) -> Design {
        Design {
            name: name.into(),
            ..Design::default()
        }
    }

    /// Which views are populated, for flow reporting.
    pub fn views_present(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        if self.rtl.is_some() {
            v.push("rtl");
        }
        if self.schematic.is_some() {
            v.push("schematic");
        }
        if self.flat.is_some() {
            v.push("flat");
        }
        if self.layout.is_some() {
            v.push("layout");
        }
        v
    }
}

/// Overlap statistics between two partitions of the same element set.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapStats {
    /// Number of groups in partition A (e.g. RTL blocks).
    pub groups_a: usize,
    /// Number of groups in partition B (e.g. schematic cells).
    pub groups_b: usize,
    /// Mean best-match Jaccard similarity over A's groups: 1.0 means the
    /// hierarchies coincide, low values mean Fig 1's irregular overlap.
    pub mean_best_jaccard: f64,
    /// Elements whose A-group's best-matching B-group is not their own
    /// B-group — "boundary crossers".
    pub crossing_elements: usize,
    /// Total elements.
    pub total_elements: usize,
}

impl OverlapStats {
    /// Fraction of elements that cross boundaries.
    pub fn crossing_fraction(&self) -> f64 {
        if self.total_elements == 0 {
            0.0
        } else {
            self.crossing_elements as f64 / self.total_elements as f64
        }
    }
}

/// Measures the overlap of two groupings of the same elements. Element
/// `i` belongs to group `a[i]` in partition A and `b[i]` in partition B.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn partition_overlap(a: &[u32], b: &[u32]) -> OverlapStats {
    assert_eq!(a.len(), b.len(), "partitions must cover the same elements");
    let n = a.len();
    // Group memberships.
    let mut groups_a: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut groups_b: HashMap<u32, Vec<usize>> = HashMap::new();
    for i in 0..n {
        groups_a.entry(a[i]).or_default().push(i);
        groups_b.entry(b[i]).or_default().push(i);
    }
    // For each A group, find the best-Jaccard B group.
    let mut sum_jaccard = 0.0;
    let mut best_b_of_a: HashMap<u32, u32> = HashMap::new();
    for (&ga, members_a) in &groups_a {
        let mut best = 0.0f64;
        let mut best_gb = u32::MAX;
        for (&gb, members_b) in &groups_b {
            let inter = members_a.iter().filter(|i| b[**i] == gb).count();
            let union = members_a.len() + members_b.len() - inter;
            let j = if union == 0 {
                0.0
            } else {
                inter as f64 / union as f64
            };
            if j > best {
                best = j;
                best_gb = gb;
            }
        }
        sum_jaccard += best;
        best_b_of_a.insert(ga, best_gb);
    }
    let crossing_elements = (0..n)
        .filter(|&i| best_b_of_a.get(&a[i]).copied() != Some(b[i]))
        .count();
    OverlapStats {
        groups_a: groups_a.len(),
        groups_b: groups_b.len(),
        mean_best_jaccard: if groups_a.is_empty() {
            1.0
        } else {
            sum_jaccard / groups_a.len() as f64
        },
        crossing_elements,
        total_elements: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_are_perfect() {
        let a = [0u32, 0, 1, 1, 2, 2];
        let s = partition_overlap(&a, &a);
        assert_eq!(s.mean_best_jaccard, 1.0);
        assert_eq!(s.crossing_elements, 0);
    }

    #[test]
    fn relabeled_partitions_are_still_perfect() {
        let a = [0u32, 0, 1, 1, 2, 2];
        let b = [7u32, 7, 3, 3, 9, 9];
        let s = partition_overlap(&a, &b);
        assert_eq!(s.mean_best_jaccard, 1.0);
        assert_eq!(s.crossing_elements, 0);
    }

    #[test]
    fn shifted_boundary_counts_crossers() {
        // A: [0 0 0 | 1 1 1]   B: [0 0 | 1 1 1 1]
        let a = [0u32, 0, 0, 1, 1, 1];
        let b = [0u32, 0, 1, 1, 1, 1];
        let s = partition_overlap(&a, &b);
        assert!(s.mean_best_jaccard < 1.0);
        // Element 2: A-group 0 best-matches B-group 0 (or 1), one of the
        // six elements crosses.
        assert_eq!(s.crossing_elements, 1);
        assert!((s.crossing_fraction() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn interleaved_partitions_overlap_poorly() {
        // Fig 1's irregular overlap, in the extreme.
        let a = [0u32, 0, 0, 0, 1, 1, 1, 1];
        let b = [0u32, 1, 0, 1, 0, 1, 0, 1];
        let s = partition_overlap(&a, &b);
        assert!(s.mean_best_jaccard < 0.5);
        assert!(s.crossing_elements >= 2);
    }

    #[test]
    fn design_views_tracking() {
        let mut d = Design::new("chip");
        assert!(d.views_present().is_empty());
        d.flat = Some(FlatNetlist::new("chip"));
        assert_eq!(d.views_present(), vec!["flat"]);
    }

    #[test]
    #[should_panic(expected = "same elements")]
    fn mismatched_lengths_panic() {
        let _ = partition_overlap(&[0], &[0, 1]);
    }
}

//! The executable design flow of Fig 2.
//!
//! "The design flow used for ALPHA CPU designs is similar in appearance
//! to many other design flows. A significant difference to other design
//! flows is the amount of automatic synthesis of schematic and layout.
//! Since there is a reduced amount of automatic synthesis, there has been
//! much more emphasis on the verification of all implementation
//! representations."
//!
//! [`run_flow`] takes a transistor netlist (the hand-crafted artifact)
//! and runs every verification representation over it: recognition,
//! layout assistance, extraction, the §4.2 electrical battery, §4.3
//! timing with inferred constraints, and §3 power — producing per-stage
//! timings and the aggregated [`Signoff`].

use std::time::{Duration, Instant};

use cbv_everify::EverifyConfig;
use cbv_exec::Executor;
use cbv_netlist::FlatNetlist;
use cbv_power::ActivityModel;
use cbv_recognize::Recognition;
use cbv_tech::{Process, Seconds, Tolerance};
use cbv_timing::{ClockSchedule, DelayCalc, Pessimism};

use crate::signoff::Signoff;

/// Flow configuration knobs.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Clock schedule for timing verification; `None` derives a
    /// single-phase schedule at the process target frequency using the
    /// design's first recognized clock.
    pub schedule: Option<ClockSchedule>,
    /// Timing pessimism.
    pub pessimism: Pessimism,
    /// Parasitic tolerance bounds.
    pub tolerance: Tolerance,
    /// Data activity for power estimation.
    pub activity: f64,
    /// Run geometric DRC on the assisted layout. Off by default: the
    /// assist router is honest about not being DRC-complete on dense
    /// multi-stub channels (the designer finishes the layout, as in the
    /// paper's methodology); enable for hand layouts and small cells.
    pub check_drc: bool,
    /// Worker threads for the parallel stages (everify battery, timing
    /// graph build). `0` = auto: honour `CBV_THREADS`, else machine
    /// parallelism. Results are identical at every thread count.
    pub parallelism: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            schedule: None,
            pessimism: Pessimism::signoff(),
            tolerance: Tolerance::conservative(),
            activity: 0.15,
            check_drc: false,
            parallelism: 0,
        }
    }
}

/// Runtime and artifact counts for one stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage name (matches Fig 2's boxes).
    pub stage: &'static str,
    /// Wall-clock runtime: what the designer waits for.
    pub runtime: Seconds,
    /// Aggregate compute time: worker busy time summed over threads plus
    /// the stage's serial remainder. Equals `runtime` for serial stages;
    /// the `cpu_time / runtime` ratio is the stage's effective
    /// parallelism.
    pub cpu_time: Seconds,
    /// Number of artifacts produced/processed (devices, shapes, arcs...).
    pub artifacts: usize,
}

/// The full flow result.
#[derive(Debug)]
pub struct FlowReport {
    /// Per-stage breakdown in execution order.
    pub stages: Vec<StageReport>,
    /// The recognition result (kept for downstream tools).
    pub recognition: Recognition,
    /// The aggregated signoff.
    pub signoff: Signoff,
    /// The final netlist (flow takes ownership).
    pub netlist: FlatNetlist,
}

impl FlowReport {
    /// Total wall-clock runtime across stages (the stages run back to
    /// back, so this is also the flow's elapsed time).
    pub fn total_runtime(&self) -> Seconds {
        self.stages.iter().map(|s| s.runtime).sum()
    }

    /// Total compute across stages, counting every worker's busy time.
    /// With parallel stages this exceeds [`total_runtime`]; the gap is
    /// the work the extra threads absorbed.
    ///
    /// [`total_runtime`]: FlowReport::total_runtime
    pub fn total_cpu_time(&self) -> Seconds {
        self.stages.iter().map(|s| s.cpu_time).sum()
    }
}

/// Times one stage. The closure reports `(value, artifacts, cpu)`; `cpu`
/// is the aggregate worker busy time for parallel stages, or `None` for
/// serial stages (cpu time == wall time).
fn timed<T>(
    stages: &mut Vec<StageReport>,
    stage: &'static str,
    f: impl FnOnce() -> (T, usize, Option<Duration>),
) -> T {
    let start = Instant::now();
    let (value, artifacts, cpu) = f();
    let runtime = Seconds::new(start.elapsed().as_secs_f64());
    stages.push(StageReport {
        stage,
        runtime,
        cpu_time: cpu.map_or(runtime, |d| Seconds::new(d.as_secs_f64())),
        artifacts,
    });
    value
}

/// Runs the complete verification flow over a transistor netlist.
pub fn run_flow(mut netlist: FlatNetlist, process: &Process, config: &FlowConfig) -> FlowReport {
    let mut stages = Vec::new();
    let mut drc_violations = 0usize;
    let exec = Executor::threads(config.parallelism);

    // 1. Circuit recognition (§2.3).
    let recognition = timed(&mut stages, "recognize", || {
        let r = cbv_recognize::recognize(&mut netlist);
        let n = r.cccs.len();
        (r, n, None)
    });

    // 2. Layout assistance (§2.2).
    let layout = timed(&mut stages, "layout", || {
        let l = cbv_layout::synthesize(&mut netlist, process);
        let n = l.shapes.len();
        (l, n, None)
    });

    // 2b. Optional geometric DRC over the assisted layout.
    if config.check_drc {
        let rules = cbv_layout::Rules::for_process(process);
        let violations = timed(&mut stages, "drc", || {
            let v = cbv_layout::check_drc(&layout, &netlist, &rules, 10_000);
            let n = v.len();
            (v, n, None)
        });
        drc_violations = violations.len();
    }

    // 3. Extraction (§4.3 inputs).
    let extracted = timed(&mut stages, "extract", || {
        let e = cbv_extract::extract(&layout, &netlist, process);
        let n = e.iter().count();
        (e, n, None)
    });

    // 4. Electrical verification battery (§4.2), checks fanned out
    // across the executor's workers.
    let mut everify_cfg = EverifyConfig::for_process(process);
    everify_cfg.tolerance = config.tolerance;
    let ereport = timed(&mut stages, "everify", || {
        let (r, busy) = cbv_everify::run_all_parallel(
            &netlist,
            &recognition,
            &extracted,
            Some(&layout),
            process,
            &everify_cfg,
            &exec,
        );
        let n = r.checked_count();
        (r, n, Some(busy))
    });

    // 5. Timing verification (§4.3).
    let schedule = config.schedule.clone().unwrap_or_else(|| {
        let name = recognition
            .clock_nets
            .first()
            .map(|&c| netlist.net_name(c).to_owned())
            .unwrap_or_else(|| "clk".to_owned());
        ClockSchedule::single(name, process.f_target().period())
    });
    let calc = DelayCalc::new(process, config.tolerance, config.pessimism);
    let (sta, n_constraints) = timed(&mut stages, "timing", || {
        let (graph, graph_busy) = cbv_timing::graph::build_graph_parallel(
            &netlist,
            &recognition,
            &extracted,
            &calc,
            &exec,
        );
        let serial_start = Instant::now();
        let constraints =
            cbv_timing::infer_constraints(&netlist, &recognition, process, &config.pessimism);
        let skews: Vec<_> = recognition
            .clock_nets
            .iter()
            .filter_map(|&c| {
                cbv_timing::clock_skew_bounds(
                    &extracted,
                    c,
                    cbv_tech::Ohms::new(200.0),
                    &config.tolerance,
                )
            })
            .collect();
        let r = cbv_timing::analyze(
            &netlist,
            &graph,
            &constraints,
            &schedule,
            &config.pessimism,
            &skews,
        );
        let n = constraints.len();
        // Stage compute = parallel graph build (all workers) + the
        // serial constraint/skew/propagation remainder.
        let cpu = graph_busy + serial_start.elapsed();
        ((r, n), graph.arcs.len(), Some(cpu))
    });

    // 6. Power estimation (§3).
    let power = timed(&mut stages, "power", || {
        let p = cbv_power::dynamic_power(
            &netlist,
            &recognition,
            &extracted,
            process,
            process.f_target(),
            &ActivityModel::uniform(config.activity),
        );
        (p, 1, None)
    });

    let mut signoff = Signoff::default();
    if config.check_drc {
        signoff.add_drc(drc_violations);
    }
    signoff.add_everify(&ereport);
    signoff.add_timing(&sta, n_constraints);
    signoff.set_power(power.total());

    FlowReport {
        stages,
        recognition,
        signoff,
        netlist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_gen::adders::{manchester_domino_adder, static_ripple_adder};
    use cbv_gen::{inject, FaultKind};

    #[test]
    fn clean_static_adder_signs_off() {
        let p = Process::strongarm_035();
        let g = static_ripple_adder(4, &p);
        let r = run_flow(g.netlist, &p, &FlowConfig::default());
        assert!(r.signoff.clean(), "{}", r.signoff);
        assert_eq!(r.stages.len(), 6);
        assert!(r.total_runtime().seconds() > 0.0);
        assert!(
            r.total_cpu_time().seconds() >= r.total_runtime().seconds() * 0.5,
            "cpu time tracks wall time within measurement noise"
        );
        assert!(r.signoff.power.unwrap() > 0.0);
    }

    #[test]
    fn domino_adder_flows_and_finds_dynamic_nodes() {
        let p = Process::strongarm_035();
        let g = manchester_domino_adder(4, &p);
        let r = run_flow(g.netlist, &p, &FlowConfig::default());
        // The chain nodes are precharged-dynamic at the component level;
        // their keepers promote the net *role* to State.
        assert!(
            r.recognition
                .classes
                .iter()
                .any(|c| !c.dynamic_outputs.is_empty()),
            "manchester chain has dynamic nodes"
        );
        assert!(
            r.recognition
                .state_elements
                .iter()
                .any(|se| se.kind == cbv_recognize::StateKind::Keeper),
            "chain keepers recognized"
        );
    }

    #[test]
    fn injected_beta_bug_breaks_signoff() {
        let p = Process::strongarm_035();
        let mut g = static_ripple_adder(4, &p);
        inject(&mut g.netlist, FaultKind::SubMinLength).unwrap();
        let r = run_flow(g.netlist, &p, &FlowConfig::default());
        assert!(!r.signoff.clean(), "sub-min device must fail signoff");
    }
}

//! The executable design flow of Fig 2.
//!
//! "The design flow used for ALPHA CPU designs is similar in appearance
//! to many other design flows. A significant difference to other design
//! flows is the amount of automatic synthesis of schematic and layout.
//! Since there is a reduced amount of automatic synthesis, there has been
//! much more emphasis on the verification of all implementation
//! representations."
//!
//! [`run_flow`] takes a transistor netlist (the hand-crafted artifact)
//! and runs every verification representation over it: recognition,
//! layout assistance, extraction, the §4.2 electrical battery, §4.3
//! timing with inferred constraints, and §3 power — producing per-stage
//! timings and the aggregated [`Signoff`].

use std::time::{Duration, Instant};

use cbv_cache::{
    env_fingerprint, fingerprint_design, CacheKey, CacheStats, UnitResult, VerifyCache,
};
use cbv_everify::{CheckKind, CheckScope, EverifyConfig, Finding, Severity, Subject};
use cbv_exec::Executor;
use cbv_netlist::FlatNetlist;
use cbv_obs::{TraceCtx, Tracer};
use cbv_power::ActivityModel;
use cbv_recognize::Recognition;
use cbv_tech::{Process, Seconds, Tolerance};
use cbv_timing::{ClockSchedule, DelayCalc, Pessimism};

use crate::signoff::Signoff;

/// Flow configuration knobs.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Clock schedule for timing verification; `None` derives a
    /// single-phase schedule at the process target frequency using the
    /// design's first recognized clock.
    pub schedule: Option<ClockSchedule>,
    /// Timing pessimism.
    pub pessimism: Pessimism,
    /// Parasitic tolerance bounds.
    pub tolerance: Tolerance,
    /// Data activity for power estimation.
    pub activity: f64,
    /// Run geometric DRC on the assisted layout. Off by default: the
    /// assist router is honest about not being DRC-complete on dense
    /// multi-stub channels (the designer finishes the layout, as in the
    /// paper's methodology); enable for hand layouts and small cells.
    pub check_drc: bool,
    /// Worker threads for the parallel stages (everify battery, timing
    /// graph build). `0` = auto: honour `CBV_THREADS`, else machine
    /// parallelism. Results are identical at every thread count.
    pub parallelism: usize,
    /// Observability: a [`Tracer`] receiving one span per stage (plus
    /// per-check / per-unit / per-chunk child spans from the parallel
    /// stages) and the flow's counters and gauges. Disabled by default;
    /// the flow's outputs are byte-identical either way.
    pub tracer: Tracer,
    /// Cooperative deadline for the incremental flow's per-unit work.
    /// Each dirty unit checks the clock before its battery / arc
    /// computation starts; past the deadline the unit aborts through the
    /// existing panic-isolation path and is reported as a `ToolError`
    /// finding (and left uncached), so a timed-out request can never
    /// produce a clean signoff. The serial stages are not interrupted —
    /// this is a verification-work bound, not a hard wall clock.
    pub deadline: Option<Instant>,
    /// Parent span id for the flow's `flow` root span, letting a caller
    /// (the verification daemon) nest an entire flow run under its own
    /// per-request span. `None` emits `flow` as a trace root, as before.
    pub trace_parent: Option<u64>,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            schedule: None,
            pessimism: Pessimism::signoff(),
            tolerance: Tolerance::conservative(),
            activity: 0.15,
            check_drc: false,
            parallelism: 0,
            tracer: Tracer::disabled(),
            deadline: None,
            trace_parent: None,
        }
    }
}

/// Runtime and artifact counts for one stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage name (matches Fig 2's boxes).
    pub stage: &'static str,
    /// Wall-clock runtime: what the designer waits for.
    pub runtime: Seconds,
    /// Aggregate compute time: worker busy time summed over threads plus
    /// the stage's serial remainder. Equals `runtime` for serial stages;
    /// the `cpu_time / runtime` ratio is the stage's effective
    /// parallelism.
    pub cpu_time: Seconds,
    /// Number of artifacts produced/processed (devices, shapes, arcs...).
    pub artifacts: usize,
    /// Cache hit/miss tally, present only for the cached stages of
    /// [`run_flow_incremental`].
    pub cache: Option<CacheStats>,
    /// Id of this stage's span in the flow's trace (`None` when the
    /// configured tracer is disabled).
    pub span_id: Option<u64>,
}

/// The full flow result.
#[derive(Debug)]
pub struct FlowReport {
    /// Per-stage breakdown in execution order.
    pub stages: Vec<StageReport>,
    /// The recognition result (kept for downstream tools).
    pub recognition: Recognition,
    /// The aggregated signoff.
    pub signoff: Signoff,
    /// The merged §4.2 electrical report — kept whole (not just the
    /// signoff roll-up) so downstream consumers like the mutation
    /// campaign can ask *which* check moved, not merely whether one did.
    pub everify: cbv_everify::Report,
    /// The §4.3 static timing report, for the same reason.
    pub sta: cbv_timing::StaReport,
    /// The final netlist (flow takes ownership).
    pub netlist: FlatNetlist,
    /// Cache keys of the units this run freshly verified and inserted
    /// into its cache (empty for the cold flow, which has no cache).
    /// The write-back half of a shared-tier discipline reads this to
    /// know which entries the run contributed.
    pub fresh: Vec<CacheKey>,
}

impl FlowReport {
    /// Total wall-clock runtime across stages (the stages run back to
    /// back, so this is also the flow's elapsed time).
    pub fn total_runtime(&self) -> Seconds {
        self.stages.iter().map(|s| s.runtime).sum()
    }

    /// Total compute across stages, counting every worker's busy time.
    /// With parallel stages this exceeds [`total_runtime`]; the gap is
    /// the work the extra threads absorbed.
    ///
    /// [`total_runtime`]: FlowReport::total_runtime
    pub fn total_cpu_time(&self) -> Seconds {
        self.stages.iter().map(|s| s.cpu_time).sum()
    }
}

/// Cooperative deadline check run at the top of each per-unit closure.
/// Panicking (rather than returning an error) rides the executor's
/// `catch_unwind` isolation: the unit surfaces as a `ToolError` finding
/// naming it, is marked poisoned, and is never cached — exactly the
/// path a genuine tool crash takes, so no new plumbing is needed and a
/// deadline can never silently drop findings.
pub(crate) fn check_deadline(deadline: Option<Instant>) {
    if let Some(d) = deadline {
        if Instant::now() >= d {
            panic!("flow deadline exceeded");
        }
    }
}

/// Times one stage under one span of the flow's trace. The closure
/// receives a [`TraceCtx`] positioned at the stage's span (so parallel
/// inner work can attach child spans) and reports `(value, artifacts,
/// cpu)`; `cpu` is the aggregate worker busy time for parallel stages,
/// or `None` for serial stages (cpu time == wall time).
pub(crate) fn timed<T>(
    stages: &mut Vec<StageReport>,
    flow: TraceCtx<'_>,
    stage: &'static str,
    f: impl FnOnce(TraceCtx<'_>) -> (T, usize, Option<Duration>),
) -> T {
    let span = flow.tracer.span_in(flow.parent, stage);
    let span_id = span.id();
    let ctx = TraceCtx {
        tracer: flow.tracer,
        parent: span_id,
    };
    let start = Instant::now();
    let (value, artifacts, cpu) = f(ctx);
    let runtime = Seconds::new(start.elapsed().as_secs_f64());
    drop(span);
    stages.push(StageReport {
        stage,
        runtime,
        cpu_time: cpu.map_or(runtime, |d| Seconds::new(d.as_secs_f64())),
        artifacts,
        cache: None,
        span_id,
    });
    value
}

/// Runs the complete verification flow over a transistor netlist.
///
/// With an enabled [`FlowConfig::tracer`] the run emits a `flow` root
/// span with one child span per stage ([`StageReport::span_id`]),
/// per-check spans inside `everify`, per-CCC-chunk spans inside
/// `timing`, the per-check finding counters, and busy-time gauges; the
/// tracer is flushed before returning. The signoff and report are
/// byte-identical whether tracing is enabled or not.
pub fn run_flow(mut netlist: FlatNetlist, process: &Process, config: &FlowConfig) -> FlowReport {
    let mut stages = Vec::new();
    let mut drc_violations = 0usize;
    let exec = Executor::threads(config.parallelism);
    let tracer = &config.tracer;
    let root = tracer.span_in(config.trace_parent, "flow");
    let flow = TraceCtx::under(tracer, &root);

    // 1. Circuit recognition (§2.3).
    let recognition = timed(&mut stages, flow, "recognize", |_| {
        let r = cbv_recognize::recognize(&mut netlist);
        let n = r.cccs.len();
        (r, n, None)
    });

    // 2. Layout assistance (§2.2).
    let layout = timed(&mut stages, flow, "layout", |_| {
        let l = cbv_layout::synthesize(&mut netlist, process);
        let n = l.shapes.len();
        (l, n, None)
    });

    // 2b. Optional geometric DRC over the assisted layout.
    if config.check_drc {
        let rules = cbv_layout::Rules::for_process(process);
        let violations = timed(&mut stages, flow, "drc", |_| {
            let v = cbv_layout::check_drc(&layout, &netlist, &rules, 10_000);
            let n = v.len();
            (v, n, None)
        });
        drc_violations = violations.len();
    }

    // 3. Extraction (§4.3 inputs).
    let extracted = timed(&mut stages, flow, "extract", |_| {
        let e = cbv_extract::extract(&layout, &netlist, process);
        let n = e.iter().count();
        (e, n, None)
    });

    // 4. Electrical verification battery (§4.2), checks fanned out
    // across the executor's workers — one `check:<kind>` span each, a
    // panicking check isolated into a ToolError finding.
    let mut everify_cfg = EverifyConfig::for_process(process);
    everify_cfg.tolerance = config.tolerance;
    let ereport = timed(&mut stages, flow, "everify", |ctx| {
        let checks = cbv_everify::battery(
            &netlist,
            &recognition,
            &extracted,
            Some(&layout),
            process,
            &everify_cfg,
        );
        let (r, busy) = cbv_everify::run_battery(checks, everify_cfg.filter_threshold, &exec, ctx);
        ctx.tracer.gauge("everify.busy_s", busy.as_secs_f64());
        let n = r.checked_count();
        (r, n, Some(busy))
    });

    // 5. Timing verification (§4.3).
    let schedule = config.schedule.clone().unwrap_or_else(|| {
        let name = recognition
            .clock_nets
            .first()
            .map(|&c| netlist.net_name(c).to_owned())
            .unwrap_or_else(|| "clk".to_owned());
        ClockSchedule::single(name, process.f_target().period())
    });
    let calc = DelayCalc::new(process, config.tolerance, config.pessimism);
    let (sta, n_constraints) = timed(&mut stages, flow, "timing", |ctx| {
        let (graph, graph_busy) = cbv_timing::graph::build_graph_traced(
            &netlist,
            &recognition,
            &extracted,
            &calc,
            &exec,
            ctx,
        );
        let serial_start = Instant::now();
        let constraints =
            cbv_timing::infer_constraints(&netlist, &recognition, process, &config.pessimism);
        let skews: Vec<_> = recognition
            .clock_nets
            .iter()
            .filter_map(|&c| {
                cbv_timing::clock_skew_bounds(
                    &extracted,
                    c,
                    cbv_tech::Ohms::new(200.0),
                    &config.tolerance,
                )
            })
            .collect();
        let r = {
            let _sta_span = ctx.span("sta");
            cbv_timing::analyze(
                &netlist,
                &graph,
                &constraints,
                &schedule,
                &config.pessimism,
                &skews,
            )
        };
        ctx.tracer
            .add("timing.constraints", constraints.len() as u64);
        ctx.tracer
            .add("timing.violations", r.violations.len() as u64);
        ctx.tracer
            .gauge("timing.graph_busy_s", graph_busy.as_secs_f64());
        let n = constraints.len();
        // Stage compute = parallel graph build (all workers) + the
        // serial constraint/skew/propagation remainder.
        let cpu = graph_busy + serial_start.elapsed();
        ((r, n), graph.arcs.len(), Some(cpu))
    });

    // 6. Power estimation (§3).
    let power = timed(&mut stages, flow, "power", |_| {
        let p = cbv_power::dynamic_power(
            &netlist,
            &recognition,
            &extracted,
            process,
            process.f_target(),
            &ActivityModel::uniform(config.activity),
        );
        (p, 1, None)
    });

    let mut signoff = Signoff::default();
    if config.check_drc {
        signoff.add_drc(drc_violations);
    }
    signoff.add_everify(&ereport);
    signoff.add_timing(&sta, n_constraints);
    signoff.set_power(power.total());

    drop(root);
    tracer.flush();

    FlowReport {
        stages,
        recognition,
        signoff,
        everify: ereport,
        sta,
        netlist,
        fresh: Vec::new(),
    }
}

/// Fingerprint lookup plus the conservative one-step fanout closure: a
/// unit is dirty when its fingerprint misses `cache`, or it is a clean
/// CCC whose fanin boundary crosses a fingerprint-dirty CCC. Shared by
/// [`run_flow_incremental`] and the farm's scatter-gather flow so both
/// compute the exact same dirty set (a lookup also refreshes recency on
/// a bounded cache, identically in both flows).
pub(crate) fn dirty_closure(
    cache: &VerifyCache,
    env: u64,
    fps: &cbv_cache::DesignFingerprints,
    recognition: &Recognition,
) -> Vec<bool> {
    let n_cccs = recognition.cccs.len();
    let mut dirty: Vec<bool> = fps
        .units
        .iter()
        .map(|&u| cache.get(&CacheKey::new(env, u)).is_none())
        .collect();
    let fp_dirty: Vec<usize> = (0..n_cccs).filter(|&i| dirty[i]).collect();
    for (j, d) in dirty.iter_mut().enumerate().take(n_cccs) {
        if *d {
            continue;
        }
        let inputs = &recognition.cccs[j].inputs;
        if fp_dirty.iter().any(|&i| {
            recognition.cccs[i]
                .outputs
                .iter()
                .any(|o| inputs.binary_search(o).is_ok())
        }) {
            *d = true;
        }
    }
    dirty
}

/// Runs the verification flow incrementally against a [`VerifyCache`].
///
/// The ECO loop of §2.3: recognition, layout and extraction always run
/// (they are the inputs the fingerprints are computed *from*), then each
/// verification unit — one per CCC plus the whole-design residue — is
/// looked up by its content fingerprint. Units that hit replay their
/// cached §4.2 findings and §4.3 timing arcs; only *dirty* units
/// (fingerprint miss, or a CCC whose fanin boundary crosses a
/// fingerprint-dirty CCC — a conservative one-step closure) are
/// re-verified on the executor. Cached and fresh results are merged in
/// fixed unit order, so the resulting [`Signoff`] is byte-identical to
/// a cold [`run_flow`] — the soundness contract `tests/incremental.rs`
/// enforces.
///
/// On a cold cache every unit misses and the flow degenerates to
/// [`run_flow`] plus fingerprinting overhead; the cache is then primed
/// for the next call. Stage reports for `everify` and `timing` carry
/// [`CacheStats`] so the savings are visible.
pub fn run_flow_incremental(
    mut netlist: FlatNetlist,
    process: &Process,
    config: &FlowConfig,
    cache: &mut VerifyCache,
) -> FlowReport {
    let mut stages = Vec::new();
    let mut drc_violations = 0usize;
    let exec = Executor::threads(config.parallelism);
    let tracer = &config.tracer;
    let root = tracer.span_in(config.trace_parent, "flow");
    let flow = TraceCtx::under(tracer, &root);

    // 1–3. Recognition, layout, extraction: identical to the cold flow.
    let recognition = timed(&mut stages, flow, "recognize", |_| {
        let r = cbv_recognize::recognize(&mut netlist);
        let n = r.cccs.len();
        (r, n, None)
    });
    let layout = timed(&mut stages, flow, "layout", |_| {
        let l = cbv_layout::synthesize(&mut netlist, process);
        let n = l.shapes.len();
        (l, n, None)
    });
    if config.check_drc {
        let rules = cbv_layout::Rules::for_process(process);
        let violations = timed(&mut stages, flow, "drc", |_| {
            let v = cbv_layout::check_drc(&layout, &netlist, &rules, 10_000);
            let n = v.len();
            (v, n, None)
        });
        drc_violations = violations.len();
    }
    let extracted = timed(&mut stages, flow, "extract", |_| {
        let e = cbv_extract::extract(&layout, &netlist, process);
        let n = e.iter().count();
        (e, n, None)
    });

    let mut everify_cfg = EverifyConfig::for_process(process);
    everify_cfg.tolerance = config.tolerance;

    // 4. Fingerprint every unit and compute the dirty closure.
    let n_cccs = recognition.cccs.len();
    let (env, fps, dirty) = timed(&mut stages, flow, "fingerprint", |_| {
        let env = env_fingerprint(process, &config.tolerance, &config.pessimism, &everify_cfg);
        let fps = fingerprint_design(&netlist, &recognition, &extracted);
        let dirty = dirty_closure(cache, env, &fps, &recognition);
        let n_units = fps.units.len();
        ((env, fps, dirty), n_units, None)
    });

    // 5. Electrical battery (§4.2): re-verify dirty units in parallel,
    // replay the rest from cache. `per_unit` accumulates every unit's
    // payload in fixed unit order; timing arcs are filled in below. A
    // unit whose battery panics is isolated into a ToolError finding
    // naming it and marked *poisoned* — reported, but never cached.
    let scopes = CheckScope::partition(&netlist, &recognition);
    debug_assert_eq!(scopes.len(), fps.units.len());
    let dirty_units: Vec<usize> = (0..scopes.len()).filter(|&i| dirty[i]).collect();
    let everify_stats = CacheStats {
        hits: scopes.len() - dirty_units.len(),
        misses: dirty_units.len(),
        ..CacheStats::default()
    };
    let mut poisoned = vec![false; scopes.len()];
    let (ereport, mut per_unit) = timed(&mut stages, flow, "everify", |ctx| {
        let (fresh, busy) = exec.try_map_traced(
            ctx,
            dirty_units.clone(),
            |i| {
                check_deadline(config.deadline);
                cbv_everify::run_scoped(
                    &netlist,
                    &recognition,
                    &extracted,
                    Some(&layout),
                    process,
                    &everify_cfg,
                    &scopes[i],
                )
            },
            |k| format!("unit:{}", dirty_units[k]),
        );
        ctx.tracer.gauge("everify.busy_s", busy.as_secs_f64());
        let mut fresh = fresh.into_iter();
        let per_unit: Vec<UnitResult> = (0..scopes.len())
            .map(|i| {
                if dirty[i] {
                    match fresh.next().expect("one result per dirty unit") {
                        Ok(r) => UnitResult {
                            findings: r.raw_findings().to_vec(),
                            checked: r.checked_count(),
                            filtered: r.filtered_count(),
                            arcs: Vec::new(),
                        },
                        Err(p) => {
                            poisoned[i] = true;
                            UnitResult {
                                findings: vec![Finding {
                                    check: CheckKind::Tool,
                                    subject: Subject::Unit(i as u32),
                                    severity: Severity::ToolError,
                                    stress: f64::INFINITY,
                                    message: format!("everify unit {i} panicked: {}", p.message),
                                }],
                                checked: 0,
                                filtered: 0,
                                arcs: Vec::new(),
                            }
                        }
                    }
                } else {
                    cache
                        .get(&CacheKey::new(env, fps.units[i]))
                        .expect("clean unit has a cache entry")
                        .clone()
                }
            })
            .collect();
        let merged = cbv_everify::Report::from_parts(
            everify_cfg.filter_threshold,
            per_unit.iter().flat_map(|u| u.findings.clone()).collect(),
            per_unit.iter().map(|u| u.checked).sum(),
            per_unit.iter().map(|u| u.filtered).sum(),
        );
        let n = merged.checked_count();
        ((merged, per_unit), n, Some(busy))
    });
    stages.last_mut().expect("everify stage").cache = Some(everify_stats);
    tracer.add("cache.everify.hits", everify_stats.hits as u64);
    tracer.add("cache.everify.misses", everify_stats.misses as u64);
    tracer.add("fingerprint.dirty_units", dirty_units.len() as u64);

    // 6. Timing (§4.3): recompute arcs for dirty CCCs only, splice the
    // cached arcs back in CCC index order — reproducing the cold graph's
    // exact arc sequence — then run constraints, skew and STA as usual.
    let schedule = config.schedule.clone().unwrap_or_else(|| {
        let name = recognition
            .clock_nets
            .first()
            .map(|&c| netlist.net_name(c).to_owned())
            .unwrap_or_else(|| "clk".to_owned());
        ClockSchedule::single(name, process.f_target().period())
    });
    let calc = DelayCalc::new(process, config.tolerance, config.pessimism);
    let dirty_cccs: Vec<usize> = (0..n_cccs).filter(|&i| dirty[i]).collect();
    let timing_stats = CacheStats {
        hits: n_cccs - dirty_cccs.len(),
        misses: dirty_cccs.len(),
        ..CacheStats::default()
    };
    // Arc computations that panicked: the CCC's arcs are dropped (its
    // timing is unverified), the unit is poisoned, and a ToolError
    // finding is merged into the everify report so signoff cannot be
    // clean.
    let mut timing_panics: Vec<Finding> = Vec::new();
    let (sta, n_constraints) = timed(&mut stages, flow, "timing", |ctx| {
        let (fresh_arcs, graph_busy) = exec.try_map_traced(
            ctx,
            dirty_cccs.clone(),
            |i| {
                check_deadline(config.deadline);
                cbv_timing::graph::ccc_arcs(&netlist, &recognition, &extracted, &calc, i)
            },
            |k| format!("arcs:{}", dirty_cccs[k]),
        );
        let serial_start = Instant::now();
        let mut fresh_arcs = fresh_arcs.into_iter();
        for (i, unit) in per_unit.iter_mut().take(n_cccs).enumerate() {
            if dirty[i] {
                match fresh_arcs.next().expect("one arc set per dirty CCC") {
                    Ok(arcs) => unit.arcs = arcs,
                    Err(p) => {
                        poisoned[i] = true;
                        unit.arcs = Vec::new();
                        timing_panics.push(Finding {
                            check: CheckKind::Tool,
                            subject: Subject::Unit(i as u32),
                            severity: Severity::ToolError,
                            stress: f64::INFINITY,
                            message: format!("timing arcs for CCC {i} panicked: {}", p.message),
                        });
                    }
                }
            }
        }
        let arcs: Vec<cbv_timing::Arc> = per_unit
            .iter()
            .take(n_cccs)
            .flat_map(|u| u.arcs.clone())
            .collect();
        let n_arcs = arcs.len();
        let graph = cbv_timing::graph_from_arcs(&netlist, &recognition, arcs);
        let constraints =
            cbv_timing::infer_constraints(&netlist, &recognition, process, &config.pessimism);
        let skews: Vec<_> = recognition
            .clock_nets
            .iter()
            .filter_map(|&c| {
                cbv_timing::clock_skew_bounds(
                    &extracted,
                    c,
                    cbv_tech::Ohms::new(200.0),
                    &config.tolerance,
                )
            })
            .collect();
        let r = {
            let _sta_span = ctx.span("sta");
            cbv_timing::analyze(
                &netlist,
                &graph,
                &constraints,
                &schedule,
                &config.pessimism,
                &skews,
            )
        };
        ctx.tracer.add("timing.arcs", n_arcs as u64);
        ctx.tracer
            .add("timing.constraints", constraints.len() as u64);
        ctx.tracer
            .add("timing.violations", r.violations.len() as u64);
        ctx.tracer
            .gauge("timing.graph_busy_s", graph_busy.as_secs_f64());
        let n = constraints.len();
        let cpu = graph_busy + serial_start.elapsed();
        ((r, n), n_arcs, Some(cpu))
    });
    stages.last_mut().expect("timing stage").cache = Some(timing_stats);
    tracer.add("cache.timing.hits", timing_stats.hits as u64);
    tracer.add("cache.timing.misses", timing_stats.misses as u64);

    // Prime the cache with the re-verified units, now that both their
    // findings and arcs are known. Poisoned units (battery or arc panic)
    // are *not* cached: their stored payload would be the failure
    // artifact, and a later run must re-attempt them. On a bounded
    // cache these inserts may evict; the delta lands in the everify
    // stage's stats so a daemon's flow summaries show cache pressure.
    let evictions_before = cache.evictions();
    let mut fresh_keys = Vec::new();
    for i in 0..per_unit.len() {
        if dirty[i] && !poisoned[i] {
            let key = CacheKey::new(env, fps.units[i]);
            cache.insert(key, std::mem::take(&mut per_unit[i]));
            fresh_keys.push(key);
        }
    }
    let evicted = cache.evictions() - evictions_before;
    if let Some(stats) = stages
        .iter_mut()
        .find(|s| s.stage == "everify")
        .and_then(|s| s.cache.as_mut())
    {
        stats.evictions = evicted;
    }
    tracer.add("cache.evictions", evicted as u64);

    // 7. Power estimation (§3) — cheap, always recomputed.
    let power = timed(&mut stages, flow, "power", |_| {
        let p = cbv_power::dynamic_power(
            &netlist,
            &recognition,
            &extracted,
            process,
            process.f_target(),
            &ActivityModel::uniform(config.activity),
        );
        (p, 1, None)
    });

    let mut ereport = ereport;
    if !timing_panics.is_empty() {
        ereport.merge(cbv_everify::Report::from_parts(
            everify_cfg.filter_threshold,
            timing_panics,
            0,
            0,
        ));
    }
    cbv_everify::finding_counters(&ereport, flow);

    let mut signoff = Signoff::default();
    if config.check_drc {
        signoff.add_drc(drc_violations);
    }
    signoff.add_everify(&ereport);
    signoff.add_timing(&sta, n_constraints);
    signoff.set_power(power.total());

    drop(root);
    tracer.flush();

    FlowReport {
        stages,
        recognition,
        signoff,
        everify: ereport,
        sta,
        netlist,
        fresh: fresh_keys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_gen::adders::{manchester_domino_adder, static_ripple_adder};
    use cbv_gen::{inject, FaultKind};

    #[test]
    fn clean_static_adder_signs_off() {
        let p = Process::strongarm_035();
        let g = static_ripple_adder(4, &p);
        let r = run_flow(g.netlist, &p, &FlowConfig::default());
        assert!(r.signoff.clean(), "{}", r.signoff);
        assert_eq!(r.stages.len(), 6);
        assert!(r.total_runtime().seconds() > 0.0);
        assert!(
            r.total_cpu_time().seconds() >= r.total_runtime().seconds() * 0.5,
            "cpu time tracks wall time within measurement noise"
        );
        assert!(r.signoff.power.unwrap() > 0.0);
    }

    #[test]
    fn domino_adder_flows_and_finds_dynamic_nodes() {
        let p = Process::strongarm_035();
        let g = manchester_domino_adder(4, &p);
        let r = run_flow(g.netlist, &p, &FlowConfig::default());
        // The chain nodes are precharged-dynamic at the component level;
        // their keepers promote the net *role* to State.
        assert!(
            r.recognition
                .classes
                .iter()
                .any(|c| !c.dynamic_outputs.is_empty()),
            "manchester chain has dynamic nodes"
        );
        assert!(
            r.recognition
                .state_elements
                .iter()
                .any(|se| se.kind == cbv_recognize::StateKind::Keeper),
            "chain keepers recognized"
        );
    }

    #[test]
    fn incremental_matches_cold_and_hits_warm() {
        let p = Process::strongarm_035();
        let cfg = FlowConfig::default();
        let cold = run_flow(static_ripple_adder(4, &p).netlist, &p, &cfg);
        let cold_json = serde_json::to_string(&cold.signoff).unwrap();

        let mut cache = VerifyCache::new();
        let first = run_flow_incremental(static_ripple_adder(4, &p).netlist, &p, &cfg, &mut cache);
        assert_eq!(serde_json::to_string(&first.signoff).unwrap(), cold_json);
        let estats = first.stages.iter().find(|s| s.stage == "everify").unwrap();
        assert_eq!(estats.cache.unwrap().hits, 0, "cold cache: all misses");
        assert!(!cache.is_empty());

        let second = run_flow_incremental(static_ripple_adder(4, &p).netlist, &p, &cfg, &mut cache);
        assert_eq!(serde_json::to_string(&second.signoff).unwrap(), cold_json);
        for stage in &second.stages {
            if let Some(stats) = stage.cache {
                assert_eq!(
                    stats.misses, 0,
                    "{}: warm rerun must be all hits",
                    stage.stage
                );
                assert!(stats.hits > 0);
            }
        }
        assert_eq!(
            second.stages.len(),
            7,
            "incremental adds a fingerprint stage"
        );
    }

    #[test]
    fn expired_deadline_poisons_every_dirty_unit() {
        let p = Process::strongarm_035();
        let cfg = FlowConfig {
            // Already expired when the first unit closure runs: every
            // dirty unit deterministically takes the timeout path.
            deadline: Some(Instant::now()),
            ..FlowConfig::default()
        };
        let mut cache = VerifyCache::new();
        let r = run_flow_incremental(static_ripple_adder(4, &p).netlist, &p, &cfg, &mut cache);
        assert!(!r.signoff.clean(), "timed-out flow must not sign off");
        let tool_errors = r
            .everify
            .raw_findings()
            .iter()
            .filter(|f| f.severity == Severity::ToolError)
            .count();
        // Battery pass: every unit (CCCs + residue). Arc pass: CCCs only.
        let n_cccs = r.recognition.cccs.len();
        assert_eq!(
            tool_errors,
            2 * n_cccs + 1,
            "every unit times out in the battery, every CCC in the arc pass"
        );
        assert!(cache.is_empty(), "poisoned units are never cached");

        // The same design without a deadline signs off and fills the
        // cache: the timeout path left no residue behind.
        let clean = run_flow_incremental(
            static_ripple_adder(4, &p).netlist,
            &p,
            &FlowConfig::default(),
            &mut cache,
        );
        assert!(clean.signoff.clean(), "{}", clean.signoff);
        assert!(!cache.is_empty());
    }

    #[test]
    fn injected_beta_bug_breaks_signoff() {
        let p = Process::strongarm_035();
        let mut g = static_ripple_adder(4, &p);
        inject(&mut g.netlist, FaultKind::SubMinLength).unwrap();
        let r = run_flow(g.netlist, &p, &FlowConfig::default());
        assert!(!r.signoff.clean(), "sub-min device must fail signoff");
    }
}

//! Scatter-gather flow stage: the verification farm's unit backend.
//!
//! The paper's methodology leaned on a ~100-CPU simulation farm (§1:
//! 2×10⁹ cycles/day); this module is the seam that lets our flow shard
//! the same way. [`run_flow_with`] is [`run_flow_incremental`] with the
//! per-unit work — the §4.2 scoped battery *and* the unit's §4.3 timing
//! arcs, fused — routed through a [`UnitBackend`]. [`LocalBackend`]
//! fans the units out on the in-process executor; the farm coordinator
//! in `cbv-serve` implements the same trait over worker processes.
//!
//! # Determinism argument
//!
//! A backend may return unit outcomes in any order and compute them
//! anywhere; [`run_flow_with`] re-indexes them by unit and merges in
//! fixed unit order, splices timing arcs in CCC index order, and runs
//! constraints/skew/STA/power serially — so the [`Signoff`] it
//! serializes is byte-identical to [`run_flow`] and
//! [`run_flow_incremental`] on the same netlist. The one observable
//! difference is finding *order* inside the everify report: a CCC whose
//! arc computation panics contributes its `ToolError` finding inline
//! with the unit (here) rather than appended after the power stage (in
//! [`run_flow_incremental`]). Signoff carries only per-category counts,
//! the worst setup slack, races and power — never finding lists — so
//! the bytes cannot differ; `tests/farm.rs` pins this.
//!
//! [`run_flow`]: crate::flow::run_flow
//! [`run_flow_incremental`]: crate::flow::run_flow_incremental
//! [`Signoff`]: crate::signoff::Signoff

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cbv_cache::{
    env_fingerprint, fingerprint_design, raw_netlist_digest, CacheKey, CacheStats,
    DesignFingerprints, UnitFingerprint, UnitResult, VerifyCache,
};
use cbv_everify::{CheckKind, CheckScope, EverifyConfig, Finding, Severity, Subject};
use cbv_exec::{run_isolated, Executor};
use cbv_extract::Extracted;
use cbv_layout::Layout;
use cbv_netlist::FlatNetlist;
use cbv_obs::TraceCtx;
use cbv_recognize::Recognition;
use cbv_tech::{Process, Tolerance};
use cbv_timing::{ClockSchedule, DelayCalc, Pessimism};

use crate::flow::{check_deadline, dirty_closure, timed, FlowConfig, FlowReport, StageReport};
use crate::signoff::Signoff;

/// Everything a worker needs to verify any unit of one design revision:
/// the recognized/laid-out/extracted design plus its unit partition and
/// fingerprints. Built once per revision (the expensive serial prep),
/// then units are verified independently — locally, on another thread,
/// or in another process that rebuilt the identical netlist.
pub struct PreparedDesign {
    netlist: FlatNetlist,
    recognition: Recognition,
    layout: Layout,
    extracted: Extracted,
    scopes: Vec<CheckScope>,
    fps: DesignFingerprints,
    env: u64,
    process: Process,
    everify_cfg: EverifyConfig,
    tolerance: Tolerance,
    pessimism: Pessimism,
}

/// One unit's verification outcome: the cacheable payload plus whether
/// either half (battery or arcs) panicked. Poisoned results are
/// reported but never cached — the failure artifact must not shadow a
/// later successful re-verification.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitOutcome {
    /// Unit index in the design's fixed unit order.
    pub unit: usize,
    /// Findings, tallies and (for CCC units) timing arcs.
    pub result: UnitResult,
    /// True when the battery or the arc computation panicked.
    pub poisoned: bool,
}

impl PreparedDesign {
    /// Runs the serial prep stages (recognition, layout assistance,
    /// extraction, partition, fingerprints) over a netlist. This is the
    /// worker-side entry: no tracing, no stage reports — the
    /// coordinator's [`run_flow_with`] times these stages itself and
    /// assembles via [`PreparedDesign::from_parts`].
    pub fn build(mut netlist: FlatNetlist, process: &Process, config: &FlowConfig) -> Self {
        let recognition = cbv_recognize::recognize(&mut netlist);
        let layout = cbv_layout::synthesize(&mut netlist, process);
        let extracted = cbv_extract::extract(&layout, &netlist, process);
        Self::from_parts(netlist, recognition, layout, extracted, process, config)
    }

    /// Assembles a prepared design from already-computed prep artifacts,
    /// deriving the unit partition, fingerprints and check config the
    /// same way [`run_flow_incremental`] does.
    ///
    /// [`run_flow_incremental`]: crate::flow::run_flow_incremental
    pub fn from_parts(
        netlist: FlatNetlist,
        recognition: Recognition,
        layout: Layout,
        extracted: Extracted,
        process: &Process,
        config: &FlowConfig,
    ) -> Self {
        let mut everify_cfg = EverifyConfig::for_process(process);
        everify_cfg.tolerance = config.tolerance;
        let env = env_fingerprint(process, &config.tolerance, &config.pessimism, &everify_cfg);
        let fps = fingerprint_design(&netlist, &recognition, &extracted);
        let scopes = CheckScope::partition(&netlist, &recognition);
        debug_assert_eq!(scopes.len(), fps.units.len());
        PreparedDesign {
            netlist,
            recognition,
            layout,
            extracted,
            scopes,
            fps,
            env,
            process: process.clone(),
            everify_cfg,
            tolerance: config.tolerance,
            pessimism: config.pessimism,
        }
    }

    /// Environment fingerprint (process/corner/config/tool version).
    pub fn env(&self) -> u64 {
        self.env
    }

    /// Per-unit fingerprints in fixed unit order. A coordinator and a
    /// worker that prepared the same design revision must agree on
    /// these exactly; a mismatch means the builds diverged and the
    /// worker's payloads cannot be trusted.
    pub fn unit_fingerprints(&self) -> &[UnitFingerprint] {
        &self.fps.units
    }

    /// Number of verification units (CCCs plus the residue unit).
    pub fn n_units(&self) -> usize {
        self.scopes.len()
    }

    /// Number of CCC units (units carrying timing arcs).
    pub fn n_cccs(&self) -> usize {
        self.recognition.cccs.len()
    }

    /// The cache key of one unit under this design's environment.
    pub fn unit_key(&self, unit: usize) -> CacheKey {
        CacheKey::new(self.env, self.fps.units[unit])
    }

    /// Verifies one unit: the §4.2 scoped battery, then (for CCC units)
    /// the unit's §4.3 timing arcs. Both halves run under panic
    /// isolation and a cooperative deadline, and both are always
    /// attempted — matching [`run_flow_incremental`]'s two passes, so an
    /// expired deadline yields the same `ToolError` census (two findings
    /// per CCC unit, one for the residue) with identical messages.
    ///
    /// [`run_flow_incremental`]: crate::flow::run_flow_incremental
    pub fn verify_unit(&self, i: usize, deadline: Option<Instant>) -> UnitOutcome {
        let mut poisoned = false;
        let mut result = match run_isolated(i, || {
            check_deadline(deadline);
            cbv_everify::run_scoped(
                &self.netlist,
                &self.recognition,
                &self.extracted,
                Some(&self.layout),
                &self.process,
                &self.everify_cfg,
                &self.scopes[i],
            )
        }) {
            Ok(r) => UnitResult {
                findings: r.raw_findings().to_vec(),
                checked: r.checked_count(),
                filtered: r.filtered_count(),
                arcs: Vec::new(),
            },
            Err(p) => {
                poisoned = true;
                UnitResult {
                    findings: vec![Finding {
                        check: CheckKind::Tool,
                        subject: Subject::Unit(i as u32),
                        severity: Severity::ToolError,
                        stress: f64::INFINITY,
                        message: format!("everify unit {i} panicked: {}", p.message),
                    }],
                    checked: 0,
                    filtered: 0,
                    arcs: Vec::new(),
                }
            }
        };
        if i < self.n_cccs() {
            let calc = DelayCalc::new(&self.process, self.tolerance, self.pessimism);
            match run_isolated(i, || {
                check_deadline(deadline);
                cbv_timing::graph::ccc_arcs(
                    &self.netlist,
                    &self.recognition,
                    &self.extracted,
                    &calc,
                    i,
                )
            }) {
                Ok(arcs) => result.arcs = arcs,
                Err(p) => {
                    poisoned = true;
                    result.arcs = Vec::new();
                    result.findings.push(Finding {
                        check: CheckKind::Tool,
                        subject: Subject::Unit(i as u32),
                        severity: Severity::ToolError,
                        stress: f64::INFINITY,
                        message: format!("timing arcs for CCC {i} panicked: {}", p.message),
                    });
                }
            }
        }
        UnitOutcome {
            unit: i,
            result,
            poisoned,
        }
    }
}

/// A bounded, single-flight cache of shared [`PreparedDesign`]s keyed
/// by (environment fingerprint, raw netlist digest) — the coordinator
/// counterpart of the unit tier: when W streams verify the same
/// revision, the first builds the serial prep and every other stream
/// reuses the artifact instead of rebuilding it. Entries are evicted
/// FIFO past the capacity; the walk-shaped workloads this serves only
/// ever need the newest revision or two.
pub struct PrepCache {
    state: Mutex<PrepState>,
    cv: Condvar,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct PrepState {
    /// Published preps, oldest first.
    entries: Vec<((u64, u64), Arc<PreparedDesign>)>,
    /// Keys some caller is building right now.
    building: HashSet<(u64, u64)>,
}

/// What [`PrepCache::begin`] resolved a key to.
pub enum PrepClaim<'a> {
    /// Another caller already built and published this revision's prep.
    Hit(Arc<PreparedDesign>),
    /// The caller holds the build slot: build the prep, then
    /// [`publish`](PrepBuild::publish). Dropping the slot without
    /// publishing — including by panic — releases it so a waiter can
    /// build instead; claims never wedge the cache.
    Build(PrepBuild<'a>),
}

/// An exclusive build slot for one prep key (see [`PrepClaim::Build`]).
pub struct PrepBuild<'a> {
    cache: &'a PrepCache,
    key: (u64, u64),
}

impl PrepBuild<'_> {
    /// Publishes the built prep under the claimed key and wakes every
    /// stream waiting on it.
    pub fn publish(self, prep: Arc<PreparedDesign>) {
        let mut st = self.cache.state.lock().expect("prep cache lock");
        st.entries.push((self.key, prep));
        if st.entries.len() > self.cache.cap {
            st.entries.remove(0);
        }
        // Dropping `self` (below) clears the building flag and notifies.
    }
}

impl Drop for PrepBuild<'_> {
    fn drop(&mut self) {
        let mut st = self.cache.state.lock().expect("prep cache lock");
        st.building.remove(&self.key);
        drop(st);
        self.cache.cv.notify_all();
    }
}

impl PrepCache {
    /// A cache holding at most `cap` published preps.
    pub fn new(cap: usize) -> PrepCache {
        PrepCache {
            state: Mutex::new(PrepState {
                entries: Vec::new(),
                building: HashSet::new(),
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Resolves `key` to a published prep or an exclusive build slot,
    /// first waiting out any in-flight build of the same key.
    pub fn begin(&self, key: (u64, u64)) -> PrepClaim<'_> {
        let mut st = self.state.lock().expect("prep cache lock");
        loop {
            if let Some((_, p)) = st.entries.iter().rev().find(|(k, _)| *k == key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return PrepClaim::Hit(Arc::clone(p));
            }
            if st.building.insert(key) {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return PrepClaim::Build(PrepBuild { cache: self, key });
            }
            st = self.cv.wait(st).expect("prep cache lock");
        }
    }

    /// Preps answered from the cache (including after waiting out a
    /// concurrent build).
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Preps that had to be built by the caller.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Where dirty units get verified. The contract: return exactly one
/// outcome per requested unit (any order), each computed by
/// [`PreparedDesign::verify_unit`] semantics on an identically prepared
/// design, plus the aggregate busy time for the stage's cpu tally.
/// Implementations that dispatch remotely must fall back to local
/// verification for units no worker answered — the flow panics on a
/// missing outcome rather than signing off with a hole.
pub trait UnitBackend {
    /// Verifies `units` (indices into the design's fixed unit order).
    fn verify_units(
        &self,
        prep: &PreparedDesign,
        exec: &Executor,
        ctx: TraceCtx<'_>,
        units: &[usize],
        deadline: Option<Instant>,
    ) -> (Vec<UnitOutcome>, Duration);
}

/// The in-process backend: units fan out across the executor's worker
/// threads, one `unit:<i>` span each — the farm flow degenerates to the
/// incremental flow's parallelism.
pub struct LocalBackend;

impl UnitBackend for LocalBackend {
    fn verify_units(
        &self,
        prep: &PreparedDesign,
        exec: &Executor,
        ctx: TraceCtx<'_>,
        units: &[usize],
        deadline: Option<Instant>,
    ) -> (Vec<UnitOutcome>, Duration) {
        let units = units.to_vec();
        let labels = units.clone();
        // verify_unit already isolates panics into poisoned outcomes,
        // so the plain (re-panicking) map is safe here.
        exec.map_traced(
            ctx,
            units,
            |i| prep.verify_unit(i, deadline),
            |k| format!("unit:{}", labels[k]),
        )
    }
}

/// Runs the incremental verification flow with the per-unit work routed
/// through `backend`. Stage structure, cache discipline, trace spans and
/// counters mirror [`run_flow_incremental`]; the differences are that
/// battery findings and timing arcs are computed *fused* per unit by the
/// backend inside the `everify` stage, and the `timing` stage is the
/// serial remainder (splice, graph, constraints, skew, STA). Signoff is
/// byte-identical — see the module docs for the argument.
///
/// [`run_flow_incremental`]: crate::flow::run_flow_incremental
pub fn run_flow_with(
    netlist: FlatNetlist,
    process: &Process,
    config: &FlowConfig,
    cache: &mut VerifyCache,
    backend: &dyn UnitBackend,
) -> FlowReport {
    run_flow_shared(netlist, process, config, cache, backend, None)
}

/// [`run_flow_with`] with an optional shared [`PrepCache`]: when
/// another stream of the same service already built this exact revision
/// under this environment, the whole serial prep (recognition, layout,
/// extraction, partition, fingerprints) is answered from the cache and
/// only DRC — a per-run report, not part of the prep artifact —
/// re-runs. A cached prep was built from an identically-constructed
/// netlist under an identical environment, so every downstream stage
/// reads the same values and the signoff bytes cannot differ.
pub fn run_flow_shared(
    mut netlist: FlatNetlist,
    process: &Process,
    config: &FlowConfig,
    cache: &mut VerifyCache,
    backend: &dyn UnitBackend,
    preps: Option<&PrepCache>,
) -> FlowReport {
    let mut stages: Vec<StageReport> = Vec::new();
    let mut drc_violations = 0usize;
    let exec = Executor::threads(config.parallelism);
    let tracer = &config.tracer;
    let root = tracer.span_in(config.trace_parent, "flow");
    let flow = TraceCtx::under(tracer, &root);

    // Content-address the incoming revision before any prep runs; the
    // claim either hands back another stream's prep or an exclusive
    // build slot (single-flight — concurrent streams of the same
    // revision build once, not W times).
    let claim = preps.map(|pc| {
        let mut everify_cfg = EverifyConfig::for_process(process);
        everify_cfg.tolerance = config.tolerance;
        let env = env_fingerprint(process, &config.tolerance, &config.pessimism, &everify_cfg);
        pc.begin((env, raw_netlist_digest(&netlist)))
    });
    let prep: Arc<PreparedDesign> = match claim {
        Some(PrepClaim::Hit(p)) => {
            // 1–3 are cache hits: emit the same stage rows (with the
            // artifact's counts) so the report shape is stable, and
            // re-run DRC, which reports per-run rather than priming
            // the prep.
            timed(&mut stages, flow, "recognize", |_| {
                ((), p.recognition.cccs.len(), None)
            });
            timed(&mut stages, flow, "layout", |_| {
                ((), p.layout.shapes.len(), None)
            });
            if config.check_drc {
                let rules = cbv_layout::Rules::for_process(process);
                let violations = timed(&mut stages, flow, "drc", |_| {
                    let v = cbv_layout::check_drc(&p.layout, &p.netlist, &rules, 10_000);
                    let n = v.len();
                    (v, n, None)
                });
                drc_violations = violations.len();
            }
            timed(&mut stages, flow, "extract", |_| {
                ((), p.extracted.iter().count(), None)
            });
            p
        }
        claim => {
            // 1–3. Serial prep, identical to the incremental flow.
            let recognition = timed(&mut stages, flow, "recognize", |_| {
                let r = cbv_recognize::recognize(&mut netlist);
                let n = r.cccs.len();
                (r, n, None)
            });
            let layout = timed(&mut stages, flow, "layout", |_| {
                let l = cbv_layout::synthesize(&mut netlist, process);
                let n = l.shapes.len();
                (l, n, None)
            });
            if config.check_drc {
                let rules = cbv_layout::Rules::for_process(process);
                let violations = timed(&mut stages, flow, "drc", |_| {
                    let v = cbv_layout::check_drc(&layout, &netlist, &rules, 10_000);
                    let n = v.len();
                    (v, n, None)
                });
                drc_violations = violations.len();
            }
            let extracted = timed(&mut stages, flow, "extract", |_| {
                let e = cbv_extract::extract(&layout, &netlist, process);
                let n = e.iter().count();
                (e, n, None)
            });
            let prep = Arc::new(PreparedDesign::from_parts(
                netlist,
                recognition,
                layout,
                extracted,
                process,
                config,
            ));
            if let Some(PrepClaim::Build(slot)) = claim {
                slot.publish(Arc::clone(&prep));
            }
            prep
        }
    };

    // 4. Fingerprints and the dirty closure, via the shared helper so
    // the dirty set is exactly the incremental flow's.
    let n_cccs = prep.n_cccs();
    let dirty = timed(&mut stages, flow, "fingerprint", |_| {
        let dirty = dirty_closure(cache, prep.env, &prep.fps, &prep.recognition);
        (dirty, prep.fps.units.len(), None)
    });

    // 5. Scatter-gather everify: the backend verifies dirty units
    // (battery + arcs fused), clean units replay from cache. Outcomes
    // are re-indexed by unit, so backend completion order is irrelevant.
    let dirty_units: Vec<usize> = (0..prep.n_units()).filter(|&i| dirty[i]).collect();
    let everify_stats = CacheStats {
        hits: prep.n_units() - dirty_units.len(),
        misses: dirty_units.len(),
        ..CacheStats::default()
    };
    let mut poisoned = vec![false; prep.n_units()];
    let (ereport, mut per_unit) = timed(&mut stages, flow, "everify", |ctx| {
        let (outcomes, busy) =
            backend.verify_units(&prep, &exec, ctx, &dirty_units, config.deadline);
        ctx.tracer.gauge("everify.busy_s", busy.as_secs_f64());
        let mut fresh: Vec<Option<UnitResult>> = (0..prep.n_units()).map(|_| None).collect();
        for o in outcomes {
            poisoned[o.unit] = o.poisoned;
            fresh[o.unit] = Some(o.result);
        }
        let per_unit: Vec<UnitResult> = (0..prep.n_units())
            .map(|i| {
                if dirty[i] {
                    fresh[i].take().expect("one outcome per dirty unit")
                } else {
                    cache
                        .get(&prep.unit_key(i))
                        .expect("clean unit has a cache entry")
                        .clone()
                }
            })
            .collect();
        let merged = cbv_everify::Report::from_parts(
            prep.everify_cfg.filter_threshold,
            per_unit.iter().flat_map(|u| u.findings.clone()).collect(),
            per_unit.iter().map(|u| u.checked).sum(),
            per_unit.iter().map(|u| u.filtered).sum(),
        );
        let n = merged.checked_count();
        ((merged, per_unit), n, Some(busy))
    });
    stages.last_mut().expect("everify stage").cache = Some(everify_stats);
    tracer.add("cache.everify.hits", everify_stats.hits as u64);
    tracer.add("cache.everify.misses", everify_stats.misses as u64);
    tracer.add("fingerprint.dirty_units", dirty_units.len() as u64);

    // 6. Timing: arcs arrived with the unit outcomes; what remains is
    // the serial splice (CCC index order — the cold graph's exact arc
    // sequence), constraints, skew and STA.
    let schedule = config.schedule.clone().unwrap_or_else(|| {
        let name = prep
            .recognition
            .clock_nets
            .first()
            .map(|&c| prep.netlist.net_name(c).to_owned())
            .unwrap_or_else(|| "clk".to_owned());
        ClockSchedule::single(name, process.f_target().period())
    });
    let dirty_cccs: Vec<usize> = (0..n_cccs).filter(|&i| dirty[i]).collect();
    let timing_stats = CacheStats {
        hits: n_cccs - dirty_cccs.len(),
        misses: dirty_cccs.len(),
        ..CacheStats::default()
    };
    let (sta, n_constraints) = timed(&mut stages, flow, "timing", |ctx| {
        let arcs: Vec<cbv_timing::Arc> = per_unit
            .iter()
            .take(n_cccs)
            .flat_map(|u| u.arcs.clone())
            .collect();
        let n_arcs = arcs.len();
        let graph = cbv_timing::graph_from_arcs(&prep.netlist, &prep.recognition, arcs);
        let constraints = cbv_timing::infer_constraints(
            &prep.netlist,
            &prep.recognition,
            process,
            &config.pessimism,
        );
        let skews: Vec<_> = prep
            .recognition
            .clock_nets
            .iter()
            .filter_map(|&c| {
                cbv_timing::clock_skew_bounds(
                    &prep.extracted,
                    c,
                    cbv_tech::Ohms::new(200.0),
                    &config.tolerance,
                )
            })
            .collect();
        let r = {
            let _sta_span = ctx.span("sta");
            cbv_timing::analyze(
                &prep.netlist,
                &graph,
                &constraints,
                &schedule,
                &config.pessimism,
                &skews,
            )
        };
        ctx.tracer.add("timing.arcs", n_arcs as u64);
        ctx.tracer
            .add("timing.constraints", constraints.len() as u64);
        ctx.tracer
            .add("timing.violations", r.violations.len() as u64);
        let n = constraints.len();
        ((r, n), n_arcs, None)
    });
    stages.last_mut().expect("timing stage").cache = Some(timing_stats);
    tracer.add("cache.timing.hits", timing_stats.hits as u64);
    tracer.add("cache.timing.misses", timing_stats.misses as u64);

    // Prime the cache with fresh, non-poisoned units — same discipline
    // and eviction accounting as the incremental flow.
    let evictions_before = cache.evictions();
    let mut fresh_keys = Vec::new();
    for i in 0..per_unit.len() {
        if dirty[i] && !poisoned[i] {
            let key = prep.unit_key(i);
            cache.insert(key, std::mem::take(&mut per_unit[i]));
            fresh_keys.push(key);
        }
    }
    let evicted = cache.evictions() - evictions_before;
    if let Some(stats) = stages
        .iter_mut()
        .find(|s| s.stage == "everify")
        .and_then(|s| s.cache.as_mut())
    {
        stats.evictions = evicted;
    }
    tracer.add("cache.evictions", evicted as u64);

    // 7. Power (§3) — cheap, always recomputed.
    let power = timed(&mut stages, flow, "power", |_| {
        let p = cbv_power::dynamic_power(
            &prep.netlist,
            &prep.recognition,
            &prep.extracted,
            process,
            process.f_target(),
            &cbv_power::ActivityModel::uniform(config.activity),
        );
        (p, 1, None)
    });

    cbv_everify::finding_counters(&ereport, flow);

    let mut signoff = Signoff::default();
    if config.check_drc {
        signoff.add_drc(drc_violations);
    }
    signoff.add_everify(&ereport);
    signoff.add_timing(&sta, n_constraints);
    signoff.set_power(power.total());

    drop(root);
    tracer.flush();

    let (netlist, recognition) = match Arc::try_unwrap(prep) {
        Ok(p) => (p.netlist, p.recognition),
        // Another stream still holds this prep through the shared
        // cache: the report gets its own copies.
        Err(p) => (p.netlist.clone(), p.recognition.clone()),
    };
    FlowReport {
        stages,
        recognition,
        signoff,
        everify: ereport,
        sta,
        netlist,
        fresh: fresh_keys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{run_flow, run_flow_incremental};
    use cbv_gen::adders::static_ripple_adder;
    use cbv_gen::{inject, FaultKind};

    fn signoff_json(r: &FlowReport) -> String {
        serde_json::to_string(&r.signoff).unwrap()
    }

    #[test]
    fn local_backend_matches_cold_and_incremental_flows() {
        let p = Process::strongarm_035();
        let cfg = FlowConfig::default();
        let cold = run_flow(static_ripple_adder(4, &p).netlist, &p, &cfg);
        let cold_json = signoff_json(&cold);

        let mut cache = VerifyCache::new();
        let scat = run_flow_with(
            static_ripple_adder(4, &p).netlist,
            &p,
            &cfg,
            &mut cache,
            &LocalBackend,
        );
        assert_eq!(signoff_json(&scat), cold_json);
        assert_eq!(scat.stages.len(), 7, "same stage census as incremental");
        assert_eq!(scat.fresh.len(), cache.len(), "every fresh key cached");

        // The cache it primed is interchangeable with the incremental
        // flow's: a warm incremental run over it is all hits.
        let warm = run_flow_incremental(static_ripple_adder(4, &p).netlist, &p, &cfg, &mut cache);
        assert_eq!(signoff_json(&warm), cold_json);
        let estats = warm
            .stages
            .iter()
            .find(|s| s.stage == "everify")
            .and_then(|s| s.cache)
            .unwrap();
        assert_eq!(estats.misses, 0, "scatter flow primes the shared cache");

        // And the reverse: a warm scatter run over an incremental cache.
        let warm2 = run_flow_with(
            static_ripple_adder(4, &p).netlist,
            &p,
            &cfg,
            &mut cache,
            &LocalBackend,
        );
        assert_eq!(signoff_json(&warm2), cold_json);
        assert!(warm2.fresh.is_empty(), "warm run contributes nothing");
    }

    #[test]
    fn faulted_design_matches_byte_for_byte() {
        let p = Process::strongarm_035();
        let cfg = FlowConfig::default();
        let mut g = static_ripple_adder(4, &p);
        inject(&mut g.netlist, FaultKind::SubMinLength).unwrap();
        let netlist = g.netlist;
        let cold = run_flow(netlist.clone(), &p, &cfg);
        assert!(!cold.signoff.clean());

        let mut cache = VerifyCache::new();
        let scat = run_flow_with(netlist, &p, &cfg, &mut cache, &LocalBackend);
        assert_eq!(signoff_json(&scat), signoff_json(&cold));
    }

    #[test]
    fn expired_deadline_census_matches_incremental() {
        let p = Process::strongarm_035();
        let cfg = FlowConfig {
            deadline: Some(Instant::now()),
            ..FlowConfig::default()
        };
        let mut cache = VerifyCache::new();
        let r = run_flow_with(
            static_ripple_adder(4, &p).netlist,
            &p,
            &cfg,
            &mut cache,
            &LocalBackend,
        );
        assert!(!r.signoff.clean());
        let tool_errors = r
            .everify
            .raw_findings()
            .iter()
            .filter(|f| f.severity == Severity::ToolError)
            .count();
        let n_cccs = r.recognition.cccs.len();
        assert_eq!(
            tool_errors,
            2 * n_cccs + 1,
            "both halves of every unit time out, as in the incremental flow"
        );
        assert!(cache.is_empty(), "poisoned units are never cached");
        assert!(r.fresh.is_empty());
    }

    #[test]
    fn prep_cache_single_flight_builds_once() {
        let p = Process::strongarm_035();
        let cfg = FlowConfig::default();
        let preps = PrepCache::new(4);
        let key = (1u64, 2u64);

        // First claim gets the build slot.
        let slot = match preps.begin(key) {
            PrepClaim::Build(s) => s,
            PrepClaim::Hit(_) => panic!("empty cache cannot hit"),
        };
        // A concurrent claim of the same key blocks until publication,
        // then resolves to a hit.
        let waiter = std::thread::scope(|scope| {
            let h = scope.spawn(|| match preps.begin(key) {
                PrepClaim::Hit(prep) => prep.n_units(),
                PrepClaim::Build(_) => panic!("waiter must see the published prep"),
            });
            std::thread::sleep(Duration::from_millis(20));
            let prep = Arc::new(PreparedDesign::build(
                static_ripple_adder(2, &p).netlist,
                &p,
                &cfg,
            ));
            let n = prep.n_units();
            slot.publish(prep);
            assert_eq!(h.join().expect("waiter thread"), n);
            n
        });
        assert!(waiter > 0);
        assert_eq!(
            (preps.hit_count(), preps.miss_count()),
            (1, 1),
            "the waiter hits; only the builder misses"
        );

        // Dropping a slot without publishing (a panicked builder)
        // releases the key so the next claimant builds instead of
        // wedging.
        let key2 = (3u64, 4u64);
        match preps.begin(key2) {
            PrepClaim::Build(s) => drop(s),
            PrepClaim::Hit(_) => panic!("unpublished key cannot hit"),
        }
        assert!(
            matches!(preps.begin(key2), PrepClaim::Build(_)),
            "an abandoned build slot must be reclaimable"
        );
    }

    #[test]
    fn shared_preps_keep_signoff_bytes_identical() {
        let p = Process::strongarm_035();
        let cfg = FlowConfig::default();
        let reference = {
            let mut cache = VerifyCache::new();
            let r = run_flow_with(
                static_ripple_adder(4, &p).netlist,
                &p,
                &cfg,
                &mut cache,
                &LocalBackend,
            );
            signoff_json(&r)
        };
        let preps = PrepCache::new(4);
        for round in 0..2 {
            let mut cache = VerifyCache::new();
            let r = run_flow_shared(
                static_ripple_adder(4, &p).netlist,
                &p,
                &cfg,
                &mut cache,
                &LocalBackend,
                Some(&preps),
            );
            assert_eq!(
                signoff_json(&r),
                reference,
                "round {round} diverged from the unshared flow"
            );
            assert!(
                !cache.is_empty(),
                "round {round} must still prime the cache"
            );
        }
        assert_eq!(
            (preps.hit_count(), preps.miss_count()),
            (1, 1),
            "the second identical revision reuses the first prep"
        );
    }

    #[test]
    fn verify_unit_reproduces_cache_entries() {
        // A unit verified in isolation must equal the entry the full
        // flow caches for it — the property the farm's shared tier
        // rests on (one worker's result is every worker's hit).
        let p = Process::strongarm_035();
        let cfg = FlowConfig::default();
        let mut cache = VerifyCache::new();
        run_flow_with(
            static_ripple_adder(4, &p).netlist,
            &p,
            &cfg,
            &mut cache,
            &LocalBackend,
        );
        let prep = PreparedDesign::build(static_ripple_adder(4, &p).netlist, &p, &cfg);
        for i in 0..prep.n_units() {
            let o = prep.verify_unit(i, None);
            assert!(!o.poisoned);
            assert_eq!(
                Some(&o.result),
                cache.get(&prep.unit_key(i)),
                "unit {i} recomputed off-flow must match its cache entry"
            );
        }
    }
}

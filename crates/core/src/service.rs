//! `FlowService` — the shareable facade over the incremental flow.
//!
//! The paper's methodology only pays off as a *service*: many designers
//! stream ECOs at one verification system that keeps the accumulated
//! unit results warm (§2, §4). This module packages exactly that for
//! in-process callers (the `cbv-serve` daemon's workers, the E17
//! harness, tests): one [`FlowService`] owns the process, a
//! [`FlowConfig`] template, and a mutex-guarded [`VerifyCache`] shared
//! by every request.
//!
//! # Concurrency discipline
//!
//! A verification run can take arbitrarily long, so the shared cache is
//! never held across one. [`FlowService::verify`] instead:
//!
//! 1. **snapshots** the shared cache under the lock (a clone — unit
//!    results are plain data), overlaid with the undrained staging tier
//!    so a run always sees its own service's recent results;
//! 2. runs the flow against the snapshot, unlocked, so concurrent
//!    requests verify in parallel;
//! 3. **stages** the run's fresh entries, and a **drain** absorbs the
//!    whole staging batch into the shared tier under the lock
//!    ([`VerifyCache::absorb`] merges in sorted key order and keeps
//!    existing entries, so two racing requests that verified the same
//!    unit converge on one entry deterministically).
//!
//! [`verify`](FlowService::verify) and
//! [`verify_report`](FlowService::verify_report) drain immediately —
//! one absorb per call, the original discipline. A batching caller (the
//! daemon's job loop, the farm coordinator) uses
//! [`verify_buffered`](FlowService::verify_buffered) and calls
//! [`drain_absorb`](FlowService::drain_absorb) once per queue drain,
//! paying one sorted merge for a whole burst of jobs instead of one per
//! job.
//!
//! Because the signoff is cache-state-independent (the PR 2 soundness
//! contract: hits replay exactly what a fresh run would compute), racing
//! requests can never observe different verdicts for the same netlist —
//! the byte-identity guarantee the daemon's wire protocol exposes.
//!
//! # The scatter-gather seam
//!
//! [`verify_with_backend`](FlowService::verify_with_backend) is the
//! farm coordinator's entry point: the same snapshot/stage/drain
//! discipline, but per-unit work routed through a
//! [`UnitBackend`](crate::scatter::UnitBackend). The plain entry points
//! use [`LocalBackend`]; signoff bytes are identical either way.
//!
//! # Single-flight
//!
//! Racing streams that miss the *same* unit would compute it twice —
//! harmless for soundness (absorb is existing-entry-wins) but wasted
//! work the farm cannot afford. The tier therefore keeps an in-flight
//! ledger: a backend [claims](FlowService::try_claim_unit) a unit key
//! before computing it, other streams [wait](FlowService::await_units)
//! and re-[look up](FlowService::lookup_unit) instead of duplicating
//! the dispatch. Claims are advisory with a bounded wait, so a crashed
//! claimant degrades to duplicated work, never to a hang.

use std::collections::HashSet;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use cbv_cache::{CacheKey, CacheStats, UnitResult, VerifyCache};
use cbv_netlist::FlatNetlist;
use cbv_tech::Process;

use crate::flow::{FlowConfig, FlowReport};
use crate::scatter::{run_flow_shared, LocalBackend, PrepCache, UnitBackend};

/// A shareable, cache-backed verification endpoint. `&FlowService` is
/// `Send + Sync`; workers call [`verify`](FlowService::verify)
/// concurrently.
pub struct FlowService {
    process: Process,
    config: FlowConfig,
    /// The shared (remote, in farm terms) content-addressed tier.
    cache: Mutex<VerifyCache>,
    /// Fresh entries awaiting the next [`drain_absorb`]; unbounded —
    /// it holds at most a queue-drain's worth of unit results.
    ///
    /// Lock order when both are held: `cache` before `staging`.
    ///
    /// [`drain_absorb`]: FlowService::drain_absorb
    staging: Mutex<VerifyCache>,
    /// Single-flight ledger: unit keys some caller is computing right
    /// now. Never held while computing — claims are registered, the
    /// work runs unlocked, and [`release_units`](FlowService::release_units)
    /// wakes the waiters.
    inflight: Mutex<HashSet<CacheKey>>,
    inflight_cv: Condvar,
    /// Shared serial-prep artifacts, content-addressed by raw netlist
    /// digest: W streams verifying the same revision prepare it once.
    preps: PrepCache,
}

/// What one verification request came back with: the signoff both as
/// JSON (the bytes a remote client must receive verbatim) and as
/// extracted facts, plus the cache economics of the run.
#[derive(Debug, Clone)]
pub struct ServiceVerdict {
    /// The serialized [`Signoff`](crate::signoff::Signoff) — byte-for-
    /// byte what `serde_json::to_string` of an in-process run produces.
    pub signoff_json: String,
    /// Whether the design signed off clean.
    pub clean: bool,
    /// Total violations across categories.
    pub violations: usize,
    /// Hit/miss/eviction tally of the everify stage against the shared
    /// cache snapshot.
    pub cache: CacheStats,
    /// Flow wall-clock runtime in seconds.
    pub runtime_s: f64,
}

impl FlowService {
    /// A service over one process corner with a config template. The
    /// template's `deadline`/`trace_parent` are ignored — those are
    /// per-request and passed to [`verify`](FlowService::verify).
    pub fn new(process: Process, config: FlowConfig) -> FlowService {
        FlowService {
            process,
            config,
            cache: Mutex::new(VerifyCache::new()),
            staging: Mutex::new(VerifyCache::new()),
            inflight: Mutex::new(HashSet::new()),
            inflight_cv: Condvar::new(),
            preps: PrepCache::new(4),
        }
    }

    /// Bounds the shared cache (LRU eviction past `capacity` entries) —
    /// what a long-running daemon does so memory stays flat.
    pub fn with_cache_capacity(self, capacity: usize) -> FlowService {
        self.cache
            .lock()
            .expect("service cache lock")
            .set_capacity(Some(capacity));
        self
    }

    /// The process corner this service verifies against.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// The flow config template requests run under. A farm worker must
    /// prepare designs under the *same* template as its coordinator for
    /// the environment fingerprints to agree.
    pub fn flow_config(&self) -> &FlowConfig {
        &self.config
    }

    /// Current entry count of the shared cache.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("service cache lock").len()
    }

    /// Total LRU evictions from the shared cache since construction.
    pub fn cache_evictions(&self) -> usize {
        self.cache.lock().expect("service cache lock").evictions()
    }

    /// Serial preps answered from the shared prep cache (another stream
    /// of this service already built the identical revision).
    pub fn prep_hits(&self) -> u64 {
        self.preps.hit_count()
    }

    /// Serial preps this service had to build.
    pub fn prep_misses(&self) -> u64 {
        self.preps.miss_count()
    }

    /// Verifies one netlist revision with per-unit work routed through
    /// `backend` — the farm coordinator's entry point. The run snapshots
    /// the shared tier (plus undrained staging), verifies unlocked, and
    /// *stages* its fresh entries; publication to the shared tier waits
    /// for the next [`drain_absorb`](FlowService::drain_absorb). The
    /// verdict's [`CacheStats`] carry the batching economics: `absorbed`
    /// is the number of entries this run staged, `remote_hits`/
    /// `remote_misses` the snapshot's answer rate.
    pub fn verify_with_backend(
        &self,
        netlist: FlatNetlist,
        deadline: Option<Instant>,
        trace_parent: Option<u64>,
        backend: &dyn UnitBackend,
    ) -> (FlowReport, ServiceVerdict) {
        let mut snapshot = self.cache.lock().expect("service cache lock").clone();
        snapshot.absorb(&self.staging.lock().expect("service staging lock"));
        let mut config = self.config.clone();
        config.deadline = deadline;
        config.trace_parent = trace_parent;
        let report = run_flow_shared(
            netlist,
            &self.process,
            &config,
            &mut snapshot,
            backend,
            Some(&self.preps),
        );
        let staged = {
            let mut staging = self.staging.lock().expect("service staging lock");
            let mut staged = 0usize;
            for key in &report.fresh {
                // A bounded snapshot may already have evicted a fresh
                // entry; only what survived can be staged.
                if let Some(r) = snapshot.get(key) {
                    staging.insert(*key, r.clone());
                    staged += 1;
                }
            }
            staged
        };
        let mut stats = report
            .stages
            .iter()
            .find(|s| s.stage == "everify")
            .and_then(|s| s.cache)
            .unwrap_or_default();
        stats.absorbed = staged;
        stats.remote_hits = stats.hits;
        stats.remote_misses = stats.misses;
        let verdict = ServiceVerdict {
            signoff_json: serde_json::to_string(&report.signoff)
                .expect("signoff serialization is infallible"),
            clean: report.signoff.clean(),
            violations: report.signoff.violation_count(),
            cache: stats,
            runtime_s: report.total_runtime().seconds(),
        };
        (report, verdict)
    }

    /// Publishes the staging tier into the shared cache: one sorted
    /// existing-entry-wins merge for the whole batch, then the staging
    /// tier is reset. Returns the number of entries actually absorbed
    /// (and emits `cache.absorb.batches`/`cache.absorb.entries` counters
    /// on the service's tracer). Callers of
    /// [`verify_buffered`](FlowService::verify_buffered) run this once
    /// per queue drain.
    pub fn drain_absorb(&self) -> usize {
        let mut shared = self.cache.lock().expect("service cache lock");
        let mut staging = self.staging.lock().expect("service staging lock");
        if staging.is_empty() {
            return 0;
        }
        let absorbed = shared.absorb(&staging);
        staging.clear();
        self.config.tracer.add("cache.absorb.batches", 1);
        self.config
            .tracer
            .add("cache.absorb.entries", absorbed as u64);
        absorbed
    }

    /// Entries currently staged and awaiting a drain.
    pub fn staged_len(&self) -> usize {
        self.staging.lock().expect("service staging lock").len()
    }

    /// Claims `key` for computation by this caller. `true` means the
    /// caller owns the unit and must compute it (then
    /// [`release_units`](FlowService::release_units), even on failure);
    /// `false` means another caller has it in flight — wait with
    /// [`await_units`](FlowService::await_units) and re-look-up instead
    /// of duplicating the work. This is the tier's single-flight
    /// discipline: under racing streams, each content address is
    /// computed once.
    pub fn try_claim_unit(&self, key: &CacheKey) -> bool {
        self.inflight
            .lock()
            .expect("service inflight lock")
            .insert(*key)
    }

    /// Drops this caller's claims and wakes every waiter. Claims are
    /// *advisory*: releasing without publishing a result is legal (the
    /// waiter re-looks-up, misses, and computes the unit itself), so a
    /// failed or poisoned computation cannot wedge the farm.
    pub fn release_units(&self, keys: &[CacheKey]) {
        if keys.is_empty() {
            return;
        }
        let mut inflight = self.inflight.lock().expect("service inflight lock");
        for key in keys {
            inflight.remove(key);
        }
        drop(inflight);
        self.inflight_cv.notify_all();
    }

    /// Blocks until none of `keys` is claimed by another caller, or
    /// `timeout` elapses — the waiter's half of single-flight. On
    /// return the caller re-looks-up the tier; anything still missing
    /// (claimant failed, result poisoned, timeout) it computes itself.
    pub fn await_units(&self, keys: &[CacheKey], timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut inflight = self.inflight.lock().expect("service inflight lock");
        while keys.iter().any(|k| inflight.contains(k)) {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return;
            };
            let (guard, result) = self
                .inflight_cv
                .wait_timeout(inflight, remaining)
                .expect("service inflight lock");
            inflight = guard;
            if result.timed_out() {
                return;
            }
        }
    }

    /// Looks one unit up in the shared tier: the published cache first,
    /// then the staging overlay (results another stream staged but has
    /// not drained yet).
    pub fn lookup_unit(&self, key: &CacheKey) -> Option<UnitResult> {
        if let Some(r) = self.cache.lock().expect("service cache lock").get(key) {
            return Some(r.clone());
        }
        self.staging
            .lock()
            .expect("service staging lock")
            .get(key)
            .cloned()
    }

    /// Stages unit results directly — the farm coordinator publishes
    /// remote results here *before* releasing their claims, so a waiter
    /// that wakes finds them without waiting for the producing stream's
    /// full verify to finish. Existing staged entries win (first writer,
    /// same content either way).
    pub fn stage_results(&self, results: &[(CacheKey, UnitResult)]) {
        if results.is_empty() {
            return;
        }
        let mut staging = self.staging.lock().expect("service staging lock");
        for (key, result) in results {
            if staging.get(key).is_none() {
                staging.insert(*key, result.clone());
            }
        }
    }

    /// Verifies one netlist revision and returns the full [`FlowReport`]
    /// with its serialized signoff. `deadline` bounds the per-unit
    /// verification work cooperatively (see [`FlowConfig::deadline`]);
    /// `trace_parent` nests the run's `flow` span under a caller span.
    /// Drains immediately: the shared cache is warm when this returns.
    pub fn verify_report(
        &self,
        netlist: FlatNetlist,
        deadline: Option<Instant>,
        trace_parent: Option<u64>,
    ) -> (FlowReport, ServiceVerdict) {
        let out = self.verify_with_backend(netlist, deadline, trace_parent, &LocalBackend);
        self.drain_absorb();
        out
    }

    /// Verifies one netlist revision; the common entry point when only
    /// the verdict is needed. Drains immediately.
    pub fn verify(
        &self,
        netlist: FlatNetlist,
        deadline: Option<Instant>,
        trace_parent: Option<u64>,
    ) -> ServiceVerdict {
        self.verify_report(netlist, deadline, trace_parent).1
    }

    /// Like [`verify`](FlowService::verify) but leaves the fresh entries
    /// in staging — the batching entry point for a job loop that calls
    /// [`drain_absorb`](FlowService::drain_absorb) when its queue goes
    /// quiet, amortizing one absorb over many jobs.
    pub fn verify_buffered(
        &self,
        netlist: FlatNetlist,
        deadline: Option<Instant>,
        trace_parent: Option<u64>,
    ) -> ServiceVerdict {
        self.verify_with_backend(netlist, deadline, trace_parent, &LocalBackend)
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::run_flow_incremental;
    use cbv_gen::adders::static_ripple_adder;

    #[test]
    fn identical_revisions_share_one_prep() {
        let p = Process::strongarm_035();
        let svc = FlowService::new(p.clone(), FlowConfig::default());
        let netlist = static_ripple_adder(4, &p).netlist;
        let a = svc.verify(netlist.clone(), None, None);
        let b = svc.verify(netlist, None, None);
        assert_eq!(a.signoff_json, b.signoff_json);
        assert_eq!(
            (svc.prep_hits(), svc.prep_misses()),
            (1, 1),
            "the second verify must reuse the first verify's serial prep"
        );
    }

    #[test]
    fn verdict_matches_in_process_flow_and_warms_the_cache() {
        let p = Process::strongarm_035();
        let reference = {
            let mut cache = VerifyCache::new();
            let r = run_flow_incremental(
                static_ripple_adder(4, &p).netlist,
                &p,
                &FlowConfig::default(),
                &mut cache,
            );
            serde_json::to_string(&r.signoff).unwrap()
        };

        let service = FlowService::new(p.clone(), FlowConfig::default());
        let first = service.verify(static_ripple_adder(4, &p).netlist, None, None);
        assert_eq!(first.signoff_json, reference);
        assert!(first.clean);
        assert_eq!(first.cache.hits, 0, "cold shared cache");
        assert!(service.cache_len() > 0, "run primed the shared cache");

        let second = service.verify(static_ripple_adder(4, &p).netlist, None, None);
        assert_eq!(second.signoff_json, reference);
        assert_eq!(second.cache.misses, 0, "warm rerun is all hits");
    }

    #[test]
    fn racing_requests_agree_byte_for_byte() {
        let p = Process::strongarm_035();
        let service = FlowService::new(p.clone(), FlowConfig::default());
        let verdicts: Vec<ServiceVerdict> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let service = &service;
                    let p = &p;
                    s.spawn(move || service.verify(static_ripple_adder(4, p).netlist, None, None))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let first = &verdicts[0].signoff_json;
        for v in &verdicts[1..] {
            assert_eq!(&v.signoff_json, first);
        }
    }

    #[test]
    fn expired_deadline_fails_the_verdict_without_poisoning_the_cache() {
        let p = Process::strongarm_035();
        let service = FlowService::new(p.clone(), FlowConfig::default());
        let timed_out = service.verify(
            static_ripple_adder(4, &p).netlist,
            Some(Instant::now()),
            None,
        );
        assert!(!timed_out.clean);
        assert_eq!(service.cache_len(), 0, "timed-out units are not cached");

        let retry = service.verify(static_ripple_adder(4, &p).netlist, None, None);
        assert!(retry.clean, "a later request re-verifies cleanly");
    }

    #[test]
    fn buffered_runs_stage_until_drained() {
        let p = Process::strongarm_035();
        let service = FlowService::new(p.clone(), FlowConfig::default());
        let v1 = service.verify_buffered(static_ripple_adder(4, &p).netlist, None, None);
        assert!(v1.clean);
        assert!(v1.cache.absorbed > 0, "cold run stages every unit");
        assert_eq!(service.cache_len(), 0, "nothing published before drain");
        assert_eq!(service.staged_len(), v1.cache.absorbed);

        // A second buffered run is answered by the staging overlay even
        // though the shared tier is still empty.
        let v2 = service.verify_buffered(static_ripple_adder(4, &p).netlist, None, None);
        assert_eq!(v2.cache.remote_misses, 0, "staging overlay answers it");
        assert_eq!(v2.cache.absorbed, 0, "warm run stages nothing");
        assert_eq!(v1.signoff_json, v2.signoff_json);

        let absorbed = service.drain_absorb();
        assert_eq!(absorbed, v1.cache.absorbed);
        assert_eq!(service.cache_len(), absorbed);
        assert_eq!(service.staged_len(), 0);
        assert_eq!(service.drain_absorb(), 0, "drain on empty staging");
    }

    #[test]
    fn single_flight_claims_wait_and_resolve_through_staging() {
        let p = Process::strongarm_035();
        let service = FlowService::new(p.clone(), FlowConfig::default());
        let fp = |content, binding| cbv_cache::UnitFingerprint { content, binding };
        let key = CacheKey::new(1, fp(2, 3));

        assert!(service.try_claim_unit(&key), "first claimant wins");
        assert!(!service.try_claim_unit(&key), "second caller must wait");
        // An unclaimed key never blocks the waiter.
        let other = CacheKey::new(4, fp(5, 6));
        let t0 = Instant::now();
        service.await_units(&[other], Duration::from_secs(5));
        assert!(t0.elapsed() < Duration::from_secs(1));

        // A waiter parks until the claimant stages + releases, then
        // finds the result in the tier without recomputing.
        let resolved = std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                service.await_units(&[key], Duration::from_secs(10));
                service.lookup_unit(&key)
            });
            let result = UnitResult::default();
            service.stage_results(&[(key, result)]);
            service.release_units(&[key]);
            waiter.join().expect("waiter thread")
        });
        assert!(resolved.is_some(), "release published the result");
        assert!(service.try_claim_unit(&key), "claim was released");

        // The timeout bounds a wedged claimant.
        let t0 = Instant::now();
        service.await_units(&[key], Duration::from_millis(20));
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn bounded_cache_evicts_and_counts() {
        let p = Process::strongarm_035();
        let service = FlowService::new(p.clone(), FlowConfig::default()).with_cache_capacity(2);
        let v = service.verify(static_ripple_adder(4, &p).netlist, None, None);
        assert!(service.cache_len() <= 2, "shared cache stays bounded");
        // The run's inserts overflowed its cache snapshot (the adder has
        // more than two units); the verdict's stage stats carry that.
        assert!(v.cache.evictions > 0, "adder has >2 units");
    }
}

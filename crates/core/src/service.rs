//! `FlowService` — the shareable facade over the incremental flow.
//!
//! The paper's methodology only pays off as a *service*: many designers
//! stream ECOs at one verification system that keeps the accumulated
//! unit results warm (§2, §4). This module packages exactly that for
//! in-process callers (the `cbv-serve` daemon's workers, the E17
//! harness, tests): one [`FlowService`] owns the process, a
//! [`FlowConfig`] template, and a mutex-guarded [`VerifyCache`] shared
//! by every request.
//!
//! # Concurrency discipline
//!
//! A verification run can take arbitrarily long, so the shared cache is
//! never held across one. [`FlowService::verify`] instead:
//!
//! 1. **snapshots** the shared cache under the lock (a clone — unit
//!    results are plain data);
//! 2. runs [`run_flow_incremental`] against the snapshot, unlocked, so
//!    concurrent requests verify in parallel;
//! 3. **absorbs** the snapshot's additions back under the lock
//!    ([`VerifyCache::absorb`] merges in sorted key order and keeps
//!    existing entries, so two racing requests that verified the same
//!    unit converge on one entry deterministically).
//!
//! Because the signoff is cache-state-independent (the PR 2 soundness
//! contract: hits replay exactly what a fresh run would compute), racing
//! requests can never observe different verdicts for the same netlist —
//! the byte-identity guarantee the daemon's wire protocol exposes.

use std::sync::Mutex;
use std::time::Instant;

use cbv_cache::{CacheStats, VerifyCache};
use cbv_netlist::FlatNetlist;
use cbv_tech::Process;

use crate::flow::{run_flow_incremental, FlowConfig, FlowReport};

/// A shareable, cache-backed verification endpoint. `&FlowService` is
/// `Send + Sync`; workers call [`verify`](FlowService::verify)
/// concurrently.
pub struct FlowService {
    process: Process,
    config: FlowConfig,
    cache: Mutex<VerifyCache>,
}

/// What one verification request came back with: the signoff both as
/// JSON (the bytes a remote client must receive verbatim) and as
/// extracted facts, plus the cache economics of the run.
#[derive(Debug, Clone)]
pub struct ServiceVerdict {
    /// The serialized [`Signoff`](crate::signoff::Signoff) — byte-for-
    /// byte what `serde_json::to_string` of an in-process run produces.
    pub signoff_json: String,
    /// Whether the design signed off clean.
    pub clean: bool,
    /// Total violations across categories.
    pub violations: usize,
    /// Hit/miss/eviction tally of the everify stage against the shared
    /// cache snapshot.
    pub cache: CacheStats,
    /// Flow wall-clock runtime in seconds.
    pub runtime_s: f64,
}

impl FlowService {
    /// A service over one process corner with a config template. The
    /// template's `deadline`/`trace_parent` are ignored — those are
    /// per-request and passed to [`verify`](FlowService::verify).
    pub fn new(process: Process, config: FlowConfig) -> FlowService {
        FlowService {
            process,
            config,
            cache: Mutex::new(VerifyCache::new()),
        }
    }

    /// Bounds the shared cache (LRU eviction past `capacity` entries) —
    /// what a long-running daemon does so memory stays flat.
    pub fn with_cache_capacity(self, capacity: usize) -> FlowService {
        self.cache
            .lock()
            .expect("service cache lock")
            .set_capacity(Some(capacity));
        self
    }

    /// The process corner this service verifies against.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Current entry count of the shared cache.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("service cache lock").len()
    }

    /// Total LRU evictions from the shared cache since construction.
    pub fn cache_evictions(&self) -> usize {
        self.cache.lock().expect("service cache lock").evictions()
    }

    /// Verifies one netlist revision and returns the full [`FlowReport`]
    /// with its serialized signoff. `deadline` bounds the per-unit
    /// verification work cooperatively (see [`FlowConfig::deadline`]);
    /// `trace_parent` nests the run's `flow` span under a caller span.
    pub fn verify_report(
        &self,
        netlist: FlatNetlist,
        deadline: Option<Instant>,
        trace_parent: Option<u64>,
    ) -> (FlowReport, ServiceVerdict) {
        let mut snapshot = self.cache.lock().expect("service cache lock").clone();
        let mut config = self.config.clone();
        config.deadline = deadline;
        config.trace_parent = trace_parent;
        let report = run_flow_incremental(netlist, &self.process, &config, &mut snapshot);
        self.cache
            .lock()
            .expect("service cache lock")
            .absorb(&snapshot);
        let verdict = ServiceVerdict {
            signoff_json: serde_json::to_string(&report.signoff)
                .expect("signoff serialization is infallible"),
            clean: report.signoff.clean(),
            violations: report.signoff.violation_count(),
            cache: report
                .stages
                .iter()
                .find(|s| s.stage == "everify")
                .and_then(|s| s.cache)
                .unwrap_or_default(),
            runtime_s: report.total_runtime().seconds(),
        };
        (report, verdict)
    }

    /// Verifies one netlist revision; the common entry point when only
    /// the verdict is needed.
    pub fn verify(
        &self,
        netlist: FlatNetlist,
        deadline: Option<Instant>,
        trace_parent: Option<u64>,
    ) -> ServiceVerdict {
        self.verify_report(netlist, deadline, trace_parent).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_gen::adders::static_ripple_adder;

    #[test]
    fn verdict_matches_in_process_flow_and_warms_the_cache() {
        let p = Process::strongarm_035();
        let reference = {
            let mut cache = VerifyCache::new();
            let r = run_flow_incremental(
                static_ripple_adder(4, &p).netlist,
                &p,
                &FlowConfig::default(),
                &mut cache,
            );
            serde_json::to_string(&r.signoff).unwrap()
        };

        let service = FlowService::new(p.clone(), FlowConfig::default());
        let first = service.verify(static_ripple_adder(4, &p).netlist, None, None);
        assert_eq!(first.signoff_json, reference);
        assert!(first.clean);
        assert_eq!(first.cache.hits, 0, "cold shared cache");
        assert!(service.cache_len() > 0, "run primed the shared cache");

        let second = service.verify(static_ripple_adder(4, &p).netlist, None, None);
        assert_eq!(second.signoff_json, reference);
        assert_eq!(second.cache.misses, 0, "warm rerun is all hits");
    }

    #[test]
    fn racing_requests_agree_byte_for_byte() {
        let p = Process::strongarm_035();
        let service = FlowService::new(p.clone(), FlowConfig::default());
        let verdicts: Vec<ServiceVerdict> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let service = &service;
                    let p = &p;
                    s.spawn(move || service.verify(static_ripple_adder(4, p).netlist, None, None))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let first = &verdicts[0].signoff_json;
        for v in &verdicts[1..] {
            assert_eq!(&v.signoff_json, first);
        }
    }

    #[test]
    fn expired_deadline_fails_the_verdict_without_poisoning_the_cache() {
        let p = Process::strongarm_035();
        let service = FlowService::new(p.clone(), FlowConfig::default());
        let timed_out = service.verify(
            static_ripple_adder(4, &p).netlist,
            Some(Instant::now()),
            None,
        );
        assert!(!timed_out.clean);
        assert_eq!(service.cache_len(), 0, "timed-out units are not cached");

        let retry = service.verify(static_ripple_adder(4, &p).netlist, None, None);
        assert!(retry.clean, "a later request re-verifies cleanly");
    }

    #[test]
    fn bounded_cache_evicts_and_counts() {
        let p = Process::strongarm_035();
        let service = FlowService::new(p.clone(), FlowConfig::default()).with_cache_capacity(2);
        let v = service.verify(static_ripple_adder(4, &p).netlist, None, None);
        assert!(service.cache_len() <= 2, "shared cache stays bounded");
        // The run's inserts overflowed its cache snapshot (the adder has
        // more than two units); the verdict's stage stats carry that.
        assert!(v.cache.evictions > 0, "adder has >2 units");
    }
}

//! Flow-backed [`FlowOracle`] adapters for the E16 mutation campaign.
//!
//! `cbv-mutate` deliberately knows nothing about the flow (the
//! dependency runs the other way: this crate and `cbv-gen` build on the
//! operator taxonomy). These adapters close the loop: they run the full
//! Fig 2 pipeline over each mutant and reduce the [`FlowReport`] to the
//! detector counts the campaign compares.
//!
//! Two oracles exist so the campaign itself can measure the claim that
//! incremental verification makes mutation testing affordable:
//!
//! * [`IncrementalOracle`] owns a [`VerifyCache`]; the campaign's
//!   baseline run primes it, and every mutant then re-verifies only its
//!   dirty closure (the one-device ECO path of `run_flow_incremental`).
//! * [`ColdOracle`] runs the full flow from scratch every time — the
//!   reference cost, and the cross-check that caching never changes a
//!   verdict.

use cbv_cache::VerifyCache;
use cbv_everify::{CheckKind, Severity};
use cbv_mutate::{FlowObservation, FlowOracle};
use cbv_netlist::FlatNetlist;
use cbv_tech::Process;

use crate::flow::{run_flow, run_flow_incremental, FlowConfig, FlowReport};

/// Reduces one flow run to the campaign's detector counts.
///
/// `ToolError` findings count as violations — a check that panicked or
/// produced NaN leaves its unit *unverified*, which a mutation campaign
/// must treat as detection, not silence.
pub fn observe(report: &FlowReport) -> FlowObservation {
    let check_violations = CheckKind::ALL
        .iter()
        .map(|&k| {
            report
                .everify
                .of_check(k)
                .filter(|f| f.severity >= Severity::Violation)
                .count()
        })
        .collect();
    // Worst stress per check so the campaign can see a mutant worsening
    // an already-violating subject (count stays flat, stress escalates).
    let check_max_stress = CheckKind::ALL
        .iter()
        .map(|&k| {
            report
                .everify
                .of_check(k)
                .filter(|f| f.severity >= Severity::Violation)
                .map(|f| f.stress)
                .fold(0.0, f64::max)
        })
        .collect();
    let verify_cpu = report
        .stages
        .iter()
        .filter(|s| s.stage == "everify" || s.stage == "timing")
        .map(|s| s.cpu_time.seconds())
        .sum();
    let (cache_hits, cache_misses) = report
        .stages
        .iter()
        .filter_map(|s| s.cache)
        .fold((0, 0), |(h, m), c| (h + c.hits, m + c.misses));
    FlowObservation {
        check_violations,
        check_max_stress,
        timing_violations: report.sta.violations.len(),
        verify_cpu,
        cache_hits,
        cache_misses,
    }
}

/// The production campaign oracle: `run_flow_incremental` over a cache
/// that persists across calls, so every mutant after the first (the
/// baseline) is verified as a one-site ECO.
#[derive(Debug)]
pub struct IncrementalOracle {
    process: Process,
    config: FlowConfig,
    cache: VerifyCache,
}

impl IncrementalOracle {
    /// A fresh oracle with an empty cache; the campaign's baseline call
    /// primes it.
    pub fn new(process: &Process, config: FlowConfig) -> IncrementalOracle {
        IncrementalOracle {
            process: process.clone(),
            config,
            cache: VerifyCache::new(),
        }
    }
}

impl FlowOracle for IncrementalOracle {
    fn verify(&mut self, netlist: &FlatNetlist) -> FlowObservation {
        let report = run_flow_incremental(
            netlist.clone(),
            &self.process,
            &self.config,
            &mut self.cache,
        );
        observe(&report)
    }
}

/// The reference oracle: a cold full flow per mutant. Expensive — it
/// exists to price the incremental path and to confirm verdicts match.
#[derive(Debug)]
pub struct ColdOracle {
    process: Process,
    config: FlowConfig,
}

impl ColdOracle {
    /// A cold-flow oracle.
    pub fn new(process: &Process, config: FlowConfig) -> ColdOracle {
        ColdOracle {
            process: process.clone(),
            config,
        }
    }
}

impl FlowOracle for ColdOracle {
    fn verify(&mut self, netlist: &FlatNetlist) -> FlowObservation {
        let report = run_flow(netlist.clone(), &self.process, &self.config);
        observe(&report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbv_mutate::{apply, MutationOp, Site};

    #[test]
    fn cold_and_incremental_oracles_agree_on_the_domino_cell() {
        let p = Process::strongarm_035();
        let base = crate::gen::latches::keeper_domino(&p, 1e-6).netlist;
        let mut cold = ColdOracle::new(&p, FlowConfig::default());
        let mut inc = IncrementalOracle::new(&p, FlowConfig::default());
        let cold_base = cold.verify(&base);
        let inc_base = inc.verify(&base);
        assert_eq!(cold_base.check_violations, inc_base.check_violations);
        assert_eq!(cold_base.timing_violations, inc_base.timing_violations);
        assert_eq!(
            inc_base.cache_hits, 0,
            "first incremental run is all misses"
        );

        // A gross mutant moves both oracles identically, and the
        // incremental one reuses at least one cached unit.
        let mut mutant = base.clone();
        let victim = mutant.device_ids().next().unwrap();
        apply(
            &mut mutant,
            &MutationOp::WidthScale { factor: 12.0 },
            Site::Device(victim),
        )
        .unwrap();
        let cold_obs = cold.verify(&mutant);
        let inc_obs = inc.verify(&mutant);
        assert_eq!(cold_obs.check_violations, inc_obs.check_violations);
        assert_eq!(cold_obs.timing_violations, inc_obs.timing_violations);
        assert_eq!(
            inc_obs.fired_against(&inc_base),
            cold_obs.fired_against(&cold_base)
        );
    }
}
